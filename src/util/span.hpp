// Minimal C++17 stand-in for std::span (the repo builds with -std=c++17;
// <span> arrives in C++20). Dynamic extent only, covering the operations the
// codebase uses: container/pointer construction, iteration, indexing, and
// size queries. Swap back to std::span when the toolchain baseline moves.
#pragma once

#include <cstddef>
#include <type_traits>

namespace divscrape {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using size_type = std::size_t;
  using pointer = T*;
  using reference = T&;
  using iterator = T*;

  constexpr span() noexcept : data_(nullptr), size_(0) {}
  constexpr span(T* data, size_type size) noexcept : data_(data), size_(size) {}

  template <std::size_t N>
  constexpr span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}

  // From any contiguous container of exactly this element type (vector<U> ->
  // span<const U>, array, string, etc.). Like std::span, only cv conversion
  // is allowed: a container of a *derived* type must not bind, since the
  // stride would be wrong.
  template <typename Container,
            typename Ptr = decltype(std::declval<Container&>().data()),
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cv_t<std::remove_pointer_t<Ptr>>,
                               value_type> &&
                std::is_convertible_v<Ptr, pointer>>>
  constexpr span(Container& c) noexcept : data_(c.data()), size_(c.size()) {}

  template <typename Container,
            typename Ptr = decltype(std::declval<const Container&>().data()),
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cv_t<std::remove_pointer_t<Ptr>>,
                               value_type> &&
                std::is_convertible_v<Ptr, pointer>>>
  constexpr span(const Container& c) noexcept
      : data_(c.data()), size_(c.size()) {}

  constexpr iterator begin() const noexcept { return data_; }
  constexpr iterator end() const noexcept { return data_ + size_; }

  constexpr reference operator[](size_type i) const noexcept {
    return data_[i];
  }
  constexpr reference front() const noexcept { return data_[0]; }
  constexpr reference back() const noexcept { return data_[size_ - 1]; }
  constexpr pointer data() const noexcept { return data_; }

  constexpr size_type size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

 private:
  T* data_;
  size_type size_;
};

}  // namespace divscrape
