// Atomic whole-file writes: checkpoint saves and periodic results flushes
// are read by other processes (operators, dashboards) while we rewrite
// them, and a crash mid-write must leave the previous version intact. The
// only portable way to get both is write-a-sibling-then-rename; this is
// the one implementation of that pattern.
#pragma once

#include <string>
#include <string_view>

namespace divscrape::util {

/// Writes `contents` to `<path>.tmp`, flushes, and renames over `path`.
/// Returns false (leaving `path` untouched) on any failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view contents);

}  // namespace divscrape::util
