// Atomic whole-file writes: checkpoint saves and periodic results flushes
// are read by other processes (operators, dashboards) while we rewrite
// them, and a crash mid-write must leave the previous version intact. The
// only portable way to get both is write-a-sibling-then-rename; this is
// the one implementation of that pattern.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace divscrape::util {

/// Writes `contents` to `<path>.tmp`, flushes, and renames over `path`.
/// Returns false (leaving `path` untouched) on any failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view contents);

/// Test seam: makes the NEXT write_file_atomic call fail after writing
/// `bytes` of the payload, leaving the torn `<path>.tmp` sibling behind —
/// exactly what a crash mid-commit leaves on disk. One-shot; subsequent
/// calls behave normally. The atomicity tests use this to prove a torn
/// state commit never corrupts the previous checkpoint.
void fail_next_atomic_write_after(std::size_t bytes);

}  // namespace divscrape::util
