// StringInterner: maps strings to dense 32-bit tokens so hot paths can key
// their state by a trivially-hashable integer instead of re-hashing and
// re-copying the same strings millions of times per run.
//
// Design notes:
//   * Tokens are dense and allocation-ordered: the first distinct string
//     gets token 1, the next token 2, ... Token 0 is reserved as "invalid /
//     not stamped" so a zero-initialized LogRecord::ua_token is harmless.
//   * Lookup is an open-addressing probe keyed by the string's FNV-1a hash,
//     so intern() of an already-seen string takes no allocation and no
//     std::string construction (std::unordered_map<std::string, T> cannot
//     be probed with a string_view in C++17).
//   * Thread-compatible, not thread-safe: the intended deployment is one
//     interner per shard / per detector instance, so the hot path never
//     locks. Share across threads only with external synchronization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/state.hpp"

namespace divscrape::util {

class StringInterner {
 public:
  /// Reserved "no token" value; intern() never returns it.
  static constexpr std::uint32_t kInvalidToken = 0;

  StringInterner();

  /// Returns the token for `text`, minting the next dense token on first
  /// sight. The only allocation is the one-time copy of a new string.
  /// Repeating the previous call's string hits a one-entry memo (a single
  /// compare, no hash) — log traffic stamps the same user-agent in bursts.
  [[nodiscard]] std::uint32_t intern(std::string_view text);

  /// The token for `text` if already interned, kInvalidToken otherwise.
  /// Never allocates; lets callers bound an interner's growth.
  [[nodiscard]] std::uint32_t find(std::string_view text) const noexcept;

  /// The string behind a token; empty view for kInvalidToken or tokens
  /// this interner never minted.
  [[nodiscard]] std::string_view lookup(std::uint32_t token) const noexcept;

  /// Number of distinct strings interned (== the highest token).
  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }
  [[nodiscard]] bool empty() const noexcept { return strings_.empty(); }

  /// Forgets everything; previously returned tokens become invalid.
  void clear();

  /// Dumps the token table as the ordered string list (token 1 first).
  /// Tokens are dense and allocation-ordered, so the list alone rebuilds
  /// the identical token assignment — including the probe-table layout,
  /// which depends only on insertion order.
  void save_state(StateWriter& w) const;
  /// Rebuilds from save_state() output by re-interning in token order.
  /// Returns false (leaving the interner cleared) on a malformed blob.
  [[nodiscard]] bool load_state(StateReader& r);

 private:
  struct Slot {
    std::uint32_t hash = 0;
    std::uint32_t token = kInvalidToken;  ///< kInvalidToken marks an empty slot
  };

  void grow();

  std::vector<Slot> table_;        ///< power-of-two open-addressing table
  std::vector<std::string> strings_;  ///< token - 1 -> string
  std::uint32_t last_token_ = kInvalidToken;  ///< one-entry intern() memo
};

}  // namespace divscrape::util
