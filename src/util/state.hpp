// Binary state serialization for warm checkpoints.
//
// Every stateful component (detectors, sessionizer, joint results, the
// interner token tables) dumps itself through a StateWriter and restores
// through a StateReader so a killed tail can resume *warm* — byte-identical
// to an uninterrupted run — instead of forfeiting session windows and
// reputation state (see pipeline/checkpoint.hpp for the contract).
//
// Design notes:
//   * The encoding is explicit little-endian with fixed-width fields, so a
//     blob written on one host loads on another regardless of native byte
//     order or type widths. Doubles travel as their IEEE-754 bit pattern —
//     restore is bit-exact, which the byte-identity resume proof requires.
//   * Readers are bounds-checked with a sticky failure flag: a truncated or
//     corrupted blob turns every subsequent read into a zero and ok() into
//     false, so loaders check once at the end instead of after every field.
//     Loading never throws and never reads out of bounds.
//   * Each component prefixes its section with a magic/version tag
//     (put_tag/check_tag); a version bump fails the load cleanly and the
//     caller falls back to a cold start.
//   * Containers with nondeterministic iteration order (unordered_map) must
//     be serialized in sorted key order by the caller: serialize → restore
//     → serialize must reproduce the identical byte string (the round-trip
//     property the state tests pin).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

namespace divscrape::util {

/// Appends fixed-width little-endian fields to a growing byte buffer.
class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 4);
  }

  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 8);
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 bit pattern; restore is bit-exact (no text round-trip).
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string (also used for nested component blobs).
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte buffer; failures are sticky.
class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_ - 1]);
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(static_cast<unsigned char>(data_[pos_ - 4 + i]))
           << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(static_cast<unsigned char>(data_[pos_ - 8 + i]))
           << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  /// Length-prefixed byte string; a view into the underlying buffer (valid
  /// while the buffer lives). Empty view on failure.
  std::string_view str() {
    const std::uint64_t n = u64();
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return {};
    }
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// Marks the blob invalid (loaders call this on semantic violations —
  /// e.g. a count that contradicts a re-derived one).
  void fail() noexcept { ok_ = false; }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Component section header: magic identifies the component, version its
/// wire format. A mismatch on load is the "cold fallback" signal.
inline void put_tag(StateWriter& w, std::uint32_t magic,
                    std::uint32_t version) {
  w.u32(magic);
  w.u32(version);
}

[[nodiscard]] inline bool check_tag(StateReader& r, std::uint32_t magic,
                                    std::uint32_t version) {
  const std::uint32_t m = r.u32();
  const std::uint32_t v = r.u32();
  if (!r.ok() || m != magic || v != version) {
    r.fail();
    return false;
  }
  return true;
}

// --- key/value helpers for generic containers (stats::Counter) -----------

inline void put_value(StateWriter& w, std::uint32_t v) { w.u32(v); }
inline void put_value(StateWriter& w, std::uint64_t v) { w.u64(v); }
inline void put_value(StateWriter& w, int v) {
  w.i64(static_cast<std::int64_t>(v));
}
inline void put_value(StateWriter& w, const std::string& v) { w.str(v); }

[[nodiscard]] inline bool get_value(StateReader& r, std::uint32_t& v) {
  v = r.u32();
  return r.ok();
}
[[nodiscard]] inline bool get_value(StateReader& r, std::uint64_t& v) {
  v = r.u64();
  return r.ok();
}
[[nodiscard]] inline bool get_value(StateReader& r, int& v) {
  v = static_cast<int>(r.i64());
  return r.ok();
}
[[nodiscard]] inline bool get_value(StateReader& r, std::string& v) {
  v = std::string(r.str());
  return r.ok();
}

// --- base64 (state blobs embedded in JSON checkpoints) --------------------

/// Standard base64 with padding; the alphabet contains no JSON-escapable
/// characters, so encoded blobs embed in JSON strings verbatim.
[[nodiscard]] std::string base64_encode(std::string_view bytes);

/// Strict decode of what base64_encode produces; nullopt on any character
/// outside the alphabet, bad length, or bad padding.
[[nodiscard]] std::optional<std::string> base64_decode(std::string_view text);

}  // namespace divscrape::util
