#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace divscrape::util {

namespace {
// -1 = no injected fault; >= 0 = fail the next call after this many bytes.
long long g_fail_after = -1;
}  // namespace

void fail_next_atomic_write_after(std::size_t bytes) {
  g_fail_after = static_cast<long long>(bytes);
}

bool write_file_atomic(const std::string& path, std::string_view contents) {
  const long long fail_after = g_fail_after;
  g_fail_after = -1;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (fail_after >= 0 &&
      static_cast<std::size_t>(fail_after) < contents.size()) {
    // Injected crash: write the torn prefix, then fail before the rename —
    // the on-disk picture a real mid-commit crash leaves behind.
    std::size_t left = static_cast<std::size_t>(fail_after);
    const char* p = contents.data();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) break;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(fd);
    return false;
  }
  const char* p = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: journaled filesystems may commit the rename ahead
  // of the data blocks, and a truncated checkpoint after power loss is the
  // exact failure this function exists to prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace divscrape::util
