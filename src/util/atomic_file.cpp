#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace divscrape::util {

bool write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: journaled filesystems may commit the rename ahead
  // of the data blocks, and a truncated checkpoint after power loss is the
  // exact failure this function exists to prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return false;
  }
  if (::close(fd) != 0) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace divscrape::util
