// Shared hashing primitives: a proper boost-style hash_combine for composite
// keys (the seed's `h1 ^ (h2 << 1)` folded most of h2's entropy onto itself)
// and the 32-bit FNV-1a string hash used by the interner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace divscrape::util {

/// Boost-style combine: mixes `value` into `seed` with the 64-bit golden
/// ratio so that (a, b) and (b, a) hash differently and single-bit changes
/// in either input avalanche across the result.
[[nodiscard]] inline std::size_t hash_combine(std::size_t seed,
                                              std::size_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// 32-bit FNV-1a over a byte string. Cheap, decent distribution, and
/// stable across platforms (unlike std::hash<std::string>).
[[nodiscard]] inline std::uint32_t fnv1a32(std::string_view text) noexcept {
  std::uint32_t h = 2166136261u;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// 64-bit FNV-1a, for content signatures that must survive serialization
/// (the tailer's file-prefix signature persisted in checkpoints).
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace divscrape::util
