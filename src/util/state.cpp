#include "util/state.hpp"

namespace divscrape::util {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// 0..63 for alphabet characters, 64 for '=', 255 otherwise.
std::uint8_t decode_one(char c) noexcept {
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint8_t>(c - 'A');
  if (c >= 'a' && c <= 'z') return static_cast<std::uint8_t>(c - 'a' + 26);
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0' + 52);
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return 64;
  return 255;
}
}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t(std::uint8_t(bytes[i])) << 16) |
                            (std::uint32_t(std::uint8_t(bytes[i + 1])) << 8) |
                            std::uint32_t(std::uint8_t(bytes[i + 2]));
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t v = std::uint32_t(std::uint8_t(bytes[i])) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t v = (std::uint32_t(std::uint8_t(bytes[i])) << 16) |
                            (std::uint32_t(std::uint8_t(bytes[i + 1])) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::string> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint8_t q[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      q[j] = decode_one(text[i + j]);
      if (q[j] == 255) return std::nullopt;
      if (q[j] == 64) {
        // '=' is only legal in the last group's final one or two slots.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++pad;
        q[j] = 0;
      } else if (pad > 0) {
        return std::nullopt;  // data after padding
      }
    }
    const std::uint32_t v = (std::uint32_t(q[0]) << 18) |
                            (std::uint32_t(q[1]) << 12) |
                            (std::uint32_t(q[2]) << 6) | std::uint32_t(q[3]);
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xFF));
  }
  return out;
}

}  // namespace divscrape::util
