// Process-memory sampling for soak watermarks and bench telemetry.
//
// peak RSS (getrusage ru_maxrss) is a lifetime high-water mark and cannot
// detect mid-run growth or post-catch-up shrink; the soak harness needs the
// *current* resident set. On Linux that is /proc/self/statm (resident pages
// times the page size); elsewhere we fall back to the lifetime peak, which
// keeps watermark checks conservative rather than silently disabled.
#pragma once

#include <cstdint>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace divscrape::util {

/// Lifetime peak resident set size in KiB (ru_maxrss; bytes on macOS).
inline std::int64_t peak_rss_kb() noexcept {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;
#else
  return usage.ru_maxrss;
#endif
}

/// Current resident set size in KiB, sampled from /proc/self/statm.
/// Falls back to peak_rss_kb() where /proc is unavailable.
inline std::int64_t current_rss_kb() noexcept {
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    long total_pages = 0, resident_pages = 0;
    const int n = std::fscanf(statm, "%ld %ld", &total_pages, &resident_pages);
    std::fclose(statm);
    if (n == 2 && resident_pages >= 0) {
      const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
      return static_cast<std::int64_t>(resident_pages) *
             (page_kb > 0 ? page_kb : 4);
    }
  }
  return peak_rss_kb();
}

}  // namespace divscrape::util
