#include "util/interner.hpp"

#include "util/hash.hpp"

namespace divscrape::util {

namespace {
constexpr std::size_t kInitialSlots = 16;  // power of two
}  // namespace

StringInterner::StringInterner() = default;

std::uint32_t StringInterner::intern(std::string_view text) {
  // Consecutive interns of the same string (bursty user agents, repeated
  // path templates) skip the hash entirely: one length check + memcmp.
  if (last_token_ != kInvalidToken && strings_[last_token_ - 1] == text) {
    return last_token_;
  }

  // The table is allocated lazily on first intern (Sessions embed an
  // interner each; empty ones must stay byte-cheap) and grows at ~70%
  // load so probe chains stay short.
  if (table_.empty()) {
    table_.resize(kInitialSlots);
  } else if ((strings_.size() + 1) * 10 >= table_.size() * 7) {
    grow();
  }

  const std::uint32_t h = fnv1a32(text);
  const std::size_t mask = table_.size() - 1;
  std::size_t i = h & mask;
  for (;;) {
    Slot& slot = table_[i];
    if (slot.token == kInvalidToken) {
      strings_.emplace_back(text);
      slot.hash = h;
      slot.token = static_cast<std::uint32_t>(strings_.size());
      last_token_ = slot.token;
      return slot.token;
    }
    if (slot.hash == h && strings_[slot.token - 1] == text) {
      last_token_ = slot.token;
      return slot.token;
    }
    i = (i + 1) & mask;
  }
}

std::uint32_t StringInterner::find(std::string_view text) const noexcept {
  if (table_.empty()) return kInvalidToken;
  const std::uint32_t h = fnv1a32(text);
  const std::size_t mask = table_.size() - 1;
  std::size_t i = h & mask;
  for (;;) {
    const Slot& slot = table_[i];
    if (slot.token == kInvalidToken) return kInvalidToken;
    if (slot.hash == h && strings_[slot.token - 1] == text) return slot.token;
    i = (i + 1) & mask;
  }
}

std::string_view StringInterner::lookup(std::uint32_t token) const noexcept {
  if (token == kInvalidToken || token > strings_.size()) return {};
  return strings_[token - 1];
}

void StringInterner::clear() {
  strings_.clear();
  table_.clear();
  last_token_ = kInvalidToken;
}

void StringInterner::save_state(StateWriter& w) const {
  put_tag(w, 0x494E544Eu /* "INTN" */, 1);
  w.u64(strings_.size());
  for (const std::string& s : strings_) w.str(s);
}

bool StringInterner::load_state(StateReader& r) {
  clear();
  if (!check_tag(r, 0x494E544Eu, 1)) return false;
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string_view s = r.str();
    if (!r.ok()) {
      clear();
      return false;
    }
    // A duplicate string in the blob would shift every later token; reject.
    if (intern(s) != i + 1) {
      clear();
      r.fail();
      return false;
    }
  }
  return true;
}

void StringInterner::grow() {
  std::vector<Slot> bigger(table_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  for (const Slot& slot : table_) {
    if (slot.token == kInvalidToken) continue;
    std::size_t i = slot.hash & mask;
    while (bigger[i].token != kInvalidToken) i = (i + 1) & mask;
    bigger[i] = slot;
  }
  table_.swap(bigger);
}

}  // namespace divscrape::util
