#include "traffic/stream_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace divscrape::traffic {

StreamWriter::StreamWriter(std::string path, FaultPlan plan,
                           std::size_t batch_lines)
    : path_(std::move(path)),
      plan_(plan),
      rng_(plan.seed),
      batch_lines_(batch_lines) {
  open_fresh();
}

StreamWriter::~StreamWriter() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

void StreamWriter::open_fresh() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
}

void StreamWriter::raw_write(const char* data, std::size_t size) {
  while (size > 0 && fd_ >= 0) {
    const ssize_t n = plan_.write_fn ? plan_.write_fn(fd_, data, size)
                                     : ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Disk-level failure: drop the rest, like a real logger under ENOSPC,
      // but count it so callers (and the soak harness) can account for it.
      ++write_errors_;
      last_errno_ = errno;
      dropped_bytes_ += size;
      return;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
    bytes_ += static_cast<std::uint64_t>(n);
  }
}

void StreamWriter::flush() {
  if (pending_ends_.empty()) return;
  if (plan_.write_fn) {
    // A seam is installed: route every byte through it, line by line, so
    // scripted short-write/EINTR/ENOSPC faults see the same stream the
    // kernel would (one raw_write call per queued line, as the unbatched
    // mode would have issued).
    std::size_t start = 0;
    for (const std::size_t end : pending_ends_) {
      raw_write(pending_buf_.data() + start, end - start);
      start = end;
    }
  } else {
    // The pending lines are already contiguous, so the whole burst is one
    // write(2) (raw_write retries EINTR/short writes; a disk-level failure
    // drops the rest of the burst into dropped_bytes_).
    raw_write(pending_buf_.data(), pending_buf_.size());
  }
  pending_buf_.clear();
  pending_ends_.clear();
}

void StreamWriter::write_bytes(std::string_view bytes) {
  flush();  // explicit byte-level controls never reorder past queued lines
  raw_write(bytes.data(), bytes.size());
}

void StreamWriter::write_line(std::string_view line, std::string_view ending) {
  flush();
  raw_write(line.data(), line.size());
  raw_write(ending.data(), ending.size());
}

void StreamWriter::write(const httplog::LogRecord& record) {
  ++records_;
  const bool crlf = plan_.crlf_every != 0 && records_ % plan_.crlf_every == 0;
  const bool torn = plan_.tear_every != 0 && records_ % plan_.tear_every == 0;
  if (batch_lines_ > 0 && !torn) {
    // Encode straight into the contiguous pending buffer; no per-record
    // string materializes at all on the batched hot path.
    formatter_.append(record, pending_buf_);
    pending_buf_ += crlf ? "\r\n" : "\n";
    pending_ends_.push_back(pending_buf_.size());
    if (pending_ends_.size() >= batch_lines_) flush();
  } else {
    wire_.clear();
    formatter_.append(record, wire_);
    wire_ += crlf ? "\r\n" : "\n";
    if (torn && wire_.size() >= 2) {
      // Split anywhere strictly inside the line, CRLF interior included.
      const auto cut = static_cast<std::size_t>(
          rng_.uniform_int(1, static_cast<std::int64_t>(wire_.size()) - 1));
      write_bytes(std::string_view(wire_).substr(0, cut));
      write_bytes(std::string_view(wire_).substr(cut));
    } else {
      raw_write(wire_.data(), wire_.size());
    }
  }
  if (plan_.rotate_every != 0 && records_ % plan_.rotate_every == 0) {
    rotate(path_ + "." + std::to_string(++rotation_count_));
  }
  if (plan_.truncate_every != 0 && records_ % plan_.truncate_every == 0) {
    truncate_restart();
  }
}

std::size_t StreamWriter::pump(Scenario& scenario, std::size_t max_records,
                               double time_scale) {
  std::size_t written = 0;
  httplog::LogRecord record;
  while (written < max_records && scenario.next(record)) {
    pacer_.wait_until(record.time, time_scale);
    write(record);
    ++written;
  }
  // A pump burst ends at a poll boundary for the concurrent reader, so
  // everything written must actually be visible.
  flush();
  return written;
}

void StreamWriter::rotate(const std::string& rotated_path) {
  flush();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::rename(path_.c_str(), rotated_path.c_str());
  open_fresh();
}

void StreamWriter::truncate_restart() {
  // Reopen with trunc on the same path: contents drop to zero length but
  // the inode is preserved, which is exactly the case the tailer must
  // distinguish from rotation.
  flush();
  open_fresh();
}

}  // namespace divscrape::traffic
