#include "traffic/stream_writer.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "httplog/clf.hpp"

namespace divscrape::traffic {

StreamWriter::StreamWriter(std::string path, FaultPlan plan,
                           std::size_t batch_lines)
    : path_(std::move(path)),
      plan_(plan),
      rng_(plan.seed),
      batch_lines_(batch_lines) {
  open_fresh();
}

StreamWriter::~StreamWriter() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

void StreamWriter::open_fresh() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
}

void StreamWriter::raw_write(const char* data, std::size_t size) {
  while (size > 0 && fd_ >= 0) {
    const ssize_t n = plan_.write_fn ? plan_.write_fn(fd_, data, size)
                                     : ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Disk-level failure: drop the rest, like a real logger under ENOSPC,
      // but count it so callers (and the soak harness) can account for it.
      ++write_errors_;
      last_errno_ = errno;
      dropped_bytes_ += size;
      return;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
    bytes_ += static_cast<std::uint64_t>(n);
  }
}

void StreamWriter::flush() {
  if (pending_.empty()) return;
  if (plan_.write_fn) {
    // A seam is installed: route every byte through it, line by line, so
    // scripted short-write/EINTR/ENOSPC faults see the same stream the
    // kernel would.
    std::vector<std::string> lines;
    lines.swap(pending_);
    for (const auto& line : lines) raw_write(line.data(), line.size());
    return;
  }
  // One writev per IOV_MAX-sized slice: each queued line is its own iovec,
  // so the kernel copies straight from the encoded strings with no
  // concatenation pass.
  static constexpr std::size_t kMaxIov = 1024;
  std::vector<iovec> iov;
  iov.reserve(pending_.size() < kMaxIov ? pending_.size() : kMaxIov);
  std::size_t start = 0;
  while (start < pending_.size() && fd_ >= 0) {
    iov.clear();
    std::size_t slice_bytes = 0;
    const std::size_t end =
        std::min(pending_.size(), start + kMaxIov);
    for (std::size_t i = start; i < end; ++i) {
      iov.push_back({const_cast<char*>(pending_[i].data()),
                     pending_[i].size()});
      slice_bytes += pending_[i].size();
    }
    const ssize_t n = ::writev(fd_, iov.data(), static_cast<int>(iov.size()));
    if (n < 0) {
      if (errno == EINTR) continue;
      ++write_errors_;
      last_errno_ = errno;
      for (std::size_t i = start; i < pending_.size(); ++i)
        dropped_bytes_ += pending_[i].size();
      break;  // disk-level failure: drop the rest
    }
    bytes_ += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) == slice_bytes) {
      start = end;
      continue;
    }
    // Partial writev: finish the straddled line with the write() loop,
    // then resume vectored writes from the next whole line.
    std::size_t written = static_cast<std::size_t>(n);
    std::size_t i = start;
    while (written >= pending_[i].size()) {
      written -= pending_[i].size();
      ++i;
    }
    const std::string& straddled = pending_[i];
    const char* rest = straddled.data() + written;
    const std::size_t rest_size = straddled.size() - written;
    raw_write(rest, rest_size);
    start = i + 1;
  }
  pending_.clear();
}

void StreamWriter::write_bytes(std::string_view bytes) {
  flush();  // explicit byte-level controls never reorder past queued lines
  raw_write(bytes.data(), bytes.size());
}

void StreamWriter::write_line(std::string_view line, std::string_view ending) {
  flush();
  raw_write(line.data(), line.size());
  raw_write(ending.data(), ending.size());
}

void StreamWriter::write(const httplog::LogRecord& record) {
  ++records_;
  std::string wire = httplog::format_clf(record);
  const bool crlf = plan_.crlf_every != 0 && records_ % plan_.crlf_every == 0;
  wire += crlf ? "\r\n" : "\n";
  const bool torn = plan_.tear_every != 0 && records_ % plan_.tear_every == 0;
  if (torn && wire.size() >= 2) {
    // Split anywhere strictly inside the line, CRLF interior included.
    const auto cut = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
    write_bytes(std::string_view(wire).substr(0, cut));
    write_bytes(std::string_view(wire).substr(cut));
  } else if (batch_lines_ > 0) {
    pending_.push_back(std::move(wire));
    if (pending_.size() >= batch_lines_) flush();
  } else {
    raw_write(wire.data(), wire.size());
  }
  if (plan_.rotate_every != 0 && records_ % plan_.rotate_every == 0) {
    rotate(path_ + "." + std::to_string(++rotation_count_));
  }
  if (plan_.truncate_every != 0 && records_ % plan_.truncate_every == 0) {
    truncate_restart();
  }
}

std::size_t StreamWriter::pump(Scenario& scenario, std::size_t max_records,
                               double time_scale) {
  std::size_t written = 0;
  httplog::LogRecord record;
  while (written < max_records && scenario.next(record)) {
    pacer_.wait_until(record.time, time_scale);
    write(record);
    ++written;
  }
  // A pump burst ends at a poll boundary for the concurrent reader, so
  // everything written must actually be visible.
  flush();
  return written;
}

void StreamWriter::rotate(const std::string& rotated_path) {
  flush();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::rename(path_.c_str(), rotated_path.c_str());
  open_fresh();
}

void StreamWriter::truncate_restart() {
  // Reopen with trunc on the same path: contents drop to zero length but
  // the inode is preserved, which is exactly the case the tailer must
  // distinguish from rotation.
  flush();
  open_fresh();
}

}  // namespace divscrape::traffic
