#include "traffic/stream_writer.hpp"

#include <cstdio>

#include "httplog/clf.hpp"

namespace divscrape::traffic {

StreamWriter::StreamWriter(std::string path, FaultPlan plan)
    : path_(std::move(path)), plan_(plan), rng_(plan.seed) {
  open_fresh();
}

StreamWriter::~StreamWriter() = default;

void StreamWriter::open_fresh() {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::trunc | std::ios::binary);
}

void StreamWriter::write_bytes(std::string_view bytes) {
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  bytes_ += bytes.size();
}

void StreamWriter::write_line(std::string_view line, std::string_view ending) {
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.write(ending.data(), static_cast<std::streamsize>(ending.size()));
  out_.flush();
  bytes_ += line.size() + ending.size();
}

void StreamWriter::write(const httplog::LogRecord& record) {
  ++records_;
  std::string wire = httplog::format_clf(record);
  const bool crlf = plan_.crlf_every != 0 && records_ % plan_.crlf_every == 0;
  wire += crlf ? "\r\n" : "\n";
  const bool torn = plan_.tear_every != 0 && records_ % plan_.tear_every == 0;
  if (torn && wire.size() >= 2) {
    // Split anywhere strictly inside the line, CRLF interior included.
    const auto cut = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
    write_bytes(std::string_view(wire).substr(0, cut));
    write_bytes(std::string_view(wire).substr(cut));
  } else {
    write_bytes(wire);
  }
  if (plan_.rotate_every != 0 && records_ % plan_.rotate_every == 0) {
    rotate(path_ + "." + std::to_string(++rotation_count_));
  }
  if (plan_.truncate_every != 0 && records_ % plan_.truncate_every == 0) {
    truncate_restart();
  }
}

std::size_t StreamWriter::pump(Scenario& scenario, std::size_t max_records,
                               double time_scale) {
  std::size_t written = 0;
  httplog::LogRecord record;
  while (written < max_records && scenario.next(record)) {
    pacer_.wait_until(record.time, time_scale);
    write(record);
    ++written;
  }
  return written;
}

void StreamWriter::rotate(const std::string& rotated_path) {
  out_.close();
  std::rename(path_.c_str(), rotated_path.c_str());
  open_fresh();
}

void StreamWriter::truncate_restart() {
  // Reopen with trunc on the same path: contents drop to zero length but
  // the inode is preserved, which is exactly the case the tailer must
  // distinguish from rotation.
  open_fresh();
}

}  // namespace divscrape::traffic
