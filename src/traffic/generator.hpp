// The traffic generator: merges all actors' emissions into one globally
// time-ordered record stream, exactly as concurrent clients interleave in a
// shared access log.
//
// Implementation: an event min-heap over (next-step time, source). Sources
// are either live actors or arrival processes; an arrival process fires at
// Poisson(ish) instants and spawns a fresh actor (how human sessions come
// and go without pre-materializing hundreds of thousands of objects).
//
// The generator is a pull-style stream (`next()`), so multi-million-record
// scenarios run in bounded memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "httplog/record.hpp"
#include "traffic/actor.hpp"
#include "util/interner.hpp"

namespace divscrape::traffic {

/// A source of new actors over time.
struct ArrivalProcess {
  /// Returns the next arrival instant strictly after `now`, or nullopt when
  /// the process is exhausted.
  std::function<std::optional<httplog::Timestamp>(httplog::Timestamp now)>
      next_arrival;
  /// Creates the actor arriving at `at`.
  std::function<std::unique_ptr<Actor>(httplog::Timestamp at)> make_actor;
};

/// Pull-based merged traffic stream.
class TrafficGenerator {
 public:
  /// Records with time >= `end_time` are suppressed and their actors
  /// retired; the stream ends when no source has pending work.
  explicit TrafficGenerator(httplog::Timestamp end_time);

  /// Registers a live actor whose first step happens at `start`.
  void add_actor(std::unique_ptr<Actor> actor, httplog::Timestamp start);

  /// Registers an arrival process; its first arrival is computed from
  /// `from`.
  void add_arrivals(ArrivalProcess process, httplog::Timestamp from);

  /// Produces the next record in global time order; false when exhausted.
  /// Every emitted record is stamped with an interned `ua_token` so the
  /// whole detection stack downstream keys its per-client state without
  /// hashing the UA string again. The token is cached per actor and only
  /// re-interned when the actor's ua_epoch() moves (UA rotation), so the
  /// steady-state cost is an integer compare instead of a string probe.
  [[nodiscard]] bool next(httplog::LogRecord& out);

  /// Drains the whole stream into a vector (tests / small scenarios only).
  [[nodiscard]] std::vector<httplog::LogRecord> drain();

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::size_t live_actors() const noexcept {
    return live_actors_;
  }

 private:
  struct Event {
    httplog::Timestamp time;
    // Exactly one of the two below is active.
    std::size_t actor_idx = SIZE_MAX;    ///< index into actors_
    std::size_t arrival_idx = SIZE_MAX;  ///< index into arrivals_

    // Min-heap by time: std::push_heap builds a max-heap, so invert.
    friend bool operator<(const Event& a, const Event& b) noexcept {
      return a.time > b.time;
    }
  };

  void push_event(Event e);

  /// Cached interned token of an actor's current UA; epoch mirrors the
  /// actor's ua_epoch() at caching time. token 0 = not cached yet.
  struct UaTokenCache {
    std::uint32_t token = 0;
    std::uint32_t epoch = 0;
  };

  httplog::Timestamp end_time_;
  std::vector<std::unique_ptr<Actor>> actors_;   ///< null after retirement
  std::vector<UaTokenCache> ua_cache_;           ///< parallel to actors_
  std::vector<ArrivalProcess> arrivals_;
  std::vector<Event> heap_;
  util::StringInterner ua_tokens_;  ///< mints LogRecord::ua_token stamps
  std::uint64_t emitted_ = 0;
  std::size_t live_actors_ = 0;
};

}  // namespace divscrape::traffic
