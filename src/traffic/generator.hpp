// The traffic generator: merges all actors' emissions into one globally
// time-ordered record stream, exactly as concurrent clients interleave in a
// shared access log.
//
// Implementation: an event min-heap over (next-step time, source). Sources
// are either live actors or arrival processes; an arrival process fires at
// Poisson(ish) instants and spawns a fresh actor (how human sessions come
// and go without pre-materializing hundreds of thousands of objects).
//
// The generator is a pull-style stream (`next()`), so multi-million-record
// scenarios run in bounded memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "httplog/record.hpp"
#include "traffic/actor.hpp"
#include "util/interner.hpp"

namespace divscrape::traffic {

/// A source of new actors over time.
struct ArrivalProcess {
  /// Returns the next arrival instant strictly after `now`, or nullopt when
  /// the process is exhausted.
  std::function<std::optional<httplog::Timestamp>(httplog::Timestamp now)>
      next_arrival;
  /// Creates the actor arriving at `at`.
  std::function<std::unique_ptr<Actor>(httplog::Timestamp at)> make_actor;
  /// Vhost tag stamped on every record of every actor this process spawns.
  std::uint32_t vhost = 0;
};

/// Pull-based merged traffic stream.
class TrafficGenerator {
 public:
  /// Records with time >= `end_time` are suppressed and their actors
  /// retired; the stream ends when no source has pending work.
  explicit TrafficGenerator(httplog::Timestamp end_time);

  /// Registers a live actor whose first step happens at `start`. Records it
  /// emits are stamped with `vhost`.
  void add_actor(std::unique_ptr<Actor> actor, httplog::Timestamp start,
                 std::uint32_t vhost = 0);

  /// Registers an arrival process; its first arrival is computed from
  /// `from`.
  void add_arrivals(ArrivalProcess process, httplog::Timestamp from);

  /// Callback that (re)constructs a deferred actor from its cookie. Must be
  /// set before the first lazy event fires. The vhost tag of a lazy actor's
  /// records comes back alongside the actor.
  struct Materialized {
    std::unique_ptr<Actor> actor;
    std::uint32_t vhost = 0;
  };
  using Materializer = std::function<Materialized(std::uint64_t cookie)>;
  void set_materializer(Materializer fn) { materializer_ = std::move(fn); }

  /// Registers a *deferred* actor: only (cookie, start) are stored now; the
  /// actor object is built by the materializer when its start event fires
  /// and retired (slot recycled) as soon as it has no further event. Pop
  /// order — and therefore the output stream — is byte-identical to
  /// add_actor() with the equivalent actor, because the event heap orders
  /// by time alone and slot identity is never part of any comparison.
  void add_lazy_actor(std::uint64_t cookie, httplog::Timestamp start);

  /// Produces the next record in global time order; false when exhausted.
  /// Every emitted record is stamped with an interned `ua_token` so the
  /// whole detection stack downstream keys its per-client state without
  /// hashing the UA string again. The token is cached per actor and only
  /// re-interned when the actor's ua_epoch() moves (UA rotation), so the
  /// steady-state cost is an integer compare instead of a string probe.
  [[nodiscard]] bool next(httplog::LogRecord& out);

  /// Drains the whole stream into a vector (tests / small scenarios only).
  [[nodiscard]] std::vector<httplog::LogRecord> drain();

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::size_t live_actors() const noexcept {
    return live_actors_;
  }
  /// Actors ever placed in a slot (arrival spawns + adds + materializations).
  [[nodiscard]] std::uint64_t actors_created() const noexcept {
    return actors_created_;
  }
  /// High-water mark of concurrently-live actors — the number that stays
  /// flat under lazy materialization no matter the population size.
  [[nodiscard]] std::size_t peak_live_actors() const noexcept {
    return peak_live_;
  }
  /// Deferred registrations not yet materialized.
  [[nodiscard]] std::size_t pending_lazy() const noexcept {
    return pending_lazy_;
  }

 private:
  /// Flags a lazy event: actor_idx = kLazyBit | index into lazy_cookies_.
  static constexpr std::size_t kLazyBit = ~(SIZE_MAX >> 1);

  struct Event {
    httplog::Timestamp time;
    // Exactly one of the two below is active.
    std::size_t actor_idx = SIZE_MAX;    ///< index into actors_, or lazy
    std::size_t arrival_idx = SIZE_MAX;  ///< index into arrivals_

    // Min-heap by time ONLY: payload indices never participate, so slot
    // reuse and lazy materialization cannot perturb pop order.
    friend bool operator<(const Event& a, const Event& b) noexcept {
      return a.time > b.time;
    }
  };

  void push_event(Event e);
  /// Places an actor in a pooled slot (free-list reuse) and returns it.
  std::size_t place_actor(std::unique_ptr<Actor> actor, std::uint32_t vhost);

  /// Cached interned token of an actor's current UA; epoch mirrors the
  /// actor's ua_epoch() at caching time. token 0 = not cached yet.
  struct UaTokenCache {
    std::uint32_t token = 0;
    std::uint32_t epoch = 0;
  };

  httplog::Timestamp end_time_;
  std::vector<std::unique_ptr<Actor>> actors_;   ///< null after retirement
  std::vector<UaTokenCache> ua_cache_;           ///< parallel to actors_
  std::vector<std::uint32_t> vhost_of_;          ///< parallel to actors_
  std::vector<std::size_t> free_slots_;          ///< retired slot pool
  std::vector<std::uint64_t> lazy_cookies_;      ///< deferred registrations
  Materializer materializer_;
  std::vector<ArrivalProcess> arrivals_;
  std::vector<Event> heap_;
  util::StringInterner ua_tokens_;  ///< mints LogRecord::ua_token stamps
  std::uint64_t emitted_ = 0;
  std::size_t live_actors_ = 0;
  std::uint64_t actors_created_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t pending_lazy_ = 0;
};

}  // namespace divscrape::traffic
