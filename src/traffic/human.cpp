#include "traffic/human.hpp"

#include <algorithm>

namespace divscrape::traffic {

namespace {

constexpr std::string_view kSiteOrigin = "https://shop.example.com";
constexpr std::string_view kSearchEngineReferer = "https://www.google.com/";

}  // namespace

HumanActor::HumanActor(const SiteModel& site, const HumanConfig& config,
                       httplog::Ipv4 ip, std::string user_agent,
                       stats::Rng rng, std::uint32_t actor_id)
    : site_(&site),
      config_(config),
      ip_(ip),
      ua_(std::move(user_agent)),
      rng_(rng),
      actor_id_(actor_id) {
  pages_left_ = static_cast<int>(
      rng_.geometric(1.0 / std::max(1.0, config_.pages_mean)));
  warm_cache_ = rng_.bernoulli(config_.revisit_p);
  // Sessions land on home or directly on a search (deep link from a search
  // engine results page).
  next_page_ = rng_.bernoulli(0.55) ? Endpoint::kSearch : Endpoint::kHome;
}

void HumanActor::plan_page() {
  // Funnel transition from the current page type.
  const double u = rng_.uniform();
  if (rng_.bernoulli(config_.dead_link_p)) {
    next_page_ = Endpoint::kDeadLink;
    next_item_ = static_cast<std::size_t>(rng_.uniform_int(0, 5000));
    return;
  }
  switch (next_page_) {
    case Endpoint::kHome:
      next_page_ = u < 0.7 ? Endpoint::kSearch
                 : u < 0.85 ? Endpoint::kHelp
                            : Endpoint::kAbout;
      break;
    case Endpoint::kSearch:
      if (u < 0.62) {
        next_page_ = Endpoint::kOffer;
        next_item_ = site_->sample_popular_offer(rng_);
      } else {
        next_page_ = Endpoint::kSearch;  // refine the query
      }
      break;
    case Endpoint::kOffer:
      if (u < config_.booking_p) {
        next_page_ = Endpoint::kBook;  // keeps next_item_ (the offer)
      } else if (u < 0.55) {
        next_page_ = Endpoint::kOffer;  // compare another fare
        next_item_ = site_->sample_popular_offer(rng_);
      } else {
        next_page_ = Endpoint::kSearch;
      }
      break;
    case Endpoint::kBook:
      next_page_ = Endpoint::kLogin;
      break;
    case Endpoint::kLogin:
      logged_in_ = true;
      next_page_ = Endpoint::kAccount;
      break;
    default:
      next_page_ = rng_.bernoulli(0.8) ? Endpoint::kSearch : Endpoint::kHome;
      break;
  }
}

StepResult HumanActor::step(httplog::Timestamp now, httplog::LogRecord& out) {
  out = httplog::LogRecord{};
  out.ip = ip_;
  out.time = now;
  out.user_agent = ua_;
  out.truth = httplog::Truth::kBenign;
  out.actor_id = actor_id_;
  out.actor_class = static_cast<std::uint8_t>(ActorClass::kHuman);

  if (!pending_.empty()) {
    // Asset fetch belonging to the current page.
    const Pending p = pending_.back();
    pending_.pop_back();
    out.target = site_->target(p.endpoint, p.item, rng_);
    AccessFlags flags;
    flags.conditional = warm_cache_;
    const Response resp = site_->respond(p.endpoint, flags, rng_);
    out.status = resp.status;
    out.bytes = resp.bytes;
    out.referer = std::string(kSiteOrigin) + current_page_;

    StepResult result;
    result.emitted = true;
    if (!pending_.empty()) {
      result.next = now + httplog::seconds_to_micros(
                              rng_.exponential(config_.asset_gap_s));
    } else if (pages_left_ > 0) {
      result.next =
          now + httplog::seconds_to_micros(
                    stats::LogNormalDistribution(config_.think_median_s,
                                                 config_.think_sigma)
                        .sample(rng_));
    }
    return result;
  }

  // Page view.
  const Endpoint page = next_page_;
  out.target = site_->target(page, next_item_, rng_);
  AccessFlags flags;
  flags.logged_in = logged_in_;
  const Response resp = site_->respond(page, flags, rng_);
  out.status = resp.status;
  out.bytes = resp.bytes;
  if (first_page_) {
    out.referer = rng_.bernoulli(config_.external_referer_p)
                      ? std::string(kSearchEngineReferer)
                      : "-";
    first_page_ = false;
  } else {
    out.referer = std::string(kSiteOrigin) + current_page_;
  }
  current_page_ = std::string(out.path());
  --pages_left_;

  // Queue this page's asset fetches (redirects render no assets).
  if (resp.status == 200 && page != Endpoint::kDeadLink) {
    const auto assets = rng_.poisson(config_.assets_per_page_mean);
    for (std::int64_t i = 0; i < assets; ++i) {
      pending_.push_back(
          {Endpoint::kAsset,
           static_cast<std::size_t>(
               rng_.uniform_int(0, static_cast<std::int64_t>(
                                       site_->asset_count()) -
                                       1))});
    }
  }
  plan_page();

  StepResult result;
  result.emitted = true;
  if (!pending_.empty()) {
    result.next = now + httplog::seconds_to_micros(
                            rng_.exponential(config_.asset_gap_s));
  } else if (pages_left_ > 0) {
    result.next = now + httplog::seconds_to_micros(
                            stats::LogNormalDistribution(
                                config_.think_median_s, config_.think_sigma)
                                .sample(rng_));
  }
  return result;
}

}  // namespace divscrape::traffic
