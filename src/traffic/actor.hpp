// Actor taxonomy and the simulation interface every traffic source
// implements.
//
// The simulated population replaces the paper's (proprietary) Amadeus
// production traffic. Each actor is a client with its own behaviour model;
// the generator interleaves their emissions into one time-ordered stream,
// exactly like requests interleave in a shared access log.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "httplog/record.hpp"

namespace divscrape::traffic {

/// Fine-grained actor classes. The first three are benign; the scraper
/// family members are behavioural archetypes chosen to exercise different
/// detector capabilities (see DESIGN.md section 2).
enum class ActorClass : std::uint8_t {
  kHuman,             ///< interactive browser user
  kSearchCrawler,     ///< declared, robots.txt-respecting crawler
  kMonitor,           ///< uptime/monitoring probe
  kScraperAggressive, ///< high-rate fare-scraping botnet member
  kScraperStealth,    ///< low-and-slow scraper behind residential proxies
  kScraperApi,        ///< availability-API poller (many 204s)
  kScraperMalformed,  ///< buggy scraper emitting bad requests (400s)
  kScraperCaching,    ///< conditional-GET scraper (many 304s)
};

[[nodiscard]] std::string_view to_string(ActorClass c) noexcept;

/// Ground-truth mapping used to label emitted records.
[[nodiscard]] httplog::Truth truth_of(ActorClass c) noexcept;

[[nodiscard]] constexpr bool is_scraper(ActorClass c) noexcept {
  return c >= ActorClass::kScraperAggressive;
}

/// Outcome of one actor step.
struct StepResult {
  /// Whether `out` was filled with a record for this step.
  bool emitted = false;
  /// Absolute time of the actor's next step; nullopt when the actor is done
  /// (it is then destroyed by the generator).
  std::optional<httplog::Timestamp> next;
};

/// A traffic source. The generator calls step() when the actor's scheduled
/// time arrives; the actor fills at most one record (timestamped `now`) and
/// schedules its next step.
class Actor {
 public:
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] virtual ActorClass actor_class() const noexcept = 0;

  /// Performs the step due at `now`.
  [[nodiscard]] virtual StepResult step(httplog::Timestamp now,
                                        httplog::LogRecord& out) = 0;

  /// Monotonic counter of User-Agent identity changes. Actors whose UA is
  /// fixed for life keep the default 0; actors that rotate their UA (e.g.
  /// per-session rotation) must bump it on every change. The generator
  /// caches the interned ua_token per actor and only re-probes the interner
  /// when this value moves — the per-record interner probe was the single
  /// largest cost of generation.
  [[nodiscard]] virtual std::uint32_t ua_epoch() const noexcept { return 0; }

 protected:
  Actor() = default;
};

}  // namespace divscrape::traffic
