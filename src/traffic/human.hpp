// Interactive human visitors.
//
// A human session is a browser-driven page-view sequence over the site's
// navigation funnel: land (often from a search engine), browse fare
// searches and offer pages, occasionally enter the booking flow. Every page
// view pulls a handful of static assets shortly after the page itself, with
// conditional-GET 304s on repeat visits — the texture that distinguishes
// browsers from scrapers in real logs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "httplog/ip.hpp"
#include "stats/rng.hpp"
#include "traffic/actor.hpp"
#include "traffic/site.hpp"

namespace divscrape::traffic {

/// Tunables for the human population.
struct HumanConfig {
  double pages_mean = 4.0;          ///< geometric mean pages per session
  double think_median_s = 12.0;     ///< log-normal think time between pages
  double think_sigma = 0.9;
  double assets_per_page_mean = 1.4;///< Poisson extra asset fetches per page
  double asset_gap_s = 0.18;        ///< mean gap between asset fetches
  double revisit_p = 0.35;          ///< warm-cache visitor (304s on assets)
  double dead_link_p = 0.004;       ///< stale bookmark/typo -> 404
  double booking_p = 0.06;          ///< sessions that enter the booking flow
  double external_referer_p = 0.65; ///< landing referer present
};

/// One human browsing session.
class HumanActor final : public Actor {
 public:
  HumanActor(const SiteModel& site, const HumanConfig& config,
             httplog::Ipv4 ip, std::string user_agent, stats::Rng rng,
             std::uint32_t actor_id);

  [[nodiscard]] ActorClass actor_class() const noexcept override {
    return ActorClass::kHuman;
  }

  [[nodiscard]] StepResult step(httplog::Timestamp now,
                                httplog::LogRecord& out) override;

 private:
  /// Picks the next page in the funnel and queues its asset fetches.
  void plan_page();

  const SiteModel* site_;
  HumanConfig config_;
  httplog::Ipv4 ip_;
  std::string ua_;
  stats::Rng rng_;
  std::uint32_t actor_id_;

  int pages_left_;
  bool warm_cache_;
  bool logged_in_ = false;
  bool first_page_ = true;
  std::string current_page_;  ///< referer for asset fetches / next page

  struct Pending {
    Endpoint endpoint;
    std::size_t item;
  };
  std::vector<Pending> pending_;  ///< asset fetches for the current page
  Endpoint next_page_ = Endpoint::kHome;
  std::size_t next_item_ = 0;
};

}  // namespace divscrape::traffic
