// Benign automation: declared search-engine crawlers and uptime monitors.
//
// These exist in every production log and are the reason "bot" and
// "malicious" are not synonyms: a detector that flags all automation drowns
// the analyst in false positives on Googlebot.
#pragma once

#include <string>

#include "httplog/ip.hpp"
#include "stats/rng.hpp"
#include "traffic/actor.hpp"
#include "traffic/site.hpp"

namespace divscrape::traffic {

/// A declared, polite search-engine crawler: fetches robots.txt first,
/// then crawls content pages at a steady, throttled pace with conditional
/// GETs for pages it has seen before. Runs for the whole simulation.
class CrawlerActor final : public Actor {
 public:
  struct Config {
    double crawl_gap_mean_s = 8.0;  ///< mean gap between fetches
    double revisit_p = 0.3;         ///< conditional re-fetch of known pages
    httplog::Timestamp end_time;    ///< stop crawling at simulation end
  };

  CrawlerActor(const SiteModel& site, Config config, httplog::Ipv4 ip,
               std::string user_agent, stats::Rng rng,
               std::uint32_t actor_id);

  [[nodiscard]] ActorClass actor_class() const noexcept override {
    return ActorClass::kSearchCrawler;
  }

  [[nodiscard]] StepResult step(httplog::Timestamp now,
                                httplog::LogRecord& out) override;

 private:
  const SiteModel* site_;
  Config config_;
  httplog::Ipv4 ip_;
  std::string ua_;
  stats::Rng rng_;
  std::uint32_t actor_id_;
  bool fetched_robots_ = false;
};

/// An uptime monitor probing a fixed pair of endpoints on a fixed period.
class MonitorActor final : public Actor {
 public:
  struct Config {
    double period_s = 120.0;
    httplog::Timestamp end_time;
  };

  MonitorActor(const SiteModel& site, Config config, httplog::Ipv4 ip,
               stats::Rng rng, std::uint32_t actor_id);

  [[nodiscard]] ActorClass actor_class() const noexcept override {
    return ActorClass::kMonitor;
  }

  [[nodiscard]] StepResult step(httplog::Timestamp now,
                                httplog::LogRecord& out) override;

 private:
  const SiteModel* site_;
  Config config_;
  httplog::Ipv4 ip_;
  stats::Rng rng_;
  std::uint32_t actor_id_;
  bool probe_home_next_ = true;
};

}  // namespace divscrape::traffic
