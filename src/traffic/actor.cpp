#include "traffic/actor.hpp"

namespace divscrape::traffic {

std::string_view to_string(ActorClass c) noexcept {
  switch (c) {
    case ActorClass::kHuman: return "human";
    case ActorClass::kSearchCrawler: return "search-crawler";
    case ActorClass::kMonitor: return "monitor";
    case ActorClass::kScraperAggressive: return "scraper-aggressive";
    case ActorClass::kScraperStealth: return "scraper-stealth";
    case ActorClass::kScraperApi: return "scraper-api";
    case ActorClass::kScraperMalformed: return "scraper-malformed";
    case ActorClass::kScraperCaching: return "scraper-caching";
  }
  return "?";
}

httplog::Truth truth_of(ActorClass c) noexcept {
  return is_scraper(c) ? httplog::Truth::kMalicious : httplog::Truth::kBenign;
}

}  // namespace divscrape::traffic
