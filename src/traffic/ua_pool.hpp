// User-Agent string pools for the simulated populations: a weighted set of
// 2018-era browser UAs for humans (and for scrapers that spoof them),
// declared crawler UAs, and automation-framework defaults.
#pragma once

#include <string>
#include <string_view>

#include "stats/rng.hpp"

namespace divscrape::traffic {

/// Weighted sample from the mainstream-browser pool (Chrome/Firefox/Safari/
/// Edge/mobile, market-share-ish weights for early 2018).
[[nodiscard]] std::string_view sample_browser_ua(stats::Rng& rng) noexcept;

/// An *outdated* browser UA — headless farms pin stale versions; gives the
/// commercial detector a weak fingerprint signal.
[[nodiscard]] std::string_view sample_stale_browser_ua(
    stats::Rng& rng) noexcept;

/// Declared search-engine crawler UA.
[[nodiscard]] std::string_view sample_crawler_ua(stats::Rng& rng) noexcept;

/// Monitoring probe UA.
[[nodiscard]] std::string_view monitor_ua() noexcept;

/// Automation/script default UA (curl, python-requests, Scrapy, ...).
[[nodiscard]] std::string_view sample_script_ua(stats::Rng& rng) noexcept;

/// Headless browser UA.
[[nodiscard]] std::string_view sample_headless_ua(stats::Rng& rng) noexcept;

}  // namespace divscrape::traffic
