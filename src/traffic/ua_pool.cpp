#include "traffic/ua_pool.hpp"

#include <array>

namespace divscrape::traffic {

namespace {

struct WeightedUa {
  std::string_view ua;
  double weight;
};

constexpr std::array<WeightedUa, 8> kBrowsers = {{
    {"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
     "like Gecko) Chrome/64.0.3282.186 Safari/537.36",
     0.34},
    {"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/537.36 "
     "(KHTML, like Gecko) Chrome/64.0.3282.167 Safari/537.36",
     0.12},
    {"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 "
     "Firefox/58.0",
     0.13},
    {"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 "
     "(KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
     0.09},
    {"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
     "like Gecko) Chrome/64.0.3282.140 Safari/537.36 Edge/16.16299",
     0.05},
    {"Mozilla/5.0 (iPhone; CPU iPhone OS 11_2_6 like Mac OS X) "
     "AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0 Mobile/15D100 "
     "Safari/604.1",
     0.15},
    {"Mozilla/5.0 (Linux; Android 8.0.0; Pixel 2 Build/OPD1.170816.004) "
     "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile "
     "Safari/537.36",
     0.10},
    {"Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0",
     0.02},
}};

constexpr std::array<std::string_view, 3> kStaleBrowsers = {
    "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/41.0.2272.89 Safari/537.36",
    "Mozilla/5.0 (Windows NT 6.1; rv:40.0) Gecko/20100101 Firefox/40.1",
    "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.0)",
};

constexpr std::array<std::string_view, 3> kCrawlers = {
    "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
    "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
    "Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
};

constexpr std::array<std::string_view, 5> kScripts = {
    "python-requests/2.18.4",
    "curl/7.58.0",
    "Scrapy/1.5.0 (+https://scrapy.org)",
    "Go-http-client/1.1",
    "Java/1.8.0_161",
};

constexpr std::array<std::string_view, 2> kHeadless = {
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
    "HeadlessChrome/64.0.3282.119 Safari/537.36",
    "Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like "
    "Gecko) PhantomJS/2.1.1 Safari/538.1",
};

template <std::size_t N>
std::string_view pick(const std::array<std::string_view, N>& pool,
                      stats::Rng& rng) noexcept {
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

}  // namespace

std::string_view sample_browser_ua(stats::Rng& rng) noexcept {
  double u = rng.uniform();
  for (const auto& [ua, weight] : kBrowsers) {
    if (u < weight) return ua;
    u -= weight;
  }
  return kBrowsers.front().ua;
}

std::string_view sample_stale_browser_ua(stats::Rng& rng) noexcept {
  return pick(kStaleBrowsers, rng);
}

std::string_view sample_crawler_ua(stats::Rng& rng) noexcept {
  return pick(kCrawlers, rng);
}

std::string_view monitor_ua() noexcept {
  return "UptimeRobot/2.0 (http://www.uptimerobot.com/)";
}

std::string_view sample_script_ua(stats::Rng& rng) noexcept {
  return pick(kScripts, rng);
}

std::string_view sample_headless_ua(stats::Rng& rng) noexcept {
  return pick(kHeadless, rng);
}

}  // namespace divscrape::traffic
