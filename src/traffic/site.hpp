// The simulated e-commerce application: a travel-fare site in the style of
// the paper's Amadeus deployment.
//
// The site exposes a fare-search flow (the scraping target), a booking
// funnel, an availability API, static assets and housekeeping pages. Every
// endpoint knows how to render a concrete request target and how to sample
// a plausible response (status, bytes) for a given kind of access.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace divscrape::traffic {

/// Endpoints of the simulated application.
enum class Endpoint : std::uint8_t {
  kHome,         ///< /
  kSearch,       ///< /search?from=&to=&date=      (fare search)
  kOffer,        ///< /offers/{id}                 (the scraped resource)
  kBook,         ///< /book/{id}                   (booking funnel, 302s)
  kLogin,        ///< /login                       (302 on success)
  kApiAvail,     ///< /api/availability?offer={id} (200 or 204)
  kAsset,        ///< /static/...                  (css/js/img)
  kRobots,       ///< /robots.txt
  kAccount,      ///< /account
  kHelp,         ///< /help
  kAbout,        ///< /about
  kDeadLink,     ///< stale/bogus URL -> 404
};

[[nodiscard]] std::string_view to_string(Endpoint e) noexcept;

/// A concrete response outcome the server produced.
struct Response {
  int status = 200;
  std::uint64_t bytes = 0;
};

/// Modifiers on how a request is made, affecting the response.
struct AccessFlags {
  bool conditional = false;   ///< If-Modified-Since set: may yield 304
  bool malformed = false;     ///< syntactically broken request: yields 400
  bool logged_in = false;     ///< affects kAccount / kBook outcomes
};

/// Immutable description of the simulated site.
class SiteModel {
 public:
  struct Config {
    std::size_t catalogue_size = 50'000;  ///< number of fare/offer pages
    double offer_zipf_s = 0.9;            ///< popularity skew of offers
    std::size_t city_pairs = 400;         ///< distinct search routes
    std::size_t asset_count = 28;         ///< distinct static assets
    /// Probability an availability check finds no seats (-> 204).
    double api_no_content_p = 0.28;
    /// Baseline probability of a transient server error on dynamic pages.
    double server_error_p = 8e-6;
    /// Cap on the exact Zipf popularity table (0 = exact O(catalogue_size)
    /// table). Megasite catalogues set this so per-vhost memory stays flat;
    /// tail offers are then sampled by a continuous power-law approximation
    /// (see stats::ZipfDistribution).
    std::size_t zipf_table_cap = 0;
  };

  SiteModel();  ///< default-configured site
  explicit SiteModel(Config config);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Samples a popular offer id (Zipf-distributed; humans browse popular
  /// fares). Ids are 1-based.
  [[nodiscard]] std::size_t sample_popular_offer(stats::Rng& rng) const;

  /// Uniformly random offer id — how a sweeping scraper walks the space.
  [[nodiscard]] std::size_t sample_uniform_offer(stats::Rng& rng) const;

  /// Renders the request target for an endpoint. `item` selects the offer
  /// id / asset index / route where relevant (ignored otherwise).
  [[nodiscard]] std::string target(Endpoint e, std::size_t item,
                                   stats::Rng& rng) const;

  /// Samples the server's response for an access to `e`.
  [[nodiscard]] Response respond(Endpoint e, const AccessFlags& flags,
                                 stats::Rng& rng) const;

  [[nodiscard]] std::size_t catalogue_size() const noexcept {
    return config_.catalogue_size;
  }
  [[nodiscard]] std::size_t asset_count() const noexcept {
    return config_.asset_count;
  }

 private:
  Config config_;
  stats::ZipfDistribution offer_popularity_;
};

}  // namespace divscrape::traffic
