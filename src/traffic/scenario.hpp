// Scenario presets: fully-parameterized populations bound to a site model
// and wired into a TrafficGenerator.
//
// `amadeus_like()` is the reproduction workload: 8 simulated days starting
// March 11 2018, ~1.47M requests at scale 1.0, with a population mix
// calibrated so the two reproduced detectors exhibit the alert-diversity
// shape of the paper's Tables 1-4 (see DESIGN.md section 2 for the
// substitution argument and EXPERIMENTS.md for measured-vs-paper numbers).
//
// The `scale` knob multiplies population sizes (not durations), so tests
// can run the same scenario at 1/20th volume with the same behaviour mix.
#pragma once

#include <cstdint>
#include <memory>

#include "httplog/timestamp.hpp"
#include "traffic/bots.hpp"
#include "traffic/generator.hpp"
#include "traffic/human.hpp"
#include "traffic/scrapers.hpp"
#include "traffic/site.hpp"

namespace divscrape::traffic {

/// Complete description of a simulated deployment.
struct ScenarioConfig {
  std::uint64_t seed = 20180311;
  httplog::Timestamp start = httplog::Timestamp::from_civil(2018, 3, 11);
  double duration_days = 8.0;
  double scale = 1.0;  ///< population multiplier (1.0 = paper-sized)

  SiteModel::Config site;

  // --- benign populations ---
  HumanConfig human;
  /// Mean human session arrivals per second at scale 1.0 (diurnally
  /// modulated; the configured value is the daily mean).
  double human_arrivals_per_s = 0.0253;
  /// Diurnal modulation amplitude in [0, 1).
  double human_diurnal_amplitude = 0.55;
  /// Probability a human session originates inside a botnet subnet (the
  /// collateral-damage population for the commercial tool's /24 escalation).
  double human_in_botnet_subnet_p = 0.0015;
  int crawler_count = 3;
  double crawler_gap_mean_s = 250.0;
  int monitor_count = 2;
  double monitor_period_s = 120.0;

  // --- malicious populations (counts at scale 1.0) ---
  int campaigns = 3;              ///< aggressive fleets
  int bots_per_campaign = 350;    ///< fast members per fleet
  int slow_bots_per_campaign = 9; ///< sub-behavioural-threshold members
  int stealth_bots = 25;
  int api_clean_bots = 3;
  int api_fleet_bots = 2;
  int malformed_bots = 3;
  int caching_bots = 2;

  [[nodiscard]] httplog::Timestamp end() const noexcept {
    return start + static_cast<std::int64_t>(duration_days *
                                             httplog::kMicrosPerDay);
  }
};

/// The paper-shaped workload. `scale` in (0, 1] trades volume for runtime.
[[nodiscard]] ScenarioConfig amadeus_like(double scale = 1.0);

/// A tiny deterministic scenario for unit tests (~1 simulated hour).
[[nodiscard]] ScenarioConfig smoke_test();

/// A built scenario: owns the site model and the generator.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  [[nodiscard]] const ScenarioConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const SiteModel& site() const noexcept { return site_; }
  [[nodiscard]] TrafficGenerator& generator() noexcept { return generator_; }

  /// Pulls the next record (pass-through to the generator).
  [[nodiscard]] bool next(httplog::LogRecord& out) {
    return generator_.next(out);
  }

 private:
  void populate();

  ScenarioConfig config_;
  SiteModel site_;
  TrafficGenerator generator_;
  std::uint32_t next_actor_id_ = 1;
};

}  // namespace divscrape::traffic
