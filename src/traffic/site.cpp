#include "traffic/site.hpp"

#include <array>

namespace divscrape::traffic {

namespace {

constexpr std::array<std::string_view, 12> kCities = {
    "NCE", "LHR", "CDG", "JFK", "MAD", "LIS",
    "FRA", "AMS", "BCN", "FCO", "VIE", "ZRH"};

constexpr std::array<std::string_view, 7> kAssetNames = {
    "app", "vendor", "theme", "search", "offers", "booking", "common"};

constexpr std::array<std::string_view, 4> kAssetExts = {"js", "css", "png",
                                                        "woff2"};

}  // namespace

std::string_view to_string(Endpoint e) noexcept {
  switch (e) {
    case Endpoint::kHome: return "home";
    case Endpoint::kSearch: return "search";
    case Endpoint::kOffer: return "offer";
    case Endpoint::kBook: return "book";
    case Endpoint::kLogin: return "login";
    case Endpoint::kApiAvail: return "api-availability";
    case Endpoint::kAsset: return "asset";
    case Endpoint::kRobots: return "robots";
    case Endpoint::kAccount: return "account";
    case Endpoint::kHelp: return "help";
    case Endpoint::kAbout: return "about";
    case Endpoint::kDeadLink: return "dead-link";
  }
  return "?";
}

SiteModel::SiteModel() : SiteModel(Config{}) {}

SiteModel::SiteModel(Config config)
    : config_(config),
      offer_popularity_(config.catalogue_size, config.offer_zipf_s,
                        config.zipf_table_cap) {}

std::size_t SiteModel::sample_popular_offer(stats::Rng& rng) const {
  return offer_popularity_.sample(rng);
}

std::size_t SiteModel::sample_uniform_offer(stats::Rng& rng) const {
  return static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<std::int64_t>(config_.catalogue_size)));
}

std::string SiteModel::target(Endpoint e, std::size_t item,
                              stats::Rng& rng) const {
  switch (e) {
    case Endpoint::kHome:
      return "/";
    case Endpoint::kSearch: {
      const auto from = kCities[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kCities.size()) - 1))];
      auto to = from;
      while (to == from) {
        to = kCities[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(kCities.size()) - 1))];
      }
      const int day = static_cast<int>(rng.uniform_int(1, 28));
      std::string t = "/search?from=";
      t += from;
      t += "&to=";
      t += to;
      t += "&date=2018-04-";
      if (day < 10) t += '0';
      t += std::to_string(day);
      return t;
    }
    case Endpoint::kOffer:
      return "/offers/" + std::to_string(item == 0 ? 1 : item);
    case Endpoint::kBook:
      return "/book/" + std::to_string(item == 0 ? 1 : item);
    case Endpoint::kLogin:
      return "/login";
    case Endpoint::kApiAvail:
      return "/api/availability?offer=" + std::to_string(item == 0 ? 1 : item);
    case Endpoint::kAsset: {
      const std::size_t idx = item % config_.asset_count;
      const auto name = kAssetNames[idx % kAssetNames.size()];
      const auto ext = kAssetExts[(idx / kAssetNames.size()) % kAssetExts.size()];
      std::string t = "/static/";
      t += name;
      t += '-';
      t += std::to_string(idx);
      t += '.';
      t += ext;
      return t;
    }
    case Endpoint::kRobots:
      return "/robots.txt";
    case Endpoint::kAccount:
      return "/account";
    case Endpoint::kHelp:
      return "/help";
    case Endpoint::kAbout:
      return "/about";
    case Endpoint::kDeadLink:
      return "/offers/old/" + std::to_string(item + 900'000);
  }
  return "/";
}

Response SiteModel::respond(Endpoint e, const AccessFlags& flags,
                            stats::Rng& rng) const {
  if (flags.malformed) {
    // The server rejects syntactically broken requests outright.
    return {400, static_cast<std::uint64_t>(rng.uniform_int(200, 600))};
  }
  if (rng.bernoulli(config_.server_error_p) && e != Endpoint::kAsset &&
      e != Endpoint::kRobots) {
    return {500, static_cast<std::uint64_t>(rng.uniform_int(300, 900))};
  }
  switch (e) {
    case Endpoint::kHome:
      return {200, static_cast<std::uint64_t>(rng.lognormal(9.6, 0.2))};
    case Endpoint::kSearch:
      // Fare searches usually render results; a minority redirect to a
      // canonicalized offer listing (the 302 mass in the paper's tables).
      if (rng.bernoulli(0.028))
        return {302, static_cast<std::uint64_t>(rng.uniform_int(300, 500))};
      return {200, static_cast<std::uint64_t>(rng.lognormal(10.4, 0.4))};
    case Endpoint::kOffer:
      if (flags.conditional && rng.bernoulli(0.82))
        return {304, 0};
      return {200, static_cast<std::uint64_t>(rng.lognormal(9.9, 0.35))};
    case Endpoint::kBook:
      // Booking entry redirects into the funnel (or to login when not
      // authenticated).
      return {302, static_cast<std::uint64_t>(rng.uniform_int(250, 420))};
    case Endpoint::kLogin:
      if (rng.bernoulli(0.9))
        return {302, static_cast<std::uint64_t>(rng.uniform_int(250, 400))};
      return {200, static_cast<std::uint64_t>(rng.lognormal(8.9, 0.2))};
    case Endpoint::kApiAvail:
      if (rng.bernoulli(config_.api_no_content_p)) return {204, 0};
      return {200, static_cast<std::uint64_t>(rng.lognormal(6.8, 0.4))};
    case Endpoint::kAsset:
      if (flags.conditional && rng.bernoulli(0.9)) return {304, 0};
      return {200, static_cast<std::uint64_t>(rng.lognormal(9.2, 0.9))};
    case Endpoint::kRobots:
      return {200, 412};
    case Endpoint::kAccount:
      if (!flags.logged_in)
        return {302, static_cast<std::uint64_t>(rng.uniform_int(250, 400))};
      return {200, static_cast<std::uint64_t>(rng.lognormal(9.3, 0.25))};
    case Endpoint::kHelp:
    case Endpoint::kAbout:
      return {200, static_cast<std::uint64_t>(rng.lognormal(9.1, 0.2))};
    case Endpoint::kDeadLink:
      // A sliver of stale URLs land in an ACL-protected legacy area.
      if (rng.bernoulli(0.02))
        return {403, static_cast<std::uint64_t>(rng.uniform_int(280, 420))};
      return {404, static_cast<std::uint64_t>(rng.uniform_int(280, 500))};
  }
  return {200, 1024};
}

}  // namespace divscrape::traffic
