// The malicious population: price-scraping bots.
//
// One configurable actor class covers the five behavioural archetypes the
// scenario deploys (aggressive fleet member, low-and-slow stealth bot,
// availability-API poller, buggy malformed-request bot, conditional-GET
// caching bot). The archetypes differ only in their BotProfile, which keeps
// the behaviour space explicit and testable.
//
// A bot's life is a sequence of *work sessions*: a burst of `session_len`
// requests separated by `gap` seconds, then a long `pause`, repeated until
// the simulation ends or the lifetime request budget is spent. Within a
// session the bot sweeps the offer catalogue (sequentially from a random
// start, or uniformly), interleaving fare searches, availability checks and
// booking probes per its endpoint mix.
#pragma once

#include <cstdint>
#include <string>

#include "httplog/ip.hpp"
#include "stats/rng.hpp"
#include "traffic/actor.hpp"
#include "traffic/site.hpp"

namespace divscrape::traffic {

/// Complete behavioural description of one scraper bot.
struct BotProfile {
  ActorClass cls = ActorClass::kScraperAggressive;
  httplog::Ipv4 ip;
  std::string user_agent;

  // Endpoint mix (remaining mass goes to offer pages).
  double p_search = 0.08;   ///< fare-search queries
  double p_api = 0.02;      ///< availability API calls
  double p_book = 0.02;     ///< booking-funnel probes (302s)
  double p_malformed = 0.0; ///< per-request probability of a broken request
  double p_dead_link = 0.0; ///< probes of stale URLs (404s)

  /// Conditional-GET re-fetching (the caching archetype): probability that
  /// an offer fetch carries If-Modified-Since.
  double p_conditional = 0.0;

  // --- evasion features (experiment E13) ---
  /// Browser mimicry: probability that a page fetch is followed by a
  /// static-asset fetch (defeats asset-starvation signals).
  double p_asset_mimicry = 0.0;
  /// Sample a fresh browser UA at every session (defeats per-(ip,ua)
  /// behavioural state carried across sessions).
  bool rotate_ua_per_session = false;
  /// Move to a fresh clean address at every session (defeats IP
  /// reputation and subnet escalation).
  bool rotate_ip_per_session = false;

  bool sweep_sequential = true;  ///< catalogue walk order
  double referer_p = 0.05;       ///< probability of carrying a Referer

  // Timing. Gaps are exponential unless `lognormal_gap` (stealth bots pace
  // themselves like humans).
  bool lognormal_gap = false;
  double gap_mean_s = 0.35;      ///< mean in-session inter-request gap
  double gap_median_s = 20.0;    ///< log-normal median (stealth)
  double gap_sigma = 0.8;

  double session_len_mean = 400; ///< geometric mean requests per session
  double pause_mean_s = 6 * 3600;///< exponential pause between sessions
  std::uint64_t lifetime_requests = 0;  ///< 0 = unlimited
};

/// The "clean" public-address pool: uniformly random addresses avoiding
/// loopback, RFC1918-ish space, the campaign /8 neighbourhood (45.*) and
/// the declared-crawler range (66.*). Shared by human sessions, stealth
/// bots and per-session IP rotation, so every population builder draws
/// from one definition of "unsuspicious address".
[[nodiscard]] httplog::Ipv4 sample_clean_ip(stats::Rng& rng);

// --- calibrated archetype parameter tables -------------------------------
//
// Each returns a BotProfile with class, endpoint mix and timing set to the
// values the paper-shaped reproduction was calibrated with; callers assign
// identity (ip, user_agent) and may override timing knobs. Both population
// builders — the calibrated paper scenario (traffic/scenario.cpp) and the
// declarative workload engine (workload/engine.cpp) — start from these
// tables, so a calibration change lands everywhere at once.

/// Fast fare-scraping fleet member (~3-day sweep cadence).
[[nodiscard]] BotProfile aggressive_fleet_profile();
/// Sub-behavioural-threshold fleet member parked inside the flagged /24s.
[[nodiscard]] BotProfile slow_fleet_member_profile();
/// Low-and-slow stealth scraper behind clean residential addresses.
[[nodiscard]] BotProfile stealth_scraper_profile();
/// Availability-API poller, clean-IP flavour (the in-house tool's catch).
[[nodiscard]] BotProfile api_clean_poller_profile();
/// Availability-API poller, campaign-IP flavour (the commercial tool's).
[[nodiscard]] BotProfile api_fleet_poller_profile();
/// Buggy scraper stack emitting malformed requests (400-heavy).
[[nodiscard]] BotProfile malformed_scraper_profile();
/// Conditional-GET caching scraper (304-heavy).
[[nodiscard]] BotProfile caching_scraper_profile();

/// One scraper bot driven by its profile.
class ScraperBot final : public Actor {
 public:
  ScraperBot(const SiteModel& site, BotProfile profile,
             httplog::Timestamp end_time, stats::Rng rng,
             std::uint32_t actor_id);

  [[nodiscard]] ActorClass actor_class() const noexcept override {
    return profile_.cls;
  }

  [[nodiscard]] StepResult step(httplog::Timestamp now,
                                httplog::LogRecord& out) override;

  [[nodiscard]] std::uint32_t ua_epoch() const noexcept override {
    return ua_epoch_;
  }

  [[nodiscard]] const BotProfile& profile() const noexcept { return profile_; }

 private:
  void begin_session();
  [[nodiscard]] double next_gap_s();

  const SiteModel* site_;
  BotProfile profile_;
  httplog::Timestamp end_time_;
  stats::Rng rng_;
  std::uint32_t actor_id_;

  std::uint64_t emitted_ = 0;
  std::uint64_t session_remaining_ = 0;
  std::size_t sweep_pos_ = 1;
  // Current identity (rebound per session when rotation is enabled).
  httplog::Ipv4 current_ip_;
  std::string current_ua_;
  std::uint32_t ua_epoch_ = 0;  ///< bumped on every UA rotation
  bool asset_pending_ = false;  ///< mimicry: next emission is an asset
};

}  // namespace divscrape::traffic
