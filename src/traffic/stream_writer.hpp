// StreamWriter: pumps generated traffic into a growing CLF file the way a
// busy Apache worker pool writes a live access log — so tests, demos and
// benches can run deployment-shaped (tail-the-file) workloads without real
// infrastructure.
//
// Beyond plain append-a-line-per-record, the writer can inject the stream
// faults a tailer must survive, either scripted via FaultPlan (every Nth
// record) or explicitly via the fault methods (tests that need exact
// control over byte boundaries):
//
//   * torn writes — a record's line lands in two flushed pieces split at an
//     arbitrary byte (including inside the CRLF terminator), simulating a
//     write() that raced the poll;
//   * CRLF line endings — some writers terminate with "\r\n";
//   * rotation — rename the live file away and recreate it (logrotate);
//   * truncate-and-restart — `> access.log` in place, same inode.
//
// ## Write modes
//
// In the default unbatched mode (`batch_lines` 0) every write reaches the
// OS immediately: the whole point is that a concurrent reader observes
// every intermediate state. With `batch_lines` > 0 lines are encoded
// straight into one contiguous pending buffer (line boundaries kept as end
// offsets for the fault seam) and flushed `batch_lines` at a time with one
// write(2) — one syscall instead of N, which is what makes the live-loop
// benches writer-bound no longer. Batching never reorders bytes: every fault
// injection and every explicit byte-level control flushes the queue first,
// so the on-disk byte sequence is identical in both modes (the *timing* of
// visibility is the only difference). flush() forces the queue out; the
// destructor flushes too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "httplog/clf.hpp"
#include "httplog/pacer.hpp"
#include "httplog/record.hpp"
#include "stats/rng.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::traffic {

/// Scripted fault injection; 0 disables a fault kind.
struct StreamFaultPlan {
  std::uint64_t tear_every = 0;      ///< split every Nth record's line
  std::uint64_t crlf_every = 0;      ///< end every Nth line with "\r\n"
  std::uint64_t rotate_every = 0;    ///< rotate after every Nth record
  std::uint64_t truncate_every = 0;  ///< `> path` after every Nth record
                                     ///< (same inode, size back to 0 —
                                     ///< bytes a reader never drained are
                                     ///< gone; it must detect, not skew)
  std::uint64_t seed = 1;            ///< tear-point RNG seed

  /// Test seam mirroring LogTailer's read_fn: when set, every byte goes
  /// through this instead of ::write(2), so tests can script short writes,
  /// EINTR storms, and one-shot ENOSPC at exact byte offsets. While set,
  /// flush() writes line-by-line through the seam instead of writev(2).
  ssize_t (*write_fn)(int fd, const void* buf, std::size_t count) = nullptr;
};

class StreamWriter {
 public:
  using FaultPlan = StreamFaultPlan;

  /// Creates/truncates `path` and appends from there. `batch_lines` > 0
  /// enables vectored write batching (see the class comment).
  explicit StreamWriter(std::string path, FaultPlan plan = FaultPlan(),
                        std::size_t batch_lines = 0);
  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Appends one record as a CLF line, applying any scripted faults that
  /// are due. Unbatched mode flushes to the OS immediately; batched mode
  /// queues the line (faults force the queue out first).
  void write(const httplog::LogRecord& record);

  /// Writes out the pending buffer (one write(2) burst; line-by-line when a
  /// write_fn seam is installed). No-op when the buffer is empty (always,
  /// in unbatched mode).
  void flush();

  /// Pumps up to `max_records` from the scenario through write(). With
  /// `time_scale` > 0 each record is delayed so one simulated second takes
  /// 1/time_scale wall seconds (live-demo pacing); 0 writes flat out.
  /// Returns the number of records written (may be short at stream end).
  std::size_t pump(Scenario& scenario, std::size_t max_records,
                   double time_scale = 0.0);

  // --- explicit fault controls (tests drive byte-exact scenarios) ---

  /// Appends raw bytes with no terminator and flushes: the first half of a
  /// torn write. Callers complete the line with another write_bytes().
  void write_bytes(std::string_view bytes);

  /// Appends one full line with the given terminator and flushes.
  void write_line(std::string_view line, std::string_view ending = "\n");

  /// logrotate: renames the live file to `rotated_path` and recreates the
  /// live path empty (new inode). Queued lines flush to the old file first.
  void rotate(const std::string& rotated_path);

  /// `> path`: truncates the live file in place (same inode); appending
  /// restarts at offset 0. Queued lines flush (and are then lost to any
  /// reader that had not drained them — exactly the real-world hazard).
  void truncate_restart();

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }
  /// Bytes actually handed to the OS (queued-but-unflushed bytes excluded).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_;
  }
  /// Non-EINTR write failures observed (each drops the rest of its burst,
  /// like a real logger under ENOSPC).
  [[nodiscard]] std::uint64_t write_errors() const noexcept {
    return write_errors_;
  }
  /// Bytes dropped by those failures.
  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept {
    return dropped_bytes_;
  }
  /// errno of the most recent write failure (0 = none yet).
  [[nodiscard]] int last_errno() const noexcept { return last_errno_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void open_fresh();
  /// write(2) loop: retries EINTR and partial writes until all is out.
  void raw_write(const char* data, std::size_t size);

  std::string path_;
  FaultPlan plan_;
  stats::Rng rng_;
  int fd_ = -1;
  std::size_t batch_lines_;
  httplog::ClfFormatter formatter_;  ///< per-second time memo stays warm
  std::string wire_;        ///< scratch line for the unbatched/torn paths
  std::string pending_buf_; ///< queued encoded lines, contiguous (batched)
  std::vector<std::size_t> pending_ends_;  ///< end offset of each line
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t write_errors_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  int last_errno_ = 0;
  std::uint64_t rotation_count_ = 0;
  httplog::Pacer pacer_;  ///< pump() pacing anchor
};

}  // namespace divscrape::traffic
