#include "traffic/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/ua_pool.hpp"

namespace divscrape::traffic {

namespace {

using httplog::Ipv4;
using httplog::Timestamp;
using httplog::seconds_to_micros;
using stats::Rng;

/// Campaign c (0-based) owns the /16 at 45.(140+c).0.0.
Ipv4 campaign_base(int campaign) noexcept {
  return Ipv4(45, static_cast<std::uint8_t>(140 + campaign), 0, 0);
}

/// Fast fleet member i sits in one of the campaign's two /24s, hosts .2+.
Ipv4 fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  const std::uint32_t subnet = static_cast<std::uint32_t>(bot / 200);
  const std::uint32_t host = 2 + static_cast<std::uint32_t>(bot % 200);
  return Ipv4(base | (subnet << 8) | host);
}

/// Slow members park at .200+ so they never collide with fast members.
Ipv4 slow_fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  return Ipv4(base | (static_cast<std::uint32_t>(bot % 2) << 8) |
              (200u + static_cast<std::uint32_t>(bot / 2)));
}

/// A human victim address inside a random campaign /24 (collateral pool).
Ipv4 botnet_neighbour_ip(Rng& rng, int campaigns) {
  const int c = static_cast<int>(rng.uniform_int(0, campaigns - 1));
  const auto base = campaign_base(c).value();
  const std::uint32_t subnet = static_cast<std::uint32_t>(rng.uniform_int(0, 1));
  const std::uint32_t host =
      180u + static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  return Ipv4(base | (subnet << 8) | host);
}

int scaled(int count, double scale) {
  if (count == 0) return 0;
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

}  // namespace

ScenarioConfig amadeus_like(double scale) {
  ScenarioConfig config;
  config.scale = scale;
  return config;  // defaults are the calibrated paper-shaped values
}

ScenarioConfig smoke_test() {
  ScenarioConfig config;
  config.scale = 1.0;
  config.duration_days = 1.0 / 24.0;  // one hour
  config.human_arrivals_per_s = 0.02;
  config.campaigns = 1;
  config.bots_per_campaign = 12;
  config.slow_bots_per_campaign = 2;
  config.stealth_bots = 2;
  config.api_clean_bots = 1;
  config.api_fleet_bots = 1;
  config.malformed_bots = 1;
  config.caching_bots = 1;
  config.crawler_count = 1;
  config.monitor_count = 1;
  config.site.catalogue_size = 2000;
  return config;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      site_(config_.site),
      generator_(config_.end()) {
  populate();
}

void Scenario::populate() {
  Rng root(config_.seed);
  const Timestamp start = config_.start;
  const Timestamp end = config_.end();
  const double scale = config_.scale;
  // First sessions are staggered uniformly over the pause interval, but
  // never past the scenario midpoint — short test scenarios must still
  // contain every population.
  const double max_stagger_s =
      config_.duration_days * 24.0 * 3600.0 / 2.0;
  const auto stagger = [&max_stagger_s](Rng& rng, double pause_s) {
    return seconds_to_micros(
        rng.uniform(0.0, std::min(pause_s, max_stagger_s)));
  };

  // ---- humans: diurnally-modulated Poisson arrival process ----
  {
    // Shared mutable state captured by the arrival-process closures.
    auto arrivals_rng = std::make_shared<Rng>(root.fork());
    const double base_rate = config_.human_arrivals_per_s * scale;
    const double amplitude = config_.human_diurnal_amplitude;
    const Timestamp day0 = start;

    ArrivalProcess humans;
    humans.next_arrival = [arrivals_rng, base_rate, amplitude,
                           day0](Timestamp now) -> std::optional<Timestamp> {
      // Thinning-free approximation: draw from the instantaneous rate.
      const double hours =
          static_cast<double>(now - day0) / 1e6 / 3600.0;
      // Peak mid-afternoon (15:00), trough at night.
      const double modulation =
          1.0 + amplitude * std::sin((hours - 9.0) / 24.0 * 2.0 * 3.14159265);
      const double rate = std::max(1e-6, base_rate * modulation);
      return now + seconds_to_micros(arrivals_rng->exponential(1.0 / rate));
    };
    auto human_rng = std::make_shared<Rng>(root.fork());
    const auto* site = &site_;
    const auto human_config = config_.human;
    const double fp_p = config_.human_in_botnet_subnet_p;
    const int campaigns = config_.campaigns;
    auto* id_counter = &next_actor_id_;
    humans.make_actor = [human_rng, site, human_config, fp_p, campaigns,
                         id_counter](Timestamp) -> std::unique_ptr<Actor> {
      Rng session_rng = human_rng->fork();
      const Ipv4 ip = session_rng.bernoulli(fp_p)
                          ? botnet_neighbour_ip(session_rng, campaigns)
                          : sample_clean_ip(session_rng);
      return std::make_unique<HumanActor>(
          *site, human_config, ip,
          std::string(sample_browser_ua(session_rng)), session_rng,
          (*id_counter)++);
    };
    generator_.add_arrivals(std::move(humans), start);
  }

  // ---- declared crawlers ----
  for (int i = 0; i < scaled(config_.crawler_count, scale); ++i) {
    Rng rng = root.fork();
    CrawlerActor::Config cc;
    cc.crawl_gap_mean_s = config_.crawler_gap_mean_s;
    cc.end_time = end;
    const Ipv4 ip(66, 249, 64, static_cast<std::uint8_t>(10 + i));
    auto actor = std::make_unique<CrawlerActor>(
        site_, cc, ip, std::string(sample_crawler_ua(rng)), rng,
        next_actor_id_++);
    generator_.add_actor(std::move(actor),
                         start + seconds_to_micros(rng.uniform(0.0, 60.0)));
  }

  // ---- uptime monitors ----
  for (int i = 0; i < scaled(config_.monitor_count, scale); ++i) {
    Rng rng = root.fork();
    MonitorActor::Config mc;
    mc.period_s = config_.monitor_period_s;
    mc.end_time = end;
    const Ipv4 ip(63, 143, 42, static_cast<std::uint8_t>(240 + i));
    generator_.add_actor(
        std::make_unique<MonitorActor>(site_, mc, ip, rng, next_actor_id_++),
        start + seconds_to_micros(rng.uniform(0.0, config_.monitor_period_s)));
  }

  // ---- aggressive fare-scraping fleets ----
  const int campaigns = config_.campaigns;
  for (int c = 0; c < campaigns; ++c) {
    const int bots = scaled(config_.bots_per_campaign, scale);
    for (int b = 0; b < bots; ++b) {
      Rng rng = root.fork();
      BotProfile profile = aggressive_fleet_profile();
      profile.ip = fleet_ip(c, b);
      // Per-bot UA identity: half spoof current browsers, the rest leak
      // automation markers (mirrors the mixed tooling of real botnets).
      const double ua_roll = rng.uniform();
      if (ua_roll < 0.45) {
        profile.user_agent = std::string(sample_browser_ua(rng));
      } else if (ua_roll < 0.55) {
        profile.user_agent = std::string(sample_stale_browser_ua(rng));
      } else if (ua_roll < 0.80) {
        profile.user_agent = std::string(sample_script_ua(rng));
      } else {
        profile.user_agent = std::string(sample_headless_ua(rng));
      }
      auto actor = std::make_unique<ScraperBot>(site_, std::move(profile),
                                                end, rng, next_actor_id_++);
      // Stagger first sessions across the first pause interval.
      generator_.add_actor(std::move(actor),
                           start + stagger(rng, 260'000.0));
    }

    // Slow members: below Arcane's behavioural floor, inside the flagged
    // subnets -> the commercial tool's reputation sweeps them anyway.
    const int slow = scaled(config_.slow_bots_per_campaign, scale);
    for (int b = 0; b < slow; ++b) {
      Rng rng = root.fork();
      BotProfile profile = slow_fleet_member_profile();
      profile.ip = slow_fleet_ip(c, b);
      profile.user_agent = std::string(
          rng.bernoulli(0.3) ? sample_stale_browser_ua(rng)
                             : sample_browser_ua(rng));
      auto actor = std::make_unique<ScraperBot>(site_, std::move(profile),
                                                end, rng, next_actor_id_++);
      generator_.add_actor(std::move(actor), start + stagger(rng, 43'200.0));
    }
  }

  // ---- stealth (low-and-slow, residential proxies) ----
  for (int b = 0; b < scaled(config_.stealth_bots, scale); ++b) {
    Rng rng = root.fork();
    BotProfile profile = stealth_scraper_profile();
    profile.ip = sample_clean_ip(rng);
    profile.user_agent = std::string(sample_browser_ua(rng));
    auto actor = std::make_unique<ScraperBot>(site_, std::move(profile), end,
                                              rng, next_actor_id_++);
    generator_.add_actor(std::move(actor), start + stagger(rng, 14'400.0));
  }

  // ---- availability-API pollers, clean-IP flavour (in-house tool's catch)
  for (int b = 0; b < scaled(config_.api_clean_bots, scale); ++b) {
    Rng rng = root.fork();
    BotProfile profile = api_clean_poller_profile();
    profile.ip = sample_clean_ip(rng);
    profile.user_agent = std::string(sample_browser_ua(rng));
    auto actor = std::make_unique<ScraperBot>(site_, std::move(profile), end,
                                              rng, next_actor_id_++);
    generator_.add_actor(std::move(actor), start + stagger(rng, 7'200.0));
  }

  // ---- availability-API pollers, fleet flavour (commercial tool's catch)
  for (int b = 0; b < scaled(config_.api_fleet_bots, scale); ++b) {
    Rng rng = root.fork();
    BotProfile profile = api_fleet_poller_profile();
    const int c = b % campaigns;
    profile.ip = Ipv4(campaign_base(c).value() |
                      (250u + static_cast<std::uint32_t>(b / campaigns)));
    profile.user_agent = std::string(sample_script_ua(rng));
    auto actor = std::make_unique<ScraperBot>(site_, std::move(profile), end,
                                              rng, next_actor_id_++);
    generator_.add_actor(std::move(actor), start + stagger(rng, 28'800.0));
  }

  // ---- malformed-request bots (buggy scraper stacks) ----
  for (int b = 0; b < scaled(config_.malformed_bots, scale); ++b) {
    Rng rng = root.fork();
    BotProfile profile = malformed_scraper_profile();
    profile.ip = sample_clean_ip(rng);
    profile.user_agent = std::string(sample_browser_ua(rng));
    auto actor = std::make_unique<ScraperBot>(site_, std::move(profile), end,
                                              rng, next_actor_id_++);
    generator_.add_actor(std::move(actor), start + stagger(rng, 14'400.0));
  }

  // ---- conditional-GET caching scrapers ----
  for (int b = 0; b < scaled(config_.caching_bots, scale); ++b) {
    Rng rng = root.fork();
    BotProfile profile = caching_scraper_profile();
    profile.ip = sample_clean_ip(rng);
    profile.user_agent = std::string(sample_browser_ua(rng));
    auto actor = std::make_unique<ScraperBot>(site_, std::move(profile), end,
                                              rng, next_actor_id_++);
    generator_.add_actor(std::move(actor), start + stagger(rng, 21'600.0));
  }
}

}  // namespace divscrape::traffic
