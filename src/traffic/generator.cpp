#include "traffic/generator.hpp"

#include <algorithm>

namespace divscrape::traffic {

TrafficGenerator::TrafficGenerator(httplog::Timestamp end_time)
    : end_time_(end_time) {}

void TrafficGenerator::push_event(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end());
}

std::size_t TrafficGenerator::place_actor(std::unique_ptr<Actor> actor,
                                          std::uint32_t vhost) {
  ++actors_created_;
  ++live_actors_;
  peak_live_ = std::max(peak_live_, live_actors_);
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    actors_[slot] = std::move(actor);
    ua_cache_[slot] = UaTokenCache{};  // stale token must not leak across
    vhost_of_[slot] = vhost;
    return slot;
  }
  actors_.push_back(std::move(actor));
  ua_cache_.emplace_back();
  vhost_of_.push_back(vhost);
  return actors_.size() - 1;
}

void TrafficGenerator::add_actor(std::unique_ptr<Actor> actor,
                                 httplog::Timestamp start,
                                 std::uint32_t vhost) {
  if (start >= end_time_) return;
  push_event({start, place_actor(std::move(actor), vhost), SIZE_MAX});
}

void TrafficGenerator::add_lazy_actor(std::uint64_t cookie,
                                      httplog::Timestamp start) {
  if (start >= end_time_) return;
  lazy_cookies_.push_back(cookie);
  ++pending_lazy_;
  push_event({start, kLazyBit | (lazy_cookies_.size() - 1), SIZE_MAX});
}

void TrafficGenerator::add_arrivals(ArrivalProcess process,
                                    httplog::Timestamp from) {
  arrivals_.push_back(std::move(process));
  const auto first = arrivals_.back().next_arrival(from);
  if (first && *first < end_time_) {
    push_event({*first, SIZE_MAX, arrivals_.size() - 1});
  }
}

bool TrafficGenerator::next(httplog::LogRecord& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Event e = heap_.back();
    heap_.pop_back();

    if (e.arrival_idx != SIZE_MAX) {
      auto& process = arrivals_[e.arrival_idx];
      auto actor = process.make_actor(e.time);
      if (actor) add_actor(std::move(actor), e.time, process.vhost);
      const auto next = process.next_arrival(e.time);
      if (next && *next < end_time_) {
        push_event({*next, SIZE_MAX, e.arrival_idx});
      }
      continue;
    }

    if (e.actor_idx & kLazyBit) {
      // Deferred actor's first event: build it now, into a pooled slot,
      // and step it this very pop — exactly when the eager path would have.
      auto made = materializer_(lazy_cookies_[e.actor_idx & ~kLazyBit]);
      --pending_lazy_;
      e.actor_idx = place_actor(std::move(made.actor), made.vhost);
    }

    auto& actor = actors_[e.actor_idx];
    if (!actor) continue;  // already retired (defensive)
    // The epoch must be read *before* step(): a bot that rotates identity
    // at session end does so inside step(), after filling `out` with the
    // pre-rotation UA — the post-step epoch would pin the old token to the
    // new UA.
    const std::uint32_t epoch = actor->ua_epoch();
    const StepResult result = actor->step(e.time, out);
    const bool emit = result.emitted && e.time < end_time_;
    if (result.next && *result.next < end_time_) {
      push_event({*result.next, e.actor_idx, SIZE_MAX});
    } else {
      // Lifetime over: free the state now and recycle the slot — with lazy
      // registration this is what keeps resident actors bounded by the
      // *concurrently-live* population.
      actor.reset();
      free_slots_.push_back(e.actor_idx);
      --live_actors_;
    }
    if (emit) {
      // Identical token assignment to per-record interning: an actor's
      // first record (and first record after a UA rotation) still probes —
      // exactly the calls that could mint — while the cached fast path
      // returns what intern() would have returned anyway.
      auto& cache = ua_cache_[e.actor_idx];
      if (cache.token == 0 || cache.epoch != epoch) {
        cache.token = ua_tokens_.intern(out.user_agent);
        cache.epoch = epoch;
      }
      out.ua_token = cache.token;
      out.vhost = vhost_of_[e.actor_idx];
      ++emitted_;
      return true;
    }
  }
  return false;
}

std::vector<httplog::LogRecord> TrafficGenerator::drain() {
  std::vector<httplog::LogRecord> records;
  httplog::LogRecord rec;
  while (next(rec)) records.push_back(rec);
  return records;
}

}  // namespace divscrape::traffic
