#include "traffic/generator.hpp"

#include <algorithm>

namespace divscrape::traffic {

TrafficGenerator::TrafficGenerator(httplog::Timestamp end_time)
    : end_time_(end_time) {}

void TrafficGenerator::push_event(Event e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end());
}

void TrafficGenerator::add_actor(std::unique_ptr<Actor> actor,
                                 httplog::Timestamp start) {
  if (start >= end_time_) return;
  actors_.push_back(std::move(actor));
  ua_cache_.emplace_back();
  ++live_actors_;
  push_event({start, actors_.size() - 1, SIZE_MAX});
}

void TrafficGenerator::add_arrivals(ArrivalProcess process,
                                    httplog::Timestamp from) {
  arrivals_.push_back(std::move(process));
  const auto first = arrivals_.back().next_arrival(from);
  if (first && *first < end_time_) {
    push_event({*first, SIZE_MAX, arrivals_.size() - 1});
  }
}

bool TrafficGenerator::next(httplog::LogRecord& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const Event e = heap_.back();
    heap_.pop_back();

    if (e.arrival_idx != SIZE_MAX) {
      auto& process = arrivals_[e.arrival_idx];
      auto actor = process.make_actor(e.time);
      if (actor) add_actor(std::move(actor), e.time);
      const auto next = process.next_arrival(e.time);
      if (next && *next < end_time_) {
        push_event({*next, SIZE_MAX, e.arrival_idx});
      }
      continue;
    }

    auto& actor = actors_[e.actor_idx];
    if (!actor) continue;  // already retired (defensive)
    // The epoch must be read *before* step(): a bot that rotates identity
    // at session end does so inside step(), after filling `out` with the
    // pre-rotation UA — the post-step epoch would pin the old token to the
    // new UA.
    const std::uint32_t epoch = actor->ua_epoch();
    const StepResult result = actor->step(e.time, out);
    const bool emit = result.emitted && e.time < end_time_;
    if (result.next && *result.next < end_time_) {
      push_event({*result.next, e.actor_idx, SIZE_MAX});
    } else {
      actor.reset();
      --live_actors_;
    }
    if (emit) {
      // Identical token assignment to per-record interning: an actor's
      // first record (and first record after a UA rotation) still probes —
      // exactly the calls that could mint — while the cached fast path
      // returns what intern() would have returned anyway.
      auto& cache = ua_cache_[e.actor_idx];
      if (cache.token == 0 || cache.epoch != epoch) {
        cache.token = ua_tokens_.intern(out.user_agent);
        cache.epoch = epoch;
      }
      out.ua_token = cache.token;
      ++emitted_;
      return true;
    }
  }
  return false;
}

std::vector<httplog::LogRecord> TrafficGenerator::drain() {
  std::vector<httplog::LogRecord> records;
  httplog::LogRecord rec;
  while (next(rec)) records.push_back(rec);
  return records;
}

}  // namespace divscrape::traffic
