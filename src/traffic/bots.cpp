#include "traffic/bots.hpp"

#include "traffic/ua_pool.hpp"

namespace divscrape::traffic {

CrawlerActor::CrawlerActor(const SiteModel& site, Config config,
                           httplog::Ipv4 ip, std::string user_agent,
                           stats::Rng rng, std::uint32_t actor_id)
    : site_(&site),
      config_(config),
      ip_(ip),
      ua_(std::move(user_agent)),
      rng_(rng),
      actor_id_(actor_id) {}

StepResult CrawlerActor::step(httplog::Timestamp now,
                              httplog::LogRecord& out) {
  out = httplog::LogRecord{};
  out.ip = ip_;
  out.time = now;
  out.user_agent = ua_;
  out.truth = httplog::Truth::kBenign;
  out.actor_id = actor_id_;
  out.actor_class = static_cast<std::uint8_t>(ActorClass::kSearchCrawler);
  out.referer = "-";

  Endpoint endpoint;
  std::size_t item = 0;
  AccessFlags flags;
  if (!fetched_robots_) {
    endpoint = Endpoint::kRobots;
    fetched_robots_ = true;
  } else {
    const double u = rng_.uniform();
    if (u < 0.72) {
      endpoint = Endpoint::kOffer;
      item = site_->sample_popular_offer(rng_);
      flags.conditional = rng_.bernoulli(config_.revisit_p);
    } else if (u < 0.86) {
      endpoint = Endpoint::kSearch;
    } else if (u < 0.92) {
      endpoint = Endpoint::kHome;
    } else if (u < 0.96) {
      endpoint = Endpoint::kHelp;
    } else {
      endpoint = Endpoint::kAbout;
    }
  }
  out.target = site_->target(endpoint, item, rng_);
  const Response resp = site_->respond(endpoint, flags, rng_);
  out.status = resp.status;
  out.bytes = resp.bytes;

  StepResult result;
  result.emitted = true;
  const auto next =
      now + httplog::seconds_to_micros(
                rng_.exponential(config_.crawl_gap_mean_s));
  if (next < config_.end_time) result.next = next;
  return result;
}

MonitorActor::MonitorActor(const SiteModel& site, Config config,
                           httplog::Ipv4 ip, stats::Rng rng,
                           std::uint32_t actor_id)
    : site_(&site),
      config_(config),
      ip_(ip),
      rng_(rng),
      actor_id_(actor_id) {}

StepResult MonitorActor::step(httplog::Timestamp now,
                              httplog::LogRecord& out) {
  out = httplog::LogRecord{};
  out.ip = ip_;
  out.time = now;
  out.user_agent = std::string(monitor_ua());
  out.truth = httplog::Truth::kBenign;
  out.actor_id = actor_id_;
  out.actor_class = static_cast<std::uint8_t>(ActorClass::kMonitor);
  out.referer = "-";

  const Endpoint endpoint =
      probe_home_next_ ? Endpoint::kHome : Endpoint::kApiAvail;
  probe_home_next_ = !probe_home_next_;
  out.target = site_->target(endpoint, 1, rng_);
  const Response resp = site_->respond(endpoint, {}, rng_);
  out.status = resp.status;
  out.bytes = resp.bytes;

  StepResult result;
  result.emitted = true;
  // Fixed period with small jitter, like real monitoring agents.
  const auto next =
      now + httplog::seconds_to_micros(config_.period_s +
                                       rng_.uniform(-1.0, 1.0));
  if (next < config_.end_time) result.next = next;
  return result;
}

}  // namespace divscrape::traffic
