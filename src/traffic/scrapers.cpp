#include "traffic/scrapers.hpp"

#include <algorithm>

#include "traffic/ua_pool.hpp"

namespace divscrape::traffic {

httplog::Ipv4 sample_clean_ip(stats::Rng& rng) {
  for (;;) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_int(1, 223));
    if (a == 10 || a == 45 || a == 66 || a == 127 || a == 172 || a == 192)
      continue;
    const auto rest =
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    return httplog::Ipv4((a << 24) | rest);
  }
}

BotProfile aggressive_fleet_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperAggressive;
  profile.p_search = 0.08;
  profile.p_api = 0.0018;
  profile.p_book = 0.026;
  profile.p_malformed = 7e-6;
  profile.gap_mean_s = 0.30;
  profile.session_len_mean = 380;
  profile.pause_mean_s = 260'000;  // ~3 days between sweeps
  return profile;
}

BotProfile slow_fleet_member_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperAggressive;
  profile.p_search = 0.08;
  profile.p_book = 0.012;
  profile.p_malformed = 0.0055;
  profile.p_dead_link = 0.0028;
  profile.p_conditional = 0.0022;
  profile.gap_mean_s = 30.0;
  profile.session_len_mean = 500;
  profile.pause_mean_s = 43'200;
  profile.lifetime_requests = 480;
  return profile;
}

BotProfile stealth_scraper_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperStealth;
  profile.p_search = 0.05;
  profile.p_book = 0.025;
  profile.gap_mean_s = 5.0;
  profile.session_len_mean = 110;
  profile.pause_mean_s = 14'400;
  profile.lifetime_requests = 350;
  profile.referer_p = 0.3;  // stealth bots fake referers too
  return profile;
}

BotProfile api_clean_poller_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperApi;
  profile.p_search = 0.02;
  profile.p_api = 0.93;
  profile.p_book = 0.02;
  profile.gap_mean_s = 2.0;
  profile.session_len_mean = 300;
  profile.pause_mean_s = 7'200;
  profile.lifetime_requests = 1'150;
  return profile;
}

BotProfile api_fleet_poller_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperApi;
  profile.p_api = 0.95;
  profile.p_search = 0.01;
  profile.gap_mean_s = 30.0;  // below the behavioural window floor
  profile.session_len_mean = 250;
  profile.pause_mean_s = 28'800;
  profile.lifetime_requests = 740;
  return profile;
}

BotProfile malformed_scraper_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperMalformed;
  profile.p_malformed = 0.30;
  profile.p_dead_link = 0.01;
  profile.p_search = 0.02;
  profile.gap_mean_s = 5.0;
  profile.session_len_mean = 60;
  profile.pause_mean_s = 14'400;
  profile.lifetime_requests = 280;
  return profile;
}

BotProfile caching_scraper_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperCaching;
  profile.p_conditional = 0.80;
  profile.gap_mean_s = 4.0;
  profile.session_len_mean = 80;
  profile.pause_mean_s = 21'600;
  profile.lifetime_requests = 58;
  return profile;
}

ScraperBot::ScraperBot(const SiteModel& site, BotProfile profile,
                       httplog::Timestamp end_time, stats::Rng rng,
                       std::uint32_t actor_id)
    : site_(&site),
      profile_(std::move(profile)),
      end_time_(end_time),
      rng_(rng),
      actor_id_(actor_id) {
  sweep_pos_ = static_cast<std::size_t>(rng_.uniform_int(
      1, static_cast<std::int64_t>(site_->catalogue_size())));
  current_ip_ = profile_.ip;
  current_ua_ = profile_.user_agent;
  begin_session();
}

void ScraperBot::begin_session() {
  const double mean = std::max(1.0, profile_.session_len_mean);
  session_remaining_ =
      static_cast<std::uint64_t>(rng_.geometric(1.0 / mean));
  if (profile_.rotate_ip_per_session) current_ip_ = sample_clean_ip(rng_);
  if (profile_.rotate_ua_per_session) {
    current_ua_ = std::string(sample_browser_ua(rng_));
    ++ua_epoch_;  // invalidates the generator's cached ua_token
  }
}

double ScraperBot::next_gap_s() {
  if (profile_.lognormal_gap) {
    return stats::LogNormalDistribution(profile_.gap_median_s,
                                        profile_.gap_sigma)
        .sample(rng_);
  }
  return rng_.exponential(profile_.gap_mean_s);
}

StepResult ScraperBot::step(httplog::Timestamp now, httplog::LogRecord& out) {
  out = httplog::LogRecord{};
  out.ip = current_ip_;
  out.time = now;
  out.user_agent = current_ua_;
  out.truth = httplog::Truth::kMalicious;
  out.actor_id = actor_id_;
  out.actor_class = static_cast<std::uint8_t>(profile_.cls);
  out.referer = rng_.bernoulli(profile_.referer_p)
                    ? "https://shop.example.com/search"
                    : "-";

  // Choose what to hit.
  Endpoint endpoint = Endpoint::kOffer;
  std::size_t item = 0;
  AccessFlags flags;
  const double u = rng_.uniform();
  if (asset_pending_) {
    // Browser mimicry: the asset fetch promised after the last page.
    asset_pending_ = false;
    endpoint = Endpoint::kAsset;
    item = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(site_->asset_count()) - 1));
    out.referer = "https://shop.example.com/offers";
  } else if (rng_.bernoulli(profile_.p_malformed)) {
    // A buggy client: broken percent-encoding / unterminated query. The
    // request line still parses as a target but the server rejects it.
    endpoint = Endpoint::kOffer;
    item = site_->sample_uniform_offer(rng_);
    flags.malformed = true;
  } else if (u < profile_.p_search) {
    endpoint = Endpoint::kSearch;
  } else if (u < profile_.p_search + profile_.p_api) {
    endpoint = Endpoint::kApiAvail;
    item = site_->sample_uniform_offer(rng_);
  } else if (u < profile_.p_search + profile_.p_api + profile_.p_book) {
    endpoint = Endpoint::kBook;
    item = site_->sample_uniform_offer(rng_);
  } else if (u < profile_.p_search + profile_.p_api + profile_.p_book +
                     profile_.p_dead_link) {
    endpoint = Endpoint::kDeadLink;
    item = static_cast<std::size_t>(rng_.uniform_int(0, 50'000));
  } else {
    endpoint = Endpoint::kOffer;
    if (profile_.sweep_sequential) {
      item = sweep_pos_;
      sweep_pos_ = sweep_pos_ % site_->catalogue_size() + 1;
    } else {
      item = site_->sample_uniform_offer(rng_);
    }
    flags.conditional = rng_.bernoulli(profile_.p_conditional);
  }

  out.target = site_->target(endpoint, item, rng_);
  if (flags.malformed) {
    // Corrupt the target the way broken scrapers do.
    out.target += "%zz&&date=";
  }
  const Response resp = site_->respond(endpoint, flags, rng_);
  out.status = resp.status;
  out.bytes = resp.bytes;

  if (endpoint == Endpoint::kOffer &&
      rng_.bernoulli(profile_.p_asset_mimicry)) {
    asset_pending_ = true;  // schedule a camouflage asset fetch
  }

  ++emitted_;
  StepResult result;
  result.emitted = true;

  if (profile_.lifetime_requests != 0 &&
      emitted_ >= profile_.lifetime_requests) {
    return result;  // budget spent; bot retires
  }

  httplog::Timestamp next;
  if (session_remaining_ > 1) {
    --session_remaining_;
    next = now + httplog::seconds_to_micros(next_gap_s());
  } else {
    begin_session();
    next = now + httplog::seconds_to_micros(
                     rng_.exponential(profile_.pause_mean_s));
  }
  if (next < end_time_) result.next = next;
  return result;
}

}  // namespace divscrape::traffic
