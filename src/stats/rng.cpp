#include "stats/rng.hpp"

#include <cmath>

namespace divscrape::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection-free multiply-shift; bias is < 2^-64 * span and
  // irrelevant for simulation purposes.
  const unsigned __int128 product =
      static_cast<unsigned __int128>((*this)()) * span;
  return lo + static_cast<std::int64_t>(product >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; 1 - uniform() is in (0, 1], so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::int64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return std::numeric_limits<std::int64_t>::max();
  // Trials-until-success: ceil(log(U) / log(1-p)).
  const double u = 1.0 - uniform();  // (0, 1]
  const auto trials =
      static_cast<std::int64_t>(std::ceil(std::log(u) / std::log1p(-p)));
  return trials < 1 ? 1 : trials;
}

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

Rng Rng::fork() noexcept {
  return Rng(mix_seed((*this)(), (*this)()));
}

}  // namespace divscrape::stats
