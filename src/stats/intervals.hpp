// Confidence intervals for proportions. Sensitivity/specificity in
// EXPERIMENTS.md are reported with Wilson-score intervals so that shape
// comparisons against the paper aren't over-read from a single run.
#pragma once

#include <cstdint>

namespace divscrape::stats {

/// A two-sided confidence interval for a proportion.
struct ProportionInterval {
  double point = 0.0;  ///< observed proportion successes/trials
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval. `z` defaults to 1.96 (95%). Well-behaved for
/// proportions near 0/1 and small n, unlike the Wald interval.
/// Returns {0,0,0} when trials == 0.
[[nodiscard]] ProportionInterval wilson_interval(std::uint64_t successes,
                                                 std::uint64_t trials,
                                                 double z = 1.96) noexcept;

/// Normal-approximation (Wald) interval, clamped to [0, 1]; provided for
/// comparison and for tests that verify Wilson dominates it near extremes.
[[nodiscard]] ProportionInterval wald_interval(std::uint64_t successes,
                                               std::uint64_t trials,
                                               double z = 1.96) noexcept;

}  // namespace divscrape::stats
