// Histograms and categorical counters used throughout the analysis layer
// (per-status breakdowns, inter-arrival profiles, score distributions).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/state.hpp"

namespace divscrape::stats {

/// Fixed-width binned histogram over [lo, hi) with under/overflow bins.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  /// Approximate quantile (linear within the containing bin); q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Counter over arbitrary ordered keys (e.g. HTTP status codes). Thin map
/// wrapper with merge support and sorted-by-count extraction for reports.
template <typename Key>
class Counter {
 public:
  void add(const Key& k, std::uint64_t n = 1) { counts_[k] += n; }

  [[nodiscard]] std::uint64_t count(const Key& k) const {
    const auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  [[nodiscard]] std::size_t distinct() const { return counts_.size(); }
  [[nodiscard]] bool empty() const { return counts_.empty(); }

  void merge(const Counter& other) {
    for (const auto& [k, v] : other.counts_) counts_[k] += v;
  }

  /// (key, count) pairs sorted by descending count, ties by ascending key —
  /// the order the paper's per-status tables use.
  [[nodiscard]] std::vector<std::pair<Key, std::uint64_t>> by_count() const {
    std::vector<std::pair<Key, std::uint64_t>> out(counts_.begin(),
                                                   counts_.end());
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    return out;
  }

  [[nodiscard]] auto begin() const { return counts_.begin(); }
  [[nodiscard]] auto end() const { return counts_.end(); }

  /// Dump/restore; the backing map is ordered, so serialization is already
  /// deterministic for identical contents.
  void save_state(util::StateWriter& w) const {
    w.u64(counts_.size());
    for (const auto& [k, v] : counts_) {
      util::put_value(w, k);
      w.u64(v);
    }
  }
  [[nodiscard]] bool load_state(util::StateReader& r) {
    counts_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Key k{};
      if (!util::get_value(r, k)) return false;
      counts_[k] = r.u64();
    }
    return r.ok();
  }

 private:
  std::map<Key, std::uint64_t> counts_;
};

/// Shannon entropy (bits) of a categorical counter; 0 for empty counters.
/// Used by the behavioural detector: human navigation has high path entropy,
/// systematic scraping of a template URL has low entropy.
template <typename Key>
[[nodiscard]] double shannon_entropy(const Counter<Key>& counter) {
  const double total = static_cast<double>(counter.total());
  if (total == 0.0) return 0.0;
  double h = 0.0;
  for (const auto& [k, v] : counter) {
    if (v == 0) continue;
    const double p = static_cast<double>(v) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace divscrape::stats
