#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace divscrape::stats {

ZipfDistribution::ZipfDistribution(std::size_t n, double s,
                                   std::size_t table_cap)
    : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfDistribution: s must be >= 0");
  const std::size_t tabled = (table_cap == 0 || table_cap >= n) ? n : table_cap;
  cdf_.resize(tabled);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    if (k <= tabled) cdf_[k - 1] = total;
  }
  total_ = total;
  for (auto& c : cdf_) c /= total;
  if (tabled == n) cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  if (cdf_.size() == n_ || u <= cdf_.back()) {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf_.begin()) + 1, n_);
  }
  // Tail of a capped table: continuous power-law inverse transform over
  // [cap+1, n+1), rank = floor(x). Exact head/tail split, approximate
  // within-tail shape.
  const double head = cdf_.back();
  const double v = (u - head) / (1.0 - head);  // in (0, 1]
  const double a = static_cast<double>(cdf_.size()) + 1.0;
  const double b = static_cast<double>(n_) + 1.0;
  double x;
  if (s_ == 1.0) {
    x = a * std::pow(b / a, v);
  } else {
    const double p = 1.0 - s_;
    x = std::pow(std::pow(a, p) + v * (std::pow(b, p) - std::pow(a, p)),
                 1.0 / p);
  }
  const auto rank = static_cast<std::size_t>(x);
  return std::min(std::max<std::size_t>(rank, cdf_.size() + 1), n_);
}

double ZipfDistribution::pmf(std::size_t k) const noexcept {
  if (k < 1 || k > n_) return 0.0;
  if (k <= cdf_.size()) {
    const double lo = k == 1 ? 0.0 : cdf_[k - 2];
    return cdf_[k - 1] - lo;
  }
  return std::pow(static_cast<double>(k), -s_) / total_;
}

ParetoDistribution::ParetoDistribution(double x_min, double alpha) noexcept
    : x_min_(x_min), alpha_(alpha) {}

double ParetoDistribution::sample(Rng& rng) const noexcept {
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return x_min_ / std::pow(u, 1.0 / alpha_);
}

double ParetoDistribution::mean() const noexcept {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_min_ / (alpha_ - 1.0);
}

LogNormalDistribution::LogNormalDistribution(double median,
                                             double sigma) noexcept
    : mu_(std::log(median)), sigma_(sigma) {}

double LogNormalDistribution::sample(Rng& rng) const noexcept {
  return rng.lognormal(mu_, sigma_);
}

double LogNormalDistribution::median() const noexcept {
  return std::exp(mu_);
}

DiscreteDistribution::DiscreteDistribution(divscrape::span<const double> weights) {
  cdf_.reserve(weights.size());
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument(
          "DiscreteDistribution: weights must be non-negative");
    total += w;
    cdf_.push_back(total);
  }
  if (cdf_.empty()) return;
  if (total <= 0.0)
    throw std::invalid_argument(
        "DiscreteDistribution: total weight must be positive");
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteDistribution::probability(std::size_t i) const noexcept {
  if (i >= cdf_.size()) return 0.0;
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

}  // namespace divscrape::stats
