// Association measures between two binary raters (here: two detectors
// judging the same request stream). These are the classical diversity
// measures from the N-version-programming / classifier-ensemble literature
// that the paper's research programme builds on (Littlewood & Strigini,
// "Redundancy and diversity in security").
//
// All functions take the 2x2 joint counts:
//
//              B alerts   B silent
//   A alerts      a           b
//   A silent      c           d
#pragma once

#include <cstdint>

namespace divscrape::stats {

/// Joint alert counts of two binary detectors over the same stream.
struct PairedCounts {
  std::uint64_t both = 0;        ///< a: alerted by both
  std::uint64_t only_first = 0;  ///< b: alerted by A only
  std::uint64_t only_second = 0; ///< c: alerted by B only
  std::uint64_t neither = 0;     ///< d: alerted by neither

  [[nodiscard]] std::uint64_t total() const noexcept {
    return both + only_first + only_second + neither;
  }
};

/// Yule's Q statistic in [-1, 1]: (ad - bc) / (ad + bc).
/// Q = 1 means perfectly correlated alerting; Q near 0 or negative means
/// diverse detectors — the property the paper is probing for.
/// Returns 0 when ad + bc == 0 (degenerate table).
[[nodiscard]] double q_statistic(const PairedCounts& pc) noexcept;

/// Phi (Pearson) correlation of the two binary indicators, in [-1, 1].
/// Returns 0 for degenerate margins.
[[nodiscard]] double phi_coefficient(const PairedCounts& pc) noexcept;

/// Disagreement measure: fraction of requests on which exactly one detector
/// alerts, (b + c) / n. This is exactly Table 2's "only one" mass as a rate.
[[nodiscard]] double disagreement(const PairedCounts& pc) noexcept;

/// Cohen's kappa: agreement beyond chance, in [-1, 1].
[[nodiscard]] double cohens_kappa(const PairedCounts& pc) noexcept;

/// Result of McNemar's test on the discordant cells (b vs c).
struct McNemarResult {
  double statistic = 0.0;     ///< continuity-corrected chi-square statistic
  double p_value = 1.0;       ///< asymptotic p (1 d.o.f. chi-square)
  std::uint64_t discordant = 0;
};

/// McNemar's test: are the two detectors' marginal alert rates different?
/// In the paper's data the b=43,648 vs c=9,305 asymmetry is the headline
/// observation; this quantifies it.
[[nodiscard]] McNemarResult mcnemar_test(const PairedCounts& pc) noexcept;

/// Upper-tail probability of a chi-square distribution with 1 d.o.f.
[[nodiscard]] double chi_square1_sf(double x) noexcept;

/// Double-fault measure over a *fault* table (cells = simultaneous
/// incorrectness): the fraction of cases where both raters were wrong at
/// once, both/n. The classical lower bound on what any 2-tool adjudication
/// scheme can still get wrong.
[[nodiscard]] double double_fault(const PairedCounts& fault_counts) noexcept;

}  // namespace divscrape::stats
