#include "stats/intervals.hpp"

#include <algorithm>
#include <cmath>

namespace divscrape::stats {

ProportionInterval wilson_interval(std::uint64_t successes,
                                   std::uint64_t trials, double z) noexcept {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

ProportionInterval wald_interval(std::uint64_t successes, std::uint64_t trials,
                                 double z) noexcept {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double margin = z * std::sqrt(p * (1.0 - p) / n);
  return {p, std::max(0.0, p - margin), std::min(1.0, p + margin)};
}

}  // namespace divscrape::stats
