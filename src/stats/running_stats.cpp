#include "stats/running_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace divscrape::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("SlidingWindow: capacity must be >= 1");
}

void SlidingWindow::add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double SlidingWindow::mean() const noexcept {
  return values_.empty() ? 0.0
                         : sum_ / static_cast<double>(values_.size());
}

double SlidingWindow::front() const noexcept {
  return values_.empty() ? 0.0 : values_.front();
}

double SlidingWindow::back() const noexcept {
  return values_.empty() ? 0.0 : values_.back();
}

void SlidingWindow::clear() noexcept {
  values_.clear();
  sum_ = 0.0;
}

}  // namespace divscrape::stats
