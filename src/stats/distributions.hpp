// Heavy-tailed and categorical distributions used by the traffic simulator.
//
// Web workloads are famously heavy-tailed: page popularity follows a Zipf
// law, session lengths and transfer sizes are Pareto/log-normal, and think
// times are log-normal. These small value types wrap the sampling logic so
// actor models read declaratively.
#pragma once

#include <cstddef>
#include <cstdint>
#include "util/span.hpp"
#include <vector>

#include "stats/rng.hpp"

namespace divscrape::stats {

/// Zipf(s, n): ranks 1..n with P(k) proportional to k^-s.
///
/// Sampling is by inverse transform over the precomputed CDF (O(log n) per
/// draw), which is exact and fast enough for catalogue sizes up to millions.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` >= 0 (s == 0 degenerates to uniform ranks).
  ZipfDistribution(std::size_t n, double s);

  /// Returns a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of rank k (1-based).
  [[nodiscard]] double pmf(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;
  double s_;
};

/// Pareto(x_min, alpha): classic heavy tail for burst and session sizes.
class ParetoDistribution {
 public:
  /// `x_min` > 0, `alpha` > 0. Smaller alpha means a heavier tail.
  ParetoDistribution(double x_min, double alpha) noexcept;

  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double x_min() const noexcept { return x_min_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Mean, or +inf when alpha <= 1.
  [[nodiscard]] double mean() const noexcept;

 private:
  double x_min_;
  double alpha_;
};

/// Log-normal parameterized by the *target* median and a shape sigma, which
/// is how think-time literature usually reports it.
class LogNormalDistribution {
 public:
  /// `median` > 0; `sigma` >= 0 is the stddev of the underlying normal.
  LogNormalDistribution(double median, double sigma) noexcept;

  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double median() const noexcept;
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;  // log(median)
  double sigma_;
};

/// Discrete distribution over arbitrary weights (an alias-free linear-CDF
/// sampler; O(log n) per draw). Weights need not be normalized.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  explicit DiscreteDistribution(divscrape::span<const double> weights);

  /// Returns an index in [0, size()). Requires non-empty, positive total.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  /// Normalized probability of index i.
  [[nodiscard]] double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace divscrape::stats
