// Heavy-tailed and categorical distributions used by the traffic simulator.
//
// Web workloads are famously heavy-tailed: page popularity follows a Zipf
// law, session lengths and transfer sizes are Pareto/log-normal, and think
// times are log-normal. These small value types wrap the sampling logic so
// actor models read declaratively.
#pragma once

#include <cstddef>
#include <cstdint>
#include "util/span.hpp"
#include <vector>

#include "stats/rng.hpp"

namespace divscrape::stats {

/// Zipf(s, n): ranks 1..n with P(k) proportional to k^-s.
///
/// Sampling is by inverse transform over the precomputed CDF (O(log n) per
/// draw), which is exact and fast enough for catalogue sizes up to millions.
///
/// For populations where an O(n) table is too much memory (megasite
/// catalogues), pass `table_cap > 0`: the CDF table is truncated to the
/// first `table_cap` ranks (exact head, which carries almost all the mass
/// under a Zipf law) and tail ranks are drawn by a continuous power-law
/// inverse transform over [cap+1, n+1). The tail draw is a documented
/// approximation of the discrete law; head draws and the head/tail split
/// remain exact, total mass is preserved, and memory is O(table_cap)
/// regardless of n. `table_cap == 0` (the default) keeps the exact O(n)
/// table and is bit-compatible with the historical behaviour.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` >= 0 (s == 0 degenerates to uniform ranks).
  ZipfDistribution(std::size_t n, double s, std::size_t table_cap = 0);

  /// Returns a rank in [1, n]. Consumes exactly one uniform draw.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }
  /// Number of ranks with an exact CDF entry (== size() when uncapped).
  [[nodiscard]] std::size_t table_size() const noexcept { return cdf_.size(); }

  /// Probability mass of rank k (1-based). Exact for tabled ranks; for
  /// capped tail ranks this is the true Zipf mass k^-s / H(n, s), which the
  /// continuous tail sampler only approximates rank-by-rank.
  [[nodiscard]] double pmf(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;
  std::size_t n_;
  double s_;
  double total_;  // full harmonic normalizer H(n, s)
};

/// Pareto(x_min, alpha): classic heavy tail for burst and session sizes.
class ParetoDistribution {
 public:
  /// `x_min` > 0, `alpha` > 0. Smaller alpha means a heavier tail.
  ParetoDistribution(double x_min, double alpha) noexcept;

  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double x_min() const noexcept { return x_min_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Mean, or +inf when alpha <= 1.
  [[nodiscard]] double mean() const noexcept;

 private:
  double x_min_;
  double alpha_;
};

/// Log-normal parameterized by the *target* median and a shape sigma, which
/// is how think-time literature usually reports it.
class LogNormalDistribution {
 public:
  /// `median` > 0; `sigma` >= 0 is the stddev of the underlying normal.
  LogNormalDistribution(double median, double sigma) noexcept;

  [[nodiscard]] double sample(Rng& rng) const noexcept;
  [[nodiscard]] double median() const noexcept;
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;  // log(median)
  double sigma_;
};

/// Discrete distribution over arbitrary weights (an alias-free linear-CDF
/// sampler; O(log n) per draw). Weights need not be normalized.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  explicit DiscreteDistribution(divscrape::span<const double> weights);

  /// Returns an index in [0, size()). Requires non-empty, positive total.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  /// Normalized probability of index i.
  [[nodiscard]] double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace divscrape::stats
