#include "stats/association.hpp"

#include <cmath>

namespace divscrape::stats {

namespace {

double as_d(std::uint64_t v) noexcept { return static_cast<double>(v); }

}  // namespace

double q_statistic(const PairedCounts& pc) noexcept {
  const double ad = as_d(pc.both) * as_d(pc.neither);
  const double bc = as_d(pc.only_first) * as_d(pc.only_second);
  const double denom = ad + bc;
  return denom == 0.0 ? 0.0 : (ad - bc) / denom;
}

double phi_coefficient(const PairedCounts& pc) noexcept {
  const double a = as_d(pc.both);
  const double b = as_d(pc.only_first);
  const double c = as_d(pc.only_second);
  const double d = as_d(pc.neither);
  const double denom =
      std::sqrt((a + b) * (c + d) * (a + c) * (b + d));
  return denom == 0.0 ? 0.0 : (a * d - b * c) / denom;
}

double disagreement(const PairedCounts& pc) noexcept {
  const auto n = pc.total();
  return n == 0 ? 0.0 : (as_d(pc.only_first) + as_d(pc.only_second)) / as_d(n);
}

double cohens_kappa(const PairedCounts& pc) noexcept {
  const auto n = pc.total();
  if (n == 0) return 0.0;
  const double nd = as_d(n);
  const double po = (as_d(pc.both) + as_d(pc.neither)) / nd;
  const double p_a = (as_d(pc.both) + as_d(pc.only_first)) / nd;
  const double p_b = (as_d(pc.both) + as_d(pc.only_second)) / nd;
  const double pe = p_a * p_b + (1.0 - p_a) * (1.0 - p_b);
  return pe == 1.0 ? 0.0 : (po - pe) / (1.0 - pe);
}

McNemarResult mcnemar_test(const PairedCounts& pc) noexcept {
  McNemarResult r;
  r.discordant = pc.only_first + pc.only_second;
  if (r.discordant == 0) return r;
  const double b = as_d(pc.only_first);
  const double c = as_d(pc.only_second);
  const double num = std::abs(b - c) - 1.0;  // Edwards continuity correction
  const double corrected = num < 0.0 ? 0.0 : num;
  r.statistic = corrected * corrected / (b + c);
  r.p_value = chi_square1_sf(r.statistic);
  return r;
}

double double_fault(const PairedCounts& fault_counts) noexcept {
  const auto n = fault_counts.total();
  return n == 0 ? 0.0 : as_d(fault_counts.both) / as_d(n);
}

double chi_square1_sf(double x) noexcept {
  if (x <= 0.0) return 1.0;
  // For 1 d.o.f., P(X > x) = erfc(sqrt(x/2)).
  return std::erfc(std::sqrt(x / 2.0));
}

}  // namespace divscrape::stats
