#include "stats/histogram.hpp"

#include <stdexcept>

namespace divscrape::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: requires bins >= 1");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::size_t Histogram::bin_count(std::size_t i) const noexcept {
  return i < counts_.size() ? counts_[i] : 0;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (q <= 0.0) return lo_;
  const auto target = static_cast<double>(total_) * (q >= 1.0 ? 1.0 : q);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace divscrape::stats
