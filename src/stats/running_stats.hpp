// Online descriptive statistics (Welford's algorithm) and a fixed-capacity
// sliding window used by the behavioural detector's per-session features.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/state.hpp"

namespace divscrape::stats {

/// Numerically stable online mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observed values; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance; 0 when fewer than 2 observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-merge identity:
  /// merging shards equals accumulating the concatenated stream).
  void merge(const RunningStats& other) noexcept;

  /// Bit-exact dump/restore of the accumulator (doubles travel as IEEE-754
  /// bit patterns, so a restored accumulator continues identically).
  void save_state(util::StateWriter& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
  }
  [[nodiscard]] bool load_state(util::StateReader& r) {
    n_ = static_cast<std::size_t>(r.u64());
    mean_ = r.f64();
    m2_ = r.f64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    return r.ok();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sliding window over the most recent `capacity` observations with O(1)
/// amortized mean/rate queries. Used for burst-rate features where only the
/// recent past matters.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept {
    return values_.size() == capacity_;
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Oldest retained value; 0 when empty.
  [[nodiscard]] double front() const noexcept;
  /// Newest value; 0 when empty.
  [[nodiscard]] double back() const noexcept;
  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

}  // namespace divscrape::stats
