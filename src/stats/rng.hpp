// Deterministic random number generation for all stochastic components.
//
// Every simulator/actor/detector that needs randomness takes an explicit
// `Rng` (or a seed used to construct one), so that a scenario seed fully
// determines the generated traffic and therefore every reproduced table.
//
// The generator is xoshiro256** (public-domain algorithm by Blackman and
// Vigna): fast, 256-bit state, and — unlike std::mt19937 — its output for a
// given seed is trivially stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace divscrape::stats {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with
/// <random> distributions where cross-platform stability is not required;
/// the member helpers (uniform/bernoulli/exponential/...) are stable
/// everywhere and are what the simulator uses.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by repeated SplitMix64 steps from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(N(mu, sigma)). `mu`/`sigma` are the parameters of the
  /// underlying normal, not the resulting mean.
  double lognormal(double mu, double sigma) noexcept;

  /// Geometric number of trials until first success (>= 1) for success
  /// probability p in (0, 1].
  std::int64_t geometric(double p) noexcept;

  /// Poisson-distributed count with the given mean (> 0); Knuth's method for
  /// small means, normal approximation above 64 to stay O(1).
  std::int64_t poisson(double mean) noexcept;

  /// Derives an independent child generator; used to give each simulated
  /// actor its own stream so actor insertion order cannot perturb others.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step: advances `state` and returns the next output. Exposed for
/// seed-derivation utilities (e.g. hashing an actor id into a seed).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of two values into a well-distributed seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace divscrape::stats
