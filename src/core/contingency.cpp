#include "core/contingency.hpp"

namespace divscrape::core {

std::string_view to_string(AlertCell c) noexcept {
  switch (c) {
    case AlertCell::kBoth: return "both";
    case AlertCell::kNeither: return "neither";
    case AlertCell::kFirstOnly: return "first-only";
    case AlertCell::kSecondOnly: return "second-only";
  }
  return "?";
}

void ContingencyTable::observe(bool first_alert, bool second_alert) noexcept {
  if (first_alert && second_alert)
    ++counts_.both;
  else if (first_alert)
    ++counts_.only_first;
  else if (second_alert)
    ++counts_.only_second;
  else
    ++counts_.neither;
}

void ContingencyTable::merge(const ContingencyTable& other) noexcept {
  counts_.both += other.counts_.both;
  counts_.only_first += other.counts_.only_first;
  counts_.only_second += other.counts_.only_second;
  counts_.neither += other.counts_.neither;
}

AlertCell ContingencyTable::cell(bool first_alert,
                                 bool second_alert) noexcept {
  if (first_alert && second_alert) return AlertCell::kBoth;
  if (first_alert) return AlertCell::kFirstOnly;
  if (second_alert) return AlertCell::kSecondOnly;
  return AlertCell::kNeither;
}

DiversityMetrics DiversityMetrics::from(
    const stats::PairedCounts& counts) noexcept {
  DiversityMetrics m;
  m.q_statistic = stats::q_statistic(counts);
  m.phi = stats::phi_coefficient(counts);
  m.disagreement = stats::disagreement(counts);
  m.kappa = stats::cohens_kappa(counts);
  m.mcnemar = stats::mcnemar_test(counts);
  return m;
}

}  // namespace divscrape::core
