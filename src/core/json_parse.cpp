#include "core/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace divscrape::core {

namespace {

const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;

}  // namespace

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const noexcept {
  if (type_ != Type::kNumber) return fallback;
  // Plain non-negative integer literals are re-parsed exactly; anything
  // with a sign/fraction/exponent falls back to the double (rounded).
  std::uint64_t exact = 0;
  const auto* begin = string_.data();
  const auto* end = begin + string_.size();
  const auto parsed = std::from_chars(begin, end, exact);
  if (parsed.ec == std::errc{} && parsed.ptr == end) return exact;
  if (number_ < 0.0) return fallback;
  return static_cast<std::uint64_t>(number_);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const noexcept {
  if (type_ != Type::kNumber) return fallback;
  std::int64_t exact = 0;
  const auto* begin = string_.data();
  const auto* end = begin + string_.size();
  const auto parsed = std::from_chars(begin, end, exact);
  if (parsed.ec == std::errc{} && parsed.ptr == end) return exact;
  return static_cast<std::int64_t>(number_);
}

const JsonValue::Array& JsonValue::array() const noexcept {
  return type_ == Type::kArray ? array_ : kEmptyArray;
}

const JsonValue::Object& JsonValue::object() const noexcept {
  return type_ == Type::kObject ? object_ : kEmptyObject;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.key == key) return &member.value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const auto* v = find(key);
  return v ? v->as_double(fallback) : fallback;
}

std::int64_t JsonValue::int_or(std::string_view key,
                               std::int64_t fallback) const noexcept {
  const auto* v = find(key);
  return v ? v->as_i64(fallback) : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const noexcept {
  const auto* v = find(key);
  return v ? v->as_u64(fallback) : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const noexcept {
  const auto* v = find(key);
  return v ? v->as_bool(fallback) : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const auto* v = find(key);
  return std::string(v ? v->as_string_view(fallback) : fallback);
}

/// Recursive-descent parser over the input view. Never throws; failures
/// set error_ once (first error wins) and unwind via the ok() checks.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue root;
    skip_whitespace();
    if (!parse_value(root, 0)) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      if (error)
        *error = at_pos("trailing characters after the JSON document");
      return std::nullopt;
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] std::string at_pos(std::string_view why) const {
    return "offset " + std::to_string(pos_) + ": " + std::string(why);
  }

  bool fail(std::string_view why) {
    if (error_.empty()) error_ = at_pos(why);
    return false;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, std::string_view what) {
    if (at_end() || peek() != expected) return fail(what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    if (at_end()) return fail("unexpected end of input, expected a value");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      case 't':
      case 'f':
        return parse_literal(out);
      case 'n':
        return parse_literal(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(JsonValue& out) {
    const auto rest = text_.substr(pos_);
    const auto starts_with = [&rest](std::string_view word) {
      return rest.substr(0, word.size()) == word;
    };
    if (starts_with("true")) {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = true;
      pos_ += 4;
      return true;
    }
    if (starts_with("false")) {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = false;
      pos_ += 5;
      return true;
    }
    if (starts_with("null")) {
      out.type_ = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("expected a JSON value");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected a JSON value");
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digits must follow the decimal point");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digits must follow the exponent");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    out.type_ = JsonValue::Type::kNumber;
    out.string_.assign(text_.substr(start, pos_ - start));
    // strtod over the saved token: from_chars<double> is not universally
    // available in C++17 standard libraries.
    out.number_ = std::strtod(out.string_.c_str(), nullptr);
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected '\"'")) return false;
    out.clear();
    for (;;) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("high surrogate without a low surrogate");
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unexpected low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape sequence");
      }
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!consume('[', "expected '['")) return false;
    out.type_ = JsonValue::Type::kArray;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out.array_.emplace_back();
      if (!parse_value(out.array_.back(), depth + 1)) return false;
      skip_whitespace();
      if (at_end()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']' in array");
      skip_whitespace();
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!consume('{', "expected '{'")) return false;
    out.type_ = JsonValue::Type::kObject;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      JsonValue::Member member;
      if (!parse_string(member.key)) return false;
      skip_whitespace();
      if (!consume(':', "expected ':' after object key")) return false;
      skip_whitespace();
      if (!parse_value(member.value, depth + 1)) return false;
      out.object_.push_back(std::move(member));
      skip_whitespace();
      if (at_end()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace divscrape::core
