// Pairwise alert-diversity accounting: the contingency breakdown of the
// paper's Table 2 and the diversity metrics of the ensemble literature.
#pragma once

#include <cstdint>
#include <string>

#include "stats/association.hpp"
#include "util/state.hpp"

namespace divscrape::core {

/// Which of the two tools alerted on a request (Table 2's four rows).
enum class AlertCell : std::uint8_t {
  kBoth,
  kNeither,
  kFirstOnly,   ///< in the paper's layout: "Distil only"
  kSecondOnly,  ///< "Arcane only"
};

[[nodiscard]] std::string_view to_string(AlertCell c) noexcept;

/// Streaming 2x2 contingency table over two detectors' verdicts.
class ContingencyTable {
 public:
  void observe(bool first_alert, bool second_alert) noexcept;
  void merge(const ContingencyTable& other) noexcept;

  [[nodiscard]] const stats::PairedCounts& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t both() const noexcept { return counts_.both; }
  [[nodiscard]] std::uint64_t neither() const noexcept {
    return counts_.neither;
  }
  [[nodiscard]] std::uint64_t first_only() const noexcept {
    return counts_.only_first;
  }
  [[nodiscard]] std::uint64_t second_only() const noexcept {
    return counts_.only_second;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return counts_.total();
  }
  [[nodiscard]] std::uint64_t first_total() const noexcept {
    return counts_.both + counts_.only_first;
  }
  [[nodiscard]] std::uint64_t second_total() const noexcept {
    return counts_.both + counts_.only_second;
  }

  [[nodiscard]] static AlertCell cell(bool first_alert,
                                      bool second_alert) noexcept;

  void save_state(util::StateWriter& w) const {
    w.u64(counts_.both);
    w.u64(counts_.only_first);
    w.u64(counts_.only_second);
    w.u64(counts_.neither);
  }
  [[nodiscard]] bool load_state(util::StateReader& r) {
    counts_.both = r.u64();
    counts_.only_first = r.u64();
    counts_.only_second = r.u64();
    counts_.neither = r.u64();
    return r.ok();
  }

 private:
  stats::PairedCounts counts_;
};

/// The classical pairwise diversity measures, bundled for reports.
struct DiversityMetrics {
  double q_statistic = 0.0;   ///< Yule's Q in [-1, 1]
  double phi = 0.0;           ///< binary Pearson correlation
  double disagreement = 0.0;  ///< fraction judged by exactly one tool
  double kappa = 0.0;         ///< Cohen's kappa
  stats::McNemarResult mcnemar;

  [[nodiscard]] static DiversityMetrics from(
      const stats::PairedCounts& counts) noexcept;
};

}  // namespace divscrape::core
