// AlertJoiner: runs a detector pool over a record stream and accumulates
// every analysis the reproduction needs in one pass —
//
//   * per-detector alert totals                       (Table 1)
//   * all pairwise contingency tables                 (Table 2, E7)
//   * per-detector alerted-status breakdowns          (Table 3)
//   * unique-alert status breakdowns for the pair     (Table 4)
//   * per-detector confusion matrices vs ground truth (E5)
//   * per-detector alert-reason counters, total and unique-only (E9)
//   * k-out-of-N adjudicated confusion matrices       (E5)
//
// The joiner is deliberately single-pass and streaming: the paper-scale
// stream is 1.47M records and detectors are stateful, so everything that
// can be answered from the joint verdict vector is folded immediately.
#pragma once

#include <cstdint>
#include <memory>
#include "util/span.hpp"
#include <string>
#include <vector>

#include "core/confusion.hpp"
#include "core/contingency.hpp"
#include "detectors/detector.hpp"
#include "stats/histogram.hpp"

namespace divscrape::core {

/// Accumulated results of a joint run. Index order follows the detector
/// pool passed to AlertJoiner.
class JointResults {
 public:
  explicit JointResults(std::vector<std::string> names);

  [[nodiscard]] std::size_t detector_count() const noexcept {
    return names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::uint64_t total_requests() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t alerts(std::size_t detector) const {
    return alert_totals_.at(detector);
  }
  /// Pairwise contingency table (i < j in pool order).
  [[nodiscard]] const ContingencyTable& pair(std::size_t i,
                                             std::size_t j) const;
  /// Pairwise *fault* table (i < j): cells count simultaneous
  /// correctness/incorrectness vs ground truth instead of alerts. The
  /// "both" cell is the classical double-fault mass: requests where both
  /// detectors were wrong at once — the quantity redundancy cannot fix.
  /// Records with unknown truth are excluded.
  [[nodiscard]] const ContingencyTable& fault_pair(std::size_t i,
                                                   std::size_t j) const;
  /// Alerted-request status counter for one detector (Table 3 column).
  [[nodiscard]] const stats::Counter<int>& alerted_status(
      std::size_t detector) const {
    return alerted_status_.at(detector);
  }
  /// Status counter over requests alerted by `detector` and by no other
  /// pool member (Table 4 column).
  [[nodiscard]] const stats::Counter<int>& unique_alert_status(
      std::size_t detector) const {
    return unique_status_.at(detector);
  }
  /// Status counter over all requests (alerted or not).
  [[nodiscard]] const stats::Counter<int>& all_status() const noexcept {
    return all_status_;
  }
  [[nodiscard]] const ConfusionMatrix& confusion(std::size_t detector) const {
    return confusion_.at(detector);
  }
  /// Confusion of the "alert when >= k of the N detectors alert" rule.
  [[nodiscard]] const ConfusionMatrix& k_of_n_confusion(std::size_t k) const {
    return adjudicated_.at(k - 1);
  }
  /// Alert-reason counts for one detector.
  [[nodiscard]] const stats::Counter<std::string>& reasons(
      std::size_t detector) const {
    return reasons_.at(detector);
  }
  /// Alert-reason counts restricted to that detector's unique alerts.
  [[nodiscard]] const stats::Counter<std::string>& unique_reasons(
      std::size_t detector) const {
    return unique_reasons_.at(detector);
  }
  /// Truth composition of the stream (kBenign / kMalicious counts).
  [[nodiscard]] std::uint64_t truth_count(httplog::Truth t) const;

  /// Folds one joint verdict vector in.
  void observe(const httplog::LogRecord& record,
               divscrape::span<const detectors::Verdict> verdicts);

  /// Merges a shard's results (same pool order required).
  void merge(const JointResults& other);

  /// Dump/restore of every accumulated counter (warm checkpointing). Load
  /// validates the blob's detector-name vector against this instance's pool
  /// order and fails — leaving the results zeroed — on any mismatch.
  void save_state(util::StateWriter& w) const;
  [[nodiscard]] bool load_state(util::StateReader& r);

 private:
  [[nodiscard]] std::size_t pair_index(std::size_t i, std::size_t j) const;

  std::vector<std::string> names_;
  std::uint64_t total_ = 0;
  std::uint64_t truth_benign_ = 0;
  std::uint64_t truth_malicious_ = 0;
  std::vector<std::uint64_t> alert_totals_;
  std::vector<ContingencyTable> pairs_;  ///< upper-triangular, row-major
  std::vector<ContingencyTable> fault_pairs_;  ///< same layout, vs truth
  std::vector<stats::Counter<int>> alerted_status_;
  std::vector<stats::Counter<int>> unique_status_;
  stats::Counter<int> all_status_;
  std::vector<ConfusionMatrix> confusion_;
  std::vector<ConfusionMatrix> adjudicated_;  ///< index k-1
  std::vector<stats::Counter<std::string>> reasons_;
  std::vector<stats::Counter<std::string>> unique_reasons_;
};

/// Runs a pool of detectors over records one at a time.
class AlertJoiner {
 public:
  /// Non-owning view of the pool; detectors must outlive the joiner.
  explicit AlertJoiner(divscrape::span<detectors::Detector* const> pool);
  /// Convenience overload for owning pools.
  explicit AlertJoiner(
      const std::vector<std::unique_ptr<detectors::Detector>>& pool);

  /// Evaluates every detector on the record and folds the joint verdict
  /// into the results. Returns the verdict vector (valid until next call).
  divscrape::span<const detectors::Verdict> process(
      const httplog::LogRecord& record);

  [[nodiscard]] const JointResults& results() const noexcept {
    return results_;
  }

  /// Dumps the joiner's warm state: each pool detector's state (by name,
  /// length-prefixed) plus the accumulated results. Returns false without
  /// writing anything if any pool member does not support serialization.
  [[nodiscard]] bool save_state(util::StateWriter& w) const;
  /// Restores from save_state() output. On a name/count mismatch or a
  /// corrupted blob the joiner is reset cold and false is returned.
  [[nodiscard]] bool load_state(util::StateReader& r);
  /// Fresh deployment: resets every pool detector and zeroes the results.
  void reset();

 private:
  std::vector<detectors::Detector*> pool_;
  std::vector<detectors::Verdict> scratch_;
  JointResults results_;
};

}  // namespace divscrape::core
