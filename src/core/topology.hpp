// Deployment topologies — the paper's Section V trade-off between running
// the tools in parallel (both monitor all traffic) and in serial (one tool
// filters; the other only analyzes what survived).
//
// Both topologies are themselves detectors, so they compose: a serial
// cascade can be evaluated against ground truth, joined against other
// detectors, or nested.
//
// Serial semantics matter for stateful detectors: the downstream tool's
// behavioural state evolves only from the traffic that reaches it, so a
// cascade is *not* derivable from the two tools' standalone verdict
// streams — it must be executed. That is exactly what this class does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "detectors/detector.hpp"

namespace divscrape::core {

/// Parallel ensemble with a k-out-of-N alert rule (1oo2 and 2oo2 from the
/// paper are the N=2 cases). Every member sees every request.
class ParallelDeployment final : public detectors::Detector {
 public:
  /// `k` in [1, pool.size()].
  ParallelDeployment(std::vector<std::unique_ptr<detectors::Detector>> pool,
                     std::size_t k);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] detectors::Verdict evaluate(
      const httplog::LogRecord& record) override;
  void reset() override;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }

 private:
  std::vector<std::unique_ptr<detectors::Detector>> pool_;
  std::size_t k_;
  std::string name_;
};

/// Serial cascade: the filter tool inspects everything; requests it alerts
/// on are blocked (alerted) and never reach the analyzer tool. The cascade
/// alert set is filter-alerts plus analyzer-alerts-on-survivors.
class SerialDeployment final : public detectors::Detector {
 public:
  SerialDeployment(std::unique_ptr<detectors::Detector> filter,
                   std::unique_ptr<detectors::Detector> analyzer);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] detectors::Verdict evaluate(
      const httplog::LogRecord& record) override;
  void reset() override;

  /// Requests that reached the analyzer (survived the filter).
  [[nodiscard]] std::uint64_t analyzer_load() const noexcept {
    return analyzer_load_;
  }
  /// Requests seen in total.
  [[nodiscard]] std::uint64_t total_load() const noexcept {
    return total_load_;
  }

 private:
  std::unique_ptr<detectors::Detector> filter_;
  std::unique_ptr<detectors::Detector> analyzer_;
  std::string name_;
  std::uint64_t analyzer_load_ = 0;
  std::uint64_t total_load_ = 0;
};

}  // namespace divscrape::core
