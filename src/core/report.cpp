#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace divscrape::core {

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string as_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string deviation(std::uint64_t measured, std::uint64_t paper) {
  if (paper == 0) return "-";
  const double rel =
      (static_cast<double>(measured) - static_cast<double>(paper)) /
      static_cast<double>(paper);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel * 100.0);
  return buf;
}

std::string shape_verdict(std::uint64_t measured, std::uint64_t paper,
                          double tolerance) {
  if (paper == 0) return measured == 0 ? "ok" : "off";
  if (measured == 0) return "off";
  const double factor =
      static_cast<double>(measured) / static_cast<double>(paper);
  return (factor <= tolerance && factor >= 1.0 / tolerance) ? "ok" : "off";
}

}  // namespace divscrape::core
