#include "core/export.hpp"

#include <set>
#include <sstream>

#include "core/contingency.hpp"
#include "core/json.hpp"

namespace divscrape::core {

namespace {

void write_confusion(JsonWriter& json, const ConfusionMatrix& cm) {
  json.begin_object();
  json.key("tp").value(cm.tp);
  json.key("fp").value(cm.fp);
  json.key("tn").value(cm.tn);
  json.key("fn").value(cm.fn);
  json.key("sensitivity").value(cm.sensitivity());
  json.key("specificity").value(cm.specificity());
  json.key("precision").value(cm.precision());
  json.key("f1").value(cm.f1());
  json.end_object();
}

void write_status_counter(JsonWriter& json,
                          const stats::Counter<int>& counter) {
  json.begin_object();
  for (const auto& [status, count] : counter.by_count()) {
    json.key(std::to_string(status)).value(count);
  }
  json.end_object();
}

}  // namespace

void export_json(const JointResults& results, std::ostream& os) {
  JsonWriter json(os);
  json.begin_object();
  json.key("schema").value("divscrape.joint_results.v1");
  json.key("total_requests").value(results.total_requests());
  json.key("truth").begin_object();
  json.key("benign").value(results.truth_count(httplog::Truth::kBenign));
  json.key("malicious")
      .value(results.truth_count(httplog::Truth::kMalicious));
  json.key("unknown").value(results.truth_count(httplog::Truth::kUnknown));
  json.end_object();

  json.key("detectors").begin_array();
  for (std::size_t d = 0; d < results.detector_count(); ++d) {
    json.begin_object();
    json.key("name").value(results.names()[d]);
    json.key("alerts").value(results.alerts(d));
    json.key("confusion");
    write_confusion(json, results.confusion(d));
    json.key("alerted_status");
    write_status_counter(json, results.alerted_status(d));
    json.key("unique_alert_status");
    write_status_counter(json, results.unique_alert_status(d));
    json.key("reasons").begin_object();
    for (const auto& [reason, count] : results.reasons(d).by_count()) {
      json.key(reason).value(count);
    }
    json.end_object();
    json.key("unique_reasons").begin_object();
    for (const auto& [reason, count] :
         results.unique_reasons(d).by_count()) {
      json.key(reason).value(count);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  json.key("pairs").begin_array();
  for (std::size_t i = 0; i < results.detector_count(); ++i) {
    for (std::size_t j = i + 1; j < results.detector_count(); ++j) {
      const auto& pair = results.pair(i, j);
      const auto metrics = DiversityMetrics::from(pair.counts());
      json.begin_object();
      json.key("first").value(results.names()[i]);
      json.key("second").value(results.names()[j]);
      json.key("both").value(pair.both());
      json.key("neither").value(pair.neither());
      json.key("first_only").value(pair.first_only());
      json.key("second_only").value(pair.second_only());
      json.key("q_statistic").value(metrics.q_statistic);
      json.key("phi").value(metrics.phi);
      json.key("disagreement").value(metrics.disagreement);
      json.key("kappa").value(metrics.kappa);
      json.key("mcnemar_p").value(metrics.mcnemar.p_value);
      json.end_object();
    }
  }
  json.end_array();

  json.key("adjudication").begin_array();
  for (std::size_t k = 1; k <= results.detector_count(); ++k) {
    json.begin_object();
    json.key("k").value(static_cast<std::uint64_t>(k));
    json.key("confusion");
    write_confusion(json, results.k_of_n_confusion(k));
    json.end_object();
  }
  json.end_array();

  json.end_object();
}

std::string to_json(const JointResults& results) {
  std::ostringstream os;
  export_json(results, os);
  return os.str();
}

void export_totals_csv(const JointResults& results, std::ostream& os) {
  os << "detector,alerts,total,tp,fp,tn,fn,sensitivity,specificity,"
        "precision,f1\n";
  for (std::size_t d = 0; d < results.detector_count(); ++d) {
    const auto& cm = results.confusion(d);
    os << results.names()[d] << ',' << results.alerts(d) << ','
       << results.total_requests() << ',' << cm.tp << ',' << cm.fp << ','
       << cm.tn << ',' << cm.fn << ',' << cm.sensitivity() << ','
       << cm.specificity() << ',' << cm.precision() << ',' << cm.f1()
       << '\n';
  }
}

void export_pairs_csv(const JointResults& results, std::ostream& os) {
  os << "first,second,both,neither,first_only,second_only,q,phi,"
        "disagreement,kappa\n";
  for (std::size_t i = 0; i < results.detector_count(); ++i) {
    for (std::size_t j = i + 1; j < results.detector_count(); ++j) {
      const auto& pair = results.pair(i, j);
      const auto m = DiversityMetrics::from(pair.counts());
      os << results.names()[i] << ',' << results.names()[j] << ','
         << pair.both() << ',' << pair.neither() << ',' << pair.first_only()
         << ',' << pair.second_only() << ',' << m.q_statistic << ',' << m.phi
         << ',' << m.disagreement << ',' << m.kappa << '\n';
    }
  }
}

void export_status_csv(const JointResults& results, std::ostream& os) {
  os << "detector,status,alerted,unique\n";
  for (std::size_t d = 0; d < results.detector_count(); ++d) {
    std::set<int> statuses;
    for (const auto& [status, count] : results.alerted_status(d))
      statuses.insert(status);
    for (const auto& [status, count] : results.unique_alert_status(d))
      statuses.insert(status);
    for (const int status : statuses) {
      os << results.names()[d] << ',' << status << ','
         << results.alerted_status(d).count(status) << ','
         << results.unique_alert_status(d).count(status) << '\n';
    }
  }
}

}  // namespace divscrape::core
