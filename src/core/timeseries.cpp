#include "core/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace divscrape::core {

TimeSeriesCollector::TimeSeriesCollector(std::size_t detector_count,
                                         httplog::Timestamp origin,
                                         double bucket_width_s)
    : detector_count_(detector_count),
      origin_(origin),
      width_s_(bucket_width_s) {
  if (bucket_width_s <= 0.0)
    throw std::invalid_argument(
        "TimeSeriesCollector: bucket width must be positive");
}

void TimeSeriesCollector::observe(
    const httplog::LogRecord& record,
    divscrape::span<const detectors::Verdict> verdicts) {
  const auto delta = record.time - origin_;
  if (delta < 0) return;  // before the observation window
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(delta) / 1e6 / width_s_);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1);
    for (auto& b : buckets_) {
      if (b.alerts.empty()) b.alerts.assign(detector_count_, 0);
    }
  }
  TimeBucket& bucket = buckets_[idx];
  if (bucket.alerts.empty()) bucket.alerts.assign(detector_count_, 0);
  ++bucket.requests;
  bucket.malicious += record.truth == httplog::Truth::kMalicious;
  const std::size_t n = std::min(detector_count_, verdicts.size());
  for (std::size_t d = 0; d < n; ++d) {
    bucket.alerts[d] += verdicts[d].alert;
  }
}

std::size_t TimeSeriesCollector::peak_bucket() const noexcept {
  if (buckets_.empty()) return SIZE_MAX;
  std::size_t best = 0;
  for (std::size_t i = 1; i < buckets_.size(); ++i) {
    if (buckets_[i].requests > buckets_[best].requests) best = i;
  }
  return best;
}

void TimeSeriesCollector::print(std::ostream& os,
                                divscrape::span<const std::string> names,
                                std::size_t stride) const {
  if (stride == 0) stride = 1;
  char line[256];
  std::snprintf(line, sizeof line, "  %-22s %10s %10s", "bucket start",
                "requests", "malicious");
  os << line;
  for (const auto& name : names) {
    std::snprintf(line, sizeof line, " %12s", name.c_str());
    os << line;
  }
  os << '\n';
  for (std::size_t i = 0; i < buckets_.size(); i += stride) {
    TimeBucket merged;
    merged.alerts.assign(detector_count_, 0);
    for (std::size_t j = i; j < std::min(i + stride, buckets_.size()); ++j) {
      merged.requests += buckets_[j].requests;
      merged.malicious += buckets_[j].malicious;
      for (std::size_t d = 0;
           d < detector_count_ && d < buckets_[j].alerts.size(); ++d)
        merged.alerts[d] += buckets_[j].alerts[d];
    }
    const auto start =
        origin_ + static_cast<std::int64_t>(static_cast<double>(i) *
                                            width_s_ * 1e6);
    std::snprintf(line, sizeof line, "  %-22s %10llu %10llu",
                  start.to_iso8601().c_str(),
                  static_cast<unsigned long long>(merged.requests),
                  static_cast<unsigned long long>(merged.malicious));
    os << line;
    for (std::size_t d = 0; d < detector_count_; ++d) {
      const double rate =
          merged.requests == 0
              ? 0.0
              : static_cast<double>(merged.alerts[d]) /
                    static_cast<double>(merged.requests);
      std::snprintf(line, sizeof line, " %11.1f%%", rate * 100.0);
      os << line;
    }
    os << '\n';
  }
}

void TimeSeriesCollector::export_csv(
    std::ostream& os, divscrape::span<const std::string> names) const {
  os << "bucket_start,requests,malicious";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto start =
        origin_ + static_cast<std::int64_t>(static_cast<double>(i) *
                                            width_s_ * 1e6);
    os << start.to_iso8601() << ',' << buckets_[i].requests << ','
       << buckets_[i].malicious;
    for (std::size_t d = 0; d < detector_count_; ++d) {
      os << ','
         << (d < buckets_[i].alerts.size() ? buckets_[i].alerts[d] : 0);
    }
    os << '\n';
  }
}

}  // namespace divscrape::core
