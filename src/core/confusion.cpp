#include "core/confusion.hpp"

namespace divscrape::core {

namespace {
double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

void ConfusionMatrix::observe(httplog::Truth truth, bool alert) noexcept {
  switch (truth) {
    case httplog::Truth::kMalicious:
      alert ? ++tp : ++fn;
      break;
    case httplog::Truth::kBenign:
      alert ? ++fp : ++tn;
      break;
    case httplog::Truth::kUnknown:
      break;
  }
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) noexcept {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
}

double ConfusionMatrix::sensitivity() const noexcept {
  return ratio(tp, tp + fn);
}
double ConfusionMatrix::specificity() const noexcept {
  return ratio(tn, tn + fp);
}
double ConfusionMatrix::precision() const noexcept { return ratio(tp, tp + fp); }
double ConfusionMatrix::accuracy() const noexcept {
  return ratio(tp + tn, total());
}
double ConfusionMatrix::f1() const noexcept {
  const double p = precision();
  const double r = sensitivity();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}
double ConfusionMatrix::false_positive_rate() const noexcept {
  return ratio(fp, fp + tn);
}
double ConfusionMatrix::false_negative_rate() const noexcept {
  return ratio(fn, fn + tp);
}

stats::ProportionInterval ConfusionMatrix::sensitivity_ci(
    double z) const noexcept {
  return stats::wilson_interval(tp, tp + fn, z);
}
stats::ProportionInterval ConfusionMatrix::specificity_ci(
    double z) const noexcept {
  return stats::wilson_interval(tn, tn + fp, z);
}

}  // namespace divscrape::core
