#include "core/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace divscrape::core {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_top_level_)
      throw std::logic_error("JsonWriter: multiple top-level values");
    wrote_top_level_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.scope == Scope::kObject) {
    if (!top.expecting_value)
      throw std::logic_error("JsonWriter: value without key inside object");
    top.expecting_value = false;
    return;
  }
  // Array member.
  if (!top.first) *os_ << ',';
  top.first = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      stack_.back().expecting_value)
    throw std::logic_error("JsonWriter: mismatched end_object");
  stack_.pop_back();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().scope != Scope::kArray)
    throw std::logic_error("JsonWriter: mismatched end_array");
  stack_.pop_back();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      stack_.back().expecting_value)
    throw std::logic_error("JsonWriter: key outside object");
  Frame& top = stack_.back();
  if (!top.first) *os_ << ',';
  top.first = false;
  top.expecting_value = true;
  *os_ << '"' << json_escape(name) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  *os_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (std::isnan(number) || std::isinf(number)) {
    *os_ << "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", number);
    *os_ << buf;
  }
  return *this;
}

JsonWriter& JsonWriter::value_exact(double number) {
  if (std::isnan(number) || std::isinf(number)) return value(number);
  char buf[40];
  for (int precision = 12; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, number);
    if (std::strtod(buf, nullptr) == number) break;
  }
  before_value();
  *os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  *os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  *os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  *os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

}  // namespace divscrape::core
