#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace divscrape::core {

namespace {

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

}  // namespace

bool KeyValueConfig::parse(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool clean = true;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      errors_.push_back("line " + std::to_string(line_no) + ": missing '='");
      clean = false;
      continue;
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      errors_.push_back("line " + std::to_string(line_no) + ": empty key");
      clean = false;
      continue;
    }
    values_[key] = value;
  }
  return clean;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  values_[trim(key)] = trim(value);
}

std::optional<std::string> KeyValueConfig::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_[key] = true;
  return it->second;
}

double KeyValueConfig::get_double(const std::string& key,
                                  double fallback) const {
  const auto text = get(key);
  if (!text) return fallback;
  try {
    return std::stod(*text);
  } catch (...) {
    return fallback;
  }
}

std::int64_t KeyValueConfig::get_int(const std::string& key,
                                     std::int64_t fallback) const {
  const auto text = get(key);
  if (!text) return fallback;
  std::int64_t value = 0;
  const auto* begin = text->data();
  const auto* end = begin + text->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return (ec == std::errc{} && ptr == end) ? value : fallback;
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  const auto text = get(key);
  if (!text) return fallback;
  std::string lower = *text;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  return fallback;
}

std::vector<std::string> KeyValueConfig::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    const auto it = consumed_.find(key);
    if (it == consumed_.end() || !it->second) out.push_back(key);
  }
  return out;
}

void apply_scenario_config(const KeyValueConfig& config,
                           traffic::ScenarioConfig& scenario) {
  scenario.seed = static_cast<std::uint64_t>(
      config.get_int("scenario.seed",
                     static_cast<std::int64_t>(scenario.seed)));
  scenario.scale = config.get_double("scenario.scale", scenario.scale);
  scenario.duration_days =
      config.get_double("scenario.duration_days", scenario.duration_days);
  scenario.human_arrivals_per_s = config.get_double(
      "scenario.human_arrivals_per_s", scenario.human_arrivals_per_s);
  scenario.human_in_botnet_subnet_p =
      config.get_double("scenario.human_in_botnet_subnet_p",
                        scenario.human_in_botnet_subnet_p);
  scenario.campaigns = static_cast<int>(
      config.get_int("scenario.campaigns", scenario.campaigns));
  scenario.bots_per_campaign = static_cast<int>(config.get_int(
      "scenario.bots_per_campaign", scenario.bots_per_campaign));
  scenario.slow_bots_per_campaign = static_cast<int>(config.get_int(
      "scenario.slow_bots_per_campaign", scenario.slow_bots_per_campaign));
  scenario.stealth_bots = static_cast<int>(
      config.get_int("scenario.stealth_bots", scenario.stealth_bots));
  scenario.api_clean_bots = static_cast<int>(
      config.get_int("scenario.api_clean_bots", scenario.api_clean_bots));
  scenario.api_fleet_bots = static_cast<int>(
      config.get_int("scenario.api_fleet_bots", scenario.api_fleet_bots));
  scenario.malformed_bots = static_cast<int>(
      config.get_int("scenario.malformed_bots", scenario.malformed_bots));
  scenario.caching_bots = static_cast<int>(
      config.get_int("scenario.caching_bots", scenario.caching_bots));
  scenario.crawler_count = static_cast<int>(
      config.get_int("scenario.crawler_count", scenario.crawler_count));
  scenario.monitor_count = static_cast<int>(
      config.get_int("scenario.monitor_count", scenario.monitor_count));
  scenario.site.catalogue_size = static_cast<std::size_t>(config.get_int(
      "scenario.catalogue_size",
      static_cast<std::int64_t>(scenario.site.catalogue_size)));
}

void apply_sentinel_config(const KeyValueConfig& config,
                           detectors::SentinelConfig& sentinel) {
  sentinel.burst_limit = static_cast<int>(
      config.get_int("sentinel.burst_limit", sentinel.burst_limit));
  sentinel.burst_window_s =
      config.get_double("sentinel.burst_window_s", sentinel.burst_window_s);
  sentinel.sustained_limit = static_cast<int>(
      config.get_int("sentinel.sustained_limit", sentinel.sustained_limit));
  sentinel.sustained_window_s = config.get_double(
      "sentinel.sustained_window_s", sentinel.sustained_window_s);
  sentinel.reputation_ttl_s = config.get_double("sentinel.reputation_ttl_s",
                                                sentinel.reputation_ttl_s);
  sentinel.subnet_flag_threshold = static_cast<int>(
      config.get_int("sentinel.subnet_flag_threshold",
                     sentinel.subnet_flag_threshold));
  sentinel.enable_reputation = config.get_bool("sentinel.enable_reputation",
                                               sentinel.enable_reputation);
  sentinel.enable_subnet_escalation =
      config.get_bool("sentinel.enable_subnet_escalation",
                      sentinel.enable_subnet_escalation);
  sentinel.enable_fingerprinting =
      config.get_bool("sentinel.enable_fingerprinting",
                      sentinel.enable_fingerprinting);
}

void apply_arcane_config(const KeyValueConfig& config,
                         detectors::ArcaneConfig& arcane) {
  arcane.window_s = config.get_double("arcane.window_s", arcane.window_s);
  arcane.min_requests = static_cast<int>(
      config.get_int("arcane.min_requests", arcane.min_requests));
  arcane.alert_threshold =
      config.get_double("arcane.alert_threshold", arcane.alert_threshold);
  arcane.volume_high = static_cast<int>(
      config.get_int("arcane.volume_high", arcane.volume_high));
  arcane.volume_medium = static_cast<int>(
      config.get_int("arcane.volume_medium", arcane.volume_medium));
  arcane.declared_bot_grace = static_cast<int>(config.get_int(
      "arcane.declared_bot_grace", arcane.declared_bot_grace));
}

}  // namespace divscrape::core
