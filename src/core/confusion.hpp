// Confusion-matrix evaluation against ground truth — the analysis the
// paper's Section V says labelled data will enable (sensitivity and
// specificity per tool and per adjudication scheme).
#pragma once

#include <cstdint>

#include "httplog/record.hpp"
#include "stats/intervals.hpp"
#include "util/state.hpp"

namespace divscrape::core {

/// Binary confusion counts with rate accessors and Wilson intervals.
struct ConfusionMatrix {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  /// Folds one (truth, alert) observation in. Unknown truth is skipped.
  void observe(httplog::Truth truth, bool alert) noexcept;
  void merge(const ConfusionMatrix& other) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return tp + fp + tn + fn;
  }
  /// Sensitivity (recall, TPR): alerted fraction of malicious requests.
  [[nodiscard]] double sensitivity() const noexcept;
  /// Specificity (TNR): silent fraction of benign requests.
  [[nodiscard]] double specificity() const noexcept;
  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double accuracy() const noexcept;
  [[nodiscard]] double f1() const noexcept;
  [[nodiscard]] double false_positive_rate() const noexcept;
  [[nodiscard]] double false_negative_rate() const noexcept;

  [[nodiscard]] stats::ProportionInterval sensitivity_ci(
      double z = 1.96) const noexcept;
  [[nodiscard]] stats::ProportionInterval specificity_ci(
      double z = 1.96) const noexcept;

  void save_state(util::StateWriter& w) const {
    w.u64(tp);
    w.u64(fp);
    w.u64(tn);
    w.u64(fn);
  }
  [[nodiscard]] bool load_state(util::StateReader& r) {
    tp = r.u64();
    fp = r.u64();
    tn = r.u64();
    fn = r.u64();
    return r.ok();
  }
};

}  // namespace divscrape::core
