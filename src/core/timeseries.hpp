// Time-series view of a joint run: per-bucket (default hourly) request
// and alert counts per detector, plus truth composition. This is the
// "figure" layer a longer version of the paper would plot — alert-rate
// curves over the 8 observed days, diurnal structure, campaign bursts.
#pragma once

#include <cstdint>
#include <ostream>
#include "util/span.hpp"
#include <vector>

#include "detectors/detector.hpp"
#include "httplog/record.hpp"

namespace divscrape::core {

/// One time bucket's aggregates.
struct TimeBucket {
  std::uint64_t requests = 0;
  std::uint64_t malicious = 0;  ///< ground-truth malicious requests
  std::vector<std::uint64_t> alerts;  ///< per detector, pool order
};

/// Streaming collector: bucket index = (t - origin) / width.
class TimeSeriesCollector {
 public:
  /// `origin` is bucket 0's start; `bucket_width_s` > 0.
  TimeSeriesCollector(std::size_t detector_count, httplog::Timestamp origin,
                      double bucket_width_s = 3600.0);

  void observe(const httplog::LogRecord& record,
               divscrape::span<const detectors::Verdict> verdicts);

  [[nodiscard]] const std::vector<TimeBucket>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] httplog::Timestamp origin() const noexcept { return origin_; }
  [[nodiscard]] double bucket_width_s() const noexcept { return width_s_; }

  /// Index of the bucket with the most requests; SIZE_MAX when empty.
  [[nodiscard]] std::size_t peak_bucket() const noexcept;

  /// Renders an ASCII sparkline-style table: one row per bucket with
  /// request volume and per-detector alert rates. `stride` merges display
  /// rows (e.g. 24 = daily rows over hourly buckets).
  void print(std::ostream& os, divscrape::span<const std::string> names,
             std::size_t stride = 1) const;

  /// CSV long form: bucket_start_iso,requests,malicious,<name> columns.
  void export_csv(std::ostream& os,
                  divscrape::span<const std::string> names) const;

 private:
  std::size_t detector_count_;
  httplog::Timestamp origin_;
  double width_s_;
  std::vector<TimeBucket> buckets_;
};

}  // namespace divscrape::core
