// Plain-text table rendering for the bench harnesses and examples: aligned
// columns, thousands separators, and paper-vs-measured comparison rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace divscrape::core {

/// Formats 1469744 as "1,469,744".
[[nodiscard]] std::string with_thousands(std::uint64_t value);

/// Formats a ratio as a percentage with one decimal ("86.8%").
[[nodiscard]] std::string as_percent(double fraction);

/// Simple aligned-column text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Relative deviation |measured - paper| / paper, as a display string; "-"
/// when the paper value is 0.
[[nodiscard]] std::string deviation(std::uint64_t measured,
                                    std::uint64_t paper);

/// Shape verdict between a measured and a paper count: "ok" within the
/// factor band [1/tolerance, tolerance], "off" otherwise.
[[nodiscard]] std::string shape_verdict(std::uint64_t measured,
                                        std::uint64_t paper,
                                        double tolerance = 2.0);

}  // namespace divscrape::core
