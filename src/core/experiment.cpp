#include "core/experiment.hpp"

#include <chrono>
#include <cstdio>

#include "detectors/registry.hpp"

namespace divscrape::core {

ExperimentOutput run_experiment(
    const ExperimentConfig& config,
    const std::vector<std::unique_ptr<detectors::Detector>>& pool) {
  for (const auto& d : pool) d->reset();

  traffic::Scenario scenario(config.scenario);
  AlertJoiner joiner(pool);

  const auto t0 = std::chrono::steady_clock::now();
  httplog::LogRecord record;
  std::uint64_t count = 0;
  while (scenario.next(record)) {
    (void)joiner.process(record);
    ++count;
    if (config.progress_every != 0 && count % config.progress_every == 0) {
      std::fprintf(stderr, "  ... %llu records\n",
                   static_cast<unsigned long long>(count));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  ExperimentOutput out{joiner.results(), count,
                       std::chrono::duration<double>(t1 - t0).count()};
  return out;
}

ExperimentOutput run_paper_experiment(const ExperimentConfig& config) {
  const auto pool = detectors::make_paper_pair();
  return run_experiment(config, pool);
}

}  // namespace divscrape::core
