#include "core/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace divscrape::core {

ParallelDeployment::ParallelDeployment(
    std::vector<std::unique_ptr<detectors::Detector>> pool, std::size_t k)
    : pool_(std::move(pool)), k_(k) {
  if (pool_.empty())
    throw std::invalid_argument("ParallelDeployment: empty pool");
  if (k_ < 1 || k_ > pool_.size())
    throw std::invalid_argument(
        "ParallelDeployment: k must be in [1, pool size]");
  name_ = std::to_string(k_) + "oo" + std::to_string(pool_.size()) + "(";
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (i > 0) name_ += ',';
    name_ += pool_[i]->name();
  }
  name_ += ')';
}

detectors::Verdict ParallelDeployment::evaluate(
    const httplog::LogRecord& record) {
  std::size_t alerts = 0;
  double max_score = 0.0;
  detectors::Verdict first_alerting{};
  for (auto& d : pool_) {
    const auto v = d->evaluate(record);
    max_score = std::max(max_score, v.score);
    if (v.alert) {
      ++alerts;
      if (alerts == 1) first_alerting = v;
    }
  }
  if (alerts >= k_) {
    return {true, max_score, first_alerting.reason};
  }
  return {false, max_score, detectors::AlertReason::kNone};
}

void ParallelDeployment::reset() {
  for (auto& d : pool_) d->reset();
}

SerialDeployment::SerialDeployment(
    std::unique_ptr<detectors::Detector> filter,
    std::unique_ptr<detectors::Detector> analyzer)
    : filter_(std::move(filter)), analyzer_(std::move(analyzer)) {
  if (!filter_ || !analyzer_)
    throw std::invalid_argument("SerialDeployment: null stage");
  name_ = "serial(";
  name_ += filter_->name();
  name_ += "->";
  name_ += analyzer_->name();
  name_ += ')';
}

detectors::Verdict SerialDeployment::evaluate(
    const httplog::LogRecord& record) {
  ++total_load_;
  const auto filtered = filter_->evaluate(record);
  if (filtered.alert) return filtered;
  ++analyzer_load_;
  return analyzer_->evaluate(record);
}

void SerialDeployment::reset() {
  filter_->reset();
  analyzer_->reset();
  analyzer_load_ = 0;
  total_load_ = 0;
}

}  // namespace divscrape::core
