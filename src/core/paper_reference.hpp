// The published numbers from the paper's Tables 1-4, used by the bench
// harnesses to print paper-vs-measured rows and by EXPERIMENTS.md.
//
// Source: Marques et al., "Using Diverse Detectors for Detecting Malicious
// Web Scraping Activity", DSN 2018 — Amadeus production traffic, March
// 11-18 2018. In this repository "Distil" maps to SentinelDetector and
// "Arcane" to ArcaneDetector.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace divscrape::core::paper {

// ---- Table 1: HTTP requests alerted by the two tools ----
inline constexpr std::uint64_t kTotalRequests = 1'469'744;
inline constexpr std::uint64_t kDistilAlerts = 1'275'056;
inline constexpr std::uint64_t kArcaneAlerts = 1'240'713;

// ---- Table 2: diversity in the alerting behaviour ----
inline constexpr std::uint64_t kBoth = 1'231'408;
inline constexpr std::uint64_t kNeither = 185'383;
inline constexpr std::uint64_t kArcaneOnly = 9'305;
inline constexpr std::uint64_t kDistilOnly = 43'648;

/// (status, count) rows in the order the paper prints them.
using StatusRows = std::vector<std::pair<int, std::uint64_t>>;

// ---- Table 3: alerted requests by HTTP status, overall ----
[[nodiscard]] inline StatusRows table3_arcane() {
  return {{200, 1'204'241}, {302, 34'561}, {204, 1'560}, {400, 256},
          {304, 76},        {500, 11},     {404, 8}};
}
[[nodiscard]] inline StatusRows table3_distil() {
  return {{200, 1'239'079}, {302, 34'832}, {204, 1'018}, {400, 73},
          {404, 32},        {304, 15},     {500, 6},     {403, 1}};
}

// ---- Table 4: status of requests alerted by only one tool ----
[[nodiscard]] inline StatusRows table4_arcane_only() {
  return {{200, 7'693}, {204, 956}, {302, 321}, {400, 247},
          {304, 76},    {404, 7},   {500, 5}};
}
[[nodiscard]] inline StatusRows table4_distil_only() {
  return {{200, 42'531}, {302, 592}, {204, 414}, {400, 64},
          {404, 31},     {304, 15},  {403, 1}};
}

}  // namespace divscrape::core::paper
