// Minimal streaming JSON writer (no DOM, no dependencies) used by the
// export and alert-log subsystems. Produces RFC 8259-conformant output:
// proper string escaping, no trailing commas, stable member order (the
// caller's call order).
//
// Usage:
//   JsonWriter json(os);
//   json.begin_object();
//   json.key("name").value("sentinel");
//   json.key("alerts").value(std::uint64_t{1275056});
//   json.key("cells").begin_array();
//   json.value(1).value(2);
//   json.end_array();
//   json.end_object();
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace divscrape::core {

/// Escapes a string for inclusion in a JSON document (adds no quotes).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Streaming writer with nesting-state tracking. Misuse (e.g. two values
/// without a key inside an object) throws std::logic_error — catching
/// serializer bugs at the source.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  /// Like value(double) but with just enough digits for the literal to
  /// parse back to the identical double (shortest of %.12g..%.17g that
  /// round-trips) — for codecs whose documents must reload bit-exactly
  /// (e.g. scenario specs), where the default 12 significant digits can
  /// silently drift values like 1.0/24.0.
  JsonWriter& value_exact(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// True when every opened scope has been closed.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_top_level_;
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();

  std::ostream* os_;
  struct Frame {
    Scope scope;
    bool first = true;
    bool expecting_value = false;  ///< object: key written, value pending
  };
  std::vector<Frame> stack_;
  bool wrote_top_level_ = false;
};

}  // namespace divscrape::core
