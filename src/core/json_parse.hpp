// Minimal JSON document parser — the read-side counterpart to JsonWriter.
//
// The repository's serialized artifacts (checkpoints, results, scenario
// specs) are all small configuration-sized documents, so this is a plain
// recursive-descent parser into an owning DOM value, with positions in
// error messages and a nesting-depth limit instead of cleverness. RFC 8259
// input is accepted: objects, arrays, strings (with \uXXXX escapes,
// surrogate pairs included), numbers, booleans, null.
//
// Design notes:
//   * Objects preserve member order in a flat vector (no std::map): specs
//     round-trip in the order the writer emitted, and lookup sets are far
//     too small for hashing to matter.
//   * Numbers are stored as double. Unsigned 64-bit values above 2^53
//     (e.g. hash-valued seeds) would lose precision through a double, so
//     `as_u64` re-reads the original token text when it was a plain
//     integer literal.
//   * Duplicate keys keep the first occurrence (find() returns the first),
//     matching what a streaming reader would do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace divscrape::core {

/// One parsed JSON value; a whole document is the root value.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  struct Member;  // {key, value}
  using Object = std::vector<Member>;

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Typed reads with a fallback for absent/mistyped values.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  /// Precision-preserving unsigned read: parses the literal token again
  /// when the value was written as a plain non-negative integer (doubles
  /// cannot carry a full 64-bit seed or hash).
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] const std::string& as_string(
      const std::string& fallback) const noexcept {
    return type_ == Type::kString ? string_ : fallback;
  }
  [[nodiscard]] std::string_view as_string_view(
      std::string_view fallback = {}) const noexcept {
    return type_ == Type::kString ? std::string_view(string_) : fallback;
  }

  /// Container access; empty containers for mismatched types.
  [[nodiscard]] const Array& array() const noexcept;
  [[nodiscard]] const Object& object() const noexcept;

  /// First member named `key`, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // --- object member convenience reads (fallback on absent/mistyped) ---
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const noexcept;
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;   ///< string value; for numbers, the literal token
  Array array_;
  Object object_;
};

struct JsonValue::Member {
  std::string key;
  JsonValue value;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed,
/// anything else after the root value is an error). On failure returns
/// nullopt and, when `error` is non-null, a one-line "offset N: why"
/// description.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace divscrape::core
