// Dataset labelling — the paper's immediate next step ("The Amadeus team
// is currently working on labelling the dataset").
//
// Real access logs carry no ground truth; analysts label them
// retrospectively at *session* granularity using conservative heuristics
// plus manual review. HeuristicLabeler reproduces that workflow
// programmatically:
//
//   1. sessionize the unlabelled stream;
//   2. score each session with high-precision rules on both ends
//      (certainly-automated vs certainly-human);
//   3. label every record of a confidently-judged session; leave the rest
//      kUnknown (the honest analyst position: partial labels).
//
// Against simulator traffic (where hidden truth exists) the labeller's
// output can itself be audited — agreement rate, kappa, and the coverage/
// purity trade-off as the confidence margin moves. That audit is exactly
// what an operator needs before trusting labels enough to compute the
// paper's sensitivity/specificity tables on production data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "httplog/record.hpp"
#include "httplog/session.hpp"

namespace divscrape::core {

/// Heuristic thresholds. Defaults are deliberately conservative: rules
/// only fire on behaviour that is unambiguous at session granularity.
struct LabelerConfig {
  double session_timeout_s = 1800.0;
  /// Sessions shorter than this stay kUnknown (not enough evidence).
  std::uint64_t min_session_requests = 5;

  // --- automation evidence (each adds +1 to the bot score) ---
  double bot_rate_rps = 1.0;          ///< sustained request rate
  double bot_max_asset_ratio = 0.02;  ///< claimed browser fetching no assets
  double bot_max_template_entropy = 0.8;
  double bot_max_referer_ratio = 0.05;
  double bot_min_error_ratio = 0.2;
  std::uint64_t bot_min_requests_for_starvation = 30;

  // --- human evidence (each adds +1 to the human score) ---
  double human_min_asset_ratio = 0.15;
  double human_min_referer_ratio = 0.5;
  double human_min_template_entropy = 1.2;
  double human_max_rate_rps = 0.25;

  /// Score margin required to emit a label (bot - human >= margin -> bot;
  /// human - bot >= margin -> benign). Larger = higher purity, lower
  /// coverage.
  int decision_margin = 2;
};

/// Outcome of labelling one stream.
struct LabelingResult {
  std::uint64_t records = 0;
  std::uint64_t labeled_malicious = 0;
  std::uint64_t labeled_benign = 0;
  std::uint64_t left_unknown = 0;

  [[nodiscard]] double coverage() const noexcept {
    return records == 0
               ? 0.0
               : static_cast<double>(labeled_malicious + labeled_benign) /
                     static_cast<double>(records);
  }
};

/// Agreement of heuristic labels with a reference truth (only over
/// records where the labeller decided).
struct LabelAudit {
  std::uint64_t decided = 0;
  std::uint64_t agree = 0;
  std::uint64_t false_malicious = 0;  ///< labelled malicious, truly benign
  std::uint64_t false_benign = 0;     ///< labelled benign, truly malicious

  [[nodiscard]] double agreement() const noexcept {
    return decided == 0
               ? 0.0
               : static_cast<double>(agree) / static_cast<double>(decided);
  }
};

class HeuristicLabeler {
 public:
  explicit HeuristicLabeler(LabelerConfig config = LabelerConfig{});

  /// Labels `records` in place (overwrites `truth` with the heuristic
  /// verdict, or kUnknown). Returns the tally.
  ///
  /// The declared-bot question: self-identified crawlers are labelled
  /// *benign* (matching the paper's framing, where "malicious" means
  /// scraping abuse, not automation per se).
  LabelingResult label(std::vector<httplog::LogRecord>& records) const;

  /// Session-level verdict (exposed for tests and tuning).
  [[nodiscard]] httplog::Truth judge(const httplog::Session& session) const;

  /// Compares heuristic labels against reference truths captured before
  /// labelling. Vectors must be index-aligned.
  [[nodiscard]] static LabelAudit audit(
      const std::vector<httplog::Truth>& reference,
      const std::vector<httplog::LogRecord>& labeled);

  [[nodiscard]] const LabelerConfig& config() const noexcept {
    return config_;
  }

 private:
  LabelerConfig config_;
};

}  // namespace divscrape::core
