#include "core/joiner.hpp"

#include <stdexcept>

namespace divscrape::core {

JointResults::JointResults(std::vector<std::string> names)
    : names_(std::move(names)) {
  const std::size_t n = names_.size();
  alert_totals_.assign(n, 0);
  pairs_.resize(n * (n - 1) / 2);
  fault_pairs_.resize(n * (n - 1) / 2);
  alerted_status_.resize(n);
  unique_status_.resize(n);
  confusion_.resize(n);
  adjudicated_.resize(n == 0 ? 0 : n);
  reasons_.resize(n);
  unique_reasons_.resize(n);
}

std::size_t JointResults::pair_index(std::size_t i, std::size_t j) const {
  if (i >= j || j >= names_.size())
    throw std::out_of_range("JointResults::pair: requires i < j < n");
  // Upper-triangular row-major offset.
  const std::size_t n = names_.size();
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

const ContingencyTable& JointResults::pair(std::size_t i,
                                           std::size_t j) const {
  return pairs_.at(pair_index(i, j));
}

const ContingencyTable& JointResults::fault_pair(std::size_t i,
                                                 std::size_t j) const {
  return fault_pairs_.at(pair_index(i, j));
}

std::uint64_t JointResults::truth_count(httplog::Truth t) const {
  switch (t) {
    case httplog::Truth::kBenign: return truth_benign_;
    case httplog::Truth::kMalicious: return truth_malicious_;
    case httplog::Truth::kUnknown:
      return total_ - truth_benign_ - truth_malicious_;
  }
  return 0;
}

void JointResults::observe(const httplog::LogRecord& record,
                           divscrape::span<const detectors::Verdict> verdicts) {
  const std::size_t n = names_.size();
  ++total_;
  if (record.truth == httplog::Truth::kBenign) ++truth_benign_;
  if (record.truth == httplog::Truth::kMalicious) ++truth_malicious_;
  all_status_.add(record.status);

  std::size_t alert_count = 0;
  std::size_t sole_alerter = SIZE_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    if (!verdicts[i].alert) continue;
    ++alert_count;
    sole_alerter = alert_count == 1 ? i : SIZE_MAX;
    ++alert_totals_[i];
    alerted_status_[i].add(record.status);
    reasons_[i].add(std::string(to_string(verdicts[i].reason)));
    confusion_[i].observe(record.truth, true);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!verdicts[i].alert) confusion_[i].observe(record.truth, false);
  }
  if (alert_count == 1) {
    unique_status_[sole_alerter].add(record.status);
    unique_reasons_[sole_alerter].add(
        std::string(to_string(verdicts[sole_alerter].reason)));
  }
  // Pairwise tables (alert agreement, and fault agreement vs truth).
  const bool truth_known = record.truth != httplog::Truth::kUnknown;
  const bool is_malicious = record.truth == httplog::Truth::kMalicious;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++idx) {
      pairs_[idx].observe(verdicts[i].alert, verdicts[j].alert);
      if (truth_known) {
        fault_pairs_[idx].observe(verdicts[i].alert != is_malicious,
                                  verdicts[j].alert != is_malicious);
      }
    }
  }
  // k-of-N adjudication.
  for (std::size_t k = 1; k <= n; ++k) {
    adjudicated_[k - 1].observe(record.truth, alert_count >= k);
  }
}

void JointResults::merge(const JointResults& other) {
  if (other.names_ != names_)
    throw std::invalid_argument("JointResults::merge: pool mismatch");
  total_ += other.total_;
  truth_benign_ += other.truth_benign_;
  truth_malicious_ += other.truth_malicious_;
  all_status_.merge(other.all_status_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    alert_totals_[i] += other.alert_totals_[i];
    alerted_status_[i].merge(other.alerted_status_[i]);
    unique_status_[i].merge(other.unique_status_[i]);
    confusion_[i].merge(other.confusion_[i]);
    reasons_[i].merge(other.reasons_[i]);
    unique_reasons_[i].merge(other.unique_reasons_[i]);
  }
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    pairs_[p].merge(other.pairs_[p]);
    fault_pairs_[p].merge(other.fault_pairs_[p]);
  }
  for (std::size_t k = 0; k < adjudicated_.size(); ++k)
    adjudicated_[k].merge(other.adjudicated_[k]);
}

namespace {
constexpr std::uint32_t kResultsMagic = 0x4A524553u;  // "JRES"
constexpr std::uint32_t kJoinerMagic = 0x4A4F494Eu;   // "JOIN"
}  // namespace

void JointResults::save_state(util::StateWriter& w) const {
  util::put_tag(w, kResultsMagic, 1);
  w.u32(static_cast<std::uint32_t>(names_.size()));
  for (const std::string& name : names_) w.str(name);
  w.u64(total_);
  w.u64(truth_benign_);
  w.u64(truth_malicious_);
  for (const std::uint64_t v : alert_totals_) w.u64(v);
  for (const ContingencyTable& t : pairs_) t.save_state(w);
  for (const ContingencyTable& t : fault_pairs_) t.save_state(w);
  for (const auto& c : alerted_status_) c.save_state(w);
  for (const auto& c : unique_status_) c.save_state(w);
  all_status_.save_state(w);
  for (const ConfusionMatrix& c : confusion_) c.save_state(w);
  for (const ConfusionMatrix& c : adjudicated_) c.save_state(w);
  for (const auto& c : reasons_) c.save_state(w);
  for (const auto& c : unique_reasons_) c.save_state(w);
}

bool JointResults::load_state(util::StateReader& r) {
  const auto cold = [this] {
    *this = JointResults(std::vector<std::string>(names_));
  };
  const auto fail = [&] {
    r.fail();
    cold();
    return false;
  };
  if (!util::check_tag(r, kResultsMagic, 1)) return fail();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n != names_.size()) return fail();
  for (const std::string& name : names_) {
    if (r.str() != name || !r.ok()) return fail();
  }
  total_ = r.u64();
  truth_benign_ = r.u64();
  truth_malicious_ = r.u64();
  for (std::uint64_t& v : alert_totals_) v = r.u64();
  for (ContingencyTable& t : pairs_)
    if (!t.load_state(r)) return fail();
  for (ContingencyTable& t : fault_pairs_)
    if (!t.load_state(r)) return fail();
  for (auto& c : alerted_status_)
    if (!c.load_state(r)) return fail();
  for (auto& c : unique_status_)
    if (!c.load_state(r)) return fail();
  if (!all_status_.load_state(r)) return fail();
  for (ConfusionMatrix& c : confusion_)
    if (!c.load_state(r)) return fail();
  for (ConfusionMatrix& c : adjudicated_)
    if (!c.load_state(r)) return fail();
  for (auto& c : reasons_)
    if (!c.load_state(r)) return fail();
  for (auto& c : unique_reasons_)
    if (!c.load_state(r)) return fail();
  if (!r.ok()) return fail();
  return true;
}

namespace {

std::vector<std::string> pool_names(
    divscrape::span<detectors::Detector* const> pool) {
  std::vector<std::string> names;
  names.reserve(pool.size());
  for (const auto* d : pool) names.emplace_back(d->name());
  return names;
}

std::vector<detectors::Detector*> raw_pointers(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool) {
  std::vector<detectors::Detector*> out;
  out.reserve(pool.size());
  for (const auto& d : pool) out.push_back(d.get());
  return out;
}

}  // namespace

AlertJoiner::AlertJoiner(divscrape::span<detectors::Detector* const> pool)
    : pool_(pool.begin(), pool.end()),
      scratch_(pool_.size()),
      results_(pool_names(pool)) {}

AlertJoiner::AlertJoiner(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool)
    : pool_(raw_pointers(pool)),
      scratch_(pool_.size()),
      results_(pool_names(pool_)) {}

divscrape::span<const detectors::Verdict> AlertJoiner::process(
    const httplog::LogRecord& record) {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    scratch_[i] = pool_[i]->evaluate(record);
  }
  results_.observe(record, scratch_);
  return scratch_;
}

bool AlertJoiner::save_state(util::StateWriter& w) const {
  // Serialize detectors into scratch blobs first so an unsupported pool
  // member (a baseline without save_state) leaves `w` untouched.
  std::vector<std::string> blobs;
  blobs.reserve(pool_.size());
  for (const auto* d : pool_) {
    util::StateWriter blob;
    if (!d->save_state(blob)) return false;
    blobs.push_back(blob.take());
  }
  util::put_tag(w, kJoinerMagic, 1);
  w.u32(static_cast<std::uint32_t>(pool_.size()));
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    w.str(pool_[i]->name());
    w.str(blobs[i]);
  }
  results_.save_state(w);
  return true;
}

bool AlertJoiner::load_state(util::StateReader& r) {
  const auto fail = [&] {
    r.fail();
    reset();
    return false;
  };
  if (!util::check_tag(r, kJoinerMagic, 1)) return fail();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n != pool_.size()) return fail();
  for (auto* d : pool_) {
    const std::string_view name = r.str();
    const std::string_view blob = r.str();
    if (!r.ok() || name != d->name()) return fail();
    util::StateReader sub(blob);
    // Each detector must accept its blob and consume it exactly; leftover
    // bytes mean a format drift the version tag did not catch.
    if (!d->load_state(sub) || !sub.ok() || !sub.at_end()) return fail();
  }
  if (!results_.load_state(r)) return fail();
  return true;
}

void AlertJoiner::reset() {
  for (auto* d : pool_) d->reset();
  results_ = JointResults(results_.names());
}

}  // namespace divscrape::core
