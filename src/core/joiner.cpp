#include "core/joiner.hpp"

#include <stdexcept>

namespace divscrape::core {

JointResults::JointResults(std::vector<std::string> names)
    : names_(std::move(names)) {
  const std::size_t n = names_.size();
  alert_totals_.assign(n, 0);
  pairs_.resize(n * (n - 1) / 2);
  fault_pairs_.resize(n * (n - 1) / 2);
  alerted_status_.resize(n);
  unique_status_.resize(n);
  confusion_.resize(n);
  adjudicated_.resize(n == 0 ? 0 : n);
  reasons_.resize(n);
  unique_reasons_.resize(n);
}

std::size_t JointResults::pair_index(std::size_t i, std::size_t j) const {
  if (i >= j || j >= names_.size())
    throw std::out_of_range("JointResults::pair: requires i < j < n");
  // Upper-triangular row-major offset.
  const std::size_t n = names_.size();
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

const ContingencyTable& JointResults::pair(std::size_t i,
                                           std::size_t j) const {
  return pairs_.at(pair_index(i, j));
}

const ContingencyTable& JointResults::fault_pair(std::size_t i,
                                                 std::size_t j) const {
  return fault_pairs_.at(pair_index(i, j));
}

std::uint64_t JointResults::truth_count(httplog::Truth t) const {
  switch (t) {
    case httplog::Truth::kBenign: return truth_benign_;
    case httplog::Truth::kMalicious: return truth_malicious_;
    case httplog::Truth::kUnknown:
      return total_ - truth_benign_ - truth_malicious_;
  }
  return 0;
}

void JointResults::observe(const httplog::LogRecord& record,
                           divscrape::span<const detectors::Verdict> verdicts) {
  const std::size_t n = names_.size();
  ++total_;
  if (record.truth == httplog::Truth::kBenign) ++truth_benign_;
  if (record.truth == httplog::Truth::kMalicious) ++truth_malicious_;
  all_status_.add(record.status);

  std::size_t alert_count = 0;
  std::size_t sole_alerter = SIZE_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    if (!verdicts[i].alert) continue;
    ++alert_count;
    sole_alerter = alert_count == 1 ? i : SIZE_MAX;
    ++alert_totals_[i];
    alerted_status_[i].add(record.status);
    reasons_[i].add(std::string(to_string(verdicts[i].reason)));
    confusion_[i].observe(record.truth, true);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!verdicts[i].alert) confusion_[i].observe(record.truth, false);
  }
  if (alert_count == 1) {
    unique_status_[sole_alerter].add(record.status);
    unique_reasons_[sole_alerter].add(
        std::string(to_string(verdicts[sole_alerter].reason)));
  }
  // Pairwise tables (alert agreement, and fault agreement vs truth).
  const bool truth_known = record.truth != httplog::Truth::kUnknown;
  const bool is_malicious = record.truth == httplog::Truth::kMalicious;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++idx) {
      pairs_[idx].observe(verdicts[i].alert, verdicts[j].alert);
      if (truth_known) {
        fault_pairs_[idx].observe(verdicts[i].alert != is_malicious,
                                  verdicts[j].alert != is_malicious);
      }
    }
  }
  // k-of-N adjudication.
  for (std::size_t k = 1; k <= n; ++k) {
    adjudicated_[k - 1].observe(record.truth, alert_count >= k);
  }
}

void JointResults::merge(const JointResults& other) {
  if (other.names_ != names_)
    throw std::invalid_argument("JointResults::merge: pool mismatch");
  total_ += other.total_;
  truth_benign_ += other.truth_benign_;
  truth_malicious_ += other.truth_malicious_;
  all_status_.merge(other.all_status_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    alert_totals_[i] += other.alert_totals_[i];
    alerted_status_[i].merge(other.alerted_status_[i]);
    unique_status_[i].merge(other.unique_status_[i]);
    confusion_[i].merge(other.confusion_[i]);
    reasons_[i].merge(other.reasons_[i]);
    unique_reasons_[i].merge(other.unique_reasons_[i]);
  }
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    pairs_[p].merge(other.pairs_[p]);
    fault_pairs_[p].merge(other.fault_pairs_[p]);
  }
  for (std::size_t k = 0; k < adjudicated_.size(); ++k)
    adjudicated_[k].merge(other.adjudicated_[k]);
}

namespace {

std::vector<std::string> pool_names(
    divscrape::span<detectors::Detector* const> pool) {
  std::vector<std::string> names;
  names.reserve(pool.size());
  for (const auto* d : pool) names.emplace_back(d->name());
  return names;
}

std::vector<detectors::Detector*> raw_pointers(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool) {
  std::vector<detectors::Detector*> out;
  out.reserve(pool.size());
  for (const auto& d : pool) out.push_back(d.get());
  return out;
}

}  // namespace

AlertJoiner::AlertJoiner(divscrape::span<detectors::Detector* const> pool)
    : pool_(pool.begin(), pool.end()),
      scratch_(pool_.size()),
      results_(pool_names(pool)) {}

AlertJoiner::AlertJoiner(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool)
    : pool_(raw_pointers(pool)),
      scratch_(pool_.size()),
      results_(pool_names(pool_)) {}

divscrape::span<const detectors::Verdict> AlertJoiner::process(
    const httplog::LogRecord& record) {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    scratch_[i] = pool_[i]->evaluate(record);
  }
  results_.observe(record, scratch_);
  return scratch_;
}

}  // namespace divscrape::core
