// Experiment runner: the one-call entry point that generates a scenario,
// streams it through a detector pool via the AlertJoiner, and returns the
// accumulated JointResults. Every table bench and most examples sit on top
// of this.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/detector.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::core {

/// What to run.
struct ExperimentConfig {
  traffic::ScenarioConfig scenario;
  /// Print a progress line every this many records (0 = silent).
  std::uint64_t progress_every = 0;
};

/// What happened.
struct ExperimentOutput {
  JointResults results;
  std::uint64_t records = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double throughput_rps() const noexcept {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(records) / wall_seconds;
  }
};

/// Streams the scenario through the given pool (pool order defines result
/// indices). The pool is reset first.
[[nodiscard]] ExperimentOutput run_experiment(
    const ExperimentConfig& config,
    const std::vector<std::unique_ptr<detectors::Detector>>& pool);

/// Convenience: the paper deployment {Sentinel, Arcane} on the scenario.
/// Index 0 = Sentinel (Distil role), 1 = Arcane.
[[nodiscard]] ExperimentOutput run_paper_experiment(
    const ExperimentConfig& config);

}  // namespace divscrape::core
