// Result export: serialize a JointResults to JSON (full fidelity, for
// dashboards and regression tracking) or CSV (per-table, for
// spreadsheets). The JSON document contains everything needed to
// re-render Tables 1-4, the confusion matrices, the adjudication curves
// and the pairwise diversity metrics without re-running the experiment.
#pragma once

#include <ostream>
#include <string>

#include "core/joiner.hpp"

namespace divscrape::core {

/// Writes the full results document as a single JSON object.
void export_json(const JointResults& results, std::ostream& os);

/// Convenience: export_json into a string.
[[nodiscard]] std::string to_json(const JointResults& results);

/// CSV of per-detector totals and confusion rates (one row per detector).
void export_totals_csv(const JointResults& results, std::ostream& os);

/// CSV of the pairwise contingency tables (one row per ordered pair).
void export_pairs_csv(const JointResults& results, std::ostream& os);

/// CSV of per-detector alerted-status counts (long form: detector,
/// status, alerted, unique).
void export_status_csv(const JointResults& results, std::ostream& os);

}  // namespace divscrape::core
