#include "core/adjudication.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace divscrape::core {

WeightedVote::WeightedVote(std::vector<double> weights, double threshold)
    : weights_(std::move(weights)),
      threshold_(threshold),
      weight_sum_(std::accumulate(weights_.begin(), weights_.end(), 0.0)) {
  if (weights_.empty())
    throw std::invalid_argument("WeightedVote: empty weights");
  for (const double w : weights_) {
    if (w < 0.0)
      throw std::invalid_argument("WeightedVote: negative weight");
  }
  if (weight_sum_ <= 0.0)
    throw std::invalid_argument("WeightedVote: zero total weight");
}

WeightedVote WeightedVote::k_of_n(std::size_t n, std::size_t k) {
  if (n == 0 || k == 0 || k > n)
    throw std::invalid_argument("WeightedVote::k_of_n: need 1 <= k <= n");
  return WeightedVote(std::vector<double>(n, 1.0),
                      static_cast<double>(k));
}

bool WeightedVote::decide(
    divscrape::span<const detectors::Verdict> verdicts) const {
  double sum = 0.0;
  const std::size_t n = std::min(weights_.size(), verdicts.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (verdicts[i].alert) sum += weights_[i];
  }
  return sum >= threshold_ - 1e-12;
}

double WeightedVote::soft_score(
    divscrape::span<const detectors::Verdict> verdicts) const {
  double sum = 0.0;
  const std::size_t n = std::min(weights_.size(), verdicts.size());
  for (std::size_t i = 0; i < n; ++i) {
    sum += weights_[i] * verdicts[i].score;
  }
  return sum / weight_sum_;
}

std::vector<double> accuracy_weights(
    divscrape::span<const ConfusionMatrix> matrices) {
  std::vector<double> weights;
  weights.reserve(matrices.size());
  for (const auto& cm : matrices) {
    const double balanced =
        0.5 * (cm.sensitivity() + cm.specificity());
    // Log-odds, clamped: chance (0.5) -> 0, perfection capped to avoid
    // one tool drowning the vote.
    const double clamped = std::min(0.995, std::max(0.5, balanced));
    weights.push_back(std::log(clamped / (1.0 - clamped)));
  }
  return weights;
}

AdjudicationSweep::AdjudicationSweep(std::vector<Policy> policies)
    : policies_(std::move(policies)), confusions_(policies_.size()) {
  if (policies_.empty())
    throw std::invalid_argument("AdjudicationSweep: no policies");
}

void AdjudicationSweep::observe(
    httplog::Truth truth, divscrape::span<const detectors::Verdict> verdicts) {
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    confusions_[p].observe(truth, policies_[p].vote.decide(verdicts));
  }
}

}  // namespace divscrape::core
