// Adjudication policies beyond plain k-out-of-N: weighted voting (tools
// earn trust proportional to demonstrated accuracy) and score averaging.
// These generalize the paper's 1oo2/2oo2 discussion to the full pool and
// to operators who trust one tool more than another.
#pragma once

#include <cstdint>
#include "util/span.hpp"
#include <string>
#include <vector>

#include "core/confusion.hpp"
#include "detectors/detector.hpp"

namespace divscrape::core {

/// Weighted-vote rule: alert when sum(weight_i * alert_i) >= threshold.
/// With unit weights and threshold k this degenerates to k-out-of-N.
class WeightedVote {
 public:
  WeightedVote(std::vector<double> weights, double threshold);

  /// Unit-weight k-of-N convenience.
  static WeightedVote k_of_n(std::size_t n, std::size_t k);

  [[nodiscard]] bool decide(
      divscrape::span<const detectors::Verdict> verdicts) const;

  /// Weighted mean of the verdict *scores* (soft vote), in [0, 1] when
  /// scores are.
  [[nodiscard]] double soft_score(
      divscrape::span<const detectors::Verdict> verdicts) const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  std::vector<double> weights_;
  double threshold_;
  double weight_sum_;
};

/// Derives vote weights from per-detector confusion matrices using the
/// log-odds of balanced accuracy — the standard weighting for combining
/// binary experts (a tool at chance gets weight 0; better tools get
/// monotonically more say). Negative weights (worse than chance) are
/// clamped to 0.
[[nodiscard]] std::vector<double> accuracy_weights(
    divscrape::span<const ConfusionMatrix> matrices);

/// Streaming evaluation of many adjudication policies at once.
class AdjudicationSweep {
 public:
  struct Policy {
    std::string name;
    WeightedVote vote;
  };

  explicit AdjudicationSweep(std::vector<Policy> policies);

  void observe(httplog::Truth truth,
               divscrape::span<const detectors::Verdict> verdicts);

  [[nodiscard]] const std::vector<Policy>& policies() const noexcept {
    return policies_;
  }
  [[nodiscard]] const ConfusionMatrix& confusion(std::size_t policy) const {
    return confusions_.at(policy);
  }

 private:
  std::vector<Policy> policies_;
  std::vector<ConfusionMatrix> confusions_;
};

}  // namespace divscrape::core
