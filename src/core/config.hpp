// Key-value configuration: lets operators run experiments from a plain
// text file instead of recompiling. Format is one dotted key per line:
//
//   # comment
//   scenario.scale = 0.25
//   scenario.seed = 20180311
//   scenario.duration_days = 8
//   sentinel.burst_limit = 25
//   arcane.min_requests = 10
//
// Unknown keys are collected (not fatal) so callers can warn; appliers
// exist for the scenario and both reproduced detectors' configs.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "detectors/arcane.hpp"
#include "detectors/sentinel.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::core {

/// Parsed key=value store with typed accessors.
class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parses the stream; returns false (and records errors) on malformed
  /// lines, but keeps every line it could parse.
  bool parse(std::istream& in);

  /// Parses "key=value" command-line overrides (no spaces required).
  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Keys present in the store but not consumed by any applier call.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> errors_;
};

/// Applies "scenario.*" keys onto a ScenarioConfig.
void apply_scenario_config(const KeyValueConfig& config,
                           traffic::ScenarioConfig& scenario);

/// Applies "sentinel.*" keys onto a SentinelConfig.
void apply_sentinel_config(const KeyValueConfig& config,
                           detectors::SentinelConfig& sentinel);

/// Applies "arcane.*" keys onto an ArcaneConfig.
void apply_arcane_config(const KeyValueConfig& config,
                         detectors::ArcaneConfig& arcane);

}  // namespace divscrape::core
