#include "core/labeling.hpp"

#include <stdexcept>

#include "httplog/useragent.hpp"

namespace divscrape::core {

HeuristicLabeler::HeuristicLabeler(LabelerConfig config) : config_(config) {}

httplog::Truth HeuristicLabeler::judge(
    const httplog::Session& session) const {
  using httplog::Truth;
  if (session.request_count() < config_.min_session_requests)
    return Truth::kUnknown;

  const auto& ua = session.ua_info();
  // Declared crawlers: benign by the paper's definition of "malicious".
  if (ua.declared_bot) return Truth::kBenign;

  int bot_score = 0;
  int human_score = 0;

  // Hard automation markers are decisive on their own.
  if (ua.scripted) bot_score += config_.decision_margin + 1;
  if (ua.family == httplog::UaFamily::kEmpty) ++bot_score;

  if (session.request_rate() >= config_.bot_rate_rps) ++bot_score;
  if (session.request_count() >= config_.bot_min_requests_for_starvation &&
      session.asset_ratio() <= config_.bot_max_asset_ratio)
    ++bot_score;
  if (session.template_entropy() <= config_.bot_max_template_entropy &&
      session.request_count() >= config_.bot_min_requests_for_starvation)
    ++bot_score;
  if (session.referer_ratio() <= config_.bot_max_referer_ratio) ++bot_score;
  if (session.error_ratio() >= config_.bot_min_error_ratio) ++bot_score;

  if (session.asset_ratio() >= config_.human_min_asset_ratio) ++human_score;
  if (session.referer_ratio() >= config_.human_min_referer_ratio)
    ++human_score;
  if (session.template_entropy() >= config_.human_min_template_entropy)
    ++human_score;
  if (session.request_rate() <= config_.human_max_rate_rps) ++human_score;

  if (bot_score - human_score >= config_.decision_margin)
    return Truth::kMalicious;
  if (human_score - bot_score >= config_.decision_margin)
    return Truth::kBenign;
  return Truth::kUnknown;
}

LabelingResult HeuristicLabeler::label(
    std::vector<httplog::LogRecord>& records) const {
  LabelingResult result;
  result.records = records.size();

  // Pass 1: sessionize (on a truth-scrubbed copy is unnecessary — the
  // judge never reads truth) and record each session's verdict.
  // The sessionizer outlives pass 1: its key_for() is reused in pass 2 so
  // both passes intern UA tokens identically.
  std::unordered_map<httplog::SessionKey, std::vector<httplog::Truth>,
                     httplog::SessionKeyHash>
      verdicts_by_client;
  httplog::Sessionizer sessionizer(
      config_.session_timeout_s, [&](httplog::Session&& session) {
        verdicts_by_client[session.key()].push_back(judge(session));
      });
  for (const auto& r : records) sessionizer.add(r);
  sessionizer.flush_all();

  // Pass 2: replay the stream against the same session boundaries,
  // assigning each record its session's verdict. We re-run a sessionizer
  // emitting indices so boundaries match exactly.
  std::unordered_map<httplog::SessionKey, std::size_t,
                     httplog::SessionKeyHash>
      next_session_index;
  std::unordered_map<httplog::SessionKey, httplog::Timestamp,
                     httplog::SessionKeyHash>
      last_seen;
  const auto timeout_us =
      httplog::seconds_to_micros(config_.session_timeout_s);
  for (auto& record : records) {
    const httplog::SessionKey key = sessionizer.key_for(record);
    auto seen_it = last_seen.find(key);
    if (seen_it != last_seen.end() &&
        record.time - seen_it->second > timeout_us) {
      ++next_session_index[key];  // session boundary crossed
    }
    last_seen[key] = record.time;

    const auto& verdicts = verdicts_by_client[key];
    const std::size_t idx = next_session_index[key];
    const httplog::Truth verdict =
        idx < verdicts.size() ? verdicts[idx] : httplog::Truth::kUnknown;
    record.truth = verdict;
    switch (verdict) {
      case httplog::Truth::kMalicious: ++result.labeled_malicious; break;
      case httplog::Truth::kBenign: ++result.labeled_benign; break;
      case httplog::Truth::kUnknown: ++result.left_unknown; break;
    }
  }
  return result;
}

LabelAudit HeuristicLabeler::audit(
    const std::vector<httplog::Truth>& reference,
    const std::vector<httplog::LogRecord>& labeled) {
  if (reference.size() != labeled.size())
    throw std::invalid_argument("LabelAudit: size mismatch");
  LabelAudit audit;
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    const auto verdict = labeled[i].truth;
    if (verdict == httplog::Truth::kUnknown ||
        reference[i] == httplog::Truth::kUnknown)
      continue;
    ++audit.decided;
    if (verdict == reference[i]) {
      ++audit.agree;
    } else if (verdict == httplog::Truth::kMalicious) {
      ++audit.false_malicious;
    } else {
      ++audit.false_benign;
    }
  }
  return audit;
}

}  // namespace divscrape::core
