// Declarative workload scenarios: the spec a WorkloadEngine runs.
//
// A ScenarioSpec composes a complete simulated deployment out of data — a
// set of vhosts (each with its own site model and benign population) and a
// per-vhost attack mix — so new workloads are JSON documents or catalog
// entries instead of C++ (traffic::ScenarioConfig remains the calibrated
// single-site paper reproduction; this is the "as many scenarios as you
// can imagine" surface on top of the same actor models).
//
// ## JSON schema (divscrape.scenario.v1)
//
// One flat object; all fields optional unless marked required, defaults as
// in the structs below. `to_json()` always emits every field, with one
// deliberate exception: the optional `evasion` block is emitted only when
// present, so specs that predate it serialize byte-identically to before
// the schema grew it.
//
//   {
//     "schema": "divscrape.scenario.v1",      // required, exact match
//     "name": "flash_crowd",
//     "seed": 20180311,                        // u64; full precision kept
//     "start_micros": 1520726400000000,        // epoch µs, UTC
//     "start": "2018-03-11",                   // parse-only alternative
//                                              // (midnight UTC; ignored
//                                              // when start_micros given)
//     "duration_days": 2.0,                    // > 0
//     "scale": 1.0,                            // > 0, population multiplier
//     "vhosts": [                              // required, >= 1 entry
//       {
//         "name": "www",
//         "site": {                            // traffic::SiteModel::Config
//           "catalogue_size": 50000,           // >= 1
//           "offer_zipf_s": 0.9,
//           "city_pairs": 400,
//           "asset_count": 28,
//           "api_no_content_p": 0.28,
//           "server_error_p": 8e-06,
//           "zipf_table_cap": 0            // 0 = exact O(catalogue) table;
//                                          // > 0 bounds the popularity
//                                          // table (megasite; tail sampled
//                                          // by continuous approximation)
//         },
//         "humans": {
//           "arrivals_per_s": 0.0253,          // sessions/s at scale 1.0
//           "diurnal_amplitude": 0.55,         // [0, 1)
//           "in_botnet_subnet_p": 0.0015,
//           "surge_start_day": -1.0,           // < 0 = no surge
//           "surge_duration_h": 0.0,           // surge window length
//           "surge_multiplier": 1.0            // rate multiplier inside it
//         },
//         "crawlers": 3,
//         "crawler_gap_mean_s": 250.0,
//         "monitors": 2,
//         "monitor_period_s": 120.0,
//         "attacks": [
//           {
//             "kind": "fleet",                 // fleet | stealth |
//                                              // api_pollers | malformed |
//                                              // caching  (required)
//             "campaigns": 3,                  // fleet: /16s deployed
//             "bots": 350,                     // fleet: per campaign;
//                                              // others: total population
//             "slow_bots": 9,                  // fleet: sub-threshold
//                                              // members per campaign
//             "fleet_bots": 0,                 // api_pollers: campaign-IP
//                                              // flavour on top of `bots`
//             "ramp_days": 0.0,                // onboarding ramp: first
//                                              // sessions spread over this
//                                              // many days (0 = default
//                                              // stagger over one pause)
//             "gap_mean_s": 0.0,               // archetype overrides;
//             "session_len_mean": 0.0,         // 0 = keep the archetype
//             "pause_mean_s": 0.0,             // default
//             "lifetime_requests": 0,
//             "evasion": {                     // optional E13 capability
//                                              // block; page-scraper kinds
//                                              // only (fleet | stealth),
//                                              // and only the fleet's fast
//                                              // members evade — slow
//                                              // members stay archetypal
//               "p_asset_mimicry": 0.9,        // [0, 1]: page fetches
//                                              // followed by a static-asset
//                                              // camouflage fetch
//               "rotate_ua_per_session": true, // fresh browser UA each
//                                              // session
//               "rotate_ip_per_session": true, // fresh clean address each
//                                              // session
//               "human_think_time": false      // pace in-session gaps like
//                                              // the human log-normal
//                                              // think-time distribution
//             }
//           }
//         ]
//       }
//     ]
//   }
//
// Unknown members are ignored (forward compatibility); a wrong "schema",
// missing vhosts, a bad attack kind, or out-of-range numerics fail the
// load with a one-line diagnostic. Round-trip is loss-free: load(dump(s))
// compares equal to s for every valid spec.
//
// ## Lazy-actor contract
//
// Population counts in a spec are *distinct actors over the run*, not live
// objects: the WorkloadEngine materializes each scripted actor on its first
// scheduled arrival and retires it (frees its state, recycles its slot) as
// soon as its lifetime ends, so a partition's resident memory tracks the
// concurrently-active population, not the spec totals. This is a pure
// implementation detail with a hard guarantee: for any spec, lazy and eager
// materialization produce byte-identical output at every thread count
// (per-actor RNG streams are seeded by global ordinal, and the event heap
// orders by time only, so slot identity never influences emission or
// ua_token minting order). Megasite-class specs (>= 1M distinct actors)
// rely on this plus `site.zipf_table_cap` to keep memory flat.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "httplog/timestamp.hpp"
#include "traffic/site.hpp"

namespace divscrape::workload {

/// Benign human load of one vhost, with an optional flash-crowd surge —
/// the benign burst a detector must NOT alert on.
struct HumanMix {
  double arrivals_per_s = 0.0253;   ///< session arrivals/s at scale 1.0
  double diurnal_amplitude = 0.55;  ///< day/night modulation in [0, 1)
  double in_botnet_subnet_p = 0.0015;
  double surge_start_day = -1.0;    ///< days after start; < 0 disables
  double surge_duration_h = 0.0;
  double surge_multiplier = 1.0;

  friend bool operator==(const HumanMix& a, const HumanMix& b) noexcept {
    return a.arrivals_per_s == b.arrivals_per_s &&
           a.diurnal_amplitude == b.diurnal_amplitude &&
           a.in_botnet_subnet_p == b.in_botnet_subnet_p &&
           a.surge_start_day == b.surge_start_day &&
           a.surge_duration_h == b.surge_duration_h &&
           a.surge_multiplier == b.surge_multiplier;
  }
  friend bool operator!=(const HumanMix& a, const HumanMix& b) noexcept {
    return !(a == b);
  }
};

/// The five scraper archetypes (same behavioural models as the paper
/// reproduction; see traffic/scrapers.hpp).
enum class AttackKind : std::uint8_t {
  kFleet,       ///< aggressive fare-scraping botnet campaigns
  kStealth,     ///< low-and-slow bots on clean residential addresses
  kApiPollers,  ///< availability-API hammering (204-heavy)
  kMalformed,   ///< buggy scraper stacks (400-heavy)
  kCaching,     ///< conditional-GET re-fetchers (304-heavy)
};

[[nodiscard]] std::string_view to_string(AttackKind kind) noexcept;
[[nodiscard]] std::optional<AttackKind> attack_kind_from(
    std::string_view name) noexcept;

/// E13 evasion capabilities of one attack wave. Only the page-scraper
/// kinds (fleet, stealth) accept an evasion block — asset mimicry and
/// think-time shaping are page-fetch behaviours — and within a fleet only
/// the fast members evade (slow members are sub-threshold by design).
/// Plumbing is pure field assignment onto the archetype BotProfile: no
/// extra RNG draws, so the engine's byte-identity contract is untouched.
struct EvasionSpec {
  /// Probability that a page fetch is followed by a static-asset
  /// camouflage fetch (defeats asset-starvation signals). In [0, 1].
  double p_asset_mimicry = 0.0;
  bool rotate_ua_per_session = false;  ///< fresh browser UA each session
  bool rotate_ip_per_session = false;  ///< fresh clean address each session
  /// Pace in-session gaps like the human log-normal think-time
  /// distribution instead of the archetype's timing.
  bool human_think_time = false;

  friend bool operator==(const EvasionSpec& a, const EvasionSpec& b) noexcept {
    return a.p_asset_mimicry == b.p_asset_mimicry &&
           a.rotate_ua_per_session == b.rotate_ua_per_session &&
           a.rotate_ip_per_session == b.rotate_ip_per_session &&
           a.human_think_time == b.human_think_time;
  }
  friend bool operator!=(const EvasionSpec& a, const EvasionSpec& b) noexcept {
    return !(a == b);
  }
};

/// One attack wave in a vhost's mix. Population counts are at scale 1.0;
/// the spec-level `scale` multiplies them (minimum 1 once nonzero).
struct AttackSpec {
  AttackKind kind = AttackKind::kFleet;
  int campaigns = 1;   ///< fleet only: number of /16 campaigns
  int bots = 0;        ///< fleet: fast members per campaign; others: total
  int slow_bots = 0;   ///< fleet only: sub-threshold members per campaign
  int fleet_bots = 0;  ///< api_pollers only: campaign-IP flavour
  /// Onboarding ramp: first sessions spread uniformly over this many days
  /// (a growing campaign). 0 keeps the archetype stagger (one pause).
  double ramp_days = 0.0;
  // Archetype overrides; 0 keeps the archetype default.
  double gap_mean_s = 0.0;
  double session_len_mean = 0.0;
  double pause_mean_s = 0.0;
  std::uint64_t lifetime_requests = 0;
  /// E13 capabilities; absent = no evasion (and no bytes in the JSON).
  std::optional<EvasionSpec> evasion;

  friend bool operator==(const AttackSpec& a, const AttackSpec& b) noexcept {
    return a.kind == b.kind && a.campaigns == b.campaigns && a.bots == b.bots &&
           a.slow_bots == b.slow_bots && a.fleet_bots == b.fleet_bots &&
           a.ramp_days == b.ramp_days && a.gap_mean_s == b.gap_mean_s &&
           a.session_len_mean == b.session_len_mean &&
           a.pause_mean_s == b.pause_mean_s &&
           a.lifetime_requests == b.lifetime_requests &&
           a.evasion == b.evasion;
  }
  friend bool operator!=(const AttackSpec& a, const AttackSpec& b) noexcept {
    return !(a == b);
  }
};

/// One virtual host: its own site model, benign population and attack mix.
struct VhostSpec {
  std::string name = "www";
  traffic::SiteModel::Config site;
  HumanMix humans;
  int crawlers = 3;
  double crawler_gap_mean_s = 250.0;
  int monitors = 2;
  double monitor_period_s = 120.0;
  std::vector<AttackSpec> attacks;

  friend bool operator==(const VhostSpec& a, const VhostSpec& b) noexcept;
  friend bool operator!=(const VhostSpec& a, const VhostSpec& b) noexcept {
    return !(a == b);
  }
};

/// A complete declarative workload. See the schema comment above.
struct ScenarioSpec {
  std::string name = "custom";
  std::uint64_t seed = 20180311;
  httplog::Timestamp start = httplog::Timestamp::from_civil(2018, 3, 11);
  double duration_days = 8.0;
  double scale = 1.0;
  std::vector<VhostSpec> vhosts;

  [[nodiscard]] httplog::Timestamp end() const noexcept {
    return start + static_cast<std::int64_t>(duration_days *
                                             httplog::kMicrosPerDay);
  }

  /// Serializes the complete spec (schema divscrape.scenario.v1).
  [[nodiscard]] std::string to_json() const;
  /// Parses and validates; nullopt (and a one-line reason in `error`, when
  /// non-null) on malformed JSON, a schema mismatch or invalid values.
  [[nodiscard]] static std::optional<ScenarioSpec> from_json(
      std::string_view json, std::string* error = nullptr);

  /// File convenience wrappers around to_json()/from_json().
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<ScenarioSpec> load(
      const std::string& path, std::string* error = nullptr);

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) noexcept;
  friend bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) noexcept {
    return !(a == b);
  }
};

}  // namespace divscrape::workload
