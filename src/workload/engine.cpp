#include "workload/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "stats/rng.hpp"
#include "traffic/bots.hpp"
#include "traffic/generator.hpp"
#include "traffic/human.hpp"
#include "traffic/scrapers.hpp"
#include "traffic/ua_pool.hpp"

namespace divscrape::workload {

namespace {

using httplog::Ipv4;
using httplog::Timestamp;
using httplog::seconds_to_micros;
using stats::Rng;
using stats::mix_seed;

// Seed-derivation salts: every RNG of a spec run is seeded by hashing
// (spec seed, role salt, stable ordinal), never by walking a shared fork
// chain, so an actor's stream is a pure function of its identity — the
// property the partitioning determinism rests on.
constexpr std::uint64_t kActorSalt = 0xAC100001ULL;
constexpr std::uint64_t kArrivalSalt = 0xA1100001ULL;
constexpr std::uint64_t kSessionSalt = 0x5E550001ULL;
/// Human actor ids live far above static-actor ordinals.
constexpr std::uint32_t kHumanIdBase = 0x40000000u;

int scaled(int count, double scale) {
  if (count == 0) return 0;
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

/// Campaign c owns the /16 at 45.(140+c).0.0 (mod 100 keeps the second
/// octet in range for arbitrarily large specs).
Ipv4 campaign_base(int campaign) noexcept {
  return Ipv4(45, static_cast<std::uint8_t>(140 + campaign % 100), 0, 0);
}

/// Fast fleet member b sits in one of the campaign's /24s, hosts .2+.
Ipv4 fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  const std::uint32_t subnet = static_cast<std::uint32_t>(bot / 200) % 256;
  const std::uint32_t host = 2 + static_cast<std::uint32_t>(bot % 200);
  return Ipv4(base | (subnet << 8) | host);
}

/// Slow members park at .200+ so they never collide with fast members.
Ipv4 slow_fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  return Ipv4(base | (static_cast<std::uint32_t>(bot % 2) << 8) |
              (200u + static_cast<std::uint32_t>(bot / 2) % 50));
}

/// A human victim address inside a random campaign /24 (collateral pool).
Ipv4 botnet_neighbour_ip(Rng& rng, int campaigns) {
  const int c = static_cast<int>(rng.uniform_int(0, campaigns - 1));
  const auto base = campaign_base(c).value();
  const std::uint32_t subnet =
      static_cast<std::uint32_t>(rng.uniform_int(0, 1));
  const std::uint32_t host =
      180u + static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  return Ipv4(base | (subnet << 8) | host);
}

/// Applies an attack wave's timing overrides onto an archetype profile
/// (0 keeps the archetype default; lifetime 0 keeps it too, except for the
/// aggressive fleet whose archetype default is already "unlimited").
void apply_overrides(traffic::BotProfile& profile, const AttackSpec& attack) {
  if (attack.gap_mean_s > 0.0) profile.gap_mean_s = attack.gap_mean_s;
  if (attack.session_len_mean > 0.0)
    profile.session_len_mean = attack.session_len_mean;
  if (attack.pause_mean_s > 0.0) profile.pause_mean_s = attack.pause_mean_s;
  if (attack.lifetime_requests != 0)
    profile.lifetime_requests = attack.lifetime_requests;
}

/// Applies an attack wave's E13 evasion capabilities onto an archetype
/// profile. Pure field assignment — no RNG draws — so the
/// build_group_member draw order (the byte-identity contract) is
/// untouched; ordinal assignment and first-session times cannot shift.
void apply_evasion(traffic::BotProfile& profile, const AttackSpec& attack) {
  if (!attack.evasion) return;
  const auto& evasion = *attack.evasion;
  profile.p_asset_mimicry = evasion.p_asset_mimicry;
  // A bot that fetches assets like a browser also carries a Referer like
  // one; mimicry below that bar would be self-defeating camouflage.
  if (evasion.p_asset_mimicry > 0.0)
    profile.referer_p = std::max(profile.referer_p, 0.6);
  profile.rotate_ua_per_session = evasion.rotate_ua_per_session;
  profile.rotate_ip_per_session = evasion.rotate_ip_per_session;
  if (evasion.human_think_time) {
    const traffic::HumanConfig human;
    profile.lognormal_gap = true;
    profile.gap_median_s = human.think_median_s;
    profile.gap_sigma = human.think_sigma;
  }
}

int campaigns_of(const AttackSpec& attack) noexcept {
  if (attack.kind == AttackKind::kFleet) return attack.campaigns;
  if (attack.kind == AttackKind::kApiPollers) return 1;
  return 0;
}

[[nodiscard]] Rng spec_actor_rng(const ScenarioSpec& spec,
                                 std::uint64_t salt) noexcept {
  return Rng(mix_seed(mix_seed(spec.seed, kActorSalt), salt));
}

/// First-session time: an explicit onboarding ramp spreads arrivals over
/// `ramp_days`; otherwise the archetype stagger (uniform over one pause,
/// capped at half the scenario so short runs still see everyone).
[[nodiscard]] Timestamp spec_start_time(const ScenarioSpec& spec, Rng& rng,
                                        double pause_s, double ramp_days) {
  const double duration_s = spec.duration_days * 24.0 * 3600.0;
  const double window_s =
      ramp_days > 0.0 ? std::min(ramp_days * 24.0 * 3600.0, duration_s)
                      : std::min(pause_s, duration_s / 2.0);
  return spec.start + seconds_to_micros(rng.uniform(0.0, window_s));
}

}  // namespace

/// Scripted-actor group kinds, one per inner population loop, listed in
/// walk order within their vhost.
enum class GroupKind : std::uint8_t {
  kCrawler,
  kMonitor,
  kFleetFast,
  kFleetSlow,
  kStealth,
  kApiClean,
  kApiFleet,
  kMalformed,
  kCaching,
};

/// One contiguous global-ordinal range of scripted actors built by the
/// same population loop. The table of these IS the lazy-actor contract: a
/// global ordinal (which doubles as the actor's RNG salt and the deferred
/// cookie) maps back to (vhost, kind, member index) by range lookup, so a
/// deferred actor needs no per-actor storage beyond the cookie and is
/// reconstructed bit-identically at its first arrival.
struct ActorGroup {
  std::uint64_t begin = 0;  ///< first global ordinal of the group
  std::uint64_t end = 0;    ///< one past the last
  GroupKind kind = GroupKind::kCrawler;
  std::uint32_t vhost = 0;   ///< index into spec.vhosts
  std::uint32_t attack = 0;  ///< index into the vhost's attacks (bots only)
  int campaign = 0;          ///< absolute campaign index (fleet flavours)
};

namespace {

/// Walks the population in the exact builder order and records every
/// scripted group's ordinal range. Shared by every partition builder and
/// the lazy materializer, so ranges and construction can never disagree.
std::vector<ActorGroup> build_group_table(const ScenarioSpec& spec) {
  std::vector<ActorGroup> groups;
  std::uint64_t ordinal = 0;
  int campaign_cursor = 0;
  const auto add = [&](GroupKind kind, std::uint32_t v, std::uint32_t a,
                       int campaign, int count) {
    if (count <= 0) return;
    groups.push_back({ordinal, ordinal + static_cast<std::uint64_t>(count),
                      kind, v, a, campaign});
    ordinal += static_cast<std::uint64_t>(count);
  };
  for (std::size_t v = 0; v < spec.vhosts.size(); ++v) {
    const auto& vhost = spec.vhosts[v];
    const auto vi = static_cast<std::uint32_t>(v);
    add(GroupKind::kCrawler, vi, 0, 0, scaled(vhost.crawlers, spec.scale));
    add(GroupKind::kMonitor, vi, 0, 0, scaled(vhost.monitors, spec.scale));
    for (std::size_t a = 0; a < vhost.attacks.size(); ++a) {
      const auto& attack = vhost.attacks[a];
      const auto ai = static_cast<std::uint32_t>(a);
      const int campaign0 = campaign_cursor;
      campaign_cursor += campaigns_of(attack);
      switch (attack.kind) {
        case AttackKind::kFleet:
          for (int c = 0; c < attack.campaigns; ++c) {
            add(GroupKind::kFleetFast, vi, ai, campaign0 + c,
                scaled(attack.bots, spec.scale));
            add(GroupKind::kFleetSlow, vi, ai, campaign0 + c,
                scaled(attack.slow_bots, spec.scale));
          }
          break;
        case AttackKind::kStealth:
          add(GroupKind::kStealth, vi, ai, 0,
              scaled(attack.bots, spec.scale));
          break;
        case AttackKind::kApiPollers:
          add(GroupKind::kApiClean, vi, ai, 0,
              scaled(attack.bots, spec.scale));
          add(GroupKind::kApiFleet, vi, ai, campaign0,
              scaled(attack.fleet_bots, spec.scale));
          break;
        case AttackKind::kMalformed:
          add(GroupKind::kMalformed, vi, ai, 0,
              scaled(attack.bots, spec.scale));
          break;
        case AttackKind::kCaching:
          add(GroupKind::kCaching, vi, ai, 0,
              scaled(attack.bots, spec.scale));
          break;
      }
    }
  }
  return groups;
}

struct BuiltActor {
  std::unique_ptr<traffic::Actor> actor;
  Timestamp start;
};

/// Constructs group member `member` (= ordinal - group.begin): the one
/// shared construction path behind eager build, lazy planning (which keeps
/// only the start time), and lazy materialization (which keeps only the
/// actor). One code path means the three uses cannot diverge — the RNG
/// draw order here is the byte-identity contract.
BuiltActor build_group_member(const ScenarioSpec& spec,
                              const traffic::SiteModel& site,
                              const ActorGroup& group, int member,
                              std::uint64_t salt) {
  const Timestamp end = spec.end();
  const auto& vhost = spec.vhosts[group.vhost];
  Rng rng = spec_actor_rng(spec, salt);
  const auto id = static_cast<std::uint32_t>(salt + 1);
  switch (group.kind) {
    case GroupKind::kCrawler: {
      traffic::CrawlerActor::Config cc;
      cc.crawl_gap_mean_s = vhost.crawler_gap_mean_s;
      cc.end_time = end;
      const Ipv4 ip(66, 249,
                    static_cast<std::uint8_t>(64 + (member / 200) % 8),
                    static_cast<std::uint8_t>(10 + member % 200));
      auto actor = std::make_unique<traffic::CrawlerActor>(
          site, cc, ip, std::string(traffic::sample_crawler_ua(rng)), rng,
          id);
      return {std::move(actor),
              spec.start + seconds_to_micros(rng.uniform(0.0, 60.0))};
    }
    case GroupKind::kMonitor: {
      traffic::MonitorActor::Config mc;
      mc.period_s = vhost.monitor_period_s;
      mc.end_time = end;
      const Ipv4 ip(63, 143,
                    static_cast<std::uint8_t>(42 + (member / 16) % 8),
                    static_cast<std::uint8_t>(240 + member % 16));
      auto actor =
          std::make_unique<traffic::MonitorActor>(site, mc, ip, rng, id);
      return {std::move(actor),
              spec.start + seconds_to_micros(
                               rng.uniform(0.0, vhost.monitor_period_s))};
    }
    case GroupKind::kFleetFast: {
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::aggressive_fleet_profile();
      profile.ip = fleet_ip(group.campaign, member);
      // Per-bot UA identity: half spoof current browsers, the rest leak
      // automation markers (mirrors the mixed tooling of real botnets).
      const double ua_roll = rng.uniform();
      if (ua_roll < 0.45) {
        profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      } else if (ua_roll < 0.55) {
        profile.user_agent =
            std::string(traffic::sample_stale_browser_ua(rng));
      } else if (ua_roll < 0.80) {
        profile.user_agent = std::string(traffic::sample_script_ua(rng));
      } else {
        profile.user_agent = std::string(traffic::sample_headless_ua(rng));
      }
      apply_overrides(profile, attack);
      apply_evasion(profile, attack);
      profile.lifetime_requests = attack.lifetime_requests;
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, pause, attack.ramp_days)};
    }
    case GroupKind::kFleetSlow: {
      // Slow members: below the behavioural floor, inside the flagged
      // subnets. They keep their sub-threshold archetype timing — fleet
      // overrides apply to the fast members only.
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::slow_fleet_member_profile();
      profile.ip = slow_fleet_ip(group.campaign, member);
      profile.user_agent = std::string(
          rng.bernoulli(0.3) ? traffic::sample_stale_browser_ua(rng)
                             : traffic::sample_browser_ua(rng));
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, 43'200.0, attack.ramp_days)};
    }
    case GroupKind::kStealth: {
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::stealth_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      apply_evasion(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, pause, attack.ramp_days)};
    }
    case GroupKind::kApiClean: {
      // Clean-IP flavour (the in-house tool's catch).
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::api_clean_poller_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, pause, attack.ramp_days)};
    }
    case GroupKind::kApiFleet: {
      // Fleet flavour (the commercial tool's catch): parks on the attack's
      // own campaign /16 at high host addresses.
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::api_fleet_poller_profile();
      profile.ip =
          Ipv4(campaign_base(group.campaign).value() |
               (250u + static_cast<std::uint32_t>(member) % 5));
      profile.user_agent = std::string(traffic::sample_script_ua(rng));
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, 28'800.0, attack.ramp_days)};
    }
    case GroupKind::kMalformed: {
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::malformed_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, pause, attack.ramp_days)};
    }
    case GroupKind::kCaching: {
      const auto& attack = vhost.attacks[group.attack];
      traffic::BotProfile profile = traffic::caching_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, id);
      return {std::move(actor),
              spec_start_time(spec, rng, pause, attack.ramp_days)};
    }
  }
  return {nullptr, spec.start};  // unreachable
}

/// Builds partition `partition` of `partitions` for one spec: walks the
/// whole population in a fixed order (via the shared group table), claims
/// every actor whose global ordinal lands on this partition, and registers
/// it with the generator — eagerly constructed, or as a deferred cookie
/// when `lazy` (the construction draws still happen once here, because the
/// start time is the last draw of the construction sequence; the actor
/// object is dropped and rebuilt on arrival).
class PopulationBuilder {
 public:
  PopulationBuilder(
      const ScenarioSpec& spec,
      const std::vector<std::unique_ptr<traffic::SiteModel>>& sites,
      const std::vector<ActorGroup>& groups, bool lazy,
      std::size_t partitions, std::size_t partition,
      traffic::TrafficGenerator& gen)
      : spec_(spec),
        sites_(sites),
        groups_(groups),
        lazy_(lazy),
        partitions_(partitions),
        partition_(partition),
        gen_(gen) {
    for (const auto& vhost : spec_.vhosts) {
      for (const auto& attack : vhost.attacks)
        total_campaigns_ += campaigns_of(attack);
    }
  }

  void build() {
    std::size_t gi = 0;
    for (std::size_t v = 0; v < spec_.vhosts.size(); ++v) {
      add_humans(v);
      for (; gi < groups_.size() && groups_[gi].vhost == v; ++gi)
        add_group(groups_[gi]);
    }
  }

 private:
  void add_group(const ActorGroup& g) {
    const auto& site = *sites_[g.vhost];
    for (std::uint64_t ord = g.begin; ord < g.end; ++ord) {
      if (ord % partitions_ != partition_) continue;
      auto built = build_group_member(spec_, site, g,
                                      static_cast<int>(ord - g.begin), ord);
      if (lazy_) {
        gen_.add_lazy_actor(ord, built.start);
      } else {
        gen_.add_actor(std::move(built.actor), built.start, g.vhost);
      }
    }
  }

  void add_humans(std::size_t v) {
    const auto& mix = spec_.vhosts[v].humans;
    // Poisson superposition in reverse: P independent processes at rate/P
    // compose to the same aggregate arrival process, and each partition's
    // slice is deterministic in (spec, partitions, partition) alone.
    const double base_rate =
        mix.arrivals_per_s * spec_.scale / static_cast<double>(partitions_);
    if (base_rate <= 0.0) return;
    auto arrivals_rng = std::make_shared<Rng>(
        mix_seed(mix_seed(spec_.seed, kArrivalSalt + v), partition_));
    auto session_rng = std::make_shared<Rng>(
        mix_seed(mix_seed(spec_.seed, kSessionSalt + v), partition_));
    const Timestamp day0 = spec_.start;
    const double amplitude = mix.diurnal_amplitude;
    const bool has_surge = mix.surge_start_day >= 0.0 &&
                           mix.surge_duration_h > 0.0 &&
                           mix.surge_multiplier != 1.0;
    const std::int64_t surge_begin =
        day0.micros() +
        static_cast<std::int64_t>(mix.surge_start_day * httplog::kMicrosPerDay);
    const std::int64_t surge_end =
        surge_begin + static_cast<std::int64_t>(mix.surge_duration_h *
                                                httplog::kMicrosPerHour);
    const double surge_multiplier = mix.surge_multiplier;

    const auto rate_at = [base_rate, amplitude, day0, has_surge, surge_begin,
                          surge_end, surge_multiplier](Timestamp now) {
      const double hours = static_cast<double>(now - day0) / 1e6 / 3600.0;
      const double modulation =
          1.0 + amplitude * std::sin((hours - 9.0) / 24.0 * 2.0 * 3.14159265);
      double rate = base_rate * modulation;
      if (has_surge && now.micros() >= surge_begin && now.micros() < surge_end)
        rate *= surge_multiplier;
      return std::max(1e-9, rate);
    };

    traffic::ArrivalProcess humans;
    humans.next_arrival = [arrivals_rng, rate_at, has_surge, surge_begin,
                           surge_end](
                              Timestamp now) -> std::optional<Timestamp> {
      // A draw that crosses a surge boundary restarts at the boundary
      // with the boundary's rate. Exponential memorylessness makes this
      // exact for a piecewise-constant rate — without the entry re-draw a
      // quiet vhost could sleep through its own flash crowd, and without
      // the exit re-draw the first post-surge arrival would land at the
      // surged (compressed) gap.
      const auto redraw_at = [&](std::int64_t boundary_us) {
        const Timestamp boundary(boundary_us);
        return boundary + seconds_to_micros(
                              arrivals_rng->exponential(1.0 / rate_at(boundary)));
      };
      Timestamp next =
          now + seconds_to_micros(arrivals_rng->exponential(1.0 / rate_at(now)));
      if (has_surge && now.micros() < surge_begin &&
          next.micros() > surge_begin) {
        next = redraw_at(surge_begin);
      }
      if (has_surge && now.micros() < surge_end &&
          next.micros() > surge_end) {
        next = redraw_at(surge_end);
      }
      return next;
    };

    const auto* site = sites_[v].get();
    const traffic::HumanConfig human_config;
    const double fp_p = mix.in_botnet_subnet_p;
    const int campaigns = total_campaigns_;
    auto id_counter = std::make_shared<std::uint32_t>(0);
    const std::uint32_t id_stride = static_cast<std::uint32_t>(partitions_);
    // Base is salted per vhost: each vhost's arrival process counts from
    // zero, so without the salt the first human of every vhost in a given
    // partition would share one id.
    const std::uint32_t id_offset =
        static_cast<std::uint32_t>(v) * 0x01000000u +
        static_cast<std::uint32_t>(partition_);
    humans.make_actor = [session_rng, site, human_config, fp_p, campaigns,
                         id_counter, id_stride,
                         id_offset](Timestamp) -> std::unique_ptr<traffic::Actor> {
      Rng rng = session_rng->fork();
      const bool in_botnet = rng.bernoulli(fp_p) && campaigns > 0;
      const Ipv4 ip = in_botnet ? botnet_neighbour_ip(rng, campaigns)
                                : traffic::sample_clean_ip(rng);
      const std::uint32_t id =
          kHumanIdBase + id_offset + id_stride * (*id_counter)++;
      return std::make_unique<traffic::HumanActor>(
          *site, human_config, ip,
          std::string(traffic::sample_browser_ua(rng)), rng, id);
    };
    humans.vhost = static_cast<std::uint32_t>(v);
    gen_.add_arrivals(std::move(humans), spec_.start);
  }

  const ScenarioSpec& spec_;
  const std::vector<std::unique_ptr<traffic::SiteModel>>& sites_;
  const std::vector<ActorGroup>& groups_;
  bool lazy_;
  std::size_t partitions_;
  std::size_t partition_;
  traffic::TrafficGenerator& gen_;
  int total_campaigns_ = 0;
};

}  // namespace

/// One logical partition: its generator, the record carried across the
/// current window horizon, and the two generation buffers (one being
/// merged while the other fills).
struct WorkloadEngine::Partition {
  std::size_t index = 0;
  bool built = false;
  std::unique_ptr<traffic::TrafficGenerator> gen;
  httplog::LogRecord carry;
  bool has_carry = false;
  bool exhausted = false;
  std::vector<httplog::LogRecord> buffers[2];
};

/// Round-based worker pool: start_round() hands every partition out via an
/// atomic counter; workers build partitions lazily (construction
/// parallelizes for free) and signal completion per partition.
struct WorkloadEngine::Pool {
  std::mutex mutex;
  std::condition_variable round_start;
  std::condition_variable round_done;
  std::vector<std::thread> workers;
  std::uint64_t round = 0;
  std::atomic<std::size_t> next_part{0};
  std::size_t completed = 0;
  httplog::Timestamp horizon;
  int buf = 0;
  bool shutdown = false;
};

WorkloadEngine::WorkloadEngine(ScenarioSpec spec, EngineConfig config)
    : spec_(std::move(spec)), config_(config) {
  if (config_.gen_threads < 1)
    throw std::invalid_argument("WorkloadEngine: gen_threads must be >= 1");
  if (config_.partitions < 1)
    throw std::invalid_argument("WorkloadEngine: partitions must be >= 1");
  if (config_.window_us <= 0)
    throw std::invalid_argument("WorkloadEngine: window_us must be > 0");
  sites_.reserve(spec_.vhosts.size());
  for (const auto& vhost : spec_.vhosts)
    sites_.push_back(std::make_unique<traffic::SiteModel>(vhost.site));
  groups_ = build_group_table(spec_);
  parts_.reserve(config_.partitions);
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
    parts_.back()->index = p;
  }
  token_remap_.resize(config_.partitions);
}

WorkloadEngine::~WorkloadEngine() {
  if (!pool_) return;
  {
    std::lock_guard lock(pool_->mutex);
    pool_->shutdown = true;
  }
  pool_->round_start.notify_all();
  for (auto& worker : pool_->workers) {
    if (worker.joinable()) worker.join();
  }
}

void WorkloadEngine::build_partition(Partition& part) const {
  part.gen = std::make_unique<traffic::TrafficGenerator>(spec_.end());
  if (config_.lazy_actors) {
    part.gen->set_materializer(
        [this](std::uint64_t cookie) { return materialize(cookie); });
  }
  PopulationBuilder(spec_, sites_, groups_, config_.lazy_actors,
                    config_.partitions, part.index, *part.gen)
      .build();
  part.built = true;
}

traffic::TrafficGenerator::Materialized WorkloadEngine::materialize(
    std::uint64_t cookie) const {
  // Reads only immutable state (spec_, groups_, sites_) — safe from any
  // worker thread concurrently.
  const auto it = std::upper_bound(
      groups_.begin(), groups_.end(), cookie,
      [](std::uint64_t c, const ActorGroup& g) { return c < g.end; });
  const ActorGroup& g = *it;
  auto built = build_group_member(spec_, *sites_[g.vhost], g,
                                  static_cast<int>(cookie - g.begin), cookie);
  return {std::move(built.actor), g.vhost};
}

std::uint64_t static_population(const ScenarioSpec& spec) {
  const auto groups = build_group_table(spec);
  return groups.empty() ? 0 : groups.back().end;
}

std::uint64_t WorkloadEngine::actors_created() const noexcept {
  std::uint64_t total = 0;
  for (const auto& part : parts_)
    if (part->gen) total += part->gen->actors_created();
  return total;
}

std::size_t WorkloadEngine::peak_live_actors() const noexcept {
  std::size_t total = 0;
  for (const auto& part : parts_)
    if (part->gen) total += part->gen->peak_live_actors();
  return total;
}

void WorkloadEngine::generate_window(Partition& part, Timestamp horizon,
                                     int buf) {
  auto& out = part.buffers[buf];
  out.clear();
  if (part.has_carry) {
    if (part.carry.time >= horizon) return;  // still beyond this window
    out.push_back(std::move(part.carry));
    part.has_carry = false;
  }
  if (part.exhausted) return;
  httplog::LogRecord record;
  while (part.gen->next(record)) {
    if (record.time >= horizon) {
      part.carry = std::move(record);
      part.has_carry = true;
      return;
    }
    out.push_back(std::move(record));
  }
  part.exhausted = true;
}

void WorkloadEngine::worker_loop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    {
      std::unique_lock lock(pool_->mutex);
      pool_->round_start.wait(lock, [&] {
        return pool_->shutdown || pool_->round != seen_round;
      });
      if (pool_->shutdown) return;
      seen_round = pool_->round;
    }
    for (;;) {
      const std::size_t i = pool_->next_part.fetch_add(1);
      if (i >= parts_.size()) break;
      // Re-read the round parameters under the mutex: a straggler from the
      // previous round can legitimately claim the first task of the next
      // one (the counter was reset before it re-checked), and must then
      // use the *new* horizon and buffer, not its cached idea of them.
      Timestamp horizon;
      int buf;
      {
        std::lock_guard lock(pool_->mutex);
        horizon = pool_->horizon;
        buf = pool_->buf;
      }
      Partition& part = *parts_[i];
      if (!part.built) build_partition(part);
      generate_window(part, horizon, buf);
      {
        std::lock_guard lock(pool_->mutex);
        if (++pool_->completed == parts_.size())
          pool_->round_done.notify_one();
      }
    }
  }
}

void WorkloadEngine::start_round(Timestamp horizon, int buf) {
  {
    std::lock_guard lock(pool_->mutex);
    pool_->horizon = horizon;
    pool_->buf = buf;
    pool_->completed = 0;
    pool_->next_part.store(0);
    ++pool_->round;
  }
  pool_->round_start.notify_all();
}

void WorkloadEngine::wait_round() {
  std::unique_lock lock(pool_->mutex);
  pool_->round_done.wait(lock,
                         [&] { return pool_->completed == parts_.size(); });
}

void WorkloadEngine::merge_window(int buf, const EmitFn& emit) {
  // K-way merge of the window's per-partition buffers. The key is
  // (timestamp, partition, per-partition order) — per-partition order is
  // preserved because a partition's next record enters the heap only after
  // its predecessor left.
  struct Head {
    std::int64_t time_us;
    std::uint32_t part;
    std::size_t idx;
  };
  const auto after = [](const Head& a, const Head& b) noexcept {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.part > b.part;
  };
  std::vector<Head> heap;
  heap.reserve(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const auto& buffer = parts_[p]->buffers[buf];
    if (!buffer.empty()) {
      heap.push_back(
          {buffer.front().time.micros(), static_cast<std::uint32_t>(p), 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    if (stop_requested()) return;  // cancel at a record boundary
    std::pop_heap(heap.begin(), heap.end(), after);
    const Head head = heap.back();
    heap.pop_back();
    auto& buffer = parts_[head.part]->buffers[buf];
    auto& record = buffer[head.idx];
    // Partition-local ua_token -> engine-global token space: an O(1)
    // table lookup per record; the interner is probed once per distinct
    // (partition, token) pair.
    auto& remap = token_remap_[head.part];
    const std::uint32_t local = record.ua_token;
    if (local == 0) {
      record.ua_token = ua_tokens_.intern(record.user_agent);
    } else {
      if (local >= remap.size()) remap.resize(local + 1, 0);
      if (remap[local] == 0)
        remap[local] = ua_tokens_.intern(record.user_agent);
      record.ua_token = remap[local];
    }
    emit(record);
    ++emitted_;
    if (head.idx + 1 < buffer.size()) {
      heap.push_back({buffer[head.idx + 1].time.micros(), head.part,
                      head.idx + 1});
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
}

std::uint64_t WorkloadEngine::run(const RecordSink& sink) {
  return run_rounds([&sink](httplog::LogRecord& record) {
    sink(std::move(record));
  }, {});
}

std::uint64_t WorkloadEngine::run_batched(const BatchSink& sink,
                                          std::size_t batch_records,
                                          pipeline::BatchPool* pool) {
  const std::size_t cap = batch_records == 0 ? 1 : batch_records;
  pipeline::RecordBatch batch =
      pool ? pool->acquire() : pipeline::RecordBatch{};
  const auto flush = [&] {
    if (batch.empty()) return;
    pipeline::RecordBatch full = std::move(batch);
    batch = pool ? pool->acquire() : pipeline::RecordBatch{};
    sink(std::move(full));
  };
  const std::uint64_t n = run_rounds(
      [&](httplog::LogRecord& record) {
        // Copy-assign into a warm slot; the merge buffer keeps its record
        // (its storage is recycled by the next generation round anyway).
        batch.append_slot() = record;
        if (batch.size() >= cap) flush();
      },
      flush);  // batches never span merge windows
  flush();     // a stop_requested() cancel can leave a final partial
  return n;
}

std::uint64_t WorkloadEngine::run_rounds(
    const EmitFn& emit, const std::function<void()>& on_window_end) {
  if (ran_) throw std::logic_error("WorkloadEngine: run() called twice");
  ran_ = true;
  if (spec_.vhosts.empty()) return 0;

  pool_ = std::make_unique<Pool>();
  pool_->workers.reserve(config_.gen_threads);
  for (std::size_t t = 0; t < config_.gen_threads; ++t) {
    pool_->workers.emplace_back([this] { worker_loop(); });
  }

  const auto horizon_of = [this](std::uint64_t round) {
    return spec_.start + static_cast<std::int64_t>(round + 1) *
                             config_.window_us;
  };

  int gen_buf = 0;
  std::uint64_t next_window = 0;
  start_round(horizon_of(next_window++), gen_buf);
  wait_round();
  for (;;) {
    const int merge_buf = gen_buf;
    // Safe to inspect partition state: all workers are idle between
    // wait_round() and the next start_round().
    bool more = false;
    for (const auto& part : parts_) {
      if (!part->exhausted || part->has_carry) {
        more = true;
        break;
      }
    }
    if (stop_requested()) more = false;
    if (more) {
      // Pipeline: round w+1 generates into the other buffer while this
      // thread merges round w.
      gen_buf ^= 1;
      start_round(horizon_of(next_window++), gen_buf);
    }
    merge_window(merge_buf, emit);
    if (on_window_end) on_window_end();
    if (!more) break;
    wait_round();
  }

  {
    std::lock_guard lock(pool_->mutex);
    pool_->shutdown = true;
  }
  pool_->round_start.notify_all();
  for (auto& worker : pool_->workers) worker.join();
  pool_.reset();
  return emitted_;
}

}  // namespace divscrape::workload
