#include "workload/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "stats/rng.hpp"
#include "traffic/bots.hpp"
#include "traffic/generator.hpp"
#include "traffic/human.hpp"
#include "traffic/scrapers.hpp"
#include "traffic/ua_pool.hpp"

namespace divscrape::workload {

namespace {

using httplog::Ipv4;
using httplog::Timestamp;
using httplog::seconds_to_micros;
using stats::Rng;
using stats::mix_seed;

// Seed-derivation salts: every RNG of a spec run is seeded by hashing
// (spec seed, role salt, stable ordinal), never by walking a shared fork
// chain, so an actor's stream is a pure function of its identity — the
// property the partitioning determinism rests on.
constexpr std::uint64_t kActorSalt = 0xAC100001ULL;
constexpr std::uint64_t kArrivalSalt = 0xA1100001ULL;
constexpr std::uint64_t kSessionSalt = 0x5E550001ULL;
/// Human actor ids live far above static-actor ordinals.
constexpr std::uint32_t kHumanIdBase = 0x40000000u;

int scaled(int count, double scale) {
  if (count == 0) return 0;
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

/// Campaign c owns the /16 at 45.(140+c).0.0 (mod 100 keeps the second
/// octet in range for arbitrarily large specs).
Ipv4 campaign_base(int campaign) noexcept {
  return Ipv4(45, static_cast<std::uint8_t>(140 + campaign % 100), 0, 0);
}

/// Fast fleet member b sits in one of the campaign's /24s, hosts .2+.
Ipv4 fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  const std::uint32_t subnet = static_cast<std::uint32_t>(bot / 200) % 256;
  const std::uint32_t host = 2 + static_cast<std::uint32_t>(bot % 200);
  return Ipv4(base | (subnet << 8) | host);
}

/// Slow members park at .200+ so they never collide with fast members.
Ipv4 slow_fleet_ip(int campaign, int bot) noexcept {
  const auto base = campaign_base(campaign).value();
  return Ipv4(base | (static_cast<std::uint32_t>(bot % 2) << 8) |
              (200u + static_cast<std::uint32_t>(bot / 2) % 50));
}

/// A human victim address inside a random campaign /24 (collateral pool).
Ipv4 botnet_neighbour_ip(Rng& rng, int campaigns) {
  const int c = static_cast<int>(rng.uniform_int(0, campaigns - 1));
  const auto base = campaign_base(c).value();
  const std::uint32_t subnet =
      static_cast<std::uint32_t>(rng.uniform_int(0, 1));
  const std::uint32_t host =
      180u + static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  return Ipv4(base | (subnet << 8) | host);
}

/// Applies an attack wave's timing overrides onto an archetype profile
/// (0 keeps the archetype default; lifetime 0 keeps it too, except for the
/// aggressive fleet whose archetype default is already "unlimited").
void apply_overrides(traffic::BotProfile& profile, const AttackSpec& attack) {
  if (attack.gap_mean_s > 0.0) profile.gap_mean_s = attack.gap_mean_s;
  if (attack.session_len_mean > 0.0)
    profile.session_len_mean = attack.session_len_mean;
  if (attack.pause_mean_s > 0.0) profile.pause_mean_s = attack.pause_mean_s;
  if (attack.lifetime_requests != 0)
    profile.lifetime_requests = attack.lifetime_requests;
}

/// Builds partition `partition` of `partitions` for one spec: walks the
/// whole population in a fixed order, claims every actor whose global
/// ordinal lands on this partition, and registers it with the generator.
/// The walk itself is partition-independent (ordinals and campaign indices
/// advance identically everywhere); only construction is filtered.
class PopulationBuilder {
 public:
  PopulationBuilder(
      const ScenarioSpec& spec,
      const std::vector<std::unique_ptr<traffic::SiteModel>>& sites,
      std::size_t partitions, std::size_t partition,
      traffic::TrafficGenerator& gen)
      : spec_(spec),
        sites_(sites),
        partitions_(partitions),
        partition_(partition),
        gen_(gen) {
    for (const auto& vhost : spec_.vhosts) {
      for (const auto& attack : vhost.attacks)
        total_campaigns_ += campaigns_of(attack);
    }
  }

  void build() {
    for (std::size_t v = 0; v < spec_.vhosts.size(); ++v) {
      add_humans(v);
      add_benign_bots(v);
      for (const auto& attack : spec_.vhosts[v].attacks) {
        const int campaign0 = campaign_cursor_;
        campaign_cursor_ += campaigns_of(attack);
        add_attack(v, attack, campaign0);
      }
    }
  }

 private:
  static int campaigns_of(const AttackSpec& attack) noexcept {
    if (attack.kind == AttackKind::kFleet) return attack.campaigns;
    if (attack.kind == AttackKind::kApiPollers) return 1;
    return 0;
  }

  /// Claims the next global actor ordinal into `salt`; true when this
  /// partition owns the actor. Must be called exactly once per potential
  /// actor, owned or not.
  bool claim(std::uint64_t& salt) noexcept {
    salt = ordinal_++;
    return salt % partitions_ == partition_;
  }

  [[nodiscard]] Rng actor_rng(std::uint64_t salt) const noexcept {
    return Rng(mix_seed(mix_seed(spec_.seed, kActorSalt), salt));
  }

  /// First-session time: an explicit onboarding ramp spreads arrivals over
  /// `ramp_days`; otherwise the archetype stagger (uniform over one pause,
  /// capped at half the scenario so short runs still see everyone).
  [[nodiscard]] Timestamp start_time(Rng& rng, double pause_s,
                                     double ramp_days) const {
    const double duration_s = spec_.duration_days * 24.0 * 3600.0;
    const double window_s =
        ramp_days > 0.0 ? std::min(ramp_days * 24.0 * 3600.0, duration_s)
                        : std::min(pause_s, duration_s / 2.0);
    return spec_.start + seconds_to_micros(rng.uniform(0.0, window_s));
  }

  void add_humans(std::size_t v) {
    const auto& mix = spec_.vhosts[v].humans;
    // Poisson superposition in reverse: P independent processes at rate/P
    // compose to the same aggregate arrival process, and each partition's
    // slice is deterministic in (spec, partitions, partition) alone.
    const double base_rate =
        mix.arrivals_per_s * spec_.scale / static_cast<double>(partitions_);
    if (base_rate <= 0.0) return;
    auto arrivals_rng = std::make_shared<Rng>(
        mix_seed(mix_seed(spec_.seed, kArrivalSalt + v), partition_));
    auto session_rng = std::make_shared<Rng>(
        mix_seed(mix_seed(spec_.seed, kSessionSalt + v), partition_));
    const Timestamp day0 = spec_.start;
    const double amplitude = mix.diurnal_amplitude;
    const bool has_surge = mix.surge_start_day >= 0.0 &&
                           mix.surge_duration_h > 0.0 &&
                           mix.surge_multiplier != 1.0;
    const std::int64_t surge_begin =
        day0.micros() +
        static_cast<std::int64_t>(mix.surge_start_day * httplog::kMicrosPerDay);
    const std::int64_t surge_end =
        surge_begin + static_cast<std::int64_t>(mix.surge_duration_h *
                                                httplog::kMicrosPerHour);
    const double surge_multiplier = mix.surge_multiplier;

    const auto rate_at = [base_rate, amplitude, day0, has_surge, surge_begin,
                          surge_end, surge_multiplier](Timestamp now) {
      const double hours = static_cast<double>(now - day0) / 1e6 / 3600.0;
      const double modulation =
          1.0 + amplitude * std::sin((hours - 9.0) / 24.0 * 2.0 * 3.14159265);
      double rate = base_rate * modulation;
      if (has_surge && now.micros() >= surge_begin && now.micros() < surge_end)
        rate *= surge_multiplier;
      return std::max(1e-9, rate);
    };

    traffic::ArrivalProcess humans;
    humans.next_arrival = [arrivals_rng, rate_at, has_surge, surge_begin,
                           surge_end](
                              Timestamp now) -> std::optional<Timestamp> {
      // A draw that crosses a surge boundary restarts at the boundary
      // with the boundary's rate. Exponential memorylessness makes this
      // exact for a piecewise-constant rate — without the entry re-draw a
      // quiet vhost could sleep through its own flash crowd, and without
      // the exit re-draw the first post-surge arrival would land at the
      // surged (compressed) gap.
      const auto redraw_at = [&](std::int64_t boundary_us) {
        const Timestamp boundary(boundary_us);
        return boundary + seconds_to_micros(
                              arrivals_rng->exponential(1.0 / rate_at(boundary)));
      };
      Timestamp next =
          now + seconds_to_micros(arrivals_rng->exponential(1.0 / rate_at(now)));
      if (has_surge && now.micros() < surge_begin &&
          next.micros() > surge_begin) {
        next = redraw_at(surge_begin);
      }
      if (has_surge && now.micros() < surge_end &&
          next.micros() > surge_end) {
        next = redraw_at(surge_end);
      }
      return next;
    };

    const auto* site = sites_[v].get();
    const traffic::HumanConfig human_config;
    const double fp_p = mix.in_botnet_subnet_p;
    const int campaigns = total_campaigns_;
    auto id_counter = std::make_shared<std::uint32_t>(0);
    const std::uint32_t id_stride = static_cast<std::uint32_t>(partitions_);
    // Base is salted per vhost: each vhost's arrival process counts from
    // zero, so without the salt the first human of every vhost in a given
    // partition would share one id.
    const std::uint32_t id_offset =
        static_cast<std::uint32_t>(v) * 0x01000000u +
        static_cast<std::uint32_t>(partition_);
    humans.make_actor = [session_rng, site, human_config, fp_p, campaigns,
                         id_counter, id_stride,
                         id_offset](Timestamp) -> std::unique_ptr<traffic::Actor> {
      Rng rng = session_rng->fork();
      const bool in_botnet = rng.bernoulli(fp_p) && campaigns > 0;
      const Ipv4 ip = in_botnet ? botnet_neighbour_ip(rng, campaigns)
                                : traffic::sample_clean_ip(rng);
      const std::uint32_t id =
          kHumanIdBase + id_offset + id_stride * (*id_counter)++;
      return std::make_unique<traffic::HumanActor>(
          *site, human_config, ip,
          std::string(traffic::sample_browser_ua(rng)), rng, id);
    };
    gen_.add_arrivals(std::move(humans), spec_.start);
  }

  void add_benign_bots(std::size_t v) {
    const auto& vhost = spec_.vhosts[v];
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    for (int i = 0; i < scaled(vhost.crawlers, spec_.scale); ++i) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::CrawlerActor::Config cc;
      cc.crawl_gap_mean_s = vhost.crawler_gap_mean_s;
      cc.end_time = end;
      const Ipv4 ip(66, 249, static_cast<std::uint8_t>(64 + (i / 200) % 8),
                    static_cast<std::uint8_t>(10 + i % 200));
      auto actor = std::make_unique<traffic::CrawlerActor>(
          site, cc, ip, std::string(traffic::sample_crawler_ua(rng)), rng,
          actor_id(salt));
      gen_.add_actor(std::move(actor),
                     spec_.start + seconds_to_micros(rng.uniform(0.0, 60.0)));
    }
    for (int i = 0; i < scaled(vhost.monitors, spec_.scale); ++i) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::MonitorActor::Config mc;
      mc.period_s = vhost.monitor_period_s;
      mc.end_time = end;
      const Ipv4 ip(63, 143, static_cast<std::uint8_t>(42 + (i / 16) % 8),
                    static_cast<std::uint8_t>(240 + i % 16));
      gen_.add_actor(
          std::make_unique<traffic::MonitorActor>(site, mc, ip, rng,
                                                  actor_id(salt)),
          spec_.start +
              seconds_to_micros(rng.uniform(0.0, vhost.monitor_period_s)));
    }
  }

  void add_attack(std::size_t v, const AttackSpec& attack, int campaign0) {
    switch (attack.kind) {
      case AttackKind::kFleet:
        add_fleet(v, attack, campaign0);
        break;
      case AttackKind::kStealth:
        add_stealth(v, attack);
        break;
      case AttackKind::kApiPollers:
        add_api_pollers(v, attack, campaign0);
        break;
      case AttackKind::kMalformed:
        add_malformed(v, attack);
        break;
      case AttackKind::kCaching:
        add_caching(v, attack);
        break;
    }
  }

  void add_fleet(std::size_t v, const AttackSpec& attack, int campaign0) {
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    const int bots = scaled(attack.bots, spec_.scale);
    const int slow = scaled(attack.slow_bots, spec_.scale);
    for (int c = 0; c < attack.campaigns; ++c) {
      for (int b = 0; b < bots; ++b) {
        std::uint64_t salt = 0;
        const bool mine = claim(salt);
        if (!mine) continue;
        Rng rng = actor_rng(salt);
        traffic::BotProfile profile = traffic::aggressive_fleet_profile();
        profile.ip = fleet_ip(campaign0 + c, b);
        // Per-bot UA identity: half spoof current browsers, the rest leak
        // automation markers (mirrors the mixed tooling of real botnets).
        const double ua_roll = rng.uniform();
        if (ua_roll < 0.45) {
          profile.user_agent = std::string(traffic::sample_browser_ua(rng));
        } else if (ua_roll < 0.55) {
          profile.user_agent =
              std::string(traffic::sample_stale_browser_ua(rng));
        } else if (ua_roll < 0.80) {
          profile.user_agent = std::string(traffic::sample_script_ua(rng));
        } else {
          profile.user_agent = std::string(traffic::sample_headless_ua(rng));
        }
        apply_overrides(profile, attack);
        profile.lifetime_requests = attack.lifetime_requests;
        const double pause = profile.pause_mean_s;
        auto actor = std::make_unique<traffic::ScraperBot>(
            site, std::move(profile), end, rng, actor_id(salt));
        gen_.add_actor(std::move(actor),
                       start_time(rng, pause, attack.ramp_days));
      }
      // Slow members: below the behavioural floor, inside the flagged
      // subnets. They keep their sub-threshold archetype timing — fleet
      // overrides apply to the fast members only.
      for (int b = 0; b < slow; ++b) {
        std::uint64_t salt = 0;
        if (!claim(salt)) continue;
        Rng rng = actor_rng(salt);
        traffic::BotProfile profile = traffic::slow_fleet_member_profile();
        profile.ip = slow_fleet_ip(campaign0 + c, b);
        profile.user_agent = std::string(
            rng.bernoulli(0.3) ? traffic::sample_stale_browser_ua(rng)
                               : traffic::sample_browser_ua(rng));
        auto actor = std::make_unique<traffic::ScraperBot>(
            site, std::move(profile), end, rng, actor_id(salt));
        gen_.add_actor(std::move(actor),
                       start_time(rng, 43'200.0, attack.ramp_days));
      }
    }
  }

  void add_stealth(std::size_t v, const AttackSpec& attack) {
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    for (int b = 0; b < scaled(attack.bots, spec_.scale); ++b) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::BotProfile profile = traffic::stealth_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, actor_id(salt));
      gen_.add_actor(std::move(actor),
                     start_time(rng, pause, attack.ramp_days));
    }
  }

  void add_api_pollers(std::size_t v, const AttackSpec& attack,
                       int campaign0) {
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    // Clean-IP flavour (the in-house tool's catch).
    for (int b = 0; b < scaled(attack.bots, spec_.scale); ++b) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::BotProfile profile = traffic::api_clean_poller_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, actor_id(salt));
      gen_.add_actor(std::move(actor),
                     start_time(rng, pause, attack.ramp_days));
    }
    // Fleet flavour (the commercial tool's catch): parks on the attack's
    // own campaign /16 at high host addresses.
    for (int b = 0; b < scaled(attack.fleet_bots, spec_.scale); ++b) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::BotProfile profile = traffic::api_fleet_poller_profile();
      profile.ip = Ipv4(campaign_base(campaign0).value() |
                        (250u + static_cast<std::uint32_t>(b) % 5));
      profile.user_agent = std::string(traffic::sample_script_ua(rng));
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, actor_id(salt));
      gen_.add_actor(std::move(actor),
                     start_time(rng, 28'800.0, attack.ramp_days));
    }
  }

  void add_malformed(std::size_t v, const AttackSpec& attack) {
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    for (int b = 0; b < scaled(attack.bots, spec_.scale); ++b) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::BotProfile profile = traffic::malformed_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, actor_id(salt));
      gen_.add_actor(std::move(actor),
                     start_time(rng, pause, attack.ramp_days));
    }
  }

  void add_caching(std::size_t v, const AttackSpec& attack) {
    const auto& site = *sites_[v];
    const Timestamp end = spec_.end();
    for (int b = 0; b < scaled(attack.bots, spec_.scale); ++b) {
      std::uint64_t salt = 0;
      if (!claim(salt)) continue;
      Rng rng = actor_rng(salt);
      traffic::BotProfile profile = traffic::caching_scraper_profile();
      profile.ip = traffic::sample_clean_ip(rng);
      profile.user_agent = std::string(traffic::sample_browser_ua(rng));
      apply_overrides(profile, attack);
      const double pause = profile.pause_mean_s;
      auto actor = std::make_unique<traffic::ScraperBot>(
          site, std::move(profile), end, rng, actor_id(salt));
      gen_.add_actor(std::move(actor),
                     start_time(rng, pause, attack.ramp_days));
    }
  }

  [[nodiscard]] static std::uint32_t actor_id(std::uint64_t salt) noexcept {
    return static_cast<std::uint32_t>(salt + 1);
  }

  const ScenarioSpec& spec_;
  const std::vector<std::unique_ptr<traffic::SiteModel>>& sites_;
  std::size_t partitions_;
  std::size_t partition_;
  traffic::TrafficGenerator& gen_;
  std::uint64_t ordinal_ = 0;    ///< global actor ordinal (walk-stable)
  int campaign_cursor_ = 0;      ///< global /16 allocation (walk-stable)
  int total_campaigns_ = 0;
};

}  // namespace

/// One logical partition: its generator, the record carried across the
/// current window horizon, and the two generation buffers (one being
/// merged while the other fills).
struct WorkloadEngine::Partition {
  std::size_t index = 0;
  bool built = false;
  std::unique_ptr<traffic::TrafficGenerator> gen;
  httplog::LogRecord carry;
  bool has_carry = false;
  bool exhausted = false;
  std::vector<httplog::LogRecord> buffers[2];
};

/// Round-based worker pool: start_round() hands every partition out via an
/// atomic counter; workers build partitions lazily (construction
/// parallelizes for free) and signal completion per partition.
struct WorkloadEngine::Pool {
  std::mutex mutex;
  std::condition_variable round_start;
  std::condition_variable round_done;
  std::vector<std::thread> workers;
  std::uint64_t round = 0;
  std::atomic<std::size_t> next_part{0};
  std::size_t completed = 0;
  httplog::Timestamp horizon;
  int buf = 0;
  bool shutdown = false;
};

WorkloadEngine::WorkloadEngine(ScenarioSpec spec, EngineConfig config)
    : spec_(std::move(spec)), config_(config) {
  if (config_.gen_threads < 1)
    throw std::invalid_argument("WorkloadEngine: gen_threads must be >= 1");
  if (config_.partitions < 1)
    throw std::invalid_argument("WorkloadEngine: partitions must be >= 1");
  if (config_.window_us <= 0)
    throw std::invalid_argument("WorkloadEngine: window_us must be > 0");
  sites_.reserve(spec_.vhosts.size());
  for (const auto& vhost : spec_.vhosts)
    sites_.push_back(std::make_unique<traffic::SiteModel>(vhost.site));
  parts_.reserve(config_.partitions);
  for (std::size_t p = 0; p < config_.partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
    parts_.back()->index = p;
  }
  token_remap_.resize(config_.partitions);
}

WorkloadEngine::~WorkloadEngine() {
  if (!pool_) return;
  {
    std::lock_guard lock(pool_->mutex);
    pool_->shutdown = true;
  }
  pool_->round_start.notify_all();
  for (auto& worker : pool_->workers) {
    if (worker.joinable()) worker.join();
  }
}

void WorkloadEngine::build_partition(Partition& part) const {
  part.gen = std::make_unique<traffic::TrafficGenerator>(spec_.end());
  PopulationBuilder(spec_, sites_, config_.partitions, part.index, *part.gen)
      .build();
  part.built = true;
}

void WorkloadEngine::generate_window(Partition& part, Timestamp horizon,
                                     int buf) {
  auto& out = part.buffers[buf];
  out.clear();
  if (part.has_carry) {
    if (part.carry.time >= horizon) return;  // still beyond this window
    out.push_back(std::move(part.carry));
    part.has_carry = false;
  }
  if (part.exhausted) return;
  httplog::LogRecord record;
  while (part.gen->next(record)) {
    if (record.time >= horizon) {
      part.carry = std::move(record);
      part.has_carry = true;
      return;
    }
    out.push_back(std::move(record));
  }
  part.exhausted = true;
}

void WorkloadEngine::worker_loop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    {
      std::unique_lock lock(pool_->mutex);
      pool_->round_start.wait(lock, [&] {
        return pool_->shutdown || pool_->round != seen_round;
      });
      if (pool_->shutdown) return;
      seen_round = pool_->round;
    }
    for (;;) {
      const std::size_t i = pool_->next_part.fetch_add(1);
      if (i >= parts_.size()) break;
      // Re-read the round parameters under the mutex: a straggler from the
      // previous round can legitimately claim the first task of the next
      // one (the counter was reset before it re-checked), and must then
      // use the *new* horizon and buffer, not its cached idea of them.
      Timestamp horizon;
      int buf;
      {
        std::lock_guard lock(pool_->mutex);
        horizon = pool_->horizon;
        buf = pool_->buf;
      }
      Partition& part = *parts_[i];
      if (!part.built) build_partition(part);
      generate_window(part, horizon, buf);
      {
        std::lock_guard lock(pool_->mutex);
        if (++pool_->completed == parts_.size())
          pool_->round_done.notify_one();
      }
    }
  }
}

void WorkloadEngine::start_round(Timestamp horizon, int buf) {
  {
    std::lock_guard lock(pool_->mutex);
    pool_->horizon = horizon;
    pool_->buf = buf;
    pool_->completed = 0;
    pool_->next_part.store(0);
    ++pool_->round;
  }
  pool_->round_start.notify_all();
}

void WorkloadEngine::wait_round() {
  std::unique_lock lock(pool_->mutex);
  pool_->round_done.wait(lock,
                         [&] { return pool_->completed == parts_.size(); });
}

void WorkloadEngine::merge_window(int buf, const RecordSink& sink) {
  // K-way merge of the window's per-partition buffers. The key is
  // (timestamp, partition, per-partition order) — per-partition order is
  // preserved because a partition's next record enters the heap only after
  // its predecessor left.
  struct Head {
    std::int64_t time_us;
    std::uint32_t part;
    std::size_t idx;
  };
  const auto after = [](const Head& a, const Head& b) noexcept {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.part > b.part;
  };
  std::vector<Head> heap;
  heap.reserve(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const auto& buffer = parts_[p]->buffers[buf];
    if (!buffer.empty()) {
      heap.push_back(
          {buffer.front().time.micros(), static_cast<std::uint32_t>(p), 0});
    }
  }
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const Head head = heap.back();
    heap.pop_back();
    auto& buffer = parts_[head.part]->buffers[buf];
    auto& record = buffer[head.idx];
    // Partition-local ua_token -> engine-global token space: an O(1)
    // table lookup per record; the interner is probed once per distinct
    // (partition, token) pair.
    auto& remap = token_remap_[head.part];
    const std::uint32_t local = record.ua_token;
    if (local == 0) {
      record.ua_token = ua_tokens_.intern(record.user_agent);
    } else {
      if (local >= remap.size()) remap.resize(local + 1, 0);
      if (remap[local] == 0)
        remap[local] = ua_tokens_.intern(record.user_agent);
      record.ua_token = remap[local];
    }
    sink(std::move(record));
    ++emitted_;
    if (head.idx + 1 < buffer.size()) {
      heap.push_back({buffer[head.idx + 1].time.micros(), head.part,
                      head.idx + 1});
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
}

std::uint64_t WorkloadEngine::run(const RecordSink& sink) {
  if (ran_) throw std::logic_error("WorkloadEngine: run() called twice");
  ran_ = true;
  if (spec_.vhosts.empty()) return 0;

  pool_ = std::make_unique<Pool>();
  pool_->workers.reserve(config_.gen_threads);
  for (std::size_t t = 0; t < config_.gen_threads; ++t) {
    pool_->workers.emplace_back([this] { worker_loop(); });
  }

  const auto horizon_of = [this](std::uint64_t round) {
    return spec_.start + static_cast<std::int64_t>(round + 1) *
                             config_.window_us;
  };

  int gen_buf = 0;
  std::uint64_t next_window = 0;
  start_round(horizon_of(next_window++), gen_buf);
  wait_round();
  for (;;) {
    const int merge_buf = gen_buf;
    // Safe to inspect partition state: all workers are idle between
    // wait_round() and the next start_round().
    bool more = false;
    for (const auto& part : parts_) {
      if (!part->exhausted || part->has_carry) {
        more = true;
        break;
      }
    }
    if (more) {
      // Pipeline: round w+1 generates into the other buffer while this
      // thread merges round w.
      gen_buf ^= 1;
      start_round(horizon_of(next_window++), gen_buf);
    }
    merge_window(merge_buf, sink);
    if (!more) break;
    wait_round();
  }

  {
    std::lock_guard lock(pool_->mutex);
    pool_->shutdown = true;
  }
  pool_->round_start.notify_all();
  for (auto& worker : pool_->workers) worker.join();
  pool_.reset();
  return emitted_;
}

}  // namespace divscrape::workload
