// WorkloadEngine: parallel, deterministic, streaming generation of a
// ScenarioSpec — the generation-side counterpart of pipeline::MultiTailer's
// ingest merge.
//
// ## Partitioning model
//
// The actor population is split across `partitions` *logical* partitions by
// a stable rule (global actor ordinal mod partitions; per-vhost human
// arrival processes are thinned into `partitions` independent processes of
// rate λ/P — the Poisson superposition identity in reverse). Every actor's
// RNG is seeded by hashing (spec seed, actor ordinal), never by walking a
// shared fork chain, so partition p's record stream is a pure function of
// (spec, partitions, p):
//
//   * independent of how many threads execute the partitions,
//   * independent of which thread executes partition p,
//   * and buildable in isolation (partition construction parallelizes).
//
// ## Time-merged execution
//
// Generation advances in simulated-time windows (default one hour). Each
// round, `gen_threads` workers claim partitions from an atomic counter and
// run each partition's TrafficGenerator up to the window horizon into a
// per-partition buffer (the record that crosses the horizon is carried to
// the next round). The caller's thread then merges the window's sorted
// buffers on a (timestamp, partition, seq) min-heap — the same documented
// merge-key discipline as MultiTailer — and streams records into the sink
// in one deterministic global time order. Windows are double-buffered:
// round w+1 generates while round w merges, so the merge costs no
// wall-clock on a multi-core host.
//
// The result is byte-identical output for a given (spec, partitions,
// window) regardless of gen_threads — the determinism contract the
// workload tests pin at 1/2/4 threads — in bounded memory (two windows of
// records), never materializing the stream.
//
// ## Token stamping
//
// Each partition's generator stamps ua_tokens from its own interner;
// partition-local tokens are remapped to one engine-global token space
// during the merge via a per-partition lookup table (O(1) per record, no
// re-probing), so sinks can feed detectors directly with consistent
// tokens.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "httplog/record.hpp"
#include "httplog/timestamp.hpp"
#include "pipeline/record_batch.hpp"
#include "traffic/generator.hpp"
#include "traffic/site.hpp"
#include "util/interner.hpp"
#include "workload/scenario_spec.hpp"

namespace divscrape::workload {

struct EngineConfig {
  /// Generator worker threads (>= 1). Purely an execution knob: the output
  /// stream is identical for any value.
  std::size_t gen_threads = 1;
  /// Logical partitions (>= 1). Part of the output contract: changing it
  /// changes the population-to-partition assignment and therefore the
  /// stream. Keep the default unless you need more parallelism headroom
  /// than 8 threads.
  std::size_t partitions = 8;
  /// Simulated-time merge window. Smaller = less buffering, more rounds.
  std::int64_t window_us = httplog::kMicrosPerHour;
  /// Lazy actor materialization: scripted (non-human) actors are built on
  /// their first scheduled arrival and freed at lifetime end, so partition
  /// memory tracks the concurrently-live population instead of the spec
  /// totals — what makes megasite-class specs (>= 1M distinct actors)
  /// feasible. Output is byte-identical to the eager path for every spec
  /// and thread count (the contract workload_engine tests pin); the cost is
  /// a second construction pass per actor, so it defaults off for the
  /// small catalog entries.
  bool lazy_actors = false;
};

/// Total scripted (non-human) actors a spec materializes over its run, at
/// its own scale — the number that decides whether lazy_actors is worth it.
[[nodiscard]] std::uint64_t static_population(const ScenarioSpec& spec);

/// Ordinal-range descriptor of one scripted-actor group (engine internal).
struct ActorGroup;

class WorkloadEngine {
 public:
  /// Receives the merged, time-ordered record stream.
  using RecordSink = std::function<void(httplog::LogRecord&&)>;
  /// Receives the merged stream framed into RecordBatches (batch mode).
  using BatchSink = std::function<void(pipeline::RecordBatch&&)>;

  explicit WorkloadEngine(ScenarioSpec spec,
                          EngineConfig config = EngineConfig());
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Generates the whole scenario into `sink`, time-ordered. Callable
  /// exactly once; returns the number of records emitted.
  std::uint64_t run(const RecordSink& sink);

  /// Batch-mode run: the engine already produces whole sorted time windows,
  /// so it hands them downstream as RecordBatches of `batch_records`
  /// (copy-assigned into warm slots — the arena contract) instead of one
  /// record at a time. A partial batch is flushed at every merge-window
  /// boundary, so a batch never spans windows and the emission order is
  /// identical to run(). Wire `pool` to the consumer's recycle side (e.g.
  /// &pipeline.batch_pool()) to close the arena loop. Callable exactly
  /// once (shares run()'s once-only contract); returns records emitted.
  std::uint64_t run_batched(const BatchSink& sink,
                            std::size_t batch_records = 1024,
                            pipeline::BatchPool* pool = nullptr);

  /// Cooperative cancellation (signal-handler driven): run() stops merging
  /// at the next record boundary, finishes the in-flight worker round, and
  /// returns what was emitted so far. Safe to call from any thread.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  /// Distinct User-Agent strings across the merged stream so far.
  [[nodiscard]] std::size_t distinct_user_agents() const noexcept {
    return ua_tokens_.size();
  }
  /// Actors actually constructed across all partitions (spawned humans +
  /// materialized or eager scripted actors).
  [[nodiscard]] std::uint64_t actors_created() const noexcept;
  /// Sum of per-partition concurrently-live high-water marks — the bound
  /// on resident actor state (distinct-actor count does not appear here;
  /// that is the point of lazy materialization).
  [[nodiscard]] std::size_t peak_live_actors() const noexcept;

 private:
  struct Partition;
  /// Merge-time emission hook: receives each record as a mutable lvalue
  /// (record mode moves it out; batch mode copy-assigns into a warm slot).
  using EmitFn = std::function<void(httplog::LogRecord&)>;

  [[nodiscard]] traffic::TrafficGenerator::Materialized materialize(
      std::uint64_t cookie) const;

  void build_partition(Partition& part) const;
  static void generate_window(Partition& part, httplog::Timestamp horizon,
                              int buf);
  /// The generate/merge round loop shared by run() and run_batched();
  /// `on_window_end` (optional) fires after each merged window.
  std::uint64_t run_rounds(const EmitFn& emit,
                           const std::function<void()>& on_window_end);
  void merge_window(int buf, const EmitFn& emit);
  void worker_loop();
  void start_round(httplog::Timestamp horizon, int buf);
  void wait_round();

  ScenarioSpec spec_;
  EngineConfig config_;
  /// One immutable site model per vhost, shared read-only by every
  /// partition (all SiteModel sampling is const with a caller-owned Rng).
  std::vector<std::unique_ptr<traffic::SiteModel>> sites_;

  std::vector<std::unique_ptr<Partition>> parts_;
  /// Ordinal-range table of every scripted actor group, in walk order —
  /// what the lazy materializer maps a cookie (global ordinal) back to a
  /// (vhost, group kind, member) identity with.
  std::vector<ActorGroup> groups_;
  util::StringInterner ua_tokens_;  ///< engine-global token space
  std::vector<std::vector<std::uint32_t>> token_remap_;  ///< per partition
  std::uint64_t emitted_ = 0;
  bool ran_ = false;
  std::atomic<bool> stop_{false};

  // Worker-pool round coordination (see engine.cpp).
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace divscrape::workload
