#include "workload/catalog.hpp"

namespace divscrape::workload {

namespace {

AttackSpec fleet(int campaigns, int bots, int slow_bots) {
  AttackSpec attack;
  attack.kind = AttackKind::kFleet;
  attack.campaigns = campaigns;
  attack.bots = bots;
  attack.slow_bots = slow_bots;
  return attack;
}

AttackSpec stealth(int bots) {
  AttackSpec attack;
  attack.kind = AttackKind::kStealth;
  attack.bots = bots;
  return attack;
}

AttackSpec api_pollers(int clean_bots, int fleet_bots) {
  AttackSpec attack;
  attack.kind = AttackKind::kApiPollers;
  attack.bots = clean_bots;
  attack.fleet_bots = fleet_bots;
  return attack;
}

AttackSpec malformed(int bots) {
  AttackSpec attack;
  attack.kind = AttackKind::kMalformed;
  attack.bots = bots;
  return attack;
}

AttackSpec caching(int bots) {
  AttackSpec attack;
  attack.kind = AttackKind::kCaching;
  attack.bots = bots;
  return attack;
}

/// The paper-shaped deployment as a spec: one vhost, the calibrated
/// amadeus_like populations (mirrors traffic::amadeus_like()'s defaults).
ScenarioSpec make_amadeus_like() {
  ScenarioSpec spec;
  spec.name = "amadeus_like";
  VhostSpec www;
  www.attacks = {fleet(3, 350, 9), stealth(25), api_pollers(3, 2),
                 malformed(3), caching(2)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// A benign flash crowd: a sale/press spike multiplies human arrivals 40x
/// for two hours on day 1, over an ordinary background attack mix. The
/// interesting question is the detectors' false-positive behaviour during
/// the surge, so the malicious population is deliberately modest.
ScenarioSpec make_flash_crowd() {
  ScenarioSpec spec;
  spec.name = "flash_crowd";
  spec.duration_days = 2.0;
  VhostSpec www;
  www.humans.arrivals_per_s = 0.06;
  www.humans.surge_start_day = 1.0;
  www.humans.surge_duration_h = 2.0;
  www.humans.surge_multiplier = 40.0;
  www.attacks = {fleet(1, 90, 4), caching(2)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// A scraping fleet onboarding over three days: four campaigns whose
/// members' first sessions are spread over the ramp, so pressure grows
/// from single probes to full sweep — the shape a SOC sees when a new
/// scraping-as-a-service customer targets the site.
ScenarioSpec make_scraper_fleet_ramp() {
  ScenarioSpec spec;
  spec.name = "scraper_fleet_ramp";
  spec.duration_days = 4.0;
  VhostSpec www;
  auto wave = fleet(4, 240, 6);
  wave.ramp_days = 3.0;
  wave.gap_mean_s = 0.5;
  www.attacks = {wave, caching(2)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// A patient, distributed campaign: hundreds of stealth bots on clean
/// residential addresses, human-like pacing, small sessions, two weeks of
/// runway — each bot stays under the behavioural floor while the campaign
/// extracts the catalogue. The paper's discussion names this the hardest
/// shape; the reproduction makes it a first-class workload.
ScenarioSpec make_low_and_slow() {
  ScenarioSpec spec;
  spec.name = "low_and_slow";
  spec.duration_days = 14.0;
  VhostSpec www;
  auto wave = stealth(320);
  wave.ramp_days = 4.0;
  wave.pause_mean_s = 10'800.0;
  wave.lifetime_requests = 1'200;
  www.attacks = {wave, malformed(1)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// Three vhosts of one estate: the main shop (big catalogue, fleet +
/// stealth pressure), the mobile/API host (small pages, API pollers), and
/// a partner/agency portal (tiny catalogue, buggy automation). Exercises
/// the multi-file merge end to end with genuinely different per-vhost
/// traffic shapes.
ScenarioSpec make_mixed_multi_vhost() {
  ScenarioSpec spec;
  spec.name = "mixed_multi_vhost";
  spec.duration_days = 3.0;

  VhostSpec www;
  www.name = "www";
  www.humans.arrivals_per_s = 0.04;
  www.attacks = {fleet(2, 260, 8), stealth(40)};

  VhostSpec mobile;
  mobile.name = "m";
  mobile.site.catalogue_size = 20'000;
  mobile.site.asset_count = 8;
  mobile.humans.arrivals_per_s = 0.02;
  mobile.crawlers = 1;
  mobile.attacks = {api_pollers(4, 3), caching(3)};

  VhostSpec agency;
  agency.name = "agency";
  agency.site.catalogue_size = 5'000;
  agency.site.city_pairs = 80;
  agency.humans.arrivals_per_s = 0.004;
  agency.crawlers = 0;
  agency.monitors = 1;
  agency.attacks = {malformed(4), stealth(10)};

  spec.vhosts = {std::move(www), std::move(mobile), std::move(agency)};
  return spec;
}

/// A production day at estate scale: four vhosts whose *distinct* actor
/// population crosses one million in 24 simulated hours. The malicious mix
/// is churn-shaped — short-lived hit-and-run bots (small lifetime_requests)
/// arriving throughout the day — so the concurrently-live population stays
/// in the low tens of thousands while the distinct population is ~1M;
/// that, plus capped Zipf tables over multi-million-entry catalogues, is
/// what EngineConfig::lazy_actors turns into flat memory. This is the
/// chaos-soak workload (`divscrape_cli soak`); run it at --scale 0.01 for
/// a CI-sized smoke.
ScenarioSpec make_megasite() {
  ScenarioSpec spec;
  spec.name = "megasite";
  spec.duration_days = 1.0;

  VhostSpec www;
  www.name = "www";
  www.site.catalogue_size = 2'000'000;
  www.site.zipf_table_cap = 65'536;
  www.humans.arrivals_per_s = 0.25;
  www.crawlers = 6;
  www.monitors = 4;
  auto churn = fleet(6, 60'000, 2'000);
  churn.ramp_days = 0.9;         // arrivals spread across the whole day
  churn.lifetime_requests = 12;  // hit-and-run: retire after one burst
  churn.gap_mean_s = 2.0;
  auto residential = stealth(280'000);
  residential.ramp_days = 0.9;
  residential.lifetime_requests = 5;
  www.attacks = {churn, residential};

  VhostSpec m;
  m.name = "m";
  m.site.catalogue_size = 400'000;
  m.site.zipf_table_cap = 32'768;
  m.site.asset_count = 8;
  m.humans.arrivals_per_s = 0.12;
  m.crawlers = 2;
  auto pollers = api_pollers(60'000, 400);
  pollers.ramp_days = 0.9;
  pollers.lifetime_requests = 10;
  auto cache_bust = caching(40'000);
  cache_bust.ramp_days = 0.9;
  cache_bust.lifetime_requests = 8;
  m.attacks = {pollers, cache_bust};

  VhostSpec api;
  api.name = "api";
  api.site.catalogue_size = 1'000'000;
  api.site.zipf_table_cap = 65'536;
  api.humans.arrivals_per_s = 0.02;
  api.crawlers = 0;
  api.monitors = 8;
  auto sweep = fleet(4, 45'000, 1'500);
  sweep.ramp_days = 0.9;
  sweep.lifetime_requests = 10;
  sweep.gap_mean_s = 1.0;
  api.attacks = {sweep};

  VhostSpec agency;
  agency.name = "agency";
  agency.site.catalogue_size = 50'000;
  agency.site.zipf_table_cap = 16'384;
  agency.site.city_pairs = 80;
  agency.humans.arrivals_per_s = 0.01;
  agency.crawlers = 1;
  agency.monitors = 2;
  auto buggy = malformed(30'000);
  buggy.ramp_days = 0.9;
  buggy.lifetime_requests = 5;
  auto fraud = stealth(60'000);
  fraud.ramp_days = 0.9;
  fraud.lifetime_requests = 5;
  agency.attacks = {buggy, fraud};

  spec.vhosts = {std::move(www), std::move(m), std::move(api),
                 std::move(agency)};
  return spec;
}

// --- red tier: evasion campaigns (experiment E13) ------------------------
//
// Each red entry is a blue-team scenario with the adversary upgraded: the
// same archetypes, volumes and ramp shapes, plus an `evasion` block that
// buys specific E13 capabilities. bench_detection runs every one of these
// through the batched replay seam and scores the outcome per detector and
// for the 1oo2 ensemble (BENCH_detection.json).

/// A fleet that re-identifies every session: fresh browser UA and fresh
/// clean address per session, plus asset mimicry — the "rotating
/// residential proxy" product shape. Defeats per-(ip,ua) state carried
/// across sessions; in-session behaviour is unchanged.
ScenarioSpec make_rotating_fleet() {
  ScenarioSpec spec;
  spec.name = "rotating_fleet";
  spec.duration_days = 2.0;
  VhostSpec www;
  www.humans.arrivals_per_s = 0.04;
  auto wave = fleet(2, 160, 5);
  wave.session_len_mean = 160.0;
  wave.pause_mean_s = 7'200.0;
  EvasionSpec evasion;
  evasion.p_asset_mimicry = 0.9;
  evasion.rotate_ua_per_session = true;
  evasion.rotate_ip_per_session = true;
  wave.evasion = evasion;
  www.attacks = {wave, caching(2)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// Stealth bots doing their best human impression: log-normal think-time
/// pacing at the human median, near-certain asset fetches, a fresh browser
/// UA each session. The per-bot request stream is nearly indistinguishable
/// from a shopper; only aggregate shape (sweep coverage, session count)
/// remains.
ScenarioSpec make_human_mimic() {
  ScenarioSpec spec;
  spec.name = "human_mimic";
  spec.duration_days = 3.0;
  VhostSpec www;
  www.humans.arrivals_per_s = 0.03;
  auto wave = stealth(80);
  wave.ramp_days = 1.0;
  wave.lifetime_requests = 2'400;
  EvasionSpec evasion;
  evasion.p_asset_mimicry = 0.85;
  evasion.rotate_ua_per_session = true;
  evasion.human_think_time = true;
  wave.evasion = evasion;
  www.attacks = {wave, malformed(1)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// low_and_slow upgraded with distribution across the public /8s: every
/// session moves to a fresh clean address (the clean pool is uniform over
/// public /8 space), so no subnet ever accumulates enough history to
/// escalate. The hardest shape in the paper's discussion, now with the
/// counter-measure it predicted.
ScenarioSpec make_distributed_low_and_slow() {
  ScenarioSpec spec;
  spec.name = "distributed_low_and_slow";
  spec.duration_days = 7.0;
  VhostSpec www;
  auto wave = stealth(320);
  wave.ramp_days = 2.0;
  wave.pause_mean_s = 10'800.0;
  wave.lifetime_requests = 1'200;
  EvasionSpec evasion;
  evasion.p_asset_mimicry = 0.7;
  evasion.rotate_ip_per_session = true;
  wave.evasion = evasion;
  www.attacks = {wave, malformed(1)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// The E13 ladder: one fixed fleet campaign, evasion capabilities added
/// one per tier. e0 is the unevaded baseline (the CI-gated floor);
/// each following tier keeps everything below it.
///
///   e0  baseline fleet, no evasion block
///   e1  + asset mimicry 0.9
///   e2  + per-session UA rotation
///   e3  + per-session IP rotation
///   e4  + human think-time pacing
ScenarioSpec make_evasion_ladder(int level) {
  ScenarioSpec spec;
  spec.name = "evasion_ladder_e" + std::to_string(level);
  spec.duration_days = 1.0;
  VhostSpec www;
  www.humans.arrivals_per_s = 0.03;
  auto wave = fleet(2, 120, 4);
  wave.session_len_mean = 200.0;
  wave.pause_mean_s = 5'400.0;
  if (level >= 1) {
    EvasionSpec evasion;
    evasion.p_asset_mimicry = 0.9;
    evasion.rotate_ua_per_session = level >= 2;
    evasion.rotate_ip_per_session = level >= 3;
    evasion.human_think_time = level >= 4;
    wave.evasion = evasion;
  }
  www.attacks = {wave, caching(2)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

/// A one-hour miniature with every population represented — mirrors
/// traffic::smoke_test() so unit tests and CI smokes finish in
/// milliseconds yet still produce alerts from both detectors.
ScenarioSpec make_smoke() {
  ScenarioSpec spec;
  spec.name = "smoke";
  spec.duration_days = 1.0 / 24.0;
  VhostSpec www;
  www.site.catalogue_size = 2'000;
  www.humans.arrivals_per_s = 0.02;
  www.crawlers = 1;
  www.monitors = 1;
  www.attacks = {fleet(1, 12, 2), stealth(2), api_pollers(1, 1),
                 malformed(1), caching(1)};
  spec.vhosts.push_back(std::move(www));
  return spec;
}

}  // namespace

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = {
      {"amadeus_like",
       "the paper-shaped 8-day single-vhost reproduction workload"},
      {"flash_crowd",
       "benign 40x human surge over a modest attack mix (FP stressor)"},
      {"scraper_fleet_ramp",
       "four fleets onboarding over 3 days, probe to full sweep"},
      {"low_and_slow",
       "320 stealth bots, clean IPs, two patient weeks (hardest shape)"},
      {"mixed_multi_vhost",
       "shop + mobile API + agency portal, distinct sites and mixes"},
      {"megasite",
       "four-vhost production day, >1M distinct actors (chaos-soak scale)"},
      {"smoke", "one-hour miniature of every population, for CI and tests"},
      {"rotating_fleet",
       "red: fleet behind rotating UA/IP identities + asset mimicry"},
      {"human_mimic",
       "red: stealth bots pacing and fetching like human shoppers"},
      {"distributed_low_and_slow",
       "red: patient stealth campaign hopping across the public /8s"},
      {"evasion_ladder_e0",
       "red ladder tier 0: unevaded baseline fleet (the CI-gated floor)"},
      {"evasion_ladder_e1", "red ladder tier 1: + asset mimicry"},
      {"evasion_ladder_e2", "red ladder tier 2: + per-session UA rotation"},
      {"evasion_ladder_e3", "red ladder tier 3: + per-session IP rotation"},
      {"evasion_ladder_e4", "red ladder tier 4: + human think-time pacing"},
  };
  return entries;
}

std::optional<ScenarioSpec> catalog_entry(std::string_view name,
                                          double scale) {
  std::optional<ScenarioSpec> spec;
  if (name == "amadeus_like") spec = make_amadeus_like();
  if (name == "flash_crowd") spec = make_flash_crowd();
  if (name == "scraper_fleet_ramp") spec = make_scraper_fleet_ramp();
  if (name == "low_and_slow") spec = make_low_and_slow();
  if (name == "mixed_multi_vhost") spec = make_mixed_multi_vhost();
  if (name == "megasite") spec = make_megasite();
  if (name == "smoke") spec = make_smoke();
  if (name == "rotating_fleet") spec = make_rotating_fleet();
  if (name == "human_mimic") spec = make_human_mimic();
  if (name == "distributed_low_and_slow") spec = make_distributed_low_and_slow();
  if (name.rfind("evasion_ladder_e", 0) == 0 && name.size() == 17 &&
      name[16] >= '0' && name[16] <= '4') {
    spec = make_evasion_ladder(name[16] - '0');
  }
  if (spec) spec->scale = scale;
  return spec;
}

}  // namespace divscrape::workload
