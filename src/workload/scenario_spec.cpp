#include "workload/scenario_spec.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/json.hpp"
#include "core/json_parse.hpp"
#include "util/atomic_file.hpp"

namespace divscrape::workload {

namespace {

constexpr std::string_view kSchema = "divscrape.scenario.v1";

bool set_error(std::string* error, std::string why) {
  if (error) *error = std::move(why);
  return false;
}

/// Parses "YYYY-MM-DD" into midnight UTC; nullopt on anything else.
std::optional<httplog::Timestamp> parse_date(std::string_view text) {
  int year = 0, month = 0, day = 0;
  char tail = 0;
  const auto n = std::sscanf(std::string(text).c_str(), "%4d-%2d-%2d%c",
                             &year, &month, &day, &tail);
  if (n != 3 || year < 1970 || month < 1 || month > 12 || day < 1 || day > 31)
    return std::nullopt;
  return httplog::Timestamp::from_civil(year, month, day);
}

void write_site(core::JsonWriter& json,
                const traffic::SiteModel::Config& site) {
  json.begin_object();
  json.key("catalogue_size").value(std::uint64_t{site.catalogue_size});
  json.key("offer_zipf_s").value_exact(site.offer_zipf_s);
  json.key("city_pairs").value(std::uint64_t{site.city_pairs});
  json.key("asset_count").value(std::uint64_t{site.asset_count});
  json.key("api_no_content_p").value_exact(site.api_no_content_p);
  json.key("server_error_p").value_exact(site.server_error_p);
  json.key("zipf_table_cap").value(std::uint64_t{site.zipf_table_cap});
  json.end_object();
}

void write_humans(core::JsonWriter& json, const HumanMix& humans) {
  json.begin_object();
  json.key("arrivals_per_s").value_exact(humans.arrivals_per_s);
  json.key("diurnal_amplitude").value_exact(humans.diurnal_amplitude);
  json.key("in_botnet_subnet_p").value_exact(humans.in_botnet_subnet_p);
  json.key("surge_start_day").value_exact(humans.surge_start_day);
  json.key("surge_duration_h").value_exact(humans.surge_duration_h);
  json.key("surge_multiplier").value_exact(humans.surge_multiplier);
  json.end_object();
}

void write_attack(core::JsonWriter& json, const AttackSpec& attack) {
  json.begin_object();
  json.key("kind").value(to_string(attack.kind));
  json.key("campaigns").value(attack.campaigns);
  json.key("bots").value(attack.bots);
  json.key("slow_bots").value(attack.slow_bots);
  json.key("fleet_bots").value(attack.fleet_bots);
  json.key("ramp_days").value_exact(attack.ramp_days);
  json.key("gap_mean_s").value_exact(attack.gap_mean_s);
  json.key("session_len_mean").value_exact(attack.session_len_mean);
  json.key("pause_mean_s").value_exact(attack.pause_mean_s);
  json.key("lifetime_requests").value(attack.lifetime_requests);
  // Emitted only when present: pre-evasion specs keep their exact bytes.
  if (attack.evasion) {
    const auto& evasion = *attack.evasion;
    json.key("evasion").begin_object();
    json.key("p_asset_mimicry").value_exact(evasion.p_asset_mimicry);
    json.key("rotate_ua_per_session").value(evasion.rotate_ua_per_session);
    json.key("rotate_ip_per_session").value(evasion.rotate_ip_per_session);
    json.key("human_think_time").value(evasion.human_think_time);
    json.end_object();
  }
  json.end_object();
}

bool read_site(const core::JsonValue& v, traffic::SiteModel::Config& site,
               std::string* error) {
  site.catalogue_size = static_cast<std::size_t>(
      v.u64_or("catalogue_size", site.catalogue_size));
  site.offer_zipf_s = v.number_or("offer_zipf_s", site.offer_zipf_s);
  site.city_pairs =
      static_cast<std::size_t>(v.u64_or("city_pairs", site.city_pairs));
  site.asset_count =
      static_cast<std::size_t>(v.u64_or("asset_count", site.asset_count));
  site.api_no_content_p =
      v.number_or("api_no_content_p", site.api_no_content_p);
  site.server_error_p = v.number_or("server_error_p", site.server_error_p);
  site.zipf_table_cap = static_cast<std::size_t>(
      v.u64_or("zipf_table_cap", site.zipf_table_cap));
  if (site.catalogue_size < 1)
    return set_error(error, "site.catalogue_size must be >= 1");
  if (site.city_pairs < 1)
    return set_error(error, "site.city_pairs must be >= 1");
  if (site.asset_count < 1)
    return set_error(error, "site.asset_count must be >= 1");
  return true;
}

bool read_humans(const core::JsonValue& v, HumanMix& humans,
                 std::string* error) {
  humans.arrivals_per_s = v.number_or("arrivals_per_s", humans.arrivals_per_s);
  humans.diurnal_amplitude =
      v.number_or("diurnal_amplitude", humans.diurnal_amplitude);
  humans.in_botnet_subnet_p =
      v.number_or("in_botnet_subnet_p", humans.in_botnet_subnet_p);
  humans.surge_start_day = v.number_or("surge_start_day", humans.surge_start_day);
  humans.surge_duration_h =
      v.number_or("surge_duration_h", humans.surge_duration_h);
  humans.surge_multiplier =
      v.number_or("surge_multiplier", humans.surge_multiplier);
  if (humans.arrivals_per_s < 0.0)
    return set_error(error, "humans.arrivals_per_s must be >= 0");
  if (humans.diurnal_amplitude < 0.0 || humans.diurnal_amplitude >= 1.0)
    return set_error(error, "humans.diurnal_amplitude must be in [0, 1)");
  if (humans.surge_multiplier < 0.0)
    return set_error(error, "humans.surge_multiplier must be >= 0");
  return true;
}

bool read_attack(const core::JsonValue& v, AttackSpec& attack,
                 std::string* error) {
  const auto* kind = v.find("kind");
  if (!kind || !kind->is_string())
    return set_error(error, "attack entry is missing its \"kind\"");
  const auto parsed = attack_kind_from(kind->as_string_view());
  if (!parsed) {
    return set_error(error, "unknown attack kind \"" +
                                std::string(kind->as_string_view()) + "\"");
  }
  attack.kind = *parsed;
  attack.campaigns =
      static_cast<int>(v.int_or("campaigns", attack.campaigns));
  attack.bots = static_cast<int>(v.int_or("bots", attack.bots));
  attack.slow_bots = static_cast<int>(v.int_or("slow_bots", attack.slow_bots));
  attack.fleet_bots =
      static_cast<int>(v.int_or("fleet_bots", attack.fleet_bots));
  attack.ramp_days = v.number_or("ramp_days", attack.ramp_days);
  attack.gap_mean_s = v.number_or("gap_mean_s", attack.gap_mean_s);
  attack.session_len_mean =
      v.number_or("session_len_mean", attack.session_len_mean);
  attack.pause_mean_s = v.number_or("pause_mean_s", attack.pause_mean_s);
  attack.lifetime_requests = v.u64_or("lifetime_requests", 0);
  if (attack.campaigns < 0 || attack.bots < 0 || attack.slow_bots < 0 ||
      attack.fleet_bots < 0)
    return set_error(error, "attack population counts must be >= 0");
  if (attack.ramp_days < 0.0)
    return set_error(error, "attack ramp_days must be >= 0");
  if (attack.kind == AttackKind::kFleet && attack.campaigns < 1)
    return set_error(error, "fleet attacks need campaigns >= 1");
  if (const auto* evasion = v.find("evasion")) {
    if (!evasion->is_object())
      return set_error(error, "attack \"evasion\" must be an object");
    if (attack.kind != AttackKind::kFleet &&
        attack.kind != AttackKind::kStealth) {
      return set_error(error,
                       "evasion requires a page-scraper attack kind "
                       "(fleet or stealth), not \"" +
                           std::string(to_string(attack.kind)) + "\"");
    }
    EvasionSpec parsed;
    parsed.p_asset_mimicry =
        evasion->number_or("p_asset_mimicry", parsed.p_asset_mimicry);
    parsed.rotate_ua_per_session = evasion->bool_or(
        "rotate_ua_per_session", parsed.rotate_ua_per_session);
    parsed.rotate_ip_per_session = evasion->bool_or(
        "rotate_ip_per_session", parsed.rotate_ip_per_session);
    parsed.human_think_time =
        evasion->bool_or("human_think_time", parsed.human_think_time);
    if (!(parsed.p_asset_mimicry >= 0.0 && parsed.p_asset_mimicry <= 1.0))
      return set_error(error, "evasion.p_asset_mimicry must be in [0, 1]");
    attack.evasion = parsed;
  }
  return true;
}

bool read_vhost(const core::JsonValue& v, VhostSpec& vhost,
                std::string* error) {
  vhost.name = v.string_or("name", vhost.name);
  if (vhost.name.empty())
    return set_error(error, "vhost name must be non-empty");
  if (const auto* site = v.find("site")) {
    if (!read_site(*site, vhost.site, error)) return false;
  }
  if (const auto* humans = v.find("humans")) {
    if (!read_humans(*humans, vhost.humans, error)) return false;
  }
  vhost.crawlers = static_cast<int>(v.int_or("crawlers", vhost.crawlers));
  vhost.crawler_gap_mean_s =
      v.number_or("crawler_gap_mean_s", vhost.crawler_gap_mean_s);
  vhost.monitors = static_cast<int>(v.int_or("monitors", vhost.monitors));
  vhost.monitor_period_s =
      v.number_or("monitor_period_s", vhost.monitor_period_s);
  if (vhost.crawlers < 0 || vhost.monitors < 0)
    return set_error(error, "vhost population counts must be >= 0");
  if (const auto* attacks = v.find("attacks")) {
    if (!attacks->is_array())
      return set_error(error, "vhost \"attacks\" must be an array");
    for (const auto& entry : attacks->array()) {
      AttackSpec attack;
      if (!read_attack(entry, attack, error)) return false;
      vhost.attacks.push_back(attack);
    }
  }
  return true;
}

}  // namespace

std::string_view to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kFleet: return "fleet";
    case AttackKind::kStealth: return "stealth";
    case AttackKind::kApiPollers: return "api_pollers";
    case AttackKind::kMalformed: return "malformed";
    case AttackKind::kCaching: return "caching";
  }
  return "?";
}

std::optional<AttackKind> attack_kind_from(std::string_view name) noexcept {
  if (name == "fleet") return AttackKind::kFleet;
  if (name == "stealth") return AttackKind::kStealth;
  if (name == "api_pollers") return AttackKind::kApiPollers;
  if (name == "malformed") return AttackKind::kMalformed;
  if (name == "caching") return AttackKind::kCaching;
  return std::nullopt;
}

bool operator==(const VhostSpec& a, const VhostSpec& b) noexcept {
  return a.name == b.name &&
         a.site.catalogue_size == b.site.catalogue_size &&
         a.site.offer_zipf_s == b.site.offer_zipf_s &&
         a.site.city_pairs == b.site.city_pairs &&
         a.site.asset_count == b.site.asset_count &&
         a.site.api_no_content_p == b.site.api_no_content_p &&
         a.site.server_error_p == b.site.server_error_p &&
         a.site.zipf_table_cap == b.site.zipf_table_cap &&
         a.humans == b.humans && a.crawlers == b.crawlers &&
         a.crawler_gap_mean_s == b.crawler_gap_mean_s &&
         a.monitors == b.monitors &&
         a.monitor_period_s == b.monitor_period_s && a.attacks == b.attacks;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) noexcept {
  return a.name == b.name && a.seed == b.seed && a.start == b.start &&
         a.duration_days == b.duration_days && a.scale == b.scale &&
         a.vhosts == b.vhosts;
}

std::string ScenarioSpec::to_json() const {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kSchema);
  json.key("name").value(name);
  json.key("seed").value(seed);
  json.key("start_micros").value(std::int64_t{start.micros()});
  json.key("duration_days").value_exact(duration_days);
  json.key("scale").value_exact(scale);
  json.key("vhosts").begin_array();
  for (const auto& vhost : vhosts) {
    json.begin_object();
    json.key("name").value(vhost.name);
    json.key("site");
    write_site(json, vhost.site);
    json.key("humans");
    write_humans(json, vhost.humans);
    json.key("crawlers").value(vhost.crawlers);
    json.key("crawler_gap_mean_s").value_exact(vhost.crawler_gap_mean_s);
    json.key("monitors").value(vhost.monitors);
    json.key("monitor_period_s").value_exact(vhost.monitor_period_s);
    json.key("attacks").begin_array();
    for (const auto& attack : vhost.attacks) write_attack(json, attack);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return os.str();
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(std::string_view json,
                                                    std::string* error) {
  std::string parse_error;
  const auto doc = core::parse_json(json, &parse_error);
  if (!doc) {
    set_error(error, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    set_error(error, "spec root must be a JSON object");
    return std::nullopt;
  }
  const auto* schema = doc->find("schema");
  if (!schema || schema->as_string_view() != kSchema) {
    set_error(error, "missing or unsupported \"schema\" (want " +
                         std::string(kSchema) + ")");
    return std::nullopt;
  }

  ScenarioSpec spec;
  spec.vhosts.clear();
  spec.name = doc->string_or("name", spec.name);
  spec.seed = doc->u64_or("seed", spec.seed);
  if (const auto* micros = doc->find("start_micros")) {
    spec.start = httplog::Timestamp(micros->as_i64(spec.start.micros()));
  } else if (const auto* date = doc->find("start")) {
    const auto parsed = parse_date(date->as_string_view());
    if (!parsed) {
      set_error(error, "\"start\" must be a \"YYYY-MM-DD\" date");
      return std::nullopt;
    }
    spec.start = *parsed;
  }
  spec.duration_days = doc->number_or("duration_days", spec.duration_days);
  spec.scale = doc->number_or("scale", spec.scale);
  if (spec.name.empty()) {
    set_error(error, "\"name\" must be non-empty");
    return std::nullopt;
  }
  if (!(spec.duration_days > 0.0)) {
    set_error(error, "\"duration_days\" must be > 0");
    return std::nullopt;
  }
  if (!(spec.scale > 0.0)) {
    set_error(error, "\"scale\" must be > 0");
    return std::nullopt;
  }

  const auto* vhosts = doc->find("vhosts");
  if (!vhosts || !vhosts->is_array() || vhosts->array().empty()) {
    set_error(error, "\"vhosts\" must be a non-empty array");
    return std::nullopt;
  }
  for (const auto& entry : vhosts->array()) {
    VhostSpec vhost;
    if (!read_vhost(entry, vhost, error)) return std::nullopt;
    spec.vhosts.push_back(std::move(vhost));
  }
  return spec;
}

bool ScenarioSpec::save(const std::string& path) const {
  return util::write_file_atomic(path, to_json() + "\n");
}

std::optional<ScenarioSpec> ScenarioSpec::load(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::stringstream text;
  text << in.rdbuf();
  return from_json(text.str(), error);
}

}  // namespace divscrape::workload
