// The scenario catalog: named, ready-to-run ScenarioSpecs covering the
// workload families the detectors must face in production — the paper
// reproduction, benign bursts, growing campaigns, stealth campaigns and
// multi-vhost estates. `divscrape_cli simulate <name>` resolves here;
// every entry is also a template: dump it with `--dump-spec`, edit the
// JSON, and simulate the file.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/scenario_spec.hpp"

namespace divscrape::workload {

/// One catalog listing: the name `catalog_entry` resolves plus a one-line
/// description for `simulate --list` and the README.
struct CatalogEntry {
  std::string_view name;
  std::string_view description;
};

/// Every catalog entry, in presentation order.
[[nodiscard]] const std::vector<CatalogEntry>& catalog();

/// Builds the named spec at population multiplier `scale`; nullopt for an
/// unknown name. Names:
///
///   amadeus_like       the paper-shaped 8-day single-vhost reproduction
///   flash_crowd        a benign human surge (sale/press spike) over a
///                      baseline attack mix — false-positive stressor
///   scraper_fleet_ramp a botnet onboarding over days, from first probes
///                      to full sweep pressure — detection-latency shape
///   low_and_slow       a patient stealth campaign under clean addresses
///                      — the hardest shape in the paper's discussion
///   mixed_multi_vhost  three vhosts (main shop, mobile API, agency
///                      portal) with distinct sites and attack mixes
///   smoke              a one-hour miniature with every population, for
///                      CI smokes and unit tests
///
/// Red tier (evasion campaigns, scored by bench_detection):
///
///   rotating_fleet     fleet behind per-session UA/IP rotation + asset
///                      mimicry (rotating residential proxy shape)
///   human_mimic        stealth bots with human think-time pacing, asset
///                      fetches and fresh UAs — per-bot streams nearly
///                      indistinguishable from shoppers
///   distributed_low_and_slow
///                      the patient stealth campaign hopping across the
///                      public /8s every session
///   evasion_ladder_e0..e4
///                      one fleet campaign, E13 capabilities stacked one
///                      per tier (e0 = unevaded CI-gated baseline)
[[nodiscard]] std::optional<ScenarioSpec> catalog_entry(std::string_view name,
                                                        double scale = 1.0);

}  // namespace divscrape::workload
