// Request-target parsing: path/query splitting, query parameters, and the
// path taxonomy features the behavioural detector consumes (static asset vs
// dynamic page, path depth, template extraction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"
#include "util/interner.hpp"

namespace divscrape::httplog {

/// A parsed origin-form request target ("/path/to/x?a=1&b=2").
struct Url {
  std::string path;   ///< path component, never empty for valid targets ("/")
  std::string query;  ///< raw query string without '?', possibly empty

  [[nodiscard]] bool has_query() const noexcept { return !query.empty(); }
};

/// Splits a request target into path and query. Accepts any non-empty target
/// starting with '/'; nullopt otherwise (e.g. absolute-form proxy requests
/// or garbage).
[[nodiscard]] std::optional<Url> parse_url(std::string_view target);

/// Decodes %XX escapes and '+' (as space). Invalid escapes pass through
/// verbatim, matching lenient server behaviour.
[[nodiscard]] std::string url_decode(std::string_view text);

/// One key=value query parameter (decoded).
struct QueryParam {
  std::string key;
  std::string value;
};

/// Splits a raw query string on '&' into decoded key/value pairs; a bare
/// token without '=' becomes {token, ""}.
[[nodiscard]] std::vector<QueryParam> parse_query(std::string_view query);

/// Returns the value of `key` in the query string, if present.
[[nodiscard]] std::optional<std::string> query_value(std::string_view query,
                                                     std::string_view key);

/// '/'-separated non-empty path segments of a path ("/a/b/" -> {"a","b"}).
[[nodiscard]] std::vector<std::string> path_segments(std::string_view path);

/// Lowercased extension of the final segment, without the dot; empty when
/// none ("/a/app.min.js" -> "js").
[[nodiscard]] std::string path_extension(std::string_view path);

/// True for typical embedded-resource extensions (css/js/images/fonts).
/// Humans using browsers fetch many of these per page; scrapers mostly
/// don't — a key behavioural signal.
[[nodiscard]] bool is_static_asset(std::string_view path) noexcept;

/// A normalized "template" of the path: numeric segments are replaced by
/// "{n}" so that /offer/123 and /offer/987 collapse to /offer/{n}. Scrapers
/// sweeping a catalogue produce very low template entropy.
[[nodiscard]] std::string path_template(std::string_view path);

/// Interning memo over paths and their templates: template_token() interns
/// the path and computes+interns its template once per *distinct* path, so
/// repeat paths cost one probe — no path_template() allocation per record.
/// Tokens are exact (bijective with the strings), unlike a raw hash, so
/// counting them is collision-free. Used per-Session and per-ArcaneDetector;
/// thread-compatible like the interner it wraps.
///
/// Path cardinality can be unbounded in long-running streams (unique-id
/// URLs), so a process-lifetime memo (Arcane's) passes `max_strings`: past
/// the cap no new strings are stored — the template is recomputed per
/// record and, if itself new, tokenized by hash with kOverflowTokenBit set
/// so it can never alias an exact token. Session-lifetime memos default to
/// uncapped (their size is bounded by the session timeout).
class PathTemplateMemo {
 public:
  /// Tokens >= this bit are hash-derived overflow tokens, not exact ids.
  static constexpr std::uint32_t kOverflowTokenBit = 0x8000'0000u;

  /// `max_strings`: interner growth cap; 0 = unlimited.
  explicit PathTemplateMemo(std::size_t max_strings = 0)
      : max_strings_(max_strings) {}

  /// The template token for `path` (also interns the path itself).
  /// Consecutive calls with the same path (polling and cache-sweep bots
  /// hammer one URL) hit a one-entry memo: a memcmp instead of a hash.
  [[nodiscard]] std::uint32_t template_token(std::string_view path) {
    if (last_path_tok_ != util::StringInterner::kInvalidToken &&
        path == ids_.lookup(last_path_tok_)) {
      return template_of_path_[last_path_tok_ - 1];
    }
    std::uint32_t path_tok = ids_.find(path);
    if (path_tok == util::StringInterner::kInvalidToken) {
      if (!has_room()) return overflow_template_token(path);
      path_tok = ids_.intern(path);
    }
    if (template_of_path_.size() < ids_.size())
      template_of_path_.resize(ids_.size(),
                               util::StringInterner::kInvalidToken);
    std::uint32_t& slot = template_of_path_[path_tok - 1];
    if (slot == util::StringInterner::kInvalidToken) {
      ++distinct_paths_;
      const std::string tmpl = path_template(path);
      std::uint32_t tmpl_tok = ids_.find(tmpl);
      if (tmpl_tok == util::StringInterner::kInvalidToken) {
        if (!has_room()) return slot = hashed_token(tmpl);
        tmpl_tok = ids_.intern(tmpl);
      }
      slot = tmpl_tok;
    }
    last_path_tok_ = path_tok;
    return slot;
  }

  /// Distinct paths ever passed to template_token() (memoized ones; paths
  /// first seen past the cap are not tracked).
  [[nodiscard]] std::size_t distinct_paths() const noexcept {
    return distinct_paths_;
  }

  void clear() {
    ids_.clear();
    template_of_path_.clear();
    distinct_paths_ = 0;
    last_path_tok_ = util::StringInterner::kInvalidToken;
  }

  /// Dump/restore of the memo (strings in token order + the path→template
  /// mapping). `max_strings_` is construction-time config and is NOT
  /// serialized — restore into an identically-configured instance.
  void save_state(util::StateWriter& w) const {
    ids_.save_state(w);
    w.u64(template_of_path_.size());
    for (const std::uint32_t tok : template_of_path_) w.u32(tok);
    w.u64(distinct_paths_);
  }
  [[nodiscard]] bool load_state(util::StateReader& r) {
    clear();
    if (!ids_.load_state(r)) return false;
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > ids_.size()) {
      r.fail();
      clear();
      return false;
    }
    template_of_path_.resize(static_cast<std::size_t>(n));
    for (std::uint32_t& tok : template_of_path_) tok = r.u32();
    distinct_paths_ = static_cast<std::size_t>(r.u64());
    if (!r.ok()) clear();
    return r.ok();
  }

 private:
  [[nodiscard]] bool has_room() const noexcept {
    return max_strings_ == 0 || ids_.size() < max_strings_;
  }
  [[nodiscard]] static std::uint32_t hashed_token(
      std::string_view text) noexcept {
    return util::fnv1a32(text) | kOverflowTokenBit;
  }
  /// Past-cap path: no memo entry; resolve the template per record, exact
  /// token when the template itself is already interned (the common case —
  /// template cardinality is far below path cardinality), hash otherwise.
  [[nodiscard]] std::uint32_t overflow_template_token(std::string_view path) {
    const std::string tmpl = path_template(path);
    const std::uint32_t tok = ids_.find(tmpl);
    return tok != util::StringInterner::kInvalidToken ? tok
                                                      : hashed_token(tmpl);
  }

  util::StringInterner ids_;  ///< paths and their templates, one token space
  std::vector<std::uint32_t> template_of_path_;  ///< path token-1 -> template
  std::size_t distinct_paths_ = 0;
  std::size_t max_strings_ = 0;
  /// One-entry template_token() memo (path token of the previous call).
  std::uint32_t last_path_tok_ = util::StringInterner::kInvalidToken;
};

}  // namespace divscrape::httplog
