// Request-target parsing: path/query splitting, query parameters, and the
// path taxonomy features the behavioural detector consumes (static asset vs
// dynamic page, path depth, template extraction).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace divscrape::httplog {

/// A parsed origin-form request target ("/path/to/x?a=1&b=2").
struct Url {
  std::string path;   ///< path component, never empty for valid targets ("/")
  std::string query;  ///< raw query string without '?', possibly empty

  [[nodiscard]] bool has_query() const noexcept { return !query.empty(); }
};

/// Splits a request target into path and query. Accepts any non-empty target
/// starting with '/'; nullopt otherwise (e.g. absolute-form proxy requests
/// or garbage).
[[nodiscard]] std::optional<Url> parse_url(std::string_view target);

/// Decodes %XX escapes and '+' (as space). Invalid escapes pass through
/// verbatim, matching lenient server behaviour.
[[nodiscard]] std::string url_decode(std::string_view text);

/// One key=value query parameter (decoded).
struct QueryParam {
  std::string key;
  std::string value;
};

/// Splits a raw query string on '&' into decoded key/value pairs; a bare
/// token without '=' becomes {token, ""}.
[[nodiscard]] std::vector<QueryParam> parse_query(std::string_view query);

/// Returns the value of `key` in the query string, if present.
[[nodiscard]] std::optional<std::string> query_value(std::string_view query,
                                                     std::string_view key);

/// '/'-separated non-empty path segments of a path ("/a/b/" -> {"a","b"}).
[[nodiscard]] std::vector<std::string> path_segments(std::string_view path);

/// Lowercased extension of the final segment, without the dot; empty when
/// none ("/a/app.min.js" -> "js").
[[nodiscard]] std::string path_extension(std::string_view path);

/// True for typical embedded-resource extensions (css/js/images/fonts).
/// Humans using browsers fetch many of these per page; scrapers mostly
/// don't — a key behavioural signal.
[[nodiscard]] bool is_static_asset(std::string_view path) noexcept;

/// A normalized "template" of the path: numeric segments are replaced by
/// "{n}" so that /offer/123 and /offer/987 collapse to /offer/{n}. Scrapers
/// sweeping a catalogue produce very low template entropy.
[[nodiscard]] std::string path_template(std::string_view path);

}  // namespace divscrape::httplog
