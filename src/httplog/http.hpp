// HTTP vocabulary: methods, status codes and their taxonomy.
//
// The paper's Tables 3 and 4 break alerts down by HTTP status, so statuses
// are first-class here: reason phrases match the paper's table labels
// exactly ("200 (OK)", "302 (Found)", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// HTTP request methods seen in access logs.
enum class HttpMethod : std::uint8_t {
  kGet,
  kPost,
  kHead,
  kPut,
  kDelete,
  kOptions,
  kPatch,
  kConnect,
  kTrace,
  kOther,  ///< anything unrecognized (malformed or exotic)
};

/// Canonical upper-case token ("GET", ...). kOther renders as "-".
[[nodiscard]] std::string_view to_string(HttpMethod m) noexcept;

/// Parses a method token; unknown tokens map to kOther (never fails, because
/// real access logs contain garbage methods from fuzzing bots).
[[nodiscard]] HttpMethod parse_method(std::string_view token) noexcept;

/// Status class per RFC 9110 section 15.
enum class StatusClass : std::uint8_t {
  kInformational,  ///< 1xx
  kSuccess,        ///< 2xx
  kRedirection,    ///< 3xx
  kClientError,    ///< 4xx
  kServerError,    ///< 5xx
  kUnknown,        ///< outside 100..599
};

[[nodiscard]] StatusClass status_class(int status) noexcept;

/// Reason phrase for the statuses that appear in web traffic; empty
/// string_view for unknown codes.
[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

/// The paper's table label style: "200 (OK)", "500 (Internal Server Error)".
/// Unknown codes render as just the number.
[[nodiscard]] std::string status_label(int status);

}  // namespace divscrape::httplog
