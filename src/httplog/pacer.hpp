// Time-scaled pacing: align a stream of timestamped records with the wall
// clock so live demos replay (or generate) traffic at a chosen speed. One
// shared implementation for every pacing consumer (ReplayEngine ingest,
// StreamWriter pumping) so the anchor semantics cannot drift apart.
#pragma once

#include <chrono>
#include <thread>

#include "httplog/timestamp.hpp"

namespace divscrape::httplog {

/// Sleeps until each waited timestamp is "due", anchored at the first
/// timestamp ever waited on: with time_scale x, one simulated second takes
/// 1/x wall seconds (e.g. 60 = a minute of traffic per wall second).
class Pacer {
 public:
  /// No-op when `time_scale` <= 0 (as-fast-as-possible mode).
  void wait_until(Timestamp t, double time_scale) {
    if (time_scale <= 0.0) return;
    if (!have_origin_) {
      origin_ = t;
      wall0_ = std::chrono::steady_clock::now();
      have_origin_ = true;
    }
    const double sim_elapsed = static_cast<double>(t - origin_) / 1e6;
    std::this_thread::sleep_until(
        wall0_ +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(sim_elapsed / time_scale)));
  }

 private:
  bool have_origin_ = false;
  Timestamp origin_;
  std::chrono::steady_clock::time_point wall0_;
};

}  // namespace divscrape::httplog
