#include "httplog/ip.hpp"

#include <charconv>

namespace divscrape::httplog {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift != 0) out += '.';
  }
  return out;
}

std::optional<Ipv4> parse_ipv4(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* ptr = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    const auto [next, ec] = std::from_chars(ptr, end, part);
    if (ec != std::errc{} || next == ptr || part > 255) return std::nullopt;
    value = (value << 8) | part;
    ptr = next;
    if (octet < 3) {
      if (ptr == end || *ptr != '.') return std::nullopt;
      ++ptr;
    }
  }
  if (ptr != end) return std::nullopt;
  return Ipv4{value};
}

}  // namespace divscrape::httplog
