// User-Agent taxonomy.
//
// Access logs carry the client's self-declared User-Agent string. It is
// untrusted (scrapers spoof browser UAs), but it still carries signal:
// declared crawlers identify themselves, automation frameworks leak default
// UAs, and stale browser versions correlate with headless farms. Both
// detectors use this header differently — part of where their diversity
// comes from.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// Broad client family derived from the UA string.
enum class UaFamily : std::uint8_t {
  kBrowser,       ///< mainstream browser signature
  kDeclaredBot,   ///< self-identifying crawler (Googlebot, bingbot, ...)
  kScriptClient,  ///< automation/script default (curl, python-requests, ...)
  kHeadless,      ///< headless browser markers (HeadlessChrome, PhantomJS)
  kEmpty,         ///< missing UA ("-")
  kUnknown,       ///< none of the above
};

[[nodiscard]] std::string_view to_string(UaFamily f) noexcept;

/// Parsed facts about a UA string.
struct UserAgentInfo {
  UaFamily family = UaFamily::kUnknown;
  /// Major browser version if a browser token was recognized (0 otherwise);
  /// used for the "ancient browser" heuristic.
  int browser_major = 0;
  /// Self-declared crawler identity claims to respect robots.txt.
  bool declared_bot = false;
  /// Browser token is an out-of-support vintage (Chrome/Firefox < 50, any
  /// MSIE) — the weak fingerprint signal headless farms leak. Modern Safari
  /// version tokens (Version/11) are NOT stale.
  bool stale_fingerprint = false;
  /// UA contains explicit automation markers.
  bool scripted = false;
};

/// Classifies a raw User-Agent string. Never fails; unknown strings come
/// back as kUnknown.
[[nodiscard]] UserAgentInfo classify_user_agent(std::string_view ua);

}  // namespace divscrape::httplog
