#include "httplog/timestamp.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace divscrape::httplog {

namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Howard Hinnant's days-from-civil: days since 1970-01-01 for a proleptic
// Gregorian date.
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

// Inverse: civil date from days since epoch.
constexpr void civil_from_days(std::int64_t z, int& y, int& m,
                               int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  y = static_cast<int>(yy + (m <= 2));
}

bool parse_fixed_int(std::string_view text, std::size_t pos, std::size_t len,
                     int& out) noexcept {
  if (pos + len > text.size()) return false;
  const char* begin = text.data() + pos;
  const auto [next, ec] = std::from_chars(begin, begin + len, out);
  return ec == std::errc{} && next == begin + len;
}

constexpr bool is_leap_year(int y) noexcept {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

constexpr int days_in_month(int year, int month) noexcept {
  constexpr int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

void write_digits(char* out, int value, int width) noexcept {
  for (int i = width - 1; i >= 0; --i) {
    out[i] = static_cast<char>('0' + value % 10);
    value /= 10;
  }
}

}  // namespace

Timestamp Timestamp::from_civil(int year, int month, int day, int hour,
                                int minute, int second,
                                int microsecond) noexcept {
  const std::int64_t days = days_from_civil(year, month, day);
  return Timestamp{days * kMicrosPerDay + hour * kMicrosPerHour +
                   minute * kMicrosPerMinute + second * kMicrosPerSecond +
                   microsecond};
}

std::string Timestamp::to_clf() const {
  char buf[kClfChars];
  if (to_clf_chars(buf)) return std::string(buf, kClfChars);
  // Year outside 0..9999: fall back to the variable-width formatter. The
  // month names are string literals, so .data() is NUL-terminated.
  std::int64_t days = micros_ / kMicrosPerDay;
  std::int64_t rem = micros_ % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    --days;
  }
  int y = 0, m = 0, d = 0;
  civil_from_days(days, y, m, d);
  char wide[48];
  std::snprintf(wide, sizeof wide, "%02d/%s/%04d:%02d:%02d:%02d +0000", d,
                kMonths[static_cast<std::size_t>(m - 1)].data(), y,
                static_cast<int>(rem / kMicrosPerHour),
                static_cast<int>((rem / kMicrosPerMinute) % 60),
                static_cast<int>((rem / kMicrosPerSecond) % 60));
  return wide;
}

bool Timestamp::to_clf_chars(char* out) const noexcept {
  std::int64_t days = micros_ / kMicrosPerDay;
  std::int64_t rem = micros_ % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    --days;
  }
  int y = 0, m = 0, d = 0;
  civil_from_days(days, y, m, d);
  if (y < 0 || y > 9999) return false;
  write_digits(out, d, 2);
  out[2] = '/';
  const std::string_view mon = kMonths[static_cast<std::size_t>(m - 1)];
  out[3] = mon[0];
  out[4] = mon[1];
  out[5] = mon[2];
  out[6] = '/';
  write_digits(out + 7, y, 4);
  out[11] = ':';
  write_digits(out + 12, static_cast<int>(rem / kMicrosPerHour), 2);
  out[14] = ':';
  write_digits(out + 15, static_cast<int>((rem / kMicrosPerMinute) % 60), 2);
  out[17] = ':';
  write_digits(out + 18, static_cast<int>((rem / kMicrosPerSecond) % 60), 2);
  out[20] = ' ';
  out[21] = '+';
  out[22] = '0';
  out[23] = '0';
  out[24] = '0';
  out[25] = '0';
  return true;
}

std::string Timestamp::to_iso8601() const {
  std::int64_t days = micros_ / kMicrosPerDay;
  std::int64_t rem = micros_ % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    --days;
  }
  int y = 0, m = 0, d = 0;
  civil_from_days(days, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", y, m, d,
                static_cast<int>(rem / kMicrosPerHour),
                static_cast<int>((rem / kMicrosPerMinute) % 60),
                static_cast<int>((rem / kMicrosPerSecond) % 60));
  return buf;
}

std::optional<Timestamp> parse_clf_time(std::string_view text) noexcept {
  // Layout: dd/Mon/yyyy:HH:MM:SS +ZZZZ  (26 chars)
  if (text.size() < 26) return std::nullopt;
  int day = 0, year = 0, hour = 0, minute = 0, second = 0;
  if (!parse_fixed_int(text, 0, 2, day) || text[2] != '/') return std::nullopt;
  int month = 0;
  const std::string_view mon = text.substr(3, 3);
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (kMonths[i] == mon) {
      month = static_cast<int>(i) + 1;
      break;
    }
  }
  if (month == 0 || text[6] != '/') return std::nullopt;
  if (!parse_fixed_int(text, 7, 4, year) || text[11] != ':')
    return std::nullopt;
  if (!parse_fixed_int(text, 12, 2, hour) || text[14] != ':')
    return std::nullopt;
  if (!parse_fixed_int(text, 15, 2, minute) || text[17] != ':')
    return std::nullopt;
  if (!parse_fixed_int(text, 18, 2, second) || text[20] != ' ')
    return std::nullopt;
  const char sign = text[21];
  if (sign != '+' && sign != '-') return std::nullopt;
  int tz_hour = 0, tz_min = 0;
  if (!parse_fixed_int(text, 22, 2, tz_hour) ||
      !parse_fixed_int(text, 24, 2, tz_min))
    return std::nullopt;
  // Real calendar validation: Feb 31 must not silently normalize through
  // days_from_civil into a March date. :60 seconds stay tolerated (leap
  // seconds appear in real logs). Timezone offsets are bounded to the
  // ±14:00 range that exists on Earth (UTC+14 is the maximum, Kiribati);
  // "+9959" is a corrupt field, not a timezone.
  if (year < 0 || hour < 0 || minute < 0 || second < 0 || tz_hour < 0 ||
      tz_min < 0)
    return std::nullopt;  // from_chars accepts "-1" inside a fixed width
  if (day < 1 || day > days_in_month(year, month) || hour > 23 ||
      minute > 59 || second > 60)
    return std::nullopt;
  if (tz_min > 59 || tz_hour * 60 + tz_min > 14 * 60) return std::nullopt;

  Timestamp local =
      Timestamp::from_civil(year, month, day, hour, minute, second);
  const std::int64_t offset =
      (tz_hour * kMicrosPerHour + tz_min * kMicrosPerMinute) *
      (sign == '+' ? 1 : -1);
  return Timestamp{local.micros() - offset};
}

}  // namespace divscrape::httplog
