// The central value type: one Apache access-log record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "httplog/http.hpp"
#include "httplog/ip.hpp"
#include "httplog/timestamp.hpp"

namespace divscrape::httplog {

/// Ground-truth label attached to a record by the traffic simulator.
///
/// Real access logs are unlabelled (the paper's dataset was; labelling is
/// its future work). Simulated records carry truth as *sidecar metadata*:
/// the CLF wire format neither writes nor reads it, and detectors never
/// look at it — only the evaluation layer does.
enum class Truth : std::uint8_t {
  kUnknown,    ///< no ground truth available (e.g. parsed from a real file)
  kBenign,     ///< human visitor or legitimate bot
  kMalicious,  ///< scraping/abusive automation
};

[[nodiscard]] std::string_view to_string(Truth t) noexcept;

/// One HTTP request as recorded in Apache "combined" log format, plus
/// simulation-only sidecar fields (truth, actor_id).
struct LogRecord {
  Ipv4 ip;                          ///< client address (%h)
  std::string ident = "-";          ///< identd (%l), almost always "-"
  std::string user = "-";           ///< authenticated user (%u)
  Timestamp time;                   ///< request time (%t)
  HttpMethod method = HttpMethod::kGet;
  std::string target = "/";         ///< request target: path[?query]
  std::string protocol = "HTTP/1.1";
  int status = 200;                 ///< response status (%>s)
  std::uint64_t bytes = 0;          ///< response body size (%b)
  /// %b dash sentinel. Apache logs "-" for a no-body response and "0" for a
  /// zero-length body; both parse to bytes == 0, so this flag carries the
  /// wire distinction: format_clf writes "-" only when bytes == 0 AND
  /// bytes_dash is set. parse_clf sets it to match the wire exactly
  /// (literal "0" clears it), making parse -> format byte-stable. Defaults
  /// true so a default 0 keeps logging "-" (the Apache convention and this
  /// repo's historical output); set bytes = 0, bytes_dash = false for a
  /// literal zero.
  bool bytes_dash = true;
  std::string referer = "-";        ///< Referer header, "-" when absent
  std::string user_agent = "-";     ///< User-Agent header, "-" when absent

  // --- sidecar metadata (not part of the CLF wire format) ---
  /// Interned token for `user_agent`, stamped at ingest (traffic generator,
  /// replay reader). 0 = not stamped; consumers fall back to interning the
  /// string themselves. Tokens are only meaningful relative to the single
  /// interner that minted them, so they never cross process or file
  /// boundaries (the CLF codec neither writes nor reads this field).
  std::uint32_t ua_token = 0;
  Truth truth = Truth::kUnknown;    ///< simulator ground truth
  std::uint32_t actor_id = 0;       ///< simulator actor identity (0 = none)
  /// Simulator actor class (traffic::ActorClass value); 255 = none. Opaque
  /// to this layer; used by calibration/ablation reports only.
  std::uint8_t actor_class = 255;
  /// Simulator vhost index (position in the ScenarioSpec's vhost list) —
  /// how `simulate --out-multi` routes the merged stream into one CLF log
  /// per vhost. 0 for single-vhost scenarios and parsed records.
  std::uint32_t vhost = 0;

  /// Path portion of `target` (up to '?').
  [[nodiscard]] std::string_view path() const noexcept {
    const std::string_view t = target;
    const auto q = t.find('?');
    return q == std::string_view::npos ? t : t.substr(0, q);
  }

  /// Query portion of `target` (after '?', possibly empty).
  [[nodiscard]] std::string_view query() const noexcept {
    const std::string_view t = target;
    const auto q = t.find('?');
    return q == std::string_view::npos ? std::string_view{} : t.substr(q + 1);
  }
};

}  // namespace divscrape::httplog
