// Incremental CLF line framing: turn an arbitrary sequence of byte chunks
// (as delivered by a log tailer polling a growing file) back into the lines
// a whole-stream `std::getline` loop would have produced.
//
// The framer is the single place the repository decides where a log line
// ends, so batch replay and live tailing frame identically by construction:
//
//   * lines are split at '\n'; a trailing '\r' is left in place (the CLF
//     parser strips it, exactly as it does for getline-read lines);
//   * a final byte run without a terminating '\n' is *not* a line — it is
//     held as a partial until either the newline arrives (tail mode) or the
//     caller declares end-of-stream with `take_partial()` (batch mode,
//     which keeps the historical "unterminated last line parses" behavior).
//
// That last distinction is deliberate and tested: a tailer that treated the
// partial as complete would mis-parse every torn mid-record write.
//
// Framing is zero-copy on the hot path: feed() *borrows* the chunk, and
// next() yields line views pointing straight into the caller's buffer;
// only the trailing partial (torn-write tail) is ever copied into the
// framer's carry buffer. The borrow imposes the one lifetime rule every
// caller already follows: the fed chunk must stay alive and unmodified
// until next() has returned false (or take_partial()/reset() ran) — i.e.
// drain the framer before reusing the read buffer.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// Reassembles newline-terminated lines from arbitrary byte chunks.
class LineFramer {
 public:
  /// Borrows a chunk of raw bytes for framing. The chunk must outlive the
  /// drain loop (every next() call until it returns false); any bytes of a
  /// previously fed chunk that were not framed are copied into the carry
  /// buffer first, so feeding without draining is allowed, just not free.
  void feed(std::string_view chunk);

  /// Yields the next complete ('\n'-terminated) line, without its
  /// terminator. The view is valid until the next feed()/next()/reset()
  /// call and may point into the fed chunk (see class comment).
  [[nodiscard]] bool next(std::string_view& line);

  /// End-of-stream: hands out the unterminated trailing bytes as one final
  /// line (getline's behavior at EOF) and clears the buffer. False when
  /// there is no partial line.
  [[nodiscard]] bool take_partial(std::string_view& line);

  /// Discards the buffered partial line (used when the file holding those
  /// bytes was truncated out from under the tailer).
  void reset();

  /// Bytes buffered but not yet framed into a line — the distance from the
  /// last committed line end to the write frontier. A checkpoint must not
  /// advance past `consumed - buffered()`.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return (carry_.size() - carry_pos_) + (chunk_.size() - chunk_pos_);
  }
  [[nodiscard]] bool has_partial() const noexcept { return buffered() > 0; }

 private:
  /// Moves any unframed chunk tail into the carry buffer and drops the
  /// borrowed view, restoring the self-contained between-chunks state.
  void settle();
  /// Erases the already-consumed carry prefix (kept around only so the
  /// most recently yielded view stays valid until the next call).
  void compact_carry();

  std::string carry_;          ///< unframed bytes from previous chunks
  std::size_t carry_pos_ = 0;  ///< start of unconsumed bytes within carry_
  std::string_view chunk_;     ///< borrowed current chunk
  std::size_t chunk_pos_ = 0;  ///< start of unframed bytes within chunk_
};

}  // namespace divscrape::httplog
