// Incremental CLF line framing: turn an arbitrary sequence of byte chunks
// (as delivered by a log tailer polling a growing file) back into the lines
// a whole-stream `std::getline` loop would have produced.
//
// The framer is the single place the repository decides where a log line
// ends, so batch replay and live tailing frame identically by construction:
//
//   * lines are split at '\n'; a trailing '\r' is left in place (the CLF
//     parser strips it, exactly as it does for getline-read lines);
//   * a final byte run without a terminating '\n' is *not* a line — it is
//     held as a partial until either the newline arrives (tail mode) or the
//     caller declares end-of-stream with `take_partial()` (batch mode,
//     which keeps the historical "unterminated last line parses" behavior).
//
// That last distinction is deliberate and tested: a tailer that treated the
// partial as complete would mis-parse every torn mid-record write.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// Reassembles newline-terminated lines from arbitrary byte chunks.
class LineFramer {
 public:
  /// Appends a chunk of raw bytes to the frame buffer.
  void feed(std::string_view chunk);

  /// Yields the next complete ('\n'-terminated) line, without its
  /// terminator. The view is valid until the next feed()/reset() call.
  [[nodiscard]] bool next(std::string_view& line);

  /// End-of-stream: hands out the unterminated trailing bytes as one final
  /// line (getline's behavior at EOF) and clears the buffer. False when
  /// there is no partial line.
  [[nodiscard]] bool take_partial(std::string_view& line);

  /// Discards the buffered partial line (used when the file holding those
  /// bytes was truncated out from under the tailer).
  void reset();

  /// Bytes buffered but not yet framed into a line — the distance from the
  /// last committed line end to the write frontier. A checkpoint must not
  /// advance past `consumed - buffered()`.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - read_pos_;
  }
  [[nodiscard]] bool has_partial() const noexcept { return buffered() > 0; }

 private:
  void compact();

  std::string buffer_;
  std::size_t read_pos_ = 0;  ///< start of unframed bytes within buffer_
};

}  // namespace divscrape::httplog
