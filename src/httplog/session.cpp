#include "httplog/session.hpp"

#include <algorithm>

namespace divscrape::httplog {

Session::Session(SessionKey key, Timestamp first_seen)
    : key_(key), first_(first_seen), last_(first_seen) {}

void Session::add(const LogRecord& record) {
  if (count_ > 0) {
    const double gap_s =
        static_cast<double>(record.time - last_) / 1e6;
    interarrival_.add(gap_s < 0.0 ? 0.0 : gap_s);
  } else {
    ua_ = record.user_agent;
    ua_info_ = classify_user_agent(ua_);
  }
  ++count_;
  last_ = std::max(last_, record.time);
  const auto path = record.path();
  if (is_static_asset(path)) ++assets_;
  if (record.referer != "-" && !record.referer.empty()) ++with_referer_;
  if (record.status >= 400 && record.status < 500) ++errors_4xx_;
  if (record.method == HttpMethod::kHead) ++heads_;
  if (path == "/robots.txt") robots_ = true;

  templates_.add(paths_.template_token(path));
  status_.add(record.status);
  if (record.truth == Truth::kMalicious)
    ++malicious_;
  else if (record.truth == Truth::kBenign)
    ++benign_;
}

double Session::duration_s() const noexcept {
  return static_cast<double>(last_ - first_) / 1e6;
}

double Session::request_rate() const noexcept {
  const double d = duration_s();
  if (d <= 0.0) return static_cast<double>(count_);
  return static_cast<double>(count_) / d;
}

double Session::asset_ratio() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(assets_) /
                           static_cast<double>(count_);
}

double Session::referer_ratio() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(with_referer_) /
                           static_cast<double>(count_);
}

double Session::error_ratio() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(errors_4xx_) /
                           static_cast<double>(count_);
}

double Session::head_ratio() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(heads_) /
                           static_cast<double>(count_);
}

double Session::template_entropy() const noexcept {
  return stats::shannon_entropy(templates_);
}

Truth Session::majority_truth() const noexcept {
  if (malicious_ == 0 && benign_ == 0) return Truth::kUnknown;
  return malicious_ >= benign_ ? Truth::kMalicious : Truth::kBenign;
}

Sessionizer::Sessionizer(double idle_timeout_s, Sink sink)
    : idle_timeout_s_(idle_timeout_s), sink_(std::move(sink)) {}

void Sessionizer::add(const LogRecord& record) {
  // Periodic sweep: expiring on every record would be O(n * sessions), so
  // sweep at most once per timeout interval of simulated time.
  const auto timeout_us = seconds_to_micros(idle_timeout_s_);
  if (record.time - last_sweep_ > timeout_us) {
    expire_older_than(Timestamp{record.time.micros() - timeout_us});
    last_sweep_ = record.time;
  }

  const SessionKey key = key_for(record);
  auto it = open_.find(key);
  if (it != open_.end()) {
    const double gap_s =
        static_cast<double>(record.time - it->second.last_seen()) / 1e6;
    if (gap_s > idle_timeout_s_) {
      Session done = std::move(it->second);
      open_.erase(it);
      ++completed_;
      if (sink_) sink_(std::move(done));
      it = open_.end();
    }
  }
  if (it == open_.end()) {
    it = open_.emplace(key, Session(key, record.time)).first;
  }
  it->second.add(record);
}

void Sessionizer::emit_sorted(std::vector<Session>&& batch) {
  // Hash-map iteration order depends on the key's hash values; sorting by
  // (first_seen, key) makes emission deterministic across platforms and
  // key representations.
  std::sort(batch.begin(), batch.end(), [](const Session& a,
                                           const Session& b) {
    if (a.first_seen() != b.first_seen()) return a.first_seen() < b.first_seen();
    return a.key() < b.key();
  });
  for (auto& session : batch) {
    ++completed_;
    if (sink_) sink_(std::move(session));
  }
}

void Sessionizer::expire_older_than(Timestamp cutoff) {
  std::vector<Session> expired;
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen() < cutoff) {
      expired.push_back(std::move(it->second));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  emit_sorted(std::move(expired));
}

void Sessionizer::flush_all() {
  std::vector<Session> remaining;
  remaining.reserve(open_.size());
  for (auto& [key, session] : open_) remaining.push_back(std::move(session));
  open_.clear();
  emit_sorted(std::move(remaining));
}

namespace {
constexpr std::uint32_t kSessionMagic = 0x53455353u;      // "SESS"
constexpr std::uint32_t kSessionizerMagic = 0x53534E5Au;  // "SSNZ"
}  // namespace

void Session::save_state(util::StateWriter& w) const {
  util::put_tag(w, kSessionMagic, 1);
  w.u32(key_.ip.value());
  w.u32(key_.ua_token);
  w.str(ua_);
  w.u64(count_);
  w.i64(first_.micros());
  w.i64(last_.micros());
  interarrival_.save_state(w);
  w.u64(assets_);
  w.u64(with_referer_);
  w.u64(errors_4xx_);
  w.u64(heads_);
  w.boolean(robots_);
  paths_.save_state(w);
  templates_.save_state(w);
  status_.save_state(w);
  w.u64(malicious_);
  w.u64(benign_);
}

std::optional<Session> Session::load_state(util::StateReader& r) {
  if (!util::check_tag(r, kSessionMagic, 1)) return std::nullopt;
  const Ipv4 ip{r.u32()};
  const std::uint32_t ua_token = r.u32();
  Session s(SessionKey{ip, ua_token}, Timestamp{0});
  s.ua_ = std::string(r.str());
  s.count_ = r.u64();
  s.first_ = Timestamp{r.i64()};
  s.last_ = Timestamp{r.i64()};
  if (!s.interarrival_.load_state(r)) return std::nullopt;
  s.assets_ = r.u64();
  s.with_referer_ = r.u64();
  s.errors_4xx_ = r.u64();
  s.heads_ = r.u64();
  s.robots_ = r.boolean();
  if (!s.paths_.load_state(r)) return std::nullopt;
  if (!s.templates_.load_state(r)) return std::nullopt;
  if (!s.status_.load_state(r)) return std::nullopt;
  s.malicious_ = r.u64();
  s.benign_ = r.u64();
  if (!r.ok()) return std::nullopt;
  if (s.count_ > 0) s.ua_info_ = classify_user_agent(s.ua_);
  return s;
}

void Sessionizer::save_state(util::StateWriter& w) const {
  util::put_tag(w, kSessionizerMagic, 1);
  local_uas_.save_state(w);
  w.u64(completed_);
  w.i64(last_sweep_.micros());
  std::vector<const Session*> open;
  open.reserve(open_.size());
  for (const auto& [key, session] : open_) open.push_back(&session);
  std::sort(open.begin(), open.end(), [](const Session* a, const Session* b) {
    return a->key() < b->key();
  });
  w.u64(open.size());
  for (const Session* s : open) s->save_state(w);
}

bool Sessionizer::load_state(util::StateReader& r) {
  const auto cold = [this] {
    local_uas_.clear();
    open_.clear();
    completed_ = 0;
    last_sweep_ = Timestamp{0};
  };
  cold();
  if (!util::check_tag(r, kSessionizerMagic, 1)) return false;
  if (!local_uas_.load_state(r)) return false;
  completed_ = r.u64();
  last_sweep_ = Timestamp{r.i64()};
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    auto session = Session::load_state(r);
    if (!session) {
      cold();
      return false;
    }
    const SessionKey key = session->key();
    open_.emplace(key, std::move(*session));
  }
  if (!r.ok()) {
    cold();
    return false;
  }
  return true;
}

std::vector<Session> sessionize(const std::vector<LogRecord>& records,
                                double idle_timeout_s) {
  std::vector<Session> out;
  Sessionizer sessionizer(idle_timeout_s,
                          [&out](Session&& s) { out.push_back(std::move(s)); });
  for (const auto& r : records) sessionizer.add(r);
  sessionizer.flush_all();
  return out;
}

}  // namespace divscrape::httplog
