#include "httplog/url.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace divscrape::httplog {

std::optional<Url> parse_url(std::string_view target) {
  if (target.empty() || target.front() != '/') return std::nullopt;
  Url url;
  const auto qpos = target.find('?');
  if (qpos == std::string_view::npos) {
    url.path.assign(target);
  } else {
    url.path.assign(target.substr(0, qpos));
    const auto frag = target.find('#', qpos);
    url.query.assign(target.substr(
        qpos + 1, frag == std::string_view::npos ? std::string_view::npos
                                                 : frag - qpos - 1));
  }
  return url;
}

namespace {

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::vector<QueryParam> parse_query(std::string_view query) {
  std::vector<QueryParam> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    const auto amp = query.find('&', start);
    const auto token = query.substr(
        start, amp == std::string_view::npos ? std::string_view::npos
                                             : amp - start);
    if (!token.empty()) {
      const auto eq = token.find('=');
      if (eq == std::string_view::npos) {
        params.push_back({url_decode(token), ""});
      } else {
        params.push_back(
            {url_decode(token.substr(0, eq)), url_decode(token.substr(eq + 1))});
      }
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return params;
}

std::optional<std::string> query_value(std::string_view query,
                                       std::string_view key) {
  for (auto& param : parse_query(query)) {
    if (param.key == key) return std::move(param.value);
  }
  return std::nullopt;
}

std::vector<std::string> path_segments(std::string_view path) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start < path.size()) {
    const auto slash = path.find('/', start);
    const auto len =
        slash == std::string_view::npos ? path.size() - start : slash - start;
    if (len > 0) segments.emplace_back(path.substr(start, len));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return segments;
}

std::string path_extension(std::string_view path) {
  const auto slash = path.rfind('/');
  const auto last =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = last.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == last.size())
    return {};
  std::string ext(last.substr(dot + 1));
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return ext;
}

bool is_static_asset(std::string_view path) noexcept {
  static constexpr std::array<std::string_view, 14> kAssetExts = {
      "css", "js",  "png", "jpg",  "jpeg", "gif",   "svg",
      "ico", "woff", "woff2", "ttf", "eot", "map",  "webp"};
  const std::string ext = path_extension(path);
  return std::find(kAssetExts.begin(), kAssetExts.end(), ext) !=
         kAssetExts.end();
}

std::string path_template(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  out += '/';
  for (const auto& seg : path_segments(path)) {
    const bool numeric =
        !seg.empty() && std::all_of(seg.begin(), seg.end(), [](unsigned char c) {
          return std::isdigit(c);
        });
    out += numeric ? std::string("{n}") : seg;
    out += '/';
  }
  if (out.size() > 1) out.pop_back();  // drop trailing slash
  return out;
}

}  // namespace divscrape::httplog
