#include "httplog/framing.hpp"

namespace divscrape::httplog {

void LineFramer::feed(std::string_view chunk) {
  compact();
  buffer_.append(chunk.data(), chunk.size());
}

bool LineFramer::next(std::string_view& line) {
  const auto nl = buffer_.find('\n', read_pos_);
  if (nl == std::string::npos) return false;
  line = std::string_view(buffer_).substr(read_pos_, nl - read_pos_);
  read_pos_ = nl + 1;
  return true;
}

bool LineFramer::take_partial(std::string_view& line) {
  compact();
  if (buffer_.empty()) return false;
  // The partial becomes the line; the buffer must survive until the caller
  // is done with the view, so swap it out lazily via read_pos_.
  line = buffer_;
  read_pos_ = buffer_.size();
  return true;
}

void LineFramer::reset() {
  buffer_.clear();
  read_pos_ = 0;
}

void LineFramer::compact() {
  if (read_pos_ == 0) return;
  buffer_.erase(0, read_pos_);
  read_pos_ = 0;
}

}  // namespace divscrape::httplog
