#include "httplog/framing.hpp"

namespace divscrape::httplog {

void LineFramer::compact_carry() {
  if (carry_pos_ == 0) return;
  carry_.erase(0, carry_pos_);
  carry_pos_ = 0;
}

void LineFramer::settle() {
  compact_carry();
  if (chunk_pos_ < chunk_.size()) {
    carry_.append(chunk_.data() + chunk_pos_, chunk_.size() - chunk_pos_);
  }
  chunk_ = {};
  chunk_pos_ = 0;
}

void LineFramer::feed(std::string_view chunk) {
  settle();
  chunk_ = chunk;
  chunk_pos_ = 0;
}

bool LineFramer::next(std::string_view& line) {
  if (carry_pos_ < carry_.size()) {
    // Unconsumed carried bytes. A line may already end inside the carry
    // (the feed-without-drain case: settle() moved whole lines in).
    const auto cnl = carry_.find('\n', carry_pos_);
    if (cnl != std::string::npos) {
      line = std::string_view(carry_).substr(carry_pos_, cnl - carry_pos_);
      carry_pos_ = cnl + 1;
      return true;
    }
    // The carry is a partial line: complete it with the head of the
    // current chunk (the one place a copy is required).
    const auto nl = chunk_.find('\n', chunk_pos_);
    if (nl == std::string_view::npos) {
      settle();  // still no newline — extend the carry and wait
      return false;
    }
    compact_carry();
    carry_.append(chunk_.data() + chunk_pos_, nl - chunk_pos_);
    chunk_pos_ = nl + 1;
    line = carry_;
    carry_pos_ = carry_.size();  // consumed; bytes stay for the view
    return true;
  }
  compact_carry();  // drop the kept-alive previous line, if any
  const auto nl = chunk_.find('\n', chunk_pos_);
  if (nl == std::string_view::npos) {
    settle();  // unframed tail becomes the new carry
    return false;
  }
  line = chunk_.substr(chunk_pos_, nl - chunk_pos_);
  chunk_pos_ = nl + 1;
  return true;
}

bool LineFramer::take_partial(std::string_view& line) {
  settle();
  if (carry_.empty()) return false;
  line = carry_;
  carry_pos_ = carry_.size();  // buffer survives until the caller is done
  return true;
}

void LineFramer::reset() {
  carry_.clear();
  carry_pos_ = 0;
  chunk_ = {};
  chunk_pos_ = 0;
}

}  // namespace divscrape::httplog
