#include "httplog/io.hpp"

namespace divscrape::httplog {

bool LogReader::next(LogRecord& out) {
  while (std::getline(*in_, line_)) {
    ++lines_;
    auto result = parse_clf(line_);
    if (result.ok()) {
      out = std::move(*result.record);
      return true;
    }
    ++skipped_;
    const auto idx = static_cast<std::size_t>(result.error);
    if (idx < skip_counts_.size()) ++skip_counts_[idx];
  }
  return false;
}

void LogWriter::write(const LogRecord& record) {
  *out_ << format_clf(record) << '\n';
  ++written_;
}

std::vector<LogRecord> read_all(std::istream& in) {
  std::vector<LogRecord> records;
  LogReader reader(in);
  LogRecord rec;
  while (reader.next(rec)) records.push_back(std::move(rec));
  return records;
}

}  // namespace divscrape::httplog
