#include "httplog/io.hpp"

namespace divscrape::httplog {

bool LogReader::next(LogRecord& out) {
  while (std::getline(*in_, line_)) {
    ++lines_;
    const ClfError error = parser_.parse(line_, out);
    if (error == ClfError::kNone) return true;
    ++skipped_;
    const auto idx = static_cast<std::size_t>(error);
    if (idx < skip_counts_.size()) ++skip_counts_[idx];
  }
  return false;
}

void LogWriter::write(const LogRecord& record) {
  buf_.clear();
  formatter_.append(record, buf_);
  buf_ += '\n';
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  ++written_;
}

std::vector<LogRecord> read_all(std::istream& in) {
  std::vector<LogRecord> records;
  LogReader reader(in);
  LogRecord rec;
  while (reader.next(rec)) records.push_back(std::move(rec));
  return records;
}

}  // namespace divscrape::httplog
