// Sessionization: grouping a request stream into client sessions.
//
// A session is keyed by (client IP, User-Agent) — the only identity present
// in access logs — and is closed after an inactivity timeout (default 30
// minutes, the standard web-analytics convention). Sessions carry the
// aggregate features the learning-based detectors and the behavioural
// analysis consume.
//
// Hot-path note: the User-Agent half of the key is an interned 32-bit token
// (see util/interner.hpp), not a string. Records stamped at ingest
// (LogRecord::ua_token != 0) key their session state with zero string
// hashing; unstamped records are interned once by the consumer via
// ua_key_token(), which marks consumer-minted tokens with kLocalUaTokenBit
// so they can never collide with ingest-stamped ones.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "httplog/ip.hpp"
#include "httplog/record.hpp"
#include "httplog/url.hpp"
#include "httplog/useragent.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "util/hash.hpp"
#include "util/interner.hpp"

namespace divscrape::httplog {

/// Session identity: (ip, interned user-agent token).
struct SessionKey {
  Ipv4 ip;
  std::uint32_t ua_token = 0;

  friend bool operator==(const SessionKey& a, const SessionKey& b) noexcept {
    return a.ip == b.ip && a.ua_token == b.ua_token;
  }
  friend bool operator!=(const SessionKey& a, const SessionKey& b) noexcept {
    return !(a == b);
  }
  /// Lexicographic (ip, token) order; used for deterministic emission.
  friend bool operator<(const SessionKey& a, const SessionKey& b) noexcept {
    return a.ip != b.ip ? a.ip < b.ip : a.ua_token < b.ua_token;
  }
};

struct SessionKeyHash {
  [[nodiscard]] std::size_t operator()(const SessionKey& k) const noexcept {
    return util::hash_combine(Ipv4Hash{}(k.ip), k.ua_token);
  }
};

/// Marks tokens minted by a consumer-local interner (for records that were
/// not stamped at ingest). Keeps the two token spaces disjoint so a local
/// token can never alias an ingest-stamped one.
inline constexpr std::uint32_t kLocalUaTokenBit = 0x8000'0000u;
/// Marks capped-fallback tokens derived by hashing instead of interning.
/// Disjoint from exact local tokens (those are < kMaxLocalUaTokens).
inline constexpr std::uint32_t kHashedUaTokenBit = 0x4000'0000u;
/// UA cardinality is attacker-controlled (scrapers rotate UAs), so local
/// interners stop growing here; further distinct UAs fall back to hashed
/// tokens — bounded memory at the cost of possible (hash-collision) client
/// merging past this many distinct UAs, which a string-keyed map would
/// have paid for in unbounded key storage instead.
inline constexpr std::size_t kMaxLocalUaTokens = std::size_t{1} << 18;

/// The session-key token for a record: the ingest-stamped token when
/// present, otherwise `local`'s token for the UA string (tagged with
/// kLocalUaTokenBit). One string hash for unstamped records, zero for
/// stamped ones.
[[nodiscard]] inline std::uint32_t ua_key_token(const LogRecord& record,
                                                util::StringInterner& local) {
  if (record.ua_token != util::StringInterner::kInvalidToken)
    return record.ua_token;
  std::uint32_t token = local.find(record.user_agent);
  if (token == util::StringInterner::kInvalidToken) {
    if (local.size() >= kMaxLocalUaTokens) {
      return (util::fnv1a32(record.user_agent) & ~kLocalUaTokenBit) |
             kLocalUaTokenBit | kHashedUaTokenBit;
    }
    token = local.intern(record.user_agent);
  }
  return token | kLocalUaTokenBit;
}

/// Aggregate view of one client session.
class Session {
 public:
  explicit Session(SessionKey key, Timestamp first_seen);

  /// Folds one record into the aggregates. Records are expected in time
  /// order (the sessionizer guarantees it).
  void add(const LogRecord& record);

  [[nodiscard]] const SessionKey& key() const noexcept { return key_; }
  /// The User-Agent string of the session's first record (all records of a
  /// session share one UA — the key guarantees it). Empty before add().
  [[nodiscard]] const std::string& user_agent() const noexcept { return ua_; }
  /// UA classification, computed once per session (the seed classified on
  /// every feature extraction).
  [[nodiscard]] const UserAgentInfo& ua_info() const noexcept {
    return ua_info_;
  }
  [[nodiscard]] std::uint64_t request_count() const noexcept { return count_; }
  [[nodiscard]] Timestamp first_seen() const noexcept { return first_; }
  [[nodiscard]] Timestamp last_seen() const noexcept { return last_; }
  /// Session duration in seconds (0 for single-request sessions).
  [[nodiscard]] double duration_s() const noexcept;
  /// Mean requests per second over the session (count / duration); count
  /// when duration is 0.
  [[nodiscard]] double request_rate() const noexcept;
  /// Inter-arrival statistics (seconds).
  [[nodiscard]] const stats::RunningStats& interarrival() const noexcept {
    return interarrival_;
  }
  /// Fraction of requests that fetched static assets (css/js/images).
  [[nodiscard]] double asset_ratio() const noexcept;
  /// Fraction of requests carrying a non-"-" Referer.
  [[nodiscard]] double referer_ratio() const noexcept;
  /// Fraction of 4xx responses.
  [[nodiscard]] double error_ratio() const noexcept;
  /// Fraction of HEAD requests.
  [[nodiscard]] double head_ratio() const noexcept;
  /// Shannon entropy (bits) over normalized path templates; low entropy
  /// with high volume is the catalogue-sweep signature.
  [[nodiscard]] double template_entropy() const noexcept;
  /// Distinct concrete paths visited.
  [[nodiscard]] std::size_t distinct_paths() const noexcept {
    return paths_.distinct_paths();
  }
  /// Whether the session ever fetched /robots.txt.
  [[nodiscard]] bool fetched_robots() const noexcept { return robots_; }
  /// Per-status counts.
  [[nodiscard]] const stats::Counter<int>& status_counts() const noexcept {
    return status_;
  }
  /// Majority truth of member records (simulation metadata).
  [[nodiscard]] Truth majority_truth() const noexcept;

  /// Dump of every aggregate (warm checkpointing). The UA classification is
  /// recomputed from the stored UA string on load, not serialized.
  void save_state(util::StateWriter& w) const;
  /// Restores a session from save_state() output; nullopt on a malformed
  /// blob (Session has no default construction, hence the factory form).
  [[nodiscard]] static std::optional<Session> load_state(util::StateReader& r);

 private:
  SessionKey key_;
  std::string ua_;  ///< captured from the first record
  UserAgentInfo ua_info_{UaFamily::kEmpty, 0, false, false, false};
  std::uint64_t count_ = 0;
  Timestamp first_;
  Timestamp last_;
  stats::RunningStats interarrival_;
  std::uint64_t assets_ = 0;
  std::uint64_t with_referer_ = 0;
  std::uint64_t errors_4xx_ = 0;
  std::uint64_t heads_ = 0;
  bool robots_ = false;
  // Paths and their templates are interned session-locally: counting exact
  // 32-bit tokens is bijective with counting the strings themselves (same
  // entropy, same distinct counts) but costs one probe instead of a string
  // copy plus O(log n) string compares per record.
  PathTemplateMemo paths_;
  stats::Counter<std::uint32_t> templates_;
  stats::Counter<int> status_;
  std::uint64_t malicious_ = 0;
  std::uint64_t benign_ = 0;
};

/// Streaming sessionizer. Feed records in global time order; completed
/// sessions (closed by inactivity or by flush_all) are handed to the sink.
class Sessionizer {
 public:
  using Sink = std::function<void(Session&&)>;

  /// `idle_timeout_s`: inactivity gap that closes a session.
  explicit Sessionizer(double idle_timeout_s = 1800.0, Sink sink = {});

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// The session key this sessionizer uses for a record (stamped token or
  /// a token from the sessionizer's own interner). Exposed so callers that
  /// post-process by client (e.g. the labeler's second pass) key their maps
  /// identically to the sessions they received from the sink.
  [[nodiscard]] SessionKey key_for(const LogRecord& record) {
    return SessionKey{record.ip, ua_key_token(record, local_uas_)};
  }

  /// Feeds one record; may emit zero or more completed sessions first.
  void add(const LogRecord& record);

  /// Closes and emits every open session (end of stream), ordered by
  /// (first_seen, key) so downstream consumers are hash-order independent.
  void flush_all();

  [[nodiscard]] std::size_t open_sessions() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t completed_sessions() const noexcept {
    return completed_;
  }

  /// Dump of the sessionizer's warm state: the local UA interner, every
  /// open session window (sorted by key for deterministic bytes), the
  /// completed count, and the sweep clock. Timeout and sink stay
  /// construction-time config.
  void save_state(util::StateWriter& w) const;
  /// Restores from save_state() output. Returns false — with the
  /// sessionizer reset to cold/empty — on a malformed blob.
  [[nodiscard]] bool load_state(util::StateReader& r);

 private:
  void expire_older_than(Timestamp cutoff);
  void emit_sorted(std::vector<Session>&& batch);

  double idle_timeout_s_;
  Sink sink_;
  util::StringInterner local_uas_;
  std::unordered_map<SessionKey, Session, SessionKeyHash> open_;
  std::uint64_t completed_ = 0;
  Timestamp last_sweep_;
};

/// Convenience: sessionize a whole in-memory stream and return all sessions.
[[nodiscard]] std::vector<Session> sessionize(
    const std::vector<LogRecord>& records, double idle_timeout_s = 1800.0);

}  // namespace divscrape::httplog
