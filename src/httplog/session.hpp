// Sessionization: grouping a request stream into client sessions.
//
// A session is keyed by (client IP, User-Agent) — the only identity present
// in access logs — and is closed after an inactivity timeout (default 30
// minutes, the standard web-analytics convention). Sessions carry the
// aggregate features the learning-based detectors and the behavioural
// analysis consume.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "httplog/ip.hpp"
#include "httplog/record.hpp"
#include "httplog/url.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

namespace divscrape::httplog {

/// Session identity: (ip, user-agent).
struct SessionKey {
  Ipv4 ip;
  std::string user_agent;

  friend bool operator==(const SessionKey& a, const SessionKey& b) {
    return a.ip == b.ip && a.user_agent == b.user_agent;
  }
  friend bool operator!=(const SessionKey& a, const SessionKey& b) {
    return !(a == b);
  }
};

struct SessionKeyHash {
  [[nodiscard]] std::size_t operator()(const SessionKey& k) const noexcept {
    return Ipv4Hash{}(k.ip) ^ (std::hash<std::string>{}(k.user_agent) << 1);
  }
};

/// Aggregate view of one client session.
class Session {
 public:
  explicit Session(SessionKey key, Timestamp first_seen);

  /// Folds one record into the aggregates. Records are expected in time
  /// order (the sessionizer guarantees it).
  void add(const LogRecord& record);

  [[nodiscard]] const SessionKey& key() const noexcept { return key_; }
  [[nodiscard]] std::uint64_t request_count() const noexcept { return count_; }
  [[nodiscard]] Timestamp first_seen() const noexcept { return first_; }
  [[nodiscard]] Timestamp last_seen() const noexcept { return last_; }
  /// Session duration in seconds (0 for single-request sessions).
  [[nodiscard]] double duration_s() const noexcept;
  /// Mean requests per second over the session (count / duration); count
  /// when duration is 0.
  [[nodiscard]] double request_rate() const noexcept;
  /// Inter-arrival statistics (seconds).
  [[nodiscard]] const stats::RunningStats& interarrival() const noexcept {
    return interarrival_;
  }
  /// Fraction of requests that fetched static assets (css/js/images).
  [[nodiscard]] double asset_ratio() const noexcept;
  /// Fraction of requests carrying a non-"-" Referer.
  [[nodiscard]] double referer_ratio() const noexcept;
  /// Fraction of 4xx responses.
  [[nodiscard]] double error_ratio() const noexcept;
  /// Fraction of HEAD requests.
  [[nodiscard]] double head_ratio() const noexcept;
  /// Shannon entropy (bits) over normalized path templates; low entropy
  /// with high volume is the catalogue-sweep signature.
  [[nodiscard]] double template_entropy() const noexcept;
  /// Distinct concrete paths visited.
  [[nodiscard]] std::size_t distinct_paths() const noexcept;
  /// Whether the session ever fetched /robots.txt.
  [[nodiscard]] bool fetched_robots() const noexcept { return robots_; }
  /// Per-status counts.
  [[nodiscard]] const stats::Counter<int>& status_counts() const noexcept {
    return status_;
  }
  /// Majority truth of member records (simulation metadata).
  [[nodiscard]] Truth majority_truth() const noexcept;

 private:
  SessionKey key_;
  std::uint64_t count_ = 0;
  Timestamp first_;
  Timestamp last_;
  stats::RunningStats interarrival_;
  std::uint64_t assets_ = 0;
  std::uint64_t with_referer_ = 0;
  std::uint64_t errors_4xx_ = 0;
  std::uint64_t heads_ = 0;
  bool robots_ = false;
  stats::Counter<std::string> templates_;
  stats::Counter<std::string> paths_;
  stats::Counter<int> status_;
  std::uint64_t malicious_ = 0;
  std::uint64_t benign_ = 0;
};

/// Streaming sessionizer. Feed records in global time order; completed
/// sessions (closed by inactivity or by flush_all) are handed to the sink.
class Sessionizer {
 public:
  using Sink = std::function<void(Session&&)>;

  /// `idle_timeout_s`: inactivity gap that closes a session.
  explicit Sessionizer(double idle_timeout_s = 1800.0, Sink sink = {});

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Feeds one record; may emit zero or more completed sessions first.
  void add(const LogRecord& record);

  /// Closes and emits every open session (end of stream).
  void flush_all();

  [[nodiscard]] std::size_t open_sessions() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t completed_sessions() const noexcept {
    return completed_;
  }

 private:
  void expire_older_than(Timestamp cutoff);

  double idle_timeout_s_;
  Sink sink_;
  std::unordered_map<SessionKey, Session, SessionKeyHash> open_;
  std::uint64_t completed_ = 0;
  Timestamp last_sweep_;
};

/// Convenience: sessionize a whole in-memory stream and return all sessions.
[[nodiscard]] std::vector<Session> sessionize(
    const std::vector<LogRecord>& records, double idle_timeout_s = 1800.0);

}  // namespace divscrape::httplog
