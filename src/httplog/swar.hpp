// SWAR (SIMD-within-a-register) byte scanning for the CLF hot path.
//
// glibc's memchr is vectorized but costs a PLT call plus alignment preamble
// — more than the whole scan for the short fields that dominate a CLF line
// (an IP is <= 15 bytes, ident/user are usually the single byte "-", status
// and bytes are a handful of digits). find_byte() inlines the classic
// "haszero" word trick instead: broadcast the needle, XOR, and detect a zero
// lane with (x - 0x01..01) & ~x & 0x80..80, eight bytes per iteration with
// no setup cost. Long fields (quoted referer/user-agent, bracket scan) still
// go through memchr, where the per-call overhead amortizes.
#pragma once

#include <cstdint>
#include <cstring>

namespace divscrape::httplog::swar {

/// True on the platforms where the word trick below is endian-correct; the
/// fallback is a plain byte loop (still allocation- and call-free).
inline constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
    false;
#endif

/// First occurrence of `needle` in [p, end); returns `end` when absent
/// (cursor-friendly: callers advance to the result unconditionally).
inline const char* find_byte(const char* p, const char* end,
                             char needle) noexcept {
  if (kLittleEndian) {
    constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
    constexpr std::uint64_t kHighs = 0x8080808080808080ULL;
    const std::uint64_t pattern =
        kOnes * static_cast<std::uint8_t>(needle);
    while (end - p >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);  // unaligned-safe, compiles to one load
      const std::uint64_t x = word ^ pattern;
      const std::uint64_t hit = (x - kOnes) & ~x & kHighs;
      if (hit != 0) {
#if defined(__GNUC__) || defined(__clang__)
        return p + (__builtin_ctzll(hit) >> 3);
#else
        for (int i = 0; i < 8; ++i)
          if (p[i] == needle) return p + i;
#endif
      }
      p += 8;
    }
  }
  while (p < end && *p != needle) ++p;
  return p;
}

}  // namespace divscrape::httplog::swar
