// Apache "combined" log format codec.
//
//   %h %l %u [%t] "%r" %>s %b "%{Referer}i" "%{User-agent}i"
//
// e.g.
//   203.0.113.7 - - [11/Mar/2018:06:25:24 +0000] "GET /search?q=NCE HTTP/1.1"
//       200 5120 "https://example.com/" "Mozilla/5.0 (...)"
//
// Parsing is lenient in the ways real logs require (escaped quotes inside
// quoted fields, "-" for missing sizes, garbage request lines) but reports a
// precise error category for every rejected line.
//
// ## Round-trip contract
//
//   * format_clf(parse_clf(line)) == line for every accepted line (byte
//     stability): parse keeps the wire's tokens verbatim — the literal "-"
//     in ident/user, the %b dash-vs-"0" distinction (LogRecord::bytes_dash)
//     — and format writes them back unchanged. The two deliberate
//     exceptions: a non-UTC timezone re-renders as its UTC equivalent
//     (Timestamp stores UTC), and bytes after the closing user-agent quote
//     are dropped (parse ignores trailing junk).
//   * parse_clf(format_clf(rec)) equals rec on every wire field for records
//     whose fields are representable. The canonical "absent" ident/user is
//     "-" (the LogRecord default); an empty string cannot be written to the
//     wire, so format_clf normalizes record -> wire: "" is emitted as "-"
//     and comes back as "-". Spaces or control bytes inside ident/user are
//     likewise unrepresentable (the caller's responsibility; format does
//     not escape them).
//
// ## Two parser implementations
//
// parse_clf() is the production fast path: memchr/SWAR field splitting over
// the caller's buffer, an escape-free fast lane for quoted fields, and no
// per-field heap traffic until the line is accepted. parse_clf_reference()
// is the original field-by-field implementation, kept as the oracle the
// differential fuzz suite (httplog_clf_fuzz_test) checks the fast path
// against — byte-for-byte equal verdicts and records on every input. Fix
// bugs in the reference first; make the fast path match.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "httplog/record.hpp"

namespace divscrape::httplog {

/// Why a line failed to parse.
enum class ClfError : std::uint8_t {
  kNone,
  kEmptyLine,
  kBadIp,
  kBadTimestamp,
  kBadRequestLine,
  kBadStatus,
  kBadBytes,
  kTruncated,
};

[[nodiscard]] std::string_view to_string(ClfError e) noexcept;

/// Result of parsing one line: either a record, or the error that rejected
/// the line.
struct ClfParseResult {
  std::optional<LogRecord> record;
  ClfError error = ClfError::kNone;

  [[nodiscard]] bool ok() const noexcept { return record.has_value(); }
};

/// Streaming CLF decoder — the per-stream form of parse_clf() that the
/// ingest hot path (pipeline::LineDecoder) uses. Two things make it faster
/// than the free function on a real log:
///
///   * a per-second timestamp memo: CLF time has one-second resolution, so
///     consecutive records overwhelmingly repeat the previous record's
///     26-byte "[%t]" field. The memo compares those bytes (parse_clf_time
///     reads nothing past them) and reuses the decoded Timestamp on a hit —
///     the full civil-date decode runs about once per wire second.
///   * parse(line, out) writes into a caller-owned record, so a caller that
///     reuses one record across lines (LineDecoder, LogReader) recycles the
///     field strings' capacity instead of allocating five strings per line.
///
/// One parser = one log stream; the memo is just a cache, so sharing one
/// parser across interleaved streams is correct but wastes the hit rate.
class ClfParser {
 public:
  /// Parses one line into `out`, reusing its string capacity. Returns
  /// kNone on success; on failure `out` is left in an unspecified (but
  /// valid) state. All sidecar fields of `out` are reset to their defaults
  /// on success — a parsed record is indistinguishable from one returned
  /// by parse_clf().
  ClfError parse(std::string_view line, LogRecord& out);

 private:
  // Per-second timestamp memo: first 26 bytes of the last successfully
  // decoded time field + its value (parse_clf_time ignores later bytes).
  char time_memo_[26];
  Timestamp memo_time_;
  bool memo_valid_ = false;
  std::string scratch_;  ///< escape-resolution buffer for "%r" (rare path)
};

/// Streaming CLF encoder with the mirror-image per-second memo: the 26-byte
/// time field is re-rendered only when the record's wire second changes,
/// and everything else is appended straight into the caller's buffer — no
/// snprintf, no temporary strings. One formatter = one output stream.
class ClfFormatter {
 public:
  /// Appends one formatted line (no trailing newline) to `out`.
  void append(const LogRecord& record, std::string& out);

 private:
  std::int64_t memo_second_ = std::numeric_limits<std::int64_t>::min();
  char time_chars_[Timestamp::kClfChars];
};

/// Parses one combined-log-format line (no trailing newline required).
/// Stateless wrapper over ClfParser — per-stream callers should hold a
/// ClfParser and keep its timestamp memo warm.
[[nodiscard]] ClfParseResult parse_clf(std::string_view line);

/// The original straight-line parser, retained as the differential-testing
/// oracle for parse_clf() (see the header comment). Not for production use:
/// it allocates per field and decodes every timestamp from scratch.
[[nodiscard]] ClfParseResult parse_clf_reference(std::string_view line);

/// Formats a record as one combined-log-format line (no trailing newline).
/// Quotes and backslashes inside quoted fields are backslash-escaped; see
/// the header comment for the round-trip contract (ident/user "-"
/// normalization, the bytes_dash %b sentinel).
[[nodiscard]] std::string format_clf(const LogRecord& record);

}  // namespace divscrape::httplog
