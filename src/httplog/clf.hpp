// Apache "combined" log format codec.
//
//   %h %l %u [%t] "%r" %>s %b "%{Referer}i" "%{User-agent}i"
//
// e.g.
//   203.0.113.7 - - [11/Mar/2018:06:25:24 +0000] "GET /search?q=NCE HTTP/1.1"
//       200 5120 "https://example.com/" "Mozilla/5.0 (...)"
//
// Parsing is lenient in the ways real logs require (escaped quotes inside
// quoted fields, "-" for missing sizes, garbage request lines) but reports a
// precise error category for every rejected line.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "httplog/record.hpp"

namespace divscrape::httplog {

/// Why a line failed to parse.
enum class ClfError : std::uint8_t {
  kNone,
  kEmptyLine,
  kBadIp,
  kBadTimestamp,
  kBadRequestLine,
  kBadStatus,
  kBadBytes,
  kTruncated,
};

[[nodiscard]] std::string_view to_string(ClfError e) noexcept;

/// Result of parsing one line: either a record, or the error that rejected
/// the line.
struct ClfParseResult {
  std::optional<LogRecord> record;
  ClfError error = ClfError::kNone;

  [[nodiscard]] bool ok() const noexcept { return record.has_value(); }
};

/// Parses one combined-log-format line (no trailing newline required).
[[nodiscard]] ClfParseResult parse_clf(std::string_view line);

/// Formats a record as one combined-log-format line (no trailing newline).
/// Quotes inside quoted fields are backslash-escaped; `bytes == 0` is
/// written as "-" per Apache convention for %b.
[[nodiscard]] std::string format_clf(const LogRecord& record);

}  // namespace divscrape::httplog
