// IPv4 addresses as a value type. The commercial-style detector reasons
// about subnets (/24 escalation), so addresses are stored numerically.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// IPv4 address stored as a host-order 32-bit integer.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}
  /// Builds a.b.c.d from its octets.
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }

  /// Network prefix of the given length (0..32); e.g. prefix(24) zeroes the
  /// last octet. Used as a subnet key.
  [[nodiscard]] constexpr Ipv4 prefix(int bits) const noexcept {
    if (bits <= 0) return Ipv4{0};
    if (bits >= 32) return *this;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - bits);
    return Ipv4{value_ & mask};
  }

  /// Dotted-quad "a.b.c.d".
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(Ipv4 a, Ipv4 b) noexcept {
    return a.value_ >= b.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

/// Parses dotted-quad notation; nullopt on malformed input (wrong octet
/// count, out-of-range octets, stray characters).
[[nodiscard]] std::optional<Ipv4> parse_ipv4(std::string_view text) noexcept;

/// Hash functor so Ipv4 works in unordered containers.
struct Ipv4Hash {
  [[nodiscard]] std::size_t operator()(Ipv4 ip) const noexcept {
    // Fibonacci hashing spreads sequential addresses (botnet ranges) well.
    return static_cast<std::size_t>(ip.value() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace divscrape::httplog
