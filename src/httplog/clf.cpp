#include "httplog/clf.hpp"

#include <charconv>

namespace divscrape::httplog {

namespace {

// Consumes characters up to the next space; advances `pos` past the space.
std::string_view take_token(std::string_view line, std::size_t& pos) {
  const auto start = pos;
  while (pos < line.size() && line[pos] != ' ') ++pos;
  const auto token = line.substr(start, pos - start);
  if (pos < line.size()) ++pos;  // skip the space
  return token;
}

// Consumes a [bracketed] field. Returns nullopt when malformed.
std::optional<std::string_view> take_bracketed(std::string_view line,
                                               std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '[') return std::nullopt;
  const auto close = line.find(']', pos);
  if (close == std::string_view::npos) return std::nullopt;
  const auto inner = line.substr(pos + 1, close - pos - 1);
  pos = close + 1;
  if (pos < line.size() && line[pos] == ' ') ++pos;
  return inner;
}

// Consumes a "quoted" field honoring backslash escapes. The returned string
// has escapes resolved. Returns nullopt when the closing quote is missing.
std::optional<std::string> take_quoted(std::string_view line,
                                       std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '"') return std::nullopt;
  ++pos;
  std::string out;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      out += line[pos + 1];
      pos += 2;
      continue;
    }
    if (c == '"') {
      ++pos;
      if (pos < line.size() && line[pos] == ' ') ++pos;
      return out;
    }
    out += c;
    ++pos;
  }
  return std::nullopt;
}

std::string escape_quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string_view to_string(ClfError e) noexcept {
  switch (e) {
    case ClfError::kNone: return "none";
    case ClfError::kEmptyLine: return "empty line";
    case ClfError::kBadIp: return "bad ip";
    case ClfError::kBadTimestamp: return "bad timestamp";
    case ClfError::kBadRequestLine: return "bad request line";
    case ClfError::kBadStatus: return "bad status";
    case ClfError::kBadBytes: return "bad bytes";
    case ClfError::kTruncated: return "truncated";
  }
  return "?";
}

ClfParseResult parse_clf(std::string_view line) {
  // Strip trailing CR/LF so Windows-edited logs parse.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  if (line.empty()) return {std::nullopt, ClfError::kEmptyLine};

  LogRecord rec;
  std::size_t pos = 0;

  const auto ip_token = take_token(line, pos);
  const auto ip = parse_ipv4(ip_token);
  if (!ip) return {std::nullopt, ClfError::kBadIp};
  rec.ip = *ip;

  rec.ident = std::string(take_token(line, pos));
  rec.user = std::string(take_token(line, pos));
  if (rec.ident.empty() || rec.user.empty())
    return {std::nullopt, ClfError::kTruncated};

  const auto time_field = take_bracketed(line, pos);
  if (!time_field) return {std::nullopt, ClfError::kBadTimestamp};
  const auto time = parse_clf_time(*time_field);
  if (!time) return {std::nullopt, ClfError::kBadTimestamp};
  rec.time = *time;

  auto request = take_quoted(line, pos);
  if (!request) return {std::nullopt, ClfError::kBadRequestLine};
  {
    // Request line: METHOD SP TARGET SP PROTOCOL. Bots send garbage here;
    // we keep what we can (a lone "-" is allowed, e.g. aborted TLS).
    std::string_view r = *request;
    const auto sp1 = r.find(' ');
    if (sp1 == std::string_view::npos) {
      rec.method = HttpMethod::kOther;
      rec.target = std::string(r);
      rec.protocol = "";
    } else {
      rec.method = parse_method(r.substr(0, sp1));
      const auto sp2 = r.rfind(' ');
      if (sp2 == sp1) {
        rec.target = std::string(r.substr(sp1 + 1));
        rec.protocol = "";
      } else {
        rec.target = std::string(r.substr(sp1 + 1, sp2 - sp1 - 1));
        rec.protocol = std::string(r.substr(sp2 + 1));
      }
    }
  }

  const auto status_token = take_token(line, pos);
  {
    int status = 0;
    const auto* begin = status_token.data();
    const auto* end = begin + status_token.size();
    const auto [next, ec] = std::from_chars(begin, end, status);
    if (ec != std::errc{} || next != end || status < 100 || status > 599)
      return {std::nullopt, ClfError::kBadStatus};
    rec.status = status;
  }

  const auto bytes_token = take_token(line, pos);
  if (bytes_token == "-") {
    rec.bytes = 0;
  } else {
    std::uint64_t bytes = 0;
    const auto* begin = bytes_token.data();
    const auto* end = begin + bytes_token.size();
    const auto [next, ec] = std::from_chars(begin, end, bytes);
    if (ec != std::errc{} || next != end)
      return {std::nullopt, ClfError::kBadBytes};
    rec.bytes = bytes;
  }

  auto referer = take_quoted(line, pos);
  if (!referer) return {std::nullopt, ClfError::kTruncated};
  rec.referer = std::move(*referer);

  auto ua = take_quoted(line, pos);
  if (!ua) return {std::nullopt, ClfError::kTruncated};
  rec.user_agent = std::move(*ua);

  return {std::move(rec), ClfError::kNone};
}

std::string format_clf(const LogRecord& record) {
  std::string out;
  out.reserve(160);
  out += record.ip.to_string();
  out += ' ';
  out += record.ident.empty() ? "-" : record.ident;
  out += ' ';
  out += record.user.empty() ? "-" : record.user;
  out += " [";
  out += record.time.to_clf();
  out += "] \"";
  out += to_string(record.method);
  out += ' ';
  out += escape_quoted(record.target);
  if (!record.protocol.empty()) {
    out += ' ';
    out += record.protocol;
  }
  out += "\" ";
  out += std::to_string(record.status);
  out += ' ';
  out += record.bytes == 0 ? "-" : std::to_string(record.bytes);
  out += " \"";
  out += escape_quoted(record.referer);
  out += "\" \"";
  out += escape_quoted(record.user_agent);
  out += '"';
  return out;
}

std::string_view to_string(Truth t) noexcept {
  switch (t) {
    case Truth::kUnknown: return "unknown";
    case Truth::kBenign: return "benign";
    case Truth::kMalicious: return "malicious";
  }
  return "?";
}

}  // namespace divscrape::httplog
