#include "httplog/clf.hpp"

#include <charconv>
#include <cstring>

#include "httplog/swar.hpp"

namespace divscrape::httplog {

namespace {

// ---------------------------------------------------------------------------
// Reference parser (the differential-testing oracle; see clf.hpp)
// ---------------------------------------------------------------------------

// Consumes characters up to the next space; advances `pos` past the space.
std::string_view take_token(std::string_view line, std::size_t& pos) {
  const auto start = pos;
  while (pos < line.size() && line[pos] != ' ') ++pos;
  const auto token = line.substr(start, pos - start);
  if (pos < line.size()) ++pos;  // skip the space
  return token;
}

// Consumes a [bracketed] field. Returns nullopt when malformed.
std::optional<std::string_view> take_bracketed(std::string_view line,
                                               std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '[') return std::nullopt;
  const auto close = line.find(']', pos);
  if (close == std::string_view::npos) return std::nullopt;
  const auto inner = line.substr(pos + 1, close - pos - 1);
  pos = close + 1;
  if (pos < line.size() && line[pos] == ' ') ++pos;
  return inner;
}

// Consumes a "quoted" field honoring backslash escapes. The returned string
// has escapes resolved. Returns nullopt when the closing quote is missing.
std::optional<std::string> take_quoted(std::string_view line,
                                       std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '"') return std::nullopt;
  ++pos;
  std::string out;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      out += line[pos + 1];
      pos += 2;
      continue;
    }
    if (c == '"') {
      ++pos;
      if (pos < line.size() && line[pos] == ' ') ++pos;
      return out;
    }
    out += c;
    ++pos;
  }
  return std::nullopt;
}

void escape_quoted_append(std::string_view text, std::string& out) {
  // Escapes are rare: scan once, and bulk-append when there is nothing to
  // escape (the overwhelmingly common case for targets/referers/UAs).
  if (std::memchr(text.data(), '"', text.size()) == nullptr &&
      std::memchr(text.data(), '\\', text.size()) == nullptr) {
    out.append(text);
    return;
  }
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

// Splits a resolved request line "METHOD SP TARGET SP PROTOCOL" into the
// record's method/target/protocol, with the historical leniency: one lone
// token is a bare target (e.g. "-" from an aborted TLS handshake), interior
// spaces belong to the target.
void split_request_line(std::string_view r, LogRecord& rec) {
  const auto sp1 = r.find(' ');
  if (sp1 == std::string_view::npos) {
    rec.method = HttpMethod::kOther;
    rec.target.assign(r);
    rec.protocol.clear();
  } else {
    rec.method = parse_method(r.substr(0, sp1));
    const auto sp2 = r.rfind(' ');
    if (sp2 == sp1) {
      rec.target.assign(r.substr(sp1 + 1));
      rec.protocol.clear();
    } else {
      rec.target.assign(r.substr(sp1 + 1, sp2 - sp1 - 1));
      rec.protocol.assign(r.substr(sp2 + 1));
    }
  }
}

std::string_view strip_line_endings(std::string_view line) noexcept {
  // Strip trailing CR/LF so Windows-edited logs parse.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  return line;
}

}  // namespace

std::string_view to_string(ClfError e) noexcept {
  switch (e) {
    case ClfError::kNone: return "none";
    case ClfError::kEmptyLine: return "empty line";
    case ClfError::kBadIp: return "bad ip";
    case ClfError::kBadTimestamp: return "bad timestamp";
    case ClfError::kBadRequestLine: return "bad request line";
    case ClfError::kBadStatus: return "bad status";
    case ClfError::kBadBytes: return "bad bytes";
    case ClfError::kTruncated: return "truncated";
  }
  return "?";
}

ClfParseResult parse_clf_reference(std::string_view line) {
  line = strip_line_endings(line);
  if (line.empty()) return {std::nullopt, ClfError::kEmptyLine};

  LogRecord rec;
  std::size_t pos = 0;

  const auto ip_token = take_token(line, pos);
  const auto ip = parse_ipv4(ip_token);
  if (!ip) return {std::nullopt, ClfError::kBadIp};
  rec.ip = *ip;

  rec.ident = std::string(take_token(line, pos));
  rec.user = std::string(take_token(line, pos));
  if (rec.ident.empty() || rec.user.empty())
    return {std::nullopt, ClfError::kTruncated};

  const auto time_field = take_bracketed(line, pos);
  if (!time_field) return {std::nullopt, ClfError::kBadTimestamp};
  const auto time = parse_clf_time(*time_field);
  if (!time) return {std::nullopt, ClfError::kBadTimestamp};
  rec.time = *time;

  auto request = take_quoted(line, pos);
  if (!request) return {std::nullopt, ClfError::kBadRequestLine};
  // Request line: METHOD SP TARGET SP PROTOCOL. Bots send garbage here;
  // we keep what we can (a lone "-" is allowed, e.g. aborted TLS).
  split_request_line(*request, rec);

  const auto status_token = take_token(line, pos);
  {
    int status = 0;
    const auto* begin = status_token.data();
    const auto* end = begin + status_token.size();
    const auto [next, ec] = std::from_chars(begin, end, status);
    if (ec != std::errc{} || next != end || status < 100 || status > 599)
      return {std::nullopt, ClfError::kBadStatus};
    rec.status = status;
  }

  const auto bytes_token = take_token(line, pos);
  if (bytes_token == "-") {
    rec.bytes = 0;
    rec.bytes_dash = true;
  } else {
    std::uint64_t bytes = 0;
    const auto* begin = bytes_token.data();
    const auto* end = begin + bytes_token.size();
    const auto [next, ec] = std::from_chars(begin, end, bytes);
    if (ec != std::errc{} || next != end)
      return {std::nullopt, ClfError::kBadBytes};
    rec.bytes = bytes;
    rec.bytes_dash = false;
  }

  auto referer = take_quoted(line, pos);
  if (!referer) return {std::nullopt, ClfError::kTruncated};
  rec.referer = std::move(*referer);

  auto ua = take_quoted(line, pos);
  if (!ua) return {std::nullopt, ClfError::kTruncated};
  rec.user_agent = std::move(*ua);

  return {std::move(rec), ClfError::kNone};
}

// ---------------------------------------------------------------------------
// Fast parser
// ---------------------------------------------------------------------------

namespace {

// Resolves a quoted field's escapes into `dst` with take_quoted's exact
// semantics (backslash consumes the next byte, whatever it is). `p` points
// just past the opening quote. Returns the position one past the closing
// quote, or nullptr when the quote never closes.
const char* resolve_escaped(const char* p, const char* end, std::string& dst) {
  dst.clear();
  while (p < end) {
    const char c = *p;
    if (c == '\\' && p + 1 < end) {
      dst += p[1];
      p += 2;
      continue;
    }
    if (c == '"') return p + 1;
    dst += c;
    ++p;
  }
  return nullptr;
}

}  // namespace

ClfError ClfParser::parse(std::string_view line_in, LogRecord& out) {
  const std::string_view line = strip_line_endings(line_in);
  if (line.empty()) return ClfError::kEmptyLine;

  const char* p = line.data();
  const char* const end = p + line.size();

  // %h — the IP token. Short fields (ip/ident/user/status/bytes) scan with
  // the inlined SWAR word trick; long scans (bracket, quotes) use memchr.
  const char* sp = swar::find_byte(p, end, ' ');
  const auto ip = parse_ipv4(std::string_view(p, static_cast<std::size_t>(sp - p)));
  if (!ip) return ClfError::kBadIp;
  out.ip = *ip;
  p = sp < end ? sp + 1 : sp;

  // %l %u — kept verbatim (the literal "-" is the canonical absent value).
  const char* f0 = p;
  sp = swar::find_byte(p, end, ' ');
  const std::string_view ident(f0, static_cast<std::size_t>(sp - f0));
  p = sp < end ? sp + 1 : sp;
  f0 = p;
  sp = swar::find_byte(p, end, ' ');
  const std::string_view user(f0, static_cast<std::size_t>(sp - f0));
  p = sp < end ? sp + 1 : sp;
  if (ident.empty() || user.empty()) return ClfError::kTruncated;
  out.ident.assign(ident);
  out.user.assign(user);

  // [%t] — with the per-second memo. parse_clf_time reads only the first
  // 26 bytes of the field (and requires at least that many), so matching
  // those bytes against the last decoded field is exact, not heuristic.
  if (p >= end || *p != '[') return ClfError::kBadTimestamp;
  const char* close = static_cast<const char*>(
      std::memchr(p, ']', static_cast<std::size_t>(end - p)));
  if (close == nullptr) return ClfError::kBadTimestamp;
  const std::string_view time_field(p + 1,
                                    static_cast<std::size_t>(close - p - 1));
  if (memo_valid_ && time_field.size() >= sizeof time_memo_ &&
      std::memcmp(time_field.data(), time_memo_, sizeof time_memo_) == 0) {
    out.time = memo_time_;
  } else {
    const auto time = parse_clf_time(time_field);
    if (!time) return ClfError::kBadTimestamp;
    out.time = *time;
    std::memcpy(time_memo_, time_field.data(), sizeof time_memo_);
    memo_time_ = *time;
    memo_valid_ = true;
  }
  p = close + 1;
  if (p < end && *p == ' ') ++p;

  // Quoted-field splitter. Escapes are rare, so the fast lane is a memchr
  // for the closing quote plus a memchr proving no backslash precedes it;
  // any backslash falls back to the byte-at-a-time resolver. On success
  // `p` is one past the closing quote (the caller skips the field space),
  // and the field is either `view` (escape-free, zero-copy) or `scratch_`
  // (resolved). Returns false when the quote never closes.
  std::string_view view;
  bool resolved;
  const auto take_quoted_fast = [&]() -> bool {
    if (p >= end || *p != '"') return false;
    const char* q = p + 1;
    const char* quote = static_cast<const char*>(
        std::memchr(q, '"', static_cast<std::size_t>(end - q)));
    if (quote == nullptr &&
        std::memchr(q, '\\', static_cast<std::size_t>(end - q)) == nullptr)
      return false;  // unclosed, no escapes that could hide a quote
    if (quote != nullptr &&
        std::memchr(q, '\\', static_cast<std::size_t>(quote - q)) == nullptr) {
      view = std::string_view(q, static_cast<std::size_t>(quote - q));
      resolved = false;
      p = quote + 1;
    } else {
      const char* after = resolve_escaped(q, end, scratch_);
      if (after == nullptr) return false;
      resolved = true;
      p = after;
    }
    if (p < end && *p == ' ') ++p;
    return true;
  };

  // "%r" — split on the *resolved* text (a backslash-space escape resolves
  // to a space and participates in the split, as the reference does).
  if (!take_quoted_fast()) return ClfError::kBadRequestLine;
  split_request_line(resolved ? std::string_view(scratch_) : view, out);

  // %>s
  f0 = p;
  sp = swar::find_byte(p, end, ' ');
  p = sp < end ? sp + 1 : sp;
  {
    int status = 0;
    const auto [next, ec] = std::from_chars(f0, sp, status);
    if (ec != std::errc{} || next != sp || status < 100 || status > 599)
      return ClfError::kBadStatus;
    out.status = status;
  }

  // %b
  f0 = p;
  sp = swar::find_byte(p, end, ' ');
  p = sp < end ? sp + 1 : sp;
  if (sp - f0 == 1 && *f0 == '-') {
    out.bytes = 0;
    out.bytes_dash = true;
  } else {
    std::uint64_t bytes = 0;
    const auto [next, ec] = std::from_chars(f0, sp, bytes);
    if (ec != std::errc{} || next != sp) return ClfError::kBadBytes;
    out.bytes = bytes;
    out.bytes_dash = false;
  }

  // "%{Referer}i" "%{User-agent}i" — trailing junk after the closing UA
  // quote is ignored, as the reference does.
  if (!take_quoted_fast()) return ClfError::kTruncated;
  if (resolved) out.referer.assign(scratch_);
  else out.referer.assign(view);
  if (!take_quoted_fast()) return ClfError::kTruncated;
  if (resolved) out.user_agent.assign(scratch_);
  else out.user_agent.assign(view);

  // Sidecar metadata never crosses the wire: reset to the LogRecord
  // defaults so a reused `out` matches a freshly parsed record exactly.
  out.ua_token = 0;
  out.truth = Truth::kUnknown;
  out.actor_id = 0;
  out.actor_class = 255;
  out.vhost = 0;
  return ClfError::kNone;
}

ClfParseResult parse_clf(std::string_view line) {
  ClfParser parser;
  ClfParseResult result;
  result.record.emplace();
  result.error = parser.parse(line, *result.record);
  if (result.error != ClfError::kNone) result.record.reset();
  return result;
}

// ---------------------------------------------------------------------------
// Formatter
// ---------------------------------------------------------------------------

namespace {

void append_u64(std::uint64_t value, std::string& out) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;  // 20 digits always suffice for u64
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_int(int value, std::string& out) {
  char buf[12];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_ip(Ipv4 ip, std::string& out) {
  char buf[15];
  char* w = buf;
  const std::uint32_t v = ip.value();
  for (int shift = 24; shift >= 0; shift -= 8) {
    const unsigned octet = (v >> shift) & 0xff;
    if (octet >= 100) *w++ = static_cast<char>('0' + octet / 100);
    if (octet >= 10) *w++ = static_cast<char>('0' + (octet / 10) % 10);
    *w++ = static_cast<char>('0' + octet % 10);
    if (shift != 0) *w++ = '.';
  }
  out.append(buf, static_cast<std::size_t>(w - buf));
}

std::int64_t floor_seconds(std::int64_t micros) noexcept {
  // Floor division: negative micros belong to the earlier wire second,
  // matching what to_clf() renders.
  const std::int64_t q = micros / kMicrosPerSecond;
  return (micros % kMicrosPerSecond < 0) ? q - 1 : q;
}

}  // namespace

void ClfFormatter::append(const LogRecord& record, std::string& out) {
  append_ip(record.ip, out);
  out += ' ';
  if (record.ident.empty()) out += '-';
  else out += record.ident;
  out += ' ';
  if (record.user.empty()) out += '-';
  else out += record.user;
  out += " [";
  const std::int64_t second = floor_seconds(record.time.micros());
  if (second == memo_second_) {
    out.append(time_chars_, Timestamp::kClfChars);
  } else if (Timestamp{second * kMicrosPerSecond}.to_clf_chars(time_chars_)) {
    memo_second_ = second;
    out.append(time_chars_, Timestamp::kClfChars);
  } else {
    out += record.time.to_clf();  // year outside 0..9999
  }
  out += "] \"";
  out += to_string(record.method);
  out += ' ';
  escape_quoted_append(record.target, out);
  if (!record.protocol.empty()) {
    out += ' ';
    out += record.protocol;
  }
  out += "\" ";
  append_int(record.status, out);
  out += ' ';
  if (record.bytes == 0 && record.bytes_dash) out += '-';
  else append_u64(record.bytes, out);
  out += " \"";
  escape_quoted_append(record.referer, out);
  out += "\" \"";
  escape_quoted_append(record.user_agent, out);
  out += '"';
}

std::string format_clf(const LogRecord& record) {
  ClfFormatter formatter;
  std::string out;
  out.reserve(160);
  formatter.append(record, out);
  return out;
}

std::string_view to_string(Truth t) noexcept {
  switch (t) {
    case Truth::kUnknown: return "unknown";
    case Truth::kBenign: return "benign";
    case Truth::kMalicious: return "malicious";
  }
  return "?";
}

}  // namespace divscrape::httplog
