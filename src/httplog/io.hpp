// Streaming log file IO: read CLF files line by line with error accounting,
// and write records back out. Real deployments tail multi-gigabyte logs, so
// readers never buffer the whole file.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "httplog/clf.hpp"
#include "httplog/record.hpp"

namespace divscrape::httplog {

/// Streaming reader over a CLF text stream. Bad lines are skipped and
/// counted per error category, mirroring how log processors must tolerate
/// corruption in rotated production logs.
class LogReader {
 public:
  explicit LogReader(std::istream& in) : in_(&in) {}

  /// Reads the next parseable record; false at end of stream.
  [[nodiscard]] bool next(LogRecord& out);

  [[nodiscard]] std::uint64_t lines_read() const noexcept { return lines_; }
  [[nodiscard]] std::uint64_t lines_skipped() const noexcept {
    return skipped_;
  }
  /// Skip counts indexed by ClfError value.
  [[nodiscard]] const std::vector<std::uint64_t>& skips_by_error()
      const noexcept {
    return skip_counts_;
  }

 private:
  std::istream* in_;
  ClfParser parser_;  ///< keeps the timestamp memo warm across lines
  std::string line_;
  std::uint64_t lines_ = 0;
  std::uint64_t skipped_ = 0;
  std::vector<std::uint64_t> skip_counts_ =
      std::vector<std::uint64_t>(8, 0);
};

/// Writes records as CLF lines.
class LogWriter {
 public:
  explicit LogWriter(std::ostream& out) : out_(&out) {}

  void write(const LogRecord& record);
  [[nodiscard]] std::uint64_t lines_written() const noexcept {
    return written_;
  }

 private:
  std::ostream* out_;
  ClfFormatter formatter_;
  std::string buf_;  ///< reused wire buffer
  std::uint64_t written_ = 0;
};

/// Reads every parseable record from a stream (convenience for tests and
/// small files).
[[nodiscard]] std::vector<LogRecord> read_all(std::istream& in);

}  // namespace divscrape::httplog
