#include "httplog/http.hpp"

namespace divscrape::httplog {

std::string_view to_string(HttpMethod m) noexcept {
  switch (m) {
    case HttpMethod::kGet: return "GET";
    case HttpMethod::kPost: return "POST";
    case HttpMethod::kHead: return "HEAD";
    case HttpMethod::kPut: return "PUT";
    case HttpMethod::kDelete: return "DELETE";
    case HttpMethod::kOptions: return "OPTIONS";
    case HttpMethod::kPatch: return "PATCH";
    case HttpMethod::kConnect: return "CONNECT";
    case HttpMethod::kTrace: return "TRACE";
    case HttpMethod::kOther: return "-";
  }
  return "-";
}

HttpMethod parse_method(std::string_view token) noexcept {
  if (token == "GET") return HttpMethod::kGet;
  if (token == "POST") return HttpMethod::kPost;
  if (token == "HEAD") return HttpMethod::kHead;
  if (token == "PUT") return HttpMethod::kPut;
  if (token == "DELETE") return HttpMethod::kDelete;
  if (token == "OPTIONS") return HttpMethod::kOptions;
  if (token == "PATCH") return HttpMethod::kPatch;
  if (token == "CONNECT") return HttpMethod::kConnect;
  if (token == "TRACE") return HttpMethod::kTrace;
  return HttpMethod::kOther;
}

StatusClass status_class(int status) noexcept {
  if (status >= 100 && status < 200) return StatusClass::kInformational;
  if (status >= 200 && status < 300) return StatusClass::kSuccess;
  if (status >= 300 && status < 400) return StatusClass::kRedirection;
  if (status >= 400 && status < 500) return StatusClass::kClientError;
  if (status >= 500 && status < 600) return StatusClass::kServerError;
  return StatusClass::kUnknown;
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 100: return "Continue";
    case 101: return "Switching Protocols";
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 303: return "See Other";
    case 304: return "Not modified";
    case 307: return "Temporary Redirect";
    case 308: return "Permanent Redirect";
    case 400: return "Bad request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 408: return "Request Timeout";
    case 410: return "Gone";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 418: return "I'm a teapot";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "";
  }
}

std::string status_label(int status) {
  const auto phrase = reason_phrase(status);
  std::string out = std::to_string(status);
  if (!phrase.empty()) {
    out += " (";
    out += phrase;
    out += ')';
  }
  return out;
}

}  // namespace divscrape::httplog
