// Timestamps in Apache common-log time format.
//
// Stored as microseconds since the Unix epoch (UTC). Parsing/formatting of
// the CLF representation "[11/Mar/2018:06:25:24 +0000]" is implemented
// directly (days-from-civil) so behaviour does not depend on the host's
// timezone database.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace divscrape::httplog {

/// Microsecond-resolution instant. Value type; arithmetic is on the
/// underlying microsecond count.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(std::int64_t micros) noexcept
      : micros_(micros) {}

  /// Builds a UTC civil time. Month is 1..12, day 1..31; no validation of
  /// impossible dates beyond what the caller provides being in-range.
  static Timestamp from_civil(int year, int month, int day, int hour = 0,
                              int minute = 0, int second = 0,
                              int microsecond = 0) noexcept;

  [[nodiscard]] constexpr std::int64_t micros() const noexcept {
    return micros_;
  }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }

  /// Width of the CLF representation: "dd/Mon/yyyy:HH:MM:SS +0000".
  static constexpr std::size_t kClfChars = 26;

  /// CLF representation without brackets: "11/Mar/2018:06:25:24 +0000".
  /// Always renders UTC.
  [[nodiscard]] std::string to_clf() const;

  /// Writes exactly kClfChars bytes of the CLF representation into `out`
  /// (no NUL terminator) — the allocation-free form the streaming encoder
  /// memoizes. Returns false without writing when the year falls outside
  /// 0..9999 (not representable in the fixed-width layout; callers fall
  /// back to to_clf()).
  [[nodiscard]] bool to_clf_chars(char* out) const noexcept;

  /// ISO-8601 "2018-03-11T06:25:24Z" (second resolution), for reports.
  [[nodiscard]] std::string to_iso8601() const;

  friend constexpr bool operator==(Timestamp a, Timestamp b) noexcept {
    return a.micros_ == b.micros_;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) noexcept {
    return a.micros_ != b.micros_;
  }
  friend constexpr bool operator<(Timestamp a, Timestamp b) noexcept {
    return a.micros_ < b.micros_;
  }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) noexcept {
    return a.micros_ <= b.micros_;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) noexcept {
    return a.micros_ > b.micros_;
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) noexcept {
    return a.micros_ >= b.micros_;
  }

  constexpr Timestamp operator+(std::int64_t delta_micros) const noexcept {
    return Timestamp{micros_ + delta_micros};
  }
  constexpr std::int64_t operator-(Timestamp other) const noexcept {
    return micros_ - other.micros_;
  }

 private:
  std::int64_t micros_ = 0;
};

/// One million microseconds; helper for readable durations.
inline constexpr std::int64_t kMicrosPerSecond = 1'000'000;
inline constexpr std::int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr std::int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr std::int64_t kMicrosPerDay = 24 * kMicrosPerHour;

[[nodiscard]] constexpr std::int64_t seconds_to_micros(double s) noexcept {
  return static_cast<std::int64_t>(s * 1e6);
}

/// Parses the CLF time "11/Mar/2018:06:25:24 +0000" (no brackets). Honors
/// the numeric timezone offset by converting to UTC. nullopt on malformed
/// input.
[[nodiscard]] std::optional<Timestamp> parse_clf_time(
    std::string_view text) noexcept;

}  // namespace divscrape::httplog
