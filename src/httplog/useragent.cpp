#include "httplog/useragent.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>

namespace divscrape::httplog {

namespace {

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != haystack.end();
}

// Extracts the integer right after "token/" (e.g. "Chrome/64.0" -> 64).
int version_after(std::string_view ua, std::string_view token) {
  const auto pos = ua.find(token);
  if (pos == std::string_view::npos) return 0;
  const char* begin = ua.data() + pos + token.size();
  const char* end = ua.data() + ua.size();
  int value = 0;
  const auto [next, ec] = std::from_chars(begin, end, value);
  return ec == std::errc{} && next != begin ? value : 0;
}

constexpr std::array<std::string_view, 8> kDeclaredBots = {
    "Googlebot", "bingbot",    "Slurp",        "DuckDuckBot",
    "Baiduspider", "YandexBot", "AhrefsBot",   "UptimeRobot"};

constexpr std::array<std::string_view, 9> kScriptMarkers = {
    "curl/",      "python-requests", "Python-urllib", "Scrapy",
    "Go-http-client", "Java/",       "okhttp",        "libwww-perl",
    "Wget"};

constexpr std::array<std::string_view, 3> kHeadlessMarkers = {
    "HeadlessChrome", "PhantomJS", "SlimerJS"};

}  // namespace

std::string_view to_string(UaFamily f) noexcept {
  switch (f) {
    case UaFamily::kBrowser: return "browser";
    case UaFamily::kDeclaredBot: return "declared-bot";
    case UaFamily::kScriptClient: return "script-client";
    case UaFamily::kHeadless: return "headless";
    case UaFamily::kEmpty: return "empty";
    case UaFamily::kUnknown: return "unknown";
  }
  return "unknown";
}

UserAgentInfo classify_user_agent(std::string_view ua) {
  UserAgentInfo info;
  if (ua.empty() || ua == "-") {
    info.family = UaFamily::kEmpty;
    return info;
  }
  for (const auto marker : kHeadlessMarkers) {
    if (contains_icase(ua, marker)) {
      info.family = UaFamily::kHeadless;
      info.scripted = true;
      info.browser_major = version_after(ua, "HeadlessChrome/");
      return info;
    }
  }
  for (const auto bot : kDeclaredBots) {
    if (contains_icase(ua, bot)) {
      info.family = UaFamily::kDeclaredBot;
      info.declared_bot = true;
      return info;
    }
  }
  // Generic self-declared crawlers ("FooBot/1.2", "...spider...").
  if (contains_icase(ua, "bot") || contains_icase(ua, "spider") ||
      contains_icase(ua, "crawler")) {
    info.family = UaFamily::kDeclaredBot;
    info.declared_bot = true;
    return info;
  }
  for (const auto marker : kScriptMarkers) {
    if (contains_icase(ua, marker)) {
      info.family = UaFamily::kScriptClient;
      info.scripted = true;
      return info;
    }
  }
  if (ua.find("Mozilla/") != std::string_view::npos) {
    info.family = UaFamily::kBrowser;
    if (const int v = version_after(ua, "Chrome/"); v > 0) {
      info.browser_major = v;
      info.stale_fingerprint = v < 50;
    } else if (const int fx = version_after(ua, "Firefox/"); fx > 0) {
      info.browser_major = fx;
      info.stale_fingerprint = fx < 50;
    } else if (const int sf = version_after(ua, "Version/"); sf > 0) {
      info.browser_major = sf;  // Safari style; current in its own line
    } else if (const int msie = version_after(ua, "MSIE "); msie > 0) {
      info.browser_major = msie;
      info.stale_fingerprint = true;
    }
    return info;
  }
  return info;
}

}  // namespace divscrape::httplog
