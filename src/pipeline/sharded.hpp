// Sharded detection pipeline: hash-partitions the request stream across N
// worker threads, each owning a private detector-pool instance, and merges
// the per-shard JointResults at the end.
//
// Correctness argument (tested in tests/pipeline_test.cpp): every detector
// in this repository keys its state by client IP or (IP, UA), and
// Sentinel's widest coupling is the /24 subnet. Partitioning by the /24
// prefix therefore routes every record that could share detector state to
// the same shard, and each shard sees its sub-stream in input order.
// Hence the merged results are *identical* to a sequential run — the
// classic "partition by the state key" recipe for scaling stateful stream
// processors.
//
// ## Batched, multi-dispatcher architecture
//
// Records move through the pipeline as RecordBatches over bounded SPSC
// rings; nothing is handed over one record at a time:
//
//   caller ──batches──> dispatcher ring ──> dispatcher d ──batches──>
//     per-shard SPSC ring ──> shard worker (detector pool)
//
// The caller thread routes each record by its /24 shard key into a pending
// batch for the *dispatcher that owns that shard* (shards are partitioned
// across M dispatchers in contiguous key ranges: dispatcher d owns shards
// [d*S/M, (d+1)*S/M)). Each dispatcher consumes its input ring, re-routes
// the batch's records into per-shard pending batches, and pushes full ones
// into that shard's ring. Shard s therefore has exactly one producer (its
// owning dispatcher) and one consumer (its worker) — every ring in the
// graph is SPSC, and per-shard record order equals input order by FIFO
// composition, which is what makes JointResults byte-identical to the
// sequential engine at EVERY (shards, dispatchers, batch size) setting.
//
// Batches are recycled through one shared BatchPool (consumers return,
// producers acquire), so the steady state allocates nothing: strings are
// byte-copied into warm slots (see record_batch.hpp). Backpressure is
// structural — rings are bounded, so a caller that outruns detection
// blocks in push() instead of buffering the stream.
//
// With dispatchers == 1 (the default) and a caller that hands whole
// batches (process_batch), the input batch is moved into the dispatcher
// ring untouched — a pointer-swap handoff for the common case. A
// dispatcher that owns exactly one shard forwards batches whole as well
// (the caller's routing already put only that shard's records in them),
// so shards == dispatchers configurations pay a single routing copy and
// shards == dispatchers == 1 pays none.
//
// Note the one caveat: JointResults' k-of-N adjudication and pairwise
// tables are per-record joins of the same pool, so they shard cleanly too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/detector.hpp"
#include "httplog/record.hpp"
#include "pipeline/record_batch.hpp"
#include "pipeline/spsc_ring.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::pipeline {

/// Creates one detector-pool instance per shard.
using PoolFactory =
    std::function<std::vector<std::unique_ptr<detectors::Detector>>()>;

class ShardedPipeline {
 public:
  /// `shards` >= 1. The factory is invoked `shards` times up front.
  ///
  /// `batch_size` is the records-per-batch granularity of every handoff.
  ///
  /// `max_backlog` bounds each shard's unprocessed run-ahead in records:
  /// it is realized as the shard ring's capacity in batches
  /// (max(1, max_backlog / batch_size)), so a dispatcher that outpaces a
  /// worker blocks on the ring instead of buffering the stream. 0 picks a
  /// generous-but-bounded default (rings are bounded by construction).
  ///
  /// `dispatchers` (clamped to [1, shards]) is the number of dispatcher
  /// threads the shard set is range-partitioned across. Purely an
  /// execution knob: results are identical for any value.
  ShardedPipeline(PoolFactory factory, std::size_t shards,
                  std::size_t batch_size = 1024,
                  std::size_t max_backlog = 16 * 1024,
                  std::size_t dispatchers = 1);
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Routes one record into the pending batch of the dispatcher owning its
  /// shard (by /24 prefix hash). Called from one caller thread only. The
  /// record is byte-copied into a warm batch slot (the arena contract);
  /// the caller keeps its buffer.
  void process(const httplog::LogRecord& record);
  /// Source-compat overload: batching made stealing the caller's strings
  /// counterproductive (a move discards the slot's warm buffer), so this
  /// simply copies like the const& form.
  void process(httplog::LogRecord&& record);

  /// Batch seam: hands a whole batch to the pipeline, which takes
  /// ownership (the batch is recycled into the internal pool after its
  /// shard workers finish). With 1 dispatcher the batch is moved into the
  /// dispatcher ring without touching a record; with M > 1 its records
  /// are split into per-dispatcher pending batches. Producers should
  /// acquire batches from batch_pool() to close the recycle loop.
  void process_batch(RecordBatch&& batch);

  /// The pipeline's batch arena — producers acquire here so consumers'
  /// recycled batches (with warm string storage) come back around.
  [[nodiscard]] BatchPool& batch_pool() noexcept { return pool_; }

  /// Barrier: flushes every pending batch through the dispatchers and
  /// blocks until every worker has *processed* everything enqueued so far.
  /// Checkpointing callers need this — a persisted offset must not cover
  /// records still sitting in a ring, or a crash loses them from the
  /// results while resume skips them. The pipeline stays usable
  /// afterwards.
  void drain();

  /// Flushes rings, joins dispatchers and workers, merges shard results.
  /// Must be called exactly once; process() is illegal afterwards.
  [[nodiscard]] core::JointResults finish();

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t dispatchers() const noexcept {
    return dispatchers_.size();
  }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }
  /// High-water mark of any single shard's (enqueued - processed) records,
  /// sampled at enqueue time — the backpressure tests assert this stays
  /// within the configured bound.
  [[nodiscard]] std::uint64_t peak_shard_backlog() const noexcept;

  /// Warm-checkpoint dump of every shard's joiner (detector states +
  /// per-shard results). Internally drain()s first — the workers are idle
  /// and their rings empty while the states are read, so the dump is a
  /// consistent cut of the whole pipeline. Returns false (nothing written)
  /// if a pool member doesn't support serialization. The blob layout is
  /// unchanged from the single-dispatcher pipeline (dispatcher count and
  /// batch size are execution knobs, not state), so pre-batching
  /// checkpoints restore into this pipeline and vice versa.
  [[nodiscard]] bool save_state(util::StateWriter& w);
  /// Restores from save_state() output; call before any process(). The
  /// shard count must match the saved one (routing is count-dependent). On
  /// failure every shard is reset cold and false is returned.
  [[nodiscard]] bool load_state(util::StateReader& r);

 private:
  /// Dispatcher-ring item: a data batch, or a flush marker (control flows
  /// in-band through the same FIFO, so a marker's arrival proves every
  /// earlier batch was already re-routed).
  struct DispatchItem {
    RecordBatch batch;
    std::uint64_t flush_seq = 0;  ///< nonzero = flush marker, no data
  };

  struct Shard {
    explicit Shard(std::size_t ring_batches) : ring(ring_batches) {}
    SpscRing<RecordBatch> ring;
    std::unique_ptr<core::AlertJoiner> joiner;
    std::vector<std::unique_ptr<detectors::Detector>> pool;
    RecordBatch pending;  ///< dispatcher-side accumulation for this shard
    /// Records ever pushed into the ring (owning dispatcher only writes;
    /// read by drain() after the dispatcher acked a flush, so no torn
    /// reads matter — but keep it atomic for TSan-visible correctness).
    std::atomic<std::uint64_t> enqueued{0};
    /// Dispatcher-observed high water of enqueued - processed (relaxed:
    /// an instrumentation gauge, not a synchronization point).
    std::atomic<std::uint64_t> peak_backlog{0};
    std::mutex idle_mutex;
    std::condition_variable idle;
    /// Records evaluated by the worker. Atomic so drain()'s predicate can
    /// read it; the worker's empty idle_mutex critical section before
    /// notify pairs the update with the waiter's locked predicate check.
    std::atomic<std::uint64_t> processed{0};
  };

  struct Dispatcher {
    explicit Dispatcher(std::size_t ring_batches) : ring(ring_batches) {}
    SpscRing<DispatchItem> ring;
    std::size_t first_shard = 0;  ///< owned range [first_shard, last_shard)
    std::size_t last_shard = 0;
    RecordBatch pending;           ///< caller-side accumulation
    std::uint64_t flush_requested = 0;  ///< caller-side sequence
    std::mutex ack_mutex;
    std::condition_variable ack_cv;
    std::uint64_t flush_acked = 0;  ///< dispatcher-side (under ack_mutex)
    std::thread thread;
  };

  void dispatcher_loop(Dispatcher& d);
  void worker_loop(Shard& shard);
  /// Routes one record into shard s's pending batch (dispatcher thread).
  void route_to_shard(std::size_t s, const httplog::LogRecord& record);
  /// Pushes shard s's pending batch into its ring (dispatcher thread).
  void flush_shard_pending(Shard& shard);
  /// Accounts `batch` against the shard's backlog gauges and pushes it
  /// into the shard ring (dispatcher thread).
  void push_shard_batch(Shard& shard, RecordBatch&& batch);
  [[nodiscard]] std::size_t shard_of(const httplog::LogRecord& r) const;
  /// Flushes the caller-side pending batch of dispatcher d into its ring.
  void flush_caller_pending(Dispatcher& d);

  std::size_t batch_size_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  std::vector<std::uint32_t> shard_owner_;  ///< shard index -> dispatcher
  std::vector<std::thread> workers_;
  BatchPool pool_;
  std::uint64_t dispatched_ = 0;
  bool finished_ = false;
};

/// Convenience: run a whole scenario through a sharded pipeline.
[[nodiscard]] core::JointResults run_sharded(
    const traffic::ScenarioConfig& scenario_config, PoolFactory factory,
    std::size_t shards, std::size_t dispatchers = 1);

}  // namespace divscrape::pipeline
