// Sharded detection pipeline: hash-partitions the request stream across N
// worker threads, each owning a private detector-pool instance, and merges
// the per-shard JointResults at the end.
//
// Correctness argument (tested in tests/pipeline_test.cpp): every detector
// in this repository keys its state by client IP or (IP, UA), and
// Sentinel's widest coupling is the /24 subnet. Partitioning by the /24
// prefix therefore routes every record that could share detector state to
// the same shard, and each shard sees its sub-stream in global time order
// (the dispatcher is single-threaded). Hence the merged results are
// *identical* to a sequential run — the classic "partition by the state
// key" recipe for scaling stateful stream processors.
//
// Note the one caveat: JointResults' k-of-N adjudication and pairwise
// tables are per-record joins of the same pool, so they shard cleanly too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/detector.hpp"
#include "httplog/record.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::pipeline {

/// Creates one detector-pool instance per shard.
using PoolFactory =
    std::function<std::vector<std::unique_ptr<detectors::Detector>>()>;

class ShardedPipeline {
 public:
  /// `shards` >= 1. The factory is invoked `shards` times up front.
  ///
  /// `max_backlog` bounds each shard's unprocessed run-ahead (enqueued −
  /// processed, in records): a flush that would exceed it blocks the
  /// dispatcher until the worker catches up. Without the bound a dispatcher
  /// that outpaces its workers — easy once generation is faster than
  /// detection — buffers the whole stream in shard queues (hundreds of MB
  /// at paper scale). 0 disables backpressure.
  ShardedPipeline(PoolFactory factory, std::size_t shards,
                  std::size_t batch_size = 1024,
                  std::size_t max_backlog = 16 * 1024);
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Routes one record to its shard (by /24 prefix hash). Called from one
  /// dispatcher thread only.
  void process(const httplog::LogRecord& record);
  /// Move overload: the dispatcher→shard handoff steals the record's five
  /// strings instead of copying them — the preferred form for streaming
  /// sources that re-fill the record anyway.
  void process(httplog::LogRecord&& record);

  /// Barrier: flushes the dispatcher-side batches and blocks until every
  /// worker has *processed* everything enqueued so far. Checkpointing
  /// callers need this — a persisted offset must not cover records still
  /// sitting in a shard queue, or a crash loses them from the results
  /// while resume skips them. The pipeline stays usable afterwards.
  void drain();

  /// Flushes queues, joins workers, merges shard results. Must be called
  /// exactly once; process() is illegal afterwards.
  [[nodiscard]] core::JointResults finish();

  [[nodiscard]] std::size_t shards() const noexcept { return workers_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_;
  }

  /// Warm-checkpoint dump of every shard's joiner (detector states +
  /// per-shard results). Internally drain()s first — the workers are idle
  /// and their queues empty while the states are read, so the dump is a
  /// consistent cut of the whole pipeline. Returns false (nothing written)
  /// if a pool member doesn't support serialization.
  [[nodiscard]] bool save_state(util::StateWriter& w);
  /// Restores from save_state() output; call before any process(). The
  /// shard count must match the saved one (routing is count-dependent). On
  /// failure every shard is reset cold and false is returned.
  [[nodiscard]] bool load_state(util::StateReader& r);

 private:
  struct Shard {
    std::mutex mutex;
    std::condition_variable ready;
    std::condition_variable idle;  ///< signals processed catching enqueued
    std::vector<httplog::LogRecord> queue;  ///< swapped out by the worker
    bool done = false;
    std::uint64_t enqueued = 0;   ///< records ever handed to the queue
    std::uint64_t processed = 0;  ///< records the worker has evaluated
    std::unique_ptr<core::AlertJoiner> joiner;
    std::vector<std::unique_ptr<detectors::Detector>> pool;
    std::vector<httplog::LogRecord> pending;  ///< dispatcher-side batch
  };

  void worker_loop(Shard& shard);
  void flush(Shard& shard);
  /// Shard selection + batch bookkeeping shared by both process overloads.
  [[nodiscard]] Shard& route(const httplog::LogRecord& record);
  void after_enqueue(Shard& shard);

  std::size_t batch_size_;
  std::size_t max_backlog_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::uint64_t dispatched_ = 0;
  bool finished_ = false;
};

/// Convenience: run a whole scenario through a sharded pipeline.
[[nodiscard]] core::JointResults run_sharded(
    const traffic::ScenarioConfig& scenario_config, PoolFactory factory,
    std::size_t shards);

}  // namespace divscrape::pipeline
