// MultiTailer: multi-file live ingest — one LogTailer + LineDecoder per
// input log (one per vhost, as in the paper's deployment) merged into a
// single time-ordered record stream.
//
// ## Merge model
//
// Each file's records are decoded in file order and buffered in a min-heap
// keyed by (timestamp, file index, per-file sequence) — a deterministic
// total order whose tie-break is documented because it IS the contract: a
// batch replay of the per-file record streams stable-sorted by the same
// key is byte-identical to what the merge emits (the multi-file
// fault-equivalence tests assert exactly this).
//
// Emission uses a watermark: a buffered record is released once every file
// that has ever produced a record has progressed past it (per-file streams
// are time-ordered, the property real access logs have — each file's
// frontier is the key of its newest decoded record, and anything at or
// below the minimum frontier can no longer be preceded by unseen data).
// Two escape hatches keep one quiet file from stalling the world:
//
//   * a file that has produced nothing yet does not hold the watermark
//     back (its eventual first record may emit late — counted);
//   * the bounded reorder window: when the heap's oldest record is more
//     than `reorder_window_us` behind the newest frontier, it is emitted
//     anyway (forced_emits() counts these; any record subsequently
//     arriving below the emission front is emitted immediately and
//     counted by late_records()).
//
// Both hatches are keyed to *simulated* time carried by new records, so
// when every log goes quiet the heap's tail sits still; callers own the
// wall-clock idle policy — call flush() once poll() has returned 0 for a
// while (the CLI flushes after two empty polls).
//
// The sink is a plain callable: `ReplayEngine::process_record` for
// sequential consumption, or a lambda that stamps and forwards into a
// ShardedPipeline for multi-core consumption (records sharing detector
// state — same /24 — always land in one shard, so sharded results merge
// bit-identically; see sharded.hpp).
//
// ## Checkpoints
//
// checkpoint(i) delegates to file i's tailer; offsets only cover records
// already *decoded*, so records still buffered in the reorder heap are
// covered too (they were decoded). Persist checkpoints only at a
// quiescent point — after flush() — so a crash cannot lose heap-buffered
// records that the offsets already committed: the CLI flushes the heap
// before every checkpoint save for exactly this reason.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "httplog/record.hpp"
#include "httplog/timestamp.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/decoder.hpp"
#include "pipeline/record_batch.hpp"
#include "pipeline/tailer.hpp"

namespace divscrape::pipeline {

struct MultiTailConfig {
  TailConfig tail;  ///< per-file tailer knobs (chunk sizes, read seam)
  /// Bounded reorder window (simulated time): the heap's oldest record is
  /// force-emitted once it trails the newest file frontier by more than
  /// this. <= 0 disables forcing (exact merge, unbounded time skew).
  std::int64_t reorder_window_us = 2 * httplog::kMicrosPerSecond;
  /// Memory backstop: once this many records are buffered, the heap is
  /// drained down during decoding (watermark-released records first, then
  /// forced ones, counted in forced_emits). Keeps the initial catch-up
  /// over a large pre-existing backlog from materializing every record at
  /// once; in steady-state tailing the heap never gets near it. 0
  /// disables the cap.
  std::size_t max_buffered_records = 64 * 1024;
};

class MultiTailer {
 public:
  using Config = MultiTailConfig;
  /// Receives the merged, time-ordered record stream.
  using RecordSink = std::function<void(httplog::LogRecord&&)>;
  /// Receives the merged stream framed into RecordBatches (batch mode).
  using BatchSink = std::function<void(RecordBatch&&)>;

  /// One tailer per path; paths need not exist yet. The sink must outlive
  /// the MultiTailer.
  MultiTailer(std::vector<std::string> paths, RecordSink sink,
              Config config = Config());

  /// Batch-sink mode: merged records are copy-assigned into warm batch
  /// slots and handed downstream `batch_records` at a time — the framing
  /// a ShardedPipeline::process_batch consumer wants. Wire `pool` to the
  /// consumer's recycle side (e.g. &pipeline.batch_pool()) to close the
  /// arena loop. The emission *order* is identical to record-sink mode;
  /// only the handoff granularity changes.
  ///
  /// Checkpoint invariant: poll() and flush() hand off a partial batch
  /// before returning, so the batch never buffers records across calls —
  /// flush() remains the complete quiescent point for checkpointing.
  MultiTailer(std::vector<std::string> paths, BatchSink sink,
              std::size_t batch_records, Config config = Config(),
              BatchPool* pool = nullptr);

  MultiTailer(const MultiTailer&) = delete;
  MultiTailer& operator=(const MultiTailer&) = delete;

  /// Polls every file once (draining all available bytes, following
  /// rotations/truncations per LogTailer), then emits every merged record
  /// the watermark or reorder window releases. Returns bytes consumed
  /// across all files (0 = fully caught up).
  std::size_t poll();

  /// Emits everything still buffered, in merge-key order — the quiescent
  /// point for checkpointing and the end-of-run drain. Returns the number
  /// of records emitted.
  std::uint64_t flush();

  /// Resumes file `i` from its saved checkpoint (see LogTailer::resume).
  bool resume(std::size_t file, const Checkpoint& cp);
  /// File i's committed position + accounting. Only persist after flush()
  /// (see class comment).
  [[nodiscard]] Checkpoint checkpoint(std::size_t file) const;

  [[nodiscard]] std::size_t files() const noexcept { return inputs_.size(); }
  [[nodiscard]] const std::string& path(std::size_t file) const {
    return inputs_.at(file)->tailer.path();
  }

  /// Aggregate decode accounting across all files (wall_seconds unused).
  [[nodiscard]] ReplayStats stats() const;
  [[nodiscard]] std::size_t buffered_records() const noexcept {
    return heap_.size();
  }
  [[nodiscard]] std::uint64_t late_records() const noexcept {
    return late_records_;
  }
  [[nodiscard]] std::uint64_t forced_emits() const noexcept {
    return forced_emits_;
  }
  [[nodiscard]] std::uint64_t rotations() const noexcept;
  [[nodiscard]] std::uint64_t truncations() const noexcept;
  [[nodiscard]] std::uint64_t lost_incarnations() const noexcept;
  [[nodiscard]] std::uint64_t read_errors() const noexcept;

 private:
  /// Deterministic merge key; per-file streams are monotone in it.
  struct MergeKey {
    std::int64_t time_us = std::numeric_limits<std::int64_t>::min();
    std::uint32_t file = 0;
    std::uint64_t seq = 0;

    friend bool operator<(const MergeKey& a, const MergeKey& b) noexcept {
      if (a.time_us != b.time_us) return a.time_us < b.time_us;
      if (a.file != b.file) return a.file < b.file;
      return a.seq < b.seq;
    }
    friend bool operator<=(const MergeKey& a, const MergeKey& b) noexcept {
      return !(b < a);
    }
  };

  struct Pending {
    MergeKey key;
    httplog::LogRecord record;
  };
  /// std::push_heap builds a max-heap; invert for a min-heap on MergeKey.
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      return b.key < a.key;
    }
  };

  struct Input {
    Input(MultiTailer* owner, std::uint32_t index, std::string file_path,
          const TailConfig& tail_config);
    LineDecoder decoder;
    LogTailer tailer;
    std::uint64_t seq = 0;       ///< per-file arrival counter
    MergeKey frontier;           ///< key of the newest decoded record
    bool has_frontier = false;
  };

  void enqueue(std::uint32_t file, httplog::LogRecord&& record);
  void emit_ready();
  void emit_top();
  /// Hands the partial out-batch downstream (batch mode; no-op when empty).
  void flush_out_batch();

  Config config_;
  RecordSink sink_;
  BatchSink batch_sink_;            ///< non-null = batch mode
  std::size_t batch_records_ = 0;
  BatchPool* batch_pool_ = nullptr;
  RecordBatch out_batch_;  ///< in-progress batch (empty between calls)
  std::vector<std::unique_ptr<Input>> inputs_;
  std::vector<Pending> heap_;
  std::uint64_t late_records_ = 0;
  std::uint64_t forced_emits_ = 0;
  std::int64_t last_emitted_us_ = std::numeric_limits<std::int64_t>::min();
  bool emitted_any_ = false;
};

}  // namespace divscrape::pipeline
