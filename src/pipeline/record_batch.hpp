// RecordBatch: the unit of inter-layer record transfer — a contiguous,
// arena-style block of LogRecords that producers fill and consumers hand
// back for reuse.
//
// ## Why batches
//
// Moving records one at a time between layers (generator -> dispatcher ->
// shard queue) pays a per-record handoff cost that dominates once decode
// and detection are fast: a mutex op, a push_back, and usually five string
// allocations per record per hop. A batch amortizes every one of those
// over ~a thousand records, and the consumer walks a contiguous array in
// time order — the access pattern the detectors' one-entry client memos
// were built for.
//
// ## The arena contract
//
// A batch owns a vector of record *slots* plus a fill count. clear() only
// resets the count: the slots — and crucially the heap buffers of their
// std::string fields — stay allocated. Producers refill slots with
// copy-assignment (append_slot() = record), which std::string implements
// as a byte copy into the existing buffer, so a recycled batch ingests a
// whole new window of records with ZERO steady-state allocations. This is
// why producers should prefer copy-assign into a slot over move-assign:
// a move would steal the source's buffer and throw away the slot's warm
// one, reintroducing an allocation on the next reuse.
//
// Batches are move-only (they carry megabytes of string arena; an
// accidental copy would be a bug) and circulate through a BatchPool: the
// consumer recycles finished batches, the producer acquires warm ones.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "httplog/record.hpp"

namespace divscrape::pipeline {

class RecordBatch {
 public:
  RecordBatch() = default;
  RecordBatch(RecordBatch&&) noexcept = default;
  RecordBatch& operator=(RecordBatch&&) noexcept = default;
  RecordBatch(const RecordBatch&) = delete;
  RecordBatch& operator=(const RecordBatch&) = delete;

  /// Returns the next slot to fill, growing the arena if every slot is
  /// live. The slot holds whatever record last occupied it — callers
  /// overwrite every field (copy-assign a whole record, or parse into it:
  /// ClfParser::parse resets all fields including the sidecar).
  [[nodiscard]] httplog::LogRecord& append_slot() {
    if (size_ == slots_.size()) slots_.emplace_back();
    return slots_[size_++];
  }

  /// Un-appends the most recent slot (a parse that failed after claiming
  /// one). The slot's storage stays warm for the next append.
  void rollback_last() noexcept { --size_; }

  /// Forgets the records but keeps every slot's string storage — the
  /// recycle half of the arena contract.
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Slots ever allocated (the arena high-water mark).
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

  [[nodiscard]] httplog::LogRecord* begin() noexcept { return slots_.data(); }
  [[nodiscard]] httplog::LogRecord* end() noexcept {
    return slots_.data() + size_;
  }
  [[nodiscard]] const httplog::LogRecord* begin() const noexcept {
    return slots_.data();
  }
  [[nodiscard]] const httplog::LogRecord* end() const noexcept {
    return slots_.data() + size_;
  }
  [[nodiscard]] httplog::LogRecord& operator[](std::size_t i) noexcept {
    return slots_[i];
  }
  [[nodiscard]] const httplog::LogRecord& operator[](
      std::size_t i) const noexcept {
    return slots_[i];
  }

 private:
  std::vector<httplog::LogRecord> slots_;
  std::size_t size_ = 0;
};

/// Thread-safe free list closing the producer/consumer recycle loop. The
/// lock is taken once per *batch*, so its cost is amortized over ~a
/// thousand records; the population is bounded by the number of batches in
/// flight (ring capacities + per-stage pending batches), never by stream
/// length.
class BatchPool {
 public:
  /// A warm recycled batch if one is idle, else a fresh empty one.
  [[nodiscard]] RecordBatch acquire() {
    std::lock_guard lock(mutex_);
    if (free_.empty()) return RecordBatch{};
    RecordBatch batch = std::move(free_.back());
    free_.pop_back();
    return batch;
  }

  /// Clears the batch (keeping its arena) and shelves it for reuse.
  void recycle(RecordBatch&& batch) {
    batch.clear();
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(batch));
  }

  [[nodiscard]] std::size_t idle() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<RecordBatch> free_;
};

}  // namespace divscrape::pipeline
