// Resume checkpoints for live log tailing.
//
// A checkpoint records where ingest stopped: which file incarnation was
// being read (inode), the committed byte offset inside it, and the
// cumulative framing/parsing accounting at that point. It is serialized as
// a single flat JSON object so operators can inspect it with standard
// tools, and saved atomically (write temp + rename) so a crash mid-save
// leaves the previous checkpoint intact.
//
// ## Resume contract (at-least-once vs exactly-once)
//
// *Ingest is exactly-once.* The committed offset only ever points at a
// line boundary: bytes buffered as an unterminated partial line are NOT
// covered by the checkpoint, so resuming re-reads them from the file.
// Provided the file below `offset` was not rewritten (guarded by the inode
// check — a mismatch restarts ingest at offset 0 of the new incarnation),
// no record is ever re-ingested and none is skipped. The `lines`/`parsed`/
// `skipped` counters therefore continue exactly where they left off.
//
// *Detection is not checkpointed.* Detector state (reputation, sliding
// behavioural windows) and the accumulated JointResults restart cold on
// resume — serializing every detector's internal state is explicitly out
// of scope, matching how the paper's tools behaved across restarts.
// Verdicts on records near the resume point may consequently differ from
// an uninterrupted run (warm-up effects), even though the record stream
// itself is delivered exactly once. Callers who need joined results across
// restarts must persist `JointResults` flushes separately (the CLI's
// `tail --results` does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace divscrape::pipeline {

struct Checkpoint {
  /// Inode of the file `offset` refers to (0 = unknown/not yet observed).
  /// On resume, an inode mismatch means the file was rotated or replaced
  /// while we were down: the offset is discarded and ingest restarts at 0.
  std::uint64_t inode = 0;
  /// Committed byte offset: everything below it was framed into complete
  /// lines and ingested. Always on a line boundary.
  std::uint64_t offset = 0;

  /// Content signature of the incarnation `offset` refers to: FNV-1a hash
  /// of the file's first `sig_len` bytes (up to 64; 0 = not yet captured).
  /// Catches what the inode check cannot: the same inode truncated and
  /// regrown past `offset` while we were away — resume verifies the prefix
  /// still matches before honoring the offset.
  std::uint64_t sig_len = 0;
  std::uint64_t sig_hash = 0;

  // Cumulative accounting across the whole tailing session (survives
  // rotations, which reset `offset` but never these).
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t rotations = 0;
  std::uint64_t truncations = 0;
  /// Rotations where the pre-rotation partial line's stitched completion
  /// failed to parse — the observable signature of a middle incarnation
  /// lost to a double rotation between polls (see tailer.hpp).
  std::uint64_t lost_incarnations = 0;

  /// Serializes as one flat JSON object (schema divscrape.checkpoint.v2).
  [[nodiscard]] std::string to_json() const;
  /// Parses what to_json() produces; also accepts the v1 schema (the new
  /// fields default to 0, i.e. "unknown"). nullopt on malformed input or a
  /// schema mismatch.
  [[nodiscard]] static std::optional<Checkpoint> from_json(
      std::string_view json);

  /// Atomic save: writes `<path>.tmp` then renames over `path`.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Loads and parses `path`; nullopt when missing or malformed.
  [[nodiscard]] static std::optional<Checkpoint> load(const std::string& path);

  friend bool operator==(const Checkpoint& a, const Checkpoint& b) noexcept {
    return a.inode == b.inode && a.offset == b.offset &&
           a.sig_len == b.sig_len && a.sig_hash == b.sig_hash &&
           a.lines == b.lines && a.parsed == b.parsed &&
           a.skipped == b.skipped && a.rotations == b.rotations &&
           a.truncations == b.truncations &&
           a.lost_incarnations == b.lost_incarnations;
  }
};

}  // namespace divscrape::pipeline
