// Resume checkpoints for live log tailing.
//
// A checkpoint records where ingest stopped — which file incarnation was
// being read (inode), the committed byte offset inside it, the cumulative
// framing/parsing accounting — and, since schema v3, the *detection state*
// at that offset: every detector's per-client state, the stamping interner
// token tables, and the accumulated JointResults, serialized as one binary
// blob (util/state.hpp) and embedded base64 in the same flat JSON object.
// Offset and state commit in a single util::write_file_atomic call, so they
// can never be observed torn apart: a crash mid-save leaves the previous
// (offset, state) pair intact as a unit.
//
// ## Resume contract
//
// *Ingest is exactly-once.* The committed offset only ever points at a
// line boundary: bytes buffered as an unterminated partial line are NOT
// covered by the checkpoint, so resuming re-reads them from the file.
// Provided the file below `offset` was not rewritten (guarded by the inode
// check — a mismatch restarts ingest at offset 0 of the new incarnation),
// no record is ever re-ingested and none is skipped. The `lines`/`parsed`/
// `skipped` counters therefore continue exactly where they left off.
//
// *Detection is warm when the state blob restores.* A v3 checkpoint whose
// blob loads cleanly resumes every session window, reputation entry and
// result counter mid-flight: the resumed run's JointResults are
// byte-identical to an uninterrupted run (proven by
// tests/pipeline_warm_resume_test.cpp, at kill points including mid-torn-
// write and straddling a rotation).
//
// *What stays cold even on a warm resume:*
//   - the pacing anchor (a resumed live tail re-anchors wall-clock pacing
//     at its first record; irrelevant for as-fast-as-possible replay);
//   - recomputable memo caches (Sentinel's UA-classification caches) —
//     excluded from the blob by design, they repopulate on demand with
//     identical contents;
//   - everything, when the blob is absent, truncated, or carries a
//     mismatched component version or config fingerprint: the loader
//     rejects the blob, the caller counts a warning, and detection
//     restarts cold — the pre-v3 behaviour, never a crash.
//
// ## Compat matrix
//
//   schema                   | loads? | offset resume | detection resume
//   -------------------------|--------|---------------|------------------
//   divscrape.checkpoint.v1  |  yes   | yes (no sig)  | cold
//   divscrape.checkpoint.v2  |  yes   | yes           | cold
//   divscrape.checkpoint.v3  |  yes   | yes           | warm (cold on a
//                            |        |               | rejected blob)
//
// v1 lacked sig_len/sig_hash/lost_incarnations (default 0 = "unknown", so
// resume skips the prefix-signature check); v2 lacked the state blob.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace divscrape::pipeline {

struct Checkpoint {
  /// Inode of the file `offset` refers to (0 = unknown/not yet observed).
  /// On resume, an inode mismatch means the file was rotated or replaced
  /// while we were down: the offset is discarded and ingest restarts at 0.
  std::uint64_t inode = 0;
  /// Committed byte offset: everything below it was framed into complete
  /// lines and ingested. Always on a line boundary.
  std::uint64_t offset = 0;

  /// Content signature of the incarnation `offset` refers to: FNV-1a hash
  /// of the file's first `sig_len` bytes (up to 64; 0 = not yet captured).
  /// Catches what the inode check cannot: the same inode truncated and
  /// regrown past `offset` while we were away — resume verifies the prefix
  /// still matches before honoring the offset.
  std::uint64_t sig_len = 0;
  std::uint64_t sig_hash = 0;

  // Cumulative accounting across the whole tailing session (survives
  // rotations, which reset `offset` but never these).
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t rotations = 0;
  std::uint64_t truncations = 0;
  /// Rotations where the pre-rotation partial line's stitched completion
  /// failed to parse — the observable signature of a middle incarnation
  /// lost to a double rotation between polls (see tailer.hpp).
  std::uint64_t lost_incarnations = 0;

  /// Detection-state blob covering exactly the records below `offset`
  /// (raw bytes here; base64 in the JSON). Empty = none recorded: the
  /// resumer falls back to a cold detector start. Producers fill it via
  /// ReplayEngine::save_state / ShardedPipeline::save_state.
  std::string state;

  /// Serializes as one flat JSON object (schema divscrape.checkpoint.v3).
  [[nodiscard]] std::string to_json() const;
  /// Parses v3, v2 and v1 schemas (missing fields default to 0 / empty —
  /// see the compat matrix above). A v3 state blob that fails base64
  /// decoding is dropped (state empty, cold resume) rather than rejecting
  /// the whole checkpoint: a damaged blob must not lose the ingest offset.
  /// nullopt on malformed input or a schema mismatch.
  [[nodiscard]] static std::optional<Checkpoint> from_json(
      std::string_view json);

  /// Atomic save: writes `<path>.tmp` then renames over `path`.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Loads and parses `path`; nullopt when missing or malformed.
  [[nodiscard]] static std::optional<Checkpoint> load(const std::string& path);

  friend bool operator==(const Checkpoint& a, const Checkpoint& b) noexcept {
    return a.inode == b.inode && a.offset == b.offset &&
           a.sig_len == b.sig_len && a.sig_hash == b.sig_hash &&
           a.lines == b.lines && a.parsed == b.parsed &&
           a.skipped == b.skipped && a.rotations == b.rotations &&
           a.truncations == b.truncations &&
           a.lost_incarnations == b.lost_incarnations && a.state == b.state;
  }
};

/// Multi-file warm-resume snapshot (`tail --checkpoint-dir`): one atomic
/// file embedding the per-log ingest checkpoints AND the shared detection
/// state. The per-log checkpoint files cannot carry the state — detection
/// state spans all logs, and N+1 separate files cannot be committed
/// atomically together. Instead the commit sequence is: per-log files
/// first (operator-visible, cold-compatible), then this session file last.
/// A crash between the two leaves a session file that is merely *older*
/// but internally consistent: warm resume honors the offsets embedded
/// HERE, ignoring any newer per-log files, so state and offsets always
/// describe the same cut of the stream.
struct TailSessionState {
  /// (log path, its ingest checkpoint at the snapshot), in tail order.
  /// The embedded checkpoints carry no state blobs of their own.
  std::vector<std::pair<std::string, Checkpoint>> logs;
  /// Detection-state blob for the whole session (raw bytes), covering
  /// exactly the records below the embedded offsets.
  std::string state;

  /// Serializes as JSON (schema divscrape.tail_session.v3).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static std::optional<TailSessionState> from_json(
      std::string_view json);

  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<TailSessionState> load(
      const std::string& path);
};

}  // namespace divscrape::pipeline
