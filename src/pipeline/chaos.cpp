#include "pipeline/chaos.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "core/export.hpp"
#include "core/json.hpp"
#include "detectors/registry.hpp"
#include "httplog/clf.hpp"
#include "httplog/record.hpp"
#include "httplog/timestamp.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/decoder.hpp"
#include "pipeline/multi_tailer.hpp"
#include "pipeline/replay.hpp"
#include "stats/rng.hpp"
#include "traffic/stream_writer.hpp"
#include "util/atomic_file.hpp"
#include "util/rss.hpp"
#include "util/state.hpp"
#include "workload/engine.hpp"

namespace divscrape::pipeline {

namespace {

// ---------------------------------------------------------------------------
// Write seam. The soak is single-threaded on the generation/ingest side
// (the engine merge thread calls the sink, and every writer flush happens
// there), so plain file-scope state is enough to arm one fault at a time.
// ---------------------------------------------------------------------------

enum class SeamMode { kClean, kShortWrites, kFailNext };

SeamMode g_seam_mode = SeamMode::kClean;
int g_short_writes_left = 0;

/// StreamWriter write_fn: passes bytes to ::write(2) unless a fault is
/// armed — one ENOSPC failure (kFailNext, self-disarming), or a burst of
/// half-length short writes (kShortWrites) that the writer's retry loop
/// must stitch back together losslessly.
ssize_t chaos_write_fn(int fd, const void* buf, std::size_t count) {
  switch (g_seam_mode) {
    case SeamMode::kFailNext:
      g_seam_mode = SeamMode::kClean;
      errno = ENOSPC;
      return -1;
    case SeamMode::kShortWrites:
      if (g_short_writes_left > 0 && count > 1) {
        if (--g_short_writes_left == 0) g_seam_mode = SeamMode::kClean;
        return ::write(fd, buf, (count + 1) / 2);
      }
      g_seam_mode = SeamMode::kClean;
      break;
    case SeamMode::kClean:
      break;
  }
  return ::write(fd, buf, count);
}

bool make_dir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

/// Fault kinds cycle in this order over the scripted epochs, so any run
/// with >= 7k epochs exercises every kind k times and any run with >= 21
/// gets at least 3 plain kills and 3 persist-then-kills.
enum class FaultKind {
  kRotate,
  kTruncate,
  kTornWrite,
  kEnospc,
  kShortWriteBurst,
  kKill,
  kPersistThenKill,
};
constexpr int kFaultKinds = 7;

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRotate: return "rotate";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kTornWrite: return "torn-write";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kShortWriteBurst: return "short-write-burst";
    case FaultKind::kKill: return "kill";
    case FaultKind::kPersistThenKill: return "persist-then-kill";
  }
  return "?";
}

/// The ingest side as one unit of lifetime: what a SIGKILL takes down
/// together and a restart rebuilds together. Member order matters — the
/// tailer's sink references the engine, the engine's joiner references the
/// pool — so destruction (reverse order) tears the consumer down first.
struct LiveIngest {
  std::vector<std::unique_ptr<detectors::Detector>> pool;
  std::unique_ptr<ReplayEngine> engine;
  std::unique_ptr<MultiTailer> tailer;
};

/// Exact-merge ingest config: no reorder forcing, so emission order is a
/// pure function of the merge key and the live/batch equivalence argument
/// holds with no caveats.
MultiTailConfig exact_merge_config() {
  MultiTailConfig config;
  config.reorder_window_us = 0;
  return config;
}

/// Lazily decodes one shadow log into records, one bounded chunk at a
/// time — the per-file leg of the reference merge. (MultiTailer is the
/// wrong tool for a batch reference: its poll drains a whole file before
/// moving to the next, so a multi-file day trips the heap backstop and
/// force-emits file 0's records before file 1 has even been opened.)
class ShadowSource {
 public:
  explicit ShadowSource(const std::string& path)
      : in_(path, std::ios::binary), decoder_([this](httplog::LogRecord&& r) {
          queue_.push_back(std::move(r));
        }) {}

  bool next(httplog::LogRecord& out) {
    while (queue_.empty()) {
      if (done_) return false;
      char buf[256 * 1024];
      in_.read(buf, sizeof buf);
      const auto got = static_cast<std::size_t>(in_.gcount());
      if (got > 0) decoder_.feed(std::string_view(buf, got));
      if (got < sizeof buf) {
        (void)decoder_.finish_stream();
        done_ = true;
      }
    }
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

 private:
  std::ifstream in_;
  bool done_ = false;
  std::deque<httplog::LogRecord> queue_;  ///< before decoder_: its target
  LineDecoder decoder_;
};

std::unique_ptr<LiveIngest> make_live(const std::vector<std::string>& paths) {
  auto live = std::make_unique<LiveIngest>();
  live->pool = detectors::make_paper_pair();
  live->engine = std::make_unique<ReplayEngine>(live->pool);
  ReplayEngine* engine = live->engine.get();
  live->tailer = std::make_unique<MultiTailer>(
      paths,
      [engine](httplog::LogRecord&& record) {
        engine->process_record(std::move(record));
      },
      exact_merge_config());
  return live;
}

/// The whole closed loop as one object so the fault handlers can reach
/// every piece (writers, ingest, checkpoints, counters) without threading
/// a dozen parameters around.
class SoakRun {
 public:
  explicit SoakRun(const ChaosConfig& config) : config_(config) {}

  ChaosReport run();

 private:
  // -- setup ----------------------------------------------------------------
  bool prepare_dirs();
  void open_writers();
  void schedule_epochs();

  // -- the live side (mirrors `divscrape tail --checkpoint-dir`) -----------
  void boot_live(bool expect_resume);
  void persist();
  void drain_live();

  // -- per-record driver ----------------------------------------------------
  void on_record(httplog::LogRecord&& record);
  void on_second_boundary(std::int64_t sec);
  void fire_epoch(std::size_t epoch);
  void write_through(const httplog::LogRecord& record);
  void apply_torn_write(const httplog::LogRecord& record);
  void apply_enospc(const httplog::LogRecord& record);

  void finish(double wall_seconds);

  std::string checkpoint_path(std::size_t file) const {
    return config_.work_dir + "/cp/log" + std::to_string(file) + ".cp.json";
  }

  const ChaosConfig& config_;
  ChaosReport report_;

  std::vector<std::string> live_paths_;
  std::vector<std::unique_ptr<traffic::StreamWriter>> live_writers_;
  std::vector<std::unique_ptr<traffic::StreamWriter>> shadow_writers_;
  std::string session_path_;
  std::unique_ptr<LiveIngest> live_;

  /// (fire time, target vhost) per scripted epoch, in time order.
  struct Epoch {
    std::int64_t at_us = 0;
    std::uint32_t vhost = 0;
  };
  std::vector<Epoch> epochs_;
  std::size_t next_epoch_ = 0;
  std::uint64_t rotation_serial_ = 0;

  /// Record-targeted faults armed at a boundary, applied to the first
  /// record of the new second (= the epoch-crossing record).
  enum class Pending { kNone, kTorn, kEnospc };
  Pending pending_ = Pending::kNone;

  bool have_sec_ = false;
  std::int64_t current_sec_ = 0;
  std::int64_t last_poll_sec_ = 0;
  std::uint64_t last_persist_parsed_ = 0;
};

bool SoakRun::prepare_dirs() {
  return make_dir(config_.work_dir) && make_dir(config_.work_dir + "/shadow") &&
         make_dir(config_.work_dir + "/cp");
}

void SoakRun::open_writers() {
  traffic::StreamWriter::FaultPlan live_plan;
  live_plan.write_fn = chaos_write_fn;  // every live byte crosses the seam
  for (std::size_t v = 0; v < config_.spec.vhosts.size(); ++v) {
    const std::string base =
        "v" + std::to_string(v) + "_" + config_.spec.vhosts[v].name + ".log";
    live_paths_.push_back(config_.work_dir + "/" + base);
    live_writers_.push_back(std::make_unique<traffic::StreamWriter>(
        live_paths_.back(), live_plan, 256));
    shadow_writers_.push_back(std::make_unique<traffic::StreamWriter>(
        config_.work_dir + "/shadow/" + base,
        traffic::StreamWriter::FaultPlan(), 4096));
  }
  session_path_ = config_.work_dir + "/cp/tail_session.state.json";
}

void SoakRun::schedule_epochs() {
  // Evenly spread over the simulated duration, never at the very start or
  // end; target vhosts drawn deterministically from the chaos seed.
  stats::Rng rng(config_.chaos_seed);
  const std::int64_t start_us = config_.spec.start.micros();
  const std::int64_t span_us = config_.spec.end() - config_.spec.start;
  const int n = config_.fault_epochs;
  for (int e = 0; e < n; ++e) {
    Epoch epoch;
    epoch.at_us = start_us + span_us * (e + 1) / (n + 1);
    epoch.vhost = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config_.spec.vhosts.size()) - 1));
    epochs_.push_back(epoch);
  }
}

/// Builds (or rebuilds, after a kill) the ingest side, mirroring the CLI's
/// warm-resume discipline exactly: honor the offsets embedded in the
/// session file — never the per-log files, which may describe a newer cut
/// — and restore the detection blob only behind fully-honored offsets.
void SoakRun::boot_live(bool expect_resume) {
  live_ = make_live(live_paths_);
  bool warm = false;
  if (const auto session = TailSessionState::load(session_path_)) {
    const auto embedded = [&](const std::string& path) {
      for (const auto& [p, cp] : session->logs)
        if (p == path) return &cp;
      return static_cast<const Checkpoint*>(nullptr);
    };
    bool paths_match = session->logs.size() == live_->tailer->files();
    for (std::size_t i = 0; paths_match && i < live_->tailer->files(); ++i) {
      paths_match = embedded(live_->tailer->path(i)) != nullptr;
    }
    if (paths_match && !session->state.empty()) {
      bool all_honored = true;
      for (std::size_t i = 0; i < live_->tailer->files(); ++i) {
        all_honored &=
            live_->tailer->resume(i, *embedded(live_->tailer->path(i)));
      }
      if (all_honored) {
        util::StateReader r(session->state);
        const std::uint8_t mode = r.u8();
        warm = r.ok() && mode == 0 && live_->engine->load_state(r) &&
               r.at_end();
      }
    }
  }
  if (expect_resume) {
    if (warm) {
      ++report_.warm_resumes;
    } else {
      // A cold restart after a kill re-scores records the lost blob had
      // already counted — the failure mode the soak exists to catch.
      ++report_.cold_resumes;
      live_ = make_live(live_paths_);  // discard any half-restored state
    }
  }
}

/// Warm checkpoint at a quiescent cut: heap flushed first so the offsets
/// cover every record the blob scored, per-log files first, session file
/// last (older-but-consistent on a crash in between).
void SoakRun::persist() {
  (void)live_->tailer->flush();
  for (std::size_t i = 0; i < live_->tailer->files(); ++i) {
    if (!live_->tailer->checkpoint(i).save(checkpoint_path(i))) {
      std::fprintf(stderr, "soak: cannot save checkpoint %s\n",
                   checkpoint_path(i).c_str());
    }
  }
  util::StateWriter w;
  w.u8(0);  // blob mode byte: sequential engine
  if (live_->engine->save_state(w)) {
    TailSessionState session;
    for (std::size_t i = 0; i < live_->tailer->files(); ++i) {
      session.logs.emplace_back(live_->tailer->path(i),
                                live_->tailer->checkpoint(i));
    }
    session.state = w.take();
    if (!session.save(session_path_)) {
      std::fprintf(stderr, "soak: cannot save session state %s\n",
                   session_path_.c_str());
    }
  }
  ++report_.checkpoints_persisted;
  last_persist_parsed_ = live_->tailer->stats().parsed;
}

void SoakRun::drain_live() {
  while (live_->tailer->poll() > 0) {
  }
}

void SoakRun::on_record(httplog::LogRecord&& record) {
  const std::int64_t sec = record.time.micros() / httplog::kMicrosPerSecond;
  if (!have_sec_) {
    have_sec_ = true;
    current_sec_ = sec;
    last_poll_sec_ = sec;
  } else if (sec > current_sec_) {
    on_second_boundary(sec);
    current_sec_ = sec;
  }
  write_through(record);
  ++report_.records_generated;
}

/// Everything that may touch the files or the ingest side happens here, at
/// the instant the stream crosses into a new wire second — when every
/// on-disk byte is a complete time-prefix of the stream. That single
/// discipline is what makes live emission order provably equal to a batch
/// replay (see the header).
void SoakRun::on_second_boundary(std::int64_t sec) {
  for (auto& writer : live_writers_) writer->flush();
  for (auto& writer : shadow_writers_) writer->flush();
  if (next_epoch_ < epochs_.size() && pending_ == Pending::kNone &&
      epochs_[next_epoch_].at_us <= sec * httplog::kMicrosPerSecond) {
    fire_epoch(next_epoch_++);
  }
  if (sec - last_poll_sec_ >= config_.poll_interval_s) {
    (void)live_->tailer->poll();
    last_poll_sec_ = sec;
    const auto rss = static_cast<std::uint64_t>(util::current_rss_kb());
    if (rss > report_.rss_peak_kb) report_.rss_peak_kb = rss;
  }
  if (live_->tailer->stats().parsed - last_persist_parsed_ >=
      config_.persist_every_records) {
    persist();
  }
}

void SoakRun::fire_epoch(std::size_t epoch) {
  const auto kind = static_cast<FaultKind>(epoch % kFaultKinds);
  const std::uint32_t v = epochs_[epoch].vhost;
  if (config_.verbose) {
    std::fprintf(stderr, "soak: epoch %zu at %s: %s (vhost %u)\n", epoch,
                 httplog::Timestamp(epochs_[epoch].at_us).to_iso8601().c_str(),
                 to_string(kind), v);
  }
  ++report_.faults;
  switch (kind) {
    case FaultKind::kRotate:
      // Drain first (lossless single rotation), rotate, let the tailer
      // observe the new incarnation, then re-anchor the checkpoints on it:
      // a kill at any later instant resumes against the inode the offsets
      // actually describe. (Real deployments do the same via a logrotate
      // postrotate hook.)
      drain_live();
      live_writers_[v]->rotate(live_paths_[v] + ".rot" +
                               std::to_string(++rotation_serial_));
      drain_live();
      persist();
      ++report_.rotations;
      break;
    case FaultKind::kTruncate:
      drain_live();
      live_writers_[v]->truncate_restart();
      drain_live();  // tailer sees size < offset, restarts at 0
      persist();
      ++report_.truncations;
      break;
    case FaultKind::kTornWrite:
      pending_ = Pending::kTorn;
      break;
    case FaultKind::kEnospc:
      pending_ = Pending::kEnospc;
      break;
    case FaultKind::kShortWriteBurst:
      g_seam_mode = SeamMode::kShortWrites;
      g_short_writes_left = 32;
      ++report_.short_write_bursts;
      break;
    case FaultKind::kKill:
      // SIGKILL equivalent: the ingest side vanishes mid-whatever, losing
      // everything since the last persisted cut — progress, never
      // correctness (resume rolls offsets and state back together).
      live_.reset();
      boot_live(/*expect_resume=*/true);
      ++report_.kills;
      break;
    case FaultKind::kPersistThenKill:
      persist();
      live_.reset();
      boot_live(/*expect_resume=*/true);
      ++report_.kills;
      break;
  }
}

void SoakRun::write_through(const httplog::LogRecord& record) {
  const std::size_t v =
      record.vhost < live_writers_.size() ? record.vhost : 0;
  if (pending_ == Pending::kTorn) {
    pending_ = Pending::kNone;
    apply_torn_write(record);
    shadow_writers_[v]->write(record);
    return;
  }
  if (pending_ == Pending::kEnospc) {
    pending_ = Pending::kNone;
    apply_enospc(record);
    return;  // the line never reached the log, so the shadow skips it too
  }
  live_writers_[v]->write(record);
  shadow_writers_[v]->write(record);
}

/// A write() that raced the reader: the line lands in two pieces with an
/// ingest poll between them. The tailer must hold the undecoded partial
/// (this record is the first of its wire second, so nothing can be emitted
/// out of order while it waits for its tail).
void SoakRun::apply_torn_write(const httplog::LogRecord& record) {
  const std::size_t v =
      record.vhost < live_writers_.size() ? record.vhost : 0;
  const std::string wire = httplog::format_clf(record) + "\n";
  const std::size_t cut = wire.size() / 2;
  live_writers_[v]->write_bytes(std::string_view(wire).substr(0, cut));
  (void)live_->tailer->poll();
  live_writers_[v]->write_bytes(std::string_view(wire).substr(cut));
  ++report_.torn_writes;
}

/// One whole line lost at the writer (disk full for exactly one write):
/// the queue is clean, so the armed failure takes down this record's line
/// and nothing else. By design the record never existed for any reader —
/// it is excluded from the shadow and counted as a scripted drop.
void SoakRun::apply_enospc(const httplog::LogRecord& record) {
  const std::size_t v =
      record.vhost < live_writers_.size() ? record.vhost : 0;
  live_writers_[v]->write(record);
  g_seam_mode = SeamMode::kFailNext;
  live_writers_[v]->flush();
  g_seam_mode = SeamMode::kClean;  // in case the flush never hit the seam
  ++report_.enospc_faults;
  ++report_.records_dropped;
}

/// End of day: drain, final checkpoint, then judge the live pipeline
/// against a one-shot batch replay of the fault-free shadows.
void SoakRun::finish(double wall_seconds) {
  for (auto& writer : live_writers_) writer->flush();
  for (auto& writer : shadow_writers_) writer->flush();
  drain_live();
  persist();

  report_.live_records = live_->engine->results().total_requests();
  report_.live_results_json = core::to_json(live_->engine->results());
  const std::uint64_t live_late = live_->tailer->late_records();
  const std::uint64_t live_forced = live_->tailer->forced_emits();
  live_.reset();  // release detector state before the reference doubles it

  // Reference: explicit k-way merge of the shadows by the same key the
  // live tailer uses — (time, file index, per-file order) — into a fresh
  // engine, in bounded memory (one head record + one decode chunk per
  // file). Ground truth with no watermark machinery in the loop.
  const auto ref_pool = detectors::make_paper_pair();
  ReplayEngine ref_engine(ref_pool);
  std::vector<std::unique_ptr<ShadowSource>> sources;
  std::vector<std::optional<httplog::LogRecord>> heads;
  for (const auto& writer : shadow_writers_) {
    sources.push_back(std::make_unique<ShadowSource>(writer->path()));
    httplog::LogRecord head;
    heads.push_back(sources.back()->next(head)
                        ? std::optional<httplog::LogRecord>(std::move(head))
                        : std::nullopt);
  }
  for (;;) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(heads.size()); ++i) {
      if (heads[i] &&
          (best < 0 || heads[i]->time.micros() < heads[best]->time.micros())) {
        best = i;  // strict < keeps the lowest file index on time ties
      }
    }
    if (best < 0) break;
    ref_engine.process_record(std::move(*heads[best]));
    heads[best].reset();
    httplog::LogRecord head;
    if (sources[best]->next(head)) heads[best] = std::move(head);
  }
  report_.reference_records = ref_engine.results().total_requests();
  const std::string reference_json = core::to_json(ref_engine.results());

  report_.results_identical = report_.live_results_json == reference_json;
  if (!report_.results_identical) {
    // Leave both documents behind for diffing — a divergence with no
    // evidence trail is undebuggable after the fact.
    (void)util::write_file_atomic(config_.work_dir + "/live_results.json",
                                  report_.live_results_json + "\n");
    (void)util::write_file_atomic(config_.work_dir + "/reference_results.json",
                                  reference_json + "\n");
  }
  if (config_.verbose) {
    std::fprintf(stderr, "soak: live merge hatches: %llu late, %llu forced\n",
                 static_cast<unsigned long long>(live_late),
                 static_cast<unsigned long long>(live_forced));
  }
  if (report_.reference_records > report_.live_records) {
    report_.lost_records = report_.reference_records - report_.live_records;
  } else {
    report_.duplicate_records =
        report_.live_records - report_.reference_records;
  }
  report_.rss_within_limit =
      config_.rss_limit_mb <= 0.0 ||
      static_cast<double>(report_.rss_peak_kb) <= config_.rss_limit_mb * 1024.0;
  report_.wall_seconds = wall_seconds;
  report_.records_per_s =
      wall_seconds > 0.0
          ? static_cast<double>(report_.records_generated) / wall_seconds
          : 0.0;
  report_.passed = report_.results_identical && report_.lost_records == 0 &&
                   report_.duplicate_records == 0 &&
                   report_.cold_resumes == 0 &&
                   report_.warm_resumes == report_.kills &&
                   report_.rss_within_limit;
}

ChaosReport SoakRun::run() {
  if (!prepare_dirs()) {
    std::fprintf(stderr, "soak: cannot create work dir %s\n",
                 config_.work_dir.c_str());
    return report_;
  }
  open_writers();
  schedule_epochs();
  boot_live(/*expect_resume=*/false);
  // Establish a resumable cut immediately: a kill scripted before the
  // first cadence-driven persist still finds a (trivial) warm snapshot.
  persist();

  workload::EngineConfig engine_config;
  engine_config.gen_threads = config_.gen_threads;
  engine_config.partitions = config_.partitions;
  engine_config.lazy_actors = config_.lazy_actors;
  workload::WorkloadEngine engine(config_.spec, engine_config);

  const auto t0 = std::chrono::steady_clock::now();
  engine.run([this](httplog::LogRecord&& record) {
    on_record(std::move(record));
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  finish(wall);
  return report_;
}

}  // namespace

ChaosReport run_chaos_soak(const ChaosConfig& config) {
  SoakRun soak(config);
  return soak.run();
}

bool write_chaos_bench(const ChaosConfig& config, const ChaosReport& report,
                       const std::string& path) {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value("divscrape.bench_soak.v1");

  json.key("config");
  json.begin_object();
  json.key("scenario").value(config.spec.name);
  json.key("scale").value(config.spec.scale);
  json.key("duration_days").value(config.spec.duration_days);
  json.key("vhosts").value(static_cast<std::uint64_t>(config.spec.vhosts.size()));
  json.key("chaos_seed").value(config.chaos_seed);
  json.key("fault_epochs").value(static_cast<std::int64_t>(config.fault_epochs));
  json.key("gen_threads").value(static_cast<std::uint64_t>(config.gen_threads));
  json.key("partitions").value(static_cast<std::uint64_t>(config.partitions));
  json.key("lazy_actors").value(config.lazy_actors);
  json.key("poll_interval_s").value(config.poll_interval_s);
  json.key("persist_every_records").value(config.persist_every_records);
  json.key("rss_limit_mb").value(config.rss_limit_mb);
  json.end_object();

  json.key("report");
  json.begin_object();
  json.key("records_generated").value(report.records_generated);
  json.key("records_dropped").value(report.records_dropped);
  json.key("live_records").value(report.live_records);
  json.key("reference_records").value(report.reference_records);
  json.key("faults").value(report.faults);
  json.key("rotations").value(report.rotations);
  json.key("truncations").value(report.truncations);
  json.key("torn_writes").value(report.torn_writes);
  json.key("enospc_faults").value(report.enospc_faults);
  json.key("short_write_bursts").value(report.short_write_bursts);
  json.key("kills").value(report.kills);
  json.key("warm_resumes").value(report.warm_resumes);
  json.key("cold_resumes").value(report.cold_resumes);
  json.key("checkpoints_persisted").value(report.checkpoints_persisted);
  json.key("lost_records").value(report.lost_records);
  json.key("duplicate_records").value(report.duplicate_records);
  json.key("results_identical").value(report.results_identical);
  json.key("rss_peak_kb").value(report.rss_peak_kb);
  json.key("rss_within_limit").value(report.rss_within_limit);
  json.key("wall_seconds").value(report.wall_seconds);
  json.key("records_per_s").value(report.records_per_s);
  json.key("passed").value(report.passed);
  json.end_object();

  json.end_object();
  return util::write_file_atomic(path, os.str() + "\n");
}

}  // namespace divscrape::pipeline
