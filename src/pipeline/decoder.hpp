// LineDecoder: the parse half of the ingest path, split out of ReplayEngine
// so byte producers (LogTailer) and record consumers (ReplayEngine's
// detector pool, MultiTailer's time-ordered merge, ShardedPipeline) can be
// composed freely. One decoder = one byte stream: it owns the LineFramer,
// the CLF parse, and the lines/parsed/skipped accounting, and hands every
// successfully parsed record to a caller-supplied callback. It does NOT
// stamp ua_token, pace, or touch detectors — that is the dispatch stage's
// job (ReplayEngine::process_record, or a sharded sink's interner).
//
// The decoder also owns the one piece of cross-layer bookkeeping a tailer
// cannot do alone: incarnation-boundary tracking. When a rotation boundary
// falls inside the buffered partial line, the tailer calls
// mark_incarnation_boundary(); if the line that partial eventually
// completes into fails to parse, the stitch was bogus — the partial's real
// continuation lived in a log incarnation we never saw (the double-
// rotation-between-polls window) — and boundary_skips() counts it.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "httplog/clf.hpp"
#include "httplog/framing.hpp"
#include "httplog/record.hpp"
#include "pipeline/record_batch.hpp"

namespace divscrape::pipeline {

/// Cumulative framing/parsing accounting for one ingest stream.
struct ReplayStats {
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
  double wall_seconds = 0.0;
};

class LineDecoder {
 public:
  using RecordFn = std::function<void(httplog::LogRecord&&)>;
  using BatchFn = std::function<void(RecordBatch&&)>;

  /// Every successfully parsed record is passed to `on_record` (moved).
  explicit LineDecoder(RecordFn on_record);

  /// Batch mode: lines are parsed straight into RecordBatch slots (no
  /// per-record callback, no scratch move) and handed to `on_batch` every
  /// `batch_records` records. When `pool` is given, fresh batches are
  /// acquired from it — wire it to the consumer's recycle side so slot
  /// string storage stays warm.
  ///
  /// Checkpoint invariant: the in-progress batch never outlives the call
  /// that filled it — feed() and finish_stream() flush a partial batch
  /// before returning. A tail checkpoint taken between feed() calls
  /// therefore covers exactly the records already handed downstream; no
  /// record hides in the decoder.
  LineDecoder(BatchFn on_batch, std::size_t batch_records,
              BatchPool* pool = nullptr);

  LineDecoder(const LineDecoder&) = delete;
  LineDecoder& operator=(const LineDecoder&) = delete;

  /// Frames the chunk into lines and decodes every line completed so far;
  /// the trailing partial is held until its newline arrives. Safe to call
  /// with chunks split at any byte boundary. Returns records parsed from
  /// this chunk.
  std::uint64_t feed(std::string_view chunk);

  /// Declares end-of-stream: an unterminated trailing partial line (if
  /// any) is decoded as a complete line. Returns 1 if a line was flushed.
  std::uint64_t finish_stream();

  /// True while an unterminated partial line is buffered.
  [[nodiscard]] bool has_partial_line() const noexcept {
    return framer_.has_partial();
  }
  /// Size of that partial in bytes; a resume checkpoint must subtract it
  /// from the fed-byte count (those bytes were accepted, not ingested).
  [[nodiscard]] std::size_t partial_bytes() const noexcept {
    return framer_.buffered();
  }
  /// Drops the buffered partial without decoding it (file truncated out
  /// from under the producer). Also clears a pending boundary mark.
  void drop_partial_line() {
    framer_.reset();
    partial_spans_boundary_ = false;
  }

  /// The producer observed an incarnation boundary (rotation) while a
  /// partial line was buffered: the next completed line is a stitch of
  /// bytes from two file incarnations. If it fails to parse, the stitch
  /// was presumably wrong and boundary_skips() is bumped.
  void mark_incarnation_boundary() noexcept {
    if (framer_.has_partial()) partial_spans_boundary_ = true;
  }
  /// Boundary-spanning stitched lines that failed to parse — the observable
  /// signature of a lost middle incarnation (double rotation between
  /// polls). Heuristic: a legitimately garbage line torn across a single
  /// rotation also counts; a lost incarnation whose stitch happens to
  /// parse does not.
  [[nodiscard]] std::uint64_t boundary_skips() const noexcept {
    return boundary_skips_;
  }

  /// Cumulative accounting across every feed()/finish_stream() call.
  /// wall_seconds is owned by batch callers (see add_wall_seconds).
  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }
  /// Batch replay() folds its wall-clock time in here.
  void add_wall_seconds(double seconds) noexcept {
    stats_.wall_seconds += seconds;
  }

 private:
  void decode_line(std::string_view line);
  /// Hands the in-progress batch downstream (batch mode only; no-op when
  /// empty) and starts a fresh one from the pool.
  void flush_batch();

  httplog::LineFramer framer_;
  httplog::ClfParser parser_;  ///< streaming parser: timestamp memo stays warm
  /// Parse target handed to on_record_ by rvalue. Consumers that only read
  /// (ReplayEngine::process_record) leave the strings' capacity behind for
  /// the next line; consumers that move (sharded/merge sinks) simply pay the
  /// allocation they always paid.
  httplog::LogRecord scratch_;
  RecordFn on_record_;
  BatchFn on_batch_;             ///< non-null = batch mode
  std::size_t batch_records_ = 0;
  BatchPool* pool_ = nullptr;    ///< optional recycle source for batch mode
  RecordBatch batch_;            ///< in-progress batch (empty between feeds)
  ReplayStats stats_;
  bool partial_spans_boundary_ = false;
  std::uint64_t boundary_skips_ = 0;
};

}  // namespace divscrape::pipeline
