#include "pipeline/alert_log.hpp"

#include <charconv>

#include "core/json.hpp"
#include "httplog/ip.hpp"
#include "httplog/timestamp.hpp"

namespace divscrape::pipeline {

bool AlertLogWriter::write(std::string_view detector,
                           const httplog::LogRecord& record,
                           const detectors::Verdict& verdict) {
  if (!verdict.alert) return false;
  core::JsonWriter json(*os_);
  json.begin_object();
  json.key("detector").value(detector);
  json.key("ip").value(record.ip.to_string());
  json.key("time").value(record.time.to_iso8601());
  json.key("time_us").value(record.time.micros());
  json.key("target").value(record.target);
  json.key("status").value(record.status);
  json.key("score").value(verdict.score);
  json.key("reason").value(to_string(verdict.reason));
  json.end_object();
  *os_ << '\n';
  ++written_;
  return true;
}

namespace {

// Finds `"key":` in a flat JSON object and returns the raw value token
// (string contents without quotes, or the bare number text).
std::optional<std::string> find_member(std::string_view line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    ++i;
    std::string out;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        const char escaped = line[i + 1];
        switch (escaped) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += escaped;
        }
        i += 2;
      } else {
        out += line[i++];
      }
    }
    if (i >= line.size()) return std::nullopt;  // unterminated
    return out;
  }
  // Bare token (number / true / false / null).
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return std::string(line.substr(i, end - i));
}

}  // namespace

std::optional<AlertEvent> parse_alert_line(std::string_view line) {
  if (line.empty() || line.front() != '{') return std::nullopt;
  AlertEvent event;

  const auto detector = find_member(line, "detector");
  const auto ip_text = find_member(line, "ip");
  const auto time_us = find_member(line, "time_us");
  const auto target = find_member(line, "target");
  const auto status = find_member(line, "status");
  const auto score = find_member(line, "score");
  const auto reason = find_member(line, "reason");
  if (!detector || !ip_text || !time_us || !target || !status || !score ||
      !reason)
    return std::nullopt;

  const auto ip = httplog::parse_ipv4(*ip_text);
  if (!ip) return std::nullopt;
  event.ip = *ip;
  event.detector = *detector;
  event.target = *target;
  event.reason = *reason;

  std::int64_t micros = 0;
  {
    const auto* begin = time_us->data();
    const auto* end = begin + time_us->size();
    if (std::from_chars(begin, end, micros).ec != std::errc{})
      return std::nullopt;
  }
  event.time = httplog::Timestamp(micros);
  {
    const auto* begin = status->data();
    const auto* end = begin + status->size();
    if (std::from_chars(begin, end, event.status).ec != std::errc{})
      return std::nullopt;
  }
  event.score = std::atof(score->c_str());
  return event;
}

bool AlertLogReader::next(AlertEvent& out) {
  while (std::getline(*in_, line_)) {
    ++lines_;
    auto event = parse_alert_line(line_);
    if (event) {
      out = std::move(*event);
      return true;
    }
    ++skipped_;
  }
  return false;
}

}  // namespace divscrape::pipeline
