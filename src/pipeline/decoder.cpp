#include "pipeline/decoder.hpp"

#include <utility>

#include "httplog/clf.hpp"

namespace divscrape::pipeline {

LineDecoder::LineDecoder(RecordFn on_record)
    : on_record_(std::move(on_record)) {}

void LineDecoder::decode_line(std::string_view line) {
  ++stats_.lines;
  const bool spanned_boundary = partial_spans_boundary_;
  partial_spans_boundary_ = false;
  if (parser_.parse(line, scratch_) != httplog::ClfError::kNone) {
    ++stats_.skipped;
    if (spanned_boundary) ++boundary_skips_;
    return;
  }
  ++stats_.parsed;
  on_record_(std::move(scratch_));
}

std::uint64_t LineDecoder::feed(std::string_view chunk) {
  const std::uint64_t parsed_before = stats_.parsed;
  framer_.feed(chunk);
  std::string_view line;
  while (framer_.next(line)) decode_line(line);
  return stats_.parsed - parsed_before;
}

std::uint64_t LineDecoder::finish_stream() {
  std::string_view line;
  if (!framer_.take_partial(line)) return 0;
  decode_line(line);
  return 1;
}

}  // namespace divscrape::pipeline
