#include "pipeline/decoder.hpp"

#include <utility>

#include "httplog/clf.hpp"

namespace divscrape::pipeline {

LineDecoder::LineDecoder(RecordFn on_record)
    : on_record_(std::move(on_record)) {}

LineDecoder::LineDecoder(BatchFn on_batch, std::size_t batch_records,
                         BatchPool* pool)
    : on_batch_(std::move(on_batch)),
      batch_records_(batch_records == 0 ? 1 : batch_records),
      pool_(pool) {}

void LineDecoder::flush_batch() {
  if (batch_.empty()) return;
  RecordBatch full = std::move(batch_);
  batch_ = pool_ ? pool_->acquire() : RecordBatch{};
  on_batch_(std::move(full));
}

void LineDecoder::decode_line(std::string_view line) {
  ++stats_.lines;
  const bool spanned_boundary = partial_spans_boundary_;
  partial_spans_boundary_ = false;
  if (on_batch_) {
    // Parse straight into the batch slot: parse() overwrites every field,
    // and the slot's warm string buffers absorb the copy (arena contract).
    httplog::LogRecord& slot = batch_.append_slot();
    if (parser_.parse(line, slot) != httplog::ClfError::kNone) {
      batch_.rollback_last();
      ++stats_.skipped;
      if (spanned_boundary) ++boundary_skips_;
      return;
    }
    ++stats_.parsed;
    if (batch_.size() >= batch_records_) flush_batch();
    return;
  }
  if (parser_.parse(line, scratch_) != httplog::ClfError::kNone) {
    ++stats_.skipped;
    if (spanned_boundary) ++boundary_skips_;
    return;
  }
  ++stats_.parsed;
  on_record_(std::move(scratch_));
}

std::uint64_t LineDecoder::feed(std::string_view chunk) {
  const std::uint64_t parsed_before = stats_.parsed;
  framer_.feed(chunk);
  std::string_view line;
  while (framer_.next(line)) decode_line(line);
  // Batch-mode invariant: nothing parsed in this call may outlive it
  // undelivered — a checkpoint between feeds must cover these records.
  if (on_batch_) flush_batch();
  return stats_.parsed - parsed_before;
}

std::uint64_t LineDecoder::finish_stream() {
  std::string_view line;
  if (!framer_.take_partial(line)) return 0;
  decode_line(line);
  if (on_batch_) flush_batch();
  return 1;
}

}  // namespace divscrape::pipeline
