// LogTailer: follows a growing CLF file the way the paper's tools followed
// live Apache access logs — poll-based (no inotify dependency), tolerant of
// the three things production log files actually do:
//
//   * grow by arbitrary, torn increments (a write() can land mid-record,
//     even mid-CRLF) — handled by feeding raw bytes to the engine's
//     LineFramer, which holds partials until the newline arrives;
//   * rotate (rename + recreate): detected when the path's inode no longer
//     matches the open descriptor. The old file is drained to EOF first,
//     then ingest continues at offset 0 of the new incarnation; a partial
//     line torn across the rotation boundary is carried over in memory, so
//     the ingested byte stream equals the concatenation of the files.
//     Caveat (shared with tail -F): only the incarnation the descriptor
//     holds and the one the path names are reachable — if TWO rotations
//     complete between polls, the middle incarnation is never opened and
//     its records are lost. Poll faster than the rotation cadence;
//   * truncate-and-restart (`> access.log`): detected when the descriptor's
//     size drops below the consumed offset. The buffered partial (whose
//     bytes no longer exist) is dropped and ingest restarts at offset 0.
//     Inherent limit of size-based detection (shared with tail -F): if the
//     restarted file regrows PAST the consumed offset between two polls,
//     the truncation is invisible and the bytes below the old offset are
//     skipped. Poll faster than the log can regrow, or rotate instead of
//     truncating (rotation is detected by inode and has no such window).
//
// poll() is synchronous and drains everything currently available; callers
// own the wait loop (the CLI sleeps between polls, tests interleave polls
// with writer faults deterministically). checkpoint()/resume() provide the
// kill-and-continue story documented in checkpoint.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "pipeline/checkpoint.hpp"
#include "pipeline/replay.hpp"

namespace divscrape::pipeline {

struct TailConfig {
  std::size_t chunk_bytes = 64 * 1024;  ///< read() granularity
};

class LogTailer {
 public:
  using Config = TailConfig;

  /// The engine must outlive the tailer. The file may not exist yet;
  /// poll() keeps trying to open it.
  LogTailer(std::string path, ReplayEngine& engine, Config config = Config());
  ~LogTailer();

  LogTailer(const LogTailer&) = delete;
  LogTailer& operator=(const LogTailer&) = delete;

  /// Resumes from a saved checkpoint; call before the first poll(). Seeks
  /// to the committed offset when the file's inode still matches the
  /// checkpoint; otherwise (rotated/replaced while down) starts from
  /// offset 0 of the current incarnation. Cumulative accounting is adopted
  /// either way. Returns whether the offset was honored.
  bool resume(const Checkpoint& cp);

  /// Drains all bytes currently available, following rotations and
  /// truncations as described above. Returns the number of bytes consumed
  /// (0 = caught up / file absent).
  std::size_t poll();

  /// Committed position + cumulative accounting, safe to persist. The
  /// offset excludes any buffered partial line (those bytes are re-read on
  /// resume). Caveat: while a partial line spans a rotation boundary the
  /// carried-over bytes exist only in memory; a checkpoint taken in that
  /// window resumes at offset 0 of the new file and that one torn record
  /// is lost.
  [[nodiscard]] Checkpoint checkpoint() const;

  [[nodiscard]] std::uint64_t rotations() const noexcept {
    return rotations_;
  }
  [[nodiscard]] std::uint64_t truncations() const noexcept {
    return truncations_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  bool open_current();      ///< (re)opens path_, captures its inode
  std::size_t drain_fd();   ///< reads the open descriptor to EOF

  std::string path_;
  ReplayEngine* engine_;
  Config config_;
  int fd_ = -1;
  std::uint64_t inode_ = 0;
  std::uint64_t consumed_ = 0;  ///< bytes fed from the current incarnation
  std::uint64_t rotations_ = 0;
  std::uint64_t truncations_ = 0;
  ReplayStats engine_base_;  ///< engine stats at construction/adoption
  Checkpoint base_;          ///< accounting carried in via resume()
};

}  // namespace divscrape::pipeline
