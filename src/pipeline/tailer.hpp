// LogTailer: follows a growing CLF file the way the paper's tools followed
// live Apache access logs — poll-based (no inotify dependency), tolerant of
// the things production log files actually do:
//
//   * grow by arbitrary, torn increments (a write() can land mid-record,
//     even mid-CRLF) — handled by feeding raw bytes to a LineDecoder,
//     whose LineFramer holds partials until the newline arrives;
//   * rotate (rename + recreate): detected when the path's inode no longer
//     matches the open descriptor. The old file is drained to EOF first,
//     then ingest continues at offset 0 of the new incarnation; a partial
//     line torn across the rotation boundary is carried over in memory, so
//     the ingested byte stream equals the concatenation of the files.
//     If TWO rotations complete between polls, the middle incarnation is
//     never reachable (only the fd's file and the path's file exist for
//     us) and its bytes are lost — but the loss is *detected*: when the
//     pre-rotation partial's stitched completion fails to parse, the
//     partial's real continuation lived in a file we never saw, and
//     lost_incarnations() counts it (heuristic; see decoder.hpp);
//   * truncate-and-restart (`> access.log`): detected when the
//     descriptor's size drops below the consumed offset, OR — closing the
//     classic `tail -F` blind window — when the incarnation's first-bytes
//     signature (FNV-1a of the first up-to-64 bytes, captured on first
//     contact and extended as the file grows) no longer matches: a file
//     truncated and regrown PAST the consumed offset between polls is
//     caught by the prefix change even though the size check is blind.
//     The buffered partial (whose bytes no longer exist) is dropped and
//     ingest restarts at offset 0. Residual window: a replacement whose
//     first min(64, old size) bytes are byte-identical to the old
//     incarnation's is indistinguishable from an append;
//   * read() faults: EINTR is retried transparently; a real error stops
//     the drain and is surfaced via last_errno()/read_errors() instead of
//     being silently treated as EOF (the next poll retries).
//
// poll() is synchronous and drains everything currently available; callers
// own the wait loop (the CLI sleeps between polls, tests interleave polls
// with writer faults deterministically). checkpoint()/resume() provide the
// kill-and-continue story documented in checkpoint.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

#include "pipeline/checkpoint.hpp"
#include "pipeline/decoder.hpp"
#include "pipeline/replay.hpp"

namespace divscrape::pipeline {

struct TailConfig {
  std::size_t chunk_bytes = 64 * 1024;       ///< initial read() granularity
  std::size_t max_chunk_bytes = 1024 * 1024; ///< adaptive growth ceiling:
                                             ///< the read buffer doubles
                                             ///< whenever a read fills it
  /// Test seam: substitute for ::read so fault-injection tests can script
  /// EINTR and real errors against an ordinary file. nullptr = ::read.
  ssize_t (*read_fn)(int fd, void* buf, std::size_t count) = nullptr;
};

class LogTailer {
 public:
  using Config = TailConfig;

  /// The decoder must outlive the tailer. The file may not exist yet;
  /// poll() keeps trying to open it.
  LogTailer(std::string path, LineDecoder& decoder, Config config = Config());
  /// Convenience: attach to a ReplayEngine's internal decoder (the
  /// single-file tail mode).
  LogTailer(std::string path, ReplayEngine& engine, Config config = Config());
  ~LogTailer();

  LogTailer(const LogTailer&) = delete;
  LogTailer& operator=(const LogTailer&) = delete;

  /// Resumes from a saved checkpoint; call before the first poll(). Seeks
  /// to the committed offset when the file's inode still matches the
  /// checkpoint AND the checkpoint's prefix signature (if any) still
  /// matches the file's first bytes; otherwise (rotated/replaced/regrown
  /// while down) starts from offset 0 of the current incarnation.
  /// Cumulative accounting is adopted either way. Returns whether the
  /// offset was honored.
  bool resume(const Checkpoint& cp);

  /// Drains all bytes currently available, following rotations and
  /// truncations as described above. Returns the number of bytes consumed
  /// (0 = caught up / file absent / read error — check last_errno()).
  std::size_t poll();

  /// Committed position + cumulative accounting, safe to persist. The
  /// offset excludes any buffered partial line (those bytes are re-read on
  /// resume). Caveat: while a partial line spans a rotation boundary the
  /// carried-over bytes exist only in memory; a checkpoint taken in that
  /// window resumes at offset 0 of the new file and that one torn record
  /// is lost.
  [[nodiscard]] Checkpoint checkpoint() const;

  [[nodiscard]] std::uint64_t rotations() const noexcept {
    return rotations_;
  }
  [[nodiscard]] std::uint64_t truncations() const noexcept {
    return truncations_;
  }
  /// Detected double-rotation losses (see class comment), as counted by
  /// the decoder since this tailer attached.
  [[nodiscard]] std::uint64_t lost_incarnations() const noexcept {
    return sink_->boundary_skips() - boundary_base_;
  }
  /// Non-EINTR read() failures observed (each stops one drain; the next
  /// poll retries from the same offset).
  [[nodiscard]] std::uint64_t read_errors() const noexcept {
    return read_errors_;
  }
  /// errno of the most recent read() failure; 0 after a clean drain.
  [[nodiscard]] int last_errno() const noexcept { return last_errno_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  bool open_current();      ///< (re)opens path_, captures its inode
  std::size_t drain_fd();   ///< reads the open descriptor to EOF
  /// Verifies the stored first-bytes signature against the file (false =
  /// content below the consumed offset was replaced) and extends it while
  /// the file is still shorter than the full signature window.
  bool check_signature();
  void handle_truncation();

  std::string path_;
  LineDecoder* sink_;
  Config config_;
  std::vector<char> buffer_;    ///< reusable read buffer (grows adaptively)
  int fd_ = -1;
  std::uint64_t inode_ = 0;
  std::uint64_t consumed_ = 0;  ///< bytes fed from the current incarnation
  std::uint64_t sig_len_ = 0;   ///< prefix-signature length (0 = none yet)
  std::uint64_t sig_hash_ = 0;  ///< FNV-1a of the first sig_len_ bytes
  std::uint64_t rotations_ = 0;
  std::uint64_t truncations_ = 0;
  std::uint64_t read_errors_ = 0;
  int last_errno_ = 0;
  ReplayStats sink_base_;        ///< decoder stats at construction/adoption
  std::uint64_t boundary_base_;  ///< decoder boundary_skips at attachment
  Checkpoint base_;              ///< accounting carried in via resume()
};

}  // namespace divscrape::pipeline
