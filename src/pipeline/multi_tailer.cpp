#include "pipeline/multi_tailer.hpp"

#include <algorithm>
#include <utility>

namespace divscrape::pipeline {

MultiTailer::Input::Input(MultiTailer* owner, std::uint32_t index,
                          std::string file_path,
                          const TailConfig& tail_config)
    : decoder([owner, index](httplog::LogRecord&& record) {
        owner->enqueue(index, std::move(record));
      }),
      tailer(std::move(file_path), decoder, tail_config) {}

MultiTailer::MultiTailer(std::vector<std::string> paths, RecordSink sink,
                         Config config)
    : config_(config), sink_(std::move(sink)) {
  inputs_.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    inputs_.push_back(std::make_unique<Input>(
        this, static_cast<std::uint32_t>(i), std::move(paths[i]),
        config_.tail));
  }
}

MultiTailer::MultiTailer(std::vector<std::string> paths, BatchSink sink,
                         std::size_t batch_records, Config config,
                         BatchPool* pool)
    : config_(config),
      batch_sink_(std::move(sink)),
      batch_records_(batch_records == 0 ? 1 : batch_records),
      batch_pool_(pool) {
  inputs_.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    inputs_.push_back(std::make_unique<Input>(
        this, static_cast<std::uint32_t>(i), std::move(paths[i]),
        config_.tail));
  }
}

void MultiTailer::flush_out_batch() {
  if (out_batch_.empty()) return;
  RecordBatch full = std::move(out_batch_);
  out_batch_ = batch_pool_ ? batch_pool_->acquire() : RecordBatch{};
  batch_sink_(std::move(full));
}

void MultiTailer::enqueue(std::uint32_t file, httplog::LogRecord&& record) {
  Input& input = *inputs_[file];
  const MergeKey key{record.time.micros(), file, input.seq++};
  // Real access logs are time-ordered per file; tolerate a misordered
  // record by keeping the frontier monotone (max), so the watermark never
  // runs backwards.
  if (!input.has_frontier || input.frontier < key) {
    input.frontier = key;
    input.has_frontier = true;
  }
  heap_.push_back(Pending{key, std::move(record)});
  std::push_heap(heap_.begin(), heap_.end(), PendingAfter{});
  if (config_.max_buffered_records > 0 &&
      heap_.size() >= config_.max_buffered_records) {
    // Memory backstop mid-drain (a huge pre-existing backlog): release
    // what the watermark allows, then force the oldest out if the heap is
    // still at the cap — bounded memory beats exact cross-file order on
    // catch-up, and forced/late emissions stay accounted.
    emit_ready();
    while (heap_.size() >= config_.max_buffered_records) {
      ++forced_emits_;
      emit_top();
    }
  }
}

void MultiTailer::emit_top() {
  std::pop_heap(heap_.begin(), heap_.end(), PendingAfter{});
  Pending pending = std::move(heap_.back());
  heap_.pop_back();
  if (emitted_any_ && pending.key.time_us < last_emitted_us_) {
    ++late_records_;  // arrived below the emission front (see header)
  } else {
    last_emitted_us_ = pending.key.time_us;
  }
  emitted_any_ = true;
  if (batch_sink_) {
    // Copy-assign into a warm slot (arena contract) instead of moving —
    // a move would strip the slot's warm string buffers.
    out_batch_.append_slot() = pending.record;
    if (out_batch_.size() >= batch_records_) flush_out_batch();
    return;
  }
  sink_(std::move(pending.record));
}

void MultiTailer::emit_ready() {
  // Watermark: the minimum frontier over every file that has produced at
  // least one record. Anything at or below it cannot be preceded by
  // not-yet-decoded data (per-file monotonicity), so emitting is exact.
  bool have_watermark = false;
  MergeKey watermark;
  std::int64_t newest_frontier_us =
      std::numeric_limits<std::int64_t>::min();
  for (const auto& input : inputs_) {
    if (!input->has_frontier) continue;
    if (!have_watermark || input->frontier < watermark)
      watermark = input->frontier;
    have_watermark = true;
    newest_frontier_us = std::max(newest_frontier_us,
                                  input->frontier.time_us);
  }
  while (!heap_.empty()) {
    const MergeKey& top = heap_.front().key;
    if (have_watermark && top <= watermark) {
      emit_top();
      continue;
    }
    if (config_.reorder_window_us > 0 &&
        newest_frontier_us - top.time_us > config_.reorder_window_us) {
      // Bounded reorder window: a lagging file may not stall the stream
      // beyond the window. The laggard's eventual records emit late.
      ++forced_emits_;
      emit_top();
      continue;
    }
    break;
  }
}

std::size_t MultiTailer::poll() {
  std::size_t total = 0;
  for (auto& input : inputs_) total += input->tailer.poll();
  emit_ready();
  // Batch-mode invariant: released records never sit in a partial batch
  // across calls (alert latency + checkpoint coverage).
  if (batch_sink_) flush_out_batch();
  return total;
}

std::uint64_t MultiTailer::flush() {
  std::uint64_t emitted = 0;
  while (!heap_.empty()) {
    emit_top();
    ++emitted;
  }
  if (batch_sink_) flush_out_batch();
  return emitted;
}

bool MultiTailer::resume(std::size_t file, const Checkpoint& cp) {
  return inputs_.at(file)->tailer.resume(cp);
}

Checkpoint MultiTailer::checkpoint(std::size_t file) const {
  return inputs_.at(file)->tailer.checkpoint();
}

ReplayStats MultiTailer::stats() const {
  ReplayStats total;
  for (const auto& input : inputs_) {
    const ReplayStats& s = input->decoder.stats();
    total.lines += s.lines;
    total.parsed += s.parsed;
    total.skipped += s.skipped;
  }
  return total;
}

std::uint64_t MultiTailer::rotations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& input : inputs_) total += input->tailer.rotations();
  return total;
}

std::uint64_t MultiTailer::truncations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& input : inputs_) total += input->tailer.truncations();
  return total;
}

std::uint64_t MultiTailer::lost_incarnations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& input : inputs_)
    total += input->tailer.lost_incarnations();
  return total;
}

std::uint64_t MultiTailer::read_errors() const noexcept {
  std::uint64_t total = 0;
  for (const auto& input : inputs_) total += input->tailer.read_errors();
  return total;
}

}  // namespace divscrape::pipeline
