// SpscRing: a bounded single-producer/single-consumer ring of batches —
// the handoff primitive of the batched sharded pipeline.
//
// ## Design notes
//
// The storage is a flat circular buffer of move-only slots; head/tail are
// free-running counters (index = counter % capacity), so full/empty are
// simple counter differences and capacity needs no power-of-two rounding.
//
// Synchronization is a mutex + two condition variables rather than a
// lock-free protocol, deliberately: every push/pop moves a whole
// RecordBatch (~1k records), so the ring is touched once per ~thousand
// records and an uncontended lock (~20 ns) amortizes to noise — while a
// spin-based lock-free ring would burn the consumer's core exactly where
// this repo runs hottest, the 1-core CI host. The SPSC restriction is a
// *contract* (one pushing thread, one popping thread), not a property the
// implementation exploits for lock elision; it is what makes FIFO order
// per ring — and therefore per-shard record order, and therefore
// JointResults byte-identity — trivial to reason about.
//
// The bounded capacity IS the backpressure: push() blocks while the ring
// is full, so a producer that outruns its consumer stalls instead of
// buffering the stream (the unbounded-queue failure mode PR 5 fixed with
// max_backlog, now enforced structurally).
//
// close() ends the stream: pop() drains what remains and then returns
// false; push() after close throws (producer bug).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace divscrape::pipeline {

template <typename T>
class SpscRing {
 public:
  /// Capacity is clamped to >= 1. The ring allocates all slots up front.
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocks while the ring is full (backpressure); throws std::logic_error
  /// if the ring was closed. Producer thread only.
  void push(T&& value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return head_ - tail_ < slots_.size() || closed_; });
    if (closed_) throw std::logic_error("SpscRing: push() after close()");
    slots_[head_ % slots_.size()] = std::move(value);
    ++head_;
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Non-blocking push; false when full (value untouched) or closed.
  [[nodiscard]] bool try_push(T&& value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || head_ - tail_ == slots_.size()) return false;
      slots_[head_ % slots_.size()] = std::move(value);
      ++head_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the ring is closed *and* drained.
  /// Returns false only on closed-and-empty — the consumer's exit signal.
  /// Consumer thread only.
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return tail_ != head_ || closed_; });
    if (tail_ == head_) return false;  // closed and drained
    out = std::move(slots_[tail_ % slots_.size()]);
    ++tail_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when nothing is buffered.
  [[nodiscard]] bool try_pop(T& out) {
    {
      std::lock_guard lock(mutex_);
      if (tail_ == head_) return false;
      out = std::move(slots_[tail_ % slots_.size()]);
      ++tail_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: wakes both sides; pop() drains the remainder then
  /// returns false; further push() throws. Idempotent, any thread.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(head_ - tail_);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::uint64_t head_ = 0;  ///< next slot to write (producer)
  std::uint64_t tail_ = 0;  ///< next slot to read (consumer)
  bool closed_ = false;
};

}  // namespace divscrape::pipeline
