#include "pipeline/replay.hpp"

#include "httplog/clf.hpp"

namespace divscrape::pipeline {

ReplayEngine::ReplayEngine(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool,
    double time_scale)
    : joiner_(pool), time_scale_(time_scale) {
  for (const auto& detector : pool) detector->reset();
}

void ReplayEngine::ingest_line(std::string_view line) {
  ++stats_.lines;
  auto result = httplog::parse_clf(line);
  if (!result.ok()) {
    ++stats_.skipped;
    return;
  }
  httplog::LogRecord record = std::move(*result.record);
  // Parsed records carry no token; stamp here so every detector keys its
  // state by the token instead of re-hashing the UA string.
  record.ua_token = ua_tokens_.intern(record.user_agent);
  pacer_.wait_until(record.time, time_scale_);
  (void)joiner_.process(record);
  ++stats_.parsed;
}

std::uint64_t ReplayEngine::feed(std::string_view chunk) {
  const std::uint64_t parsed_before = stats_.parsed;
  framer_.feed(chunk);
  std::string_view line;
  while (framer_.next(line)) ingest_line(line);
  return stats_.parsed - parsed_before;
}

std::uint64_t ReplayEngine::finish_stream() {
  std::string_view line;
  if (!framer_.take_partial(line)) return 0;
  ingest_line(line);
  return 1;
}

ReplayStats ReplayEngine::replay(std::istream& in) {
  const ReplayStats before = stats_;
  const auto wall0 = std::chrono::steady_clock::now();
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof(buffer)), in.gcount() > 0) {
    feed(std::string_view(buffer, static_cast<std::size_t>(in.gcount())));
  }
  // Batch EOF semantics: the closed stream's unterminated final line (if
  // any) is done growing — parse it as a complete line.
  (void)finish_stream();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  stats_.wall_seconds += wall;
  return {stats_.lines - before.lines, stats_.parsed - before.parsed,
          stats_.skipped - before.skipped, wall};
}

}  // namespace divscrape::pipeline
