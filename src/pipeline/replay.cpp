#include "pipeline/replay.hpp"

#include <chrono>
#include <thread>

namespace divscrape::pipeline {

ReplayEngine::ReplayEngine(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool,
    double time_scale)
    : joiner_(pool), time_scale_(time_scale) {
  for (const auto& detector : pool) detector->reset();
}

ReplayStats ReplayEngine::replay(std::istream& in) {
  ReplayStats stats;
  httplog::LogReader reader(in);
  httplog::LogRecord record;
  const auto wall0 = std::chrono::steady_clock::now();
  bool have_origin = false;
  httplog::Timestamp origin;
  while (reader.next(record)) {
    // Parsed records carry no token; stamp here so every detector keys its
    // state by the token instead of re-hashing the UA string.
    record.ua_token = ua_tokens_.intern(record.user_agent);
    if (time_scale_ > 0.0) {
      if (!have_origin) {
        origin = record.time;
        have_origin = true;
      }
      const double sim_elapsed =
          static_cast<double>(record.time - origin) / 1e6;
      const auto due =
          wall0 + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(sim_elapsed /
                                                    time_scale_));
      std::this_thread::sleep_until(due);
    }
    (void)joiner_.process(record);
    ++stats.parsed;
  }
  stats.lines = reader.lines_read();
  stats.skipped = reader.lines_skipped();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return stats;
}

}  // namespace divscrape::pipeline
