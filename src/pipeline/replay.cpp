#include "pipeline/replay.hpp"

namespace divscrape::pipeline {

namespace {
/// Granularity of the engine's internal parse->dispatch batches. Purely an
/// execution knob: the decoder flushes partial batches at every feed()
/// boundary, so batching is unobservable in results and checkpoints.
constexpr std::size_t kReplayBatchRecords = 1024;
}  // namespace

ReplayEngine::ReplayEngine(
    const std::vector<std::unique_ptr<detectors::Detector>>& pool,
    double time_scale)
    : joiner_(pool),
      decoder_(
          [this](RecordBatch&& batch) {
            process_batch(batch);
            batch_pool_.recycle(std::move(batch));
          },
          kReplayBatchRecords, &batch_pool_),
      time_scale_(time_scale) {
  for (const auto& detector : pool) detector->reset();
}

void ReplayEngine::process_record(httplog::LogRecord&& record) {
  // Parsed records carry no token; stamp here so every detector keys its
  // state by the token instead of re-hashing the UA string.
  record.ua_token = ua_tokens_.intern(record.user_agent);
  pacer_.wait_until(record.time, time_scale_);
  (void)joiner_.process(record);
}

void ReplayEngine::process_batch(RecordBatch& batch) {
  for (auto& record : batch) {
    record.ua_token = ua_tokens_.intern(record.user_agent);
    pacer_.wait_until(record.time, time_scale_);
    (void)joiner_.process(record);
  }
}

bool ReplayEngine::save_state(util::StateWriter& w) const {
  util::StateWriter body;
  util::put_tag(body, 0x454E474Eu /* "ENGN" */, 1);
  ua_tokens_.save_state(body);
  if (!joiner_.save_state(body)) return false;
  w.str(body.buffer());
  return true;
}

bool ReplayEngine::load_state(util::StateReader& r) {
  const auto fail = [&] {
    ua_tokens_.clear();
    joiner_.reset();
    return false;
  };
  util::StateReader body(r.str());
  if (!r.ok()) return fail();
  if (!util::check_tag(body, 0x454E474Eu, 1)) return fail();
  if (!ua_tokens_.load_state(body)) return fail();
  if (!joiner_.load_state(body)) return fail();
  if (!body.ok() || !body.at_end()) return fail();
  return true;
}

ReplayStats ReplayEngine::replay(std::istream& in) {
  const ReplayStats before = decoder_.stats();
  const auto wall0 = std::chrono::steady_clock::now();
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof(buffer)), in.gcount() > 0) {
    (void)feed(std::string_view(buffer, static_cast<std::size_t>(in.gcount())));
  }
  // Batch EOF semantics: the closed stream's unterminated final line (if
  // any) is done growing — parse it as a complete line.
  (void)finish_stream();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  decoder_.add_wall_seconds(wall);
  const ReplayStats& now = decoder_.stats();
  return {now.lines - before.lines, now.parsed - before.parsed,
          now.skipped - before.skipped, wall};
}

}  // namespace divscrape::pipeline
