#include "pipeline/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "core/json.hpp"
#include "core/json_parse.hpp"
#include "util/atomic_file.hpp"
#include "util/state.hpp"

namespace divscrape::pipeline {

namespace {

constexpr std::string_view kSchema = "divscrape.checkpoint.v3";
// v2 lacked the detection-state blob; v1 additionally lacked sig_len/
// sig_hash/lost_incarnations. Both still load (see the compat matrix in
// the header): missing fields default to 0 / empty = cold detection.
constexpr std::string_view kSchemaV2 = "divscrape.checkpoint.v2";
constexpr std::string_view kSchemaV1 = "divscrape.checkpoint.v1";

constexpr std::string_view kSessionSchema = "divscrape.tail_session.v3";

// Finds `"key":` in a flat JSON object and parses the following bare
// unsigned number.
std::optional<std::uint64_t> find_u64(std::string_view json,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto begin = json.data() + pos + needle.size();
  const auto end = json.data() + json.size();
  std::uint64_t value = 0;
  const auto parsed = std::from_chars(begin, end, value);
  if (parsed.ec != std::errc{}) return std::nullopt;
  return value;
}

// Finds `"key":"..."` in a flat JSON object. Only safe for values with no
// escapes — base64 qualifies (its alphabet holds no '"' or '\\').
std::optional<std::string_view> find_str(std::string_view json,
                                         std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto begin = pos + needle.size();
  const auto close = json.find('"', begin);
  if (close == std::string_view::npos) return std::nullopt;
  return json.substr(begin, close - begin);
}

// The checkpoint's scalar fields, written into an already-open object —
// shared between the standalone serialization and the per-log embeddings
// inside a TailSessionState.
void write_fields(core::JsonWriter& json, const Checkpoint& cp) {
  json.key("inode").value(cp.inode);
  json.key("offset").value(cp.offset);
  json.key("sig_len").value(cp.sig_len);
  json.key("sig_hash").value(cp.sig_hash);
  json.key("lines").value(cp.lines);
  json.key("parsed").value(cp.parsed);
  json.key("skipped").value(cp.skipped);
  json.key("rotations").value(cp.rotations);
  json.key("truncations").value(cp.truncations);
  json.key("lost_incarnations").value(cp.lost_incarnations);
}

// Reads the scalar fields back from a parsed DOM object (TailSessionState
// embeddings; the standalone path keeps the flat scanner for v1/v2 files).
Checkpoint checkpoint_from_dom(const core::JsonValue& obj) {
  Checkpoint cp;
  cp.inode = obj.u64_or("inode", 0);
  cp.offset = obj.u64_or("offset", 0);
  cp.sig_len = obj.u64_or("sig_len", 0);
  cp.sig_hash = obj.u64_or("sig_hash", 0);
  cp.lines = obj.u64_or("lines", 0);
  cp.parsed = obj.u64_or("parsed", 0);
  cp.skipped = obj.u64_or("skipped", 0);
  cp.rotations = obj.u64_or("rotations", 0);
  cp.truncations = obj.u64_or("truncations", 0);
  cp.lost_incarnations = obj.u64_or("lost_incarnations", 0);
  return cp;
}

}  // namespace

std::string Checkpoint::to_json() const {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kSchema);
  write_fields(json, *this);
  json.key("state_b64").value(util::base64_encode(state));
  json.end_object();
  return os.str();
}

std::optional<Checkpoint> Checkpoint::from_json(std::string_view json) {
  const auto has_schema = [&](std::string_view schema) {
    return json.find("\"schema\":\"" + std::string(schema) + "\"") !=
           std::string_view::npos;
  };
  const bool v3 = has_schema(kSchema);
  const bool v2 = v3 || has_schema(kSchemaV2);
  if (!v2 && !has_schema(kSchemaV1)) return std::nullopt;
  Checkpoint cp;
  const auto inode = find_u64(json, "inode");
  const auto offset = find_u64(json, "offset");
  const auto lines = find_u64(json, "lines");
  const auto parsed = find_u64(json, "parsed");
  const auto skipped = find_u64(json, "skipped");
  const auto rotations = find_u64(json, "rotations");
  const auto truncations = find_u64(json, "truncations");
  if (!inode || !offset || !lines || !parsed || !skipped || !rotations ||
      !truncations)
    return std::nullopt;
  cp.inode = *inode;
  cp.offset = *offset;
  cp.lines = *lines;
  cp.parsed = *parsed;
  cp.skipped = *skipped;
  cp.rotations = *rotations;
  cp.truncations = *truncations;
  if (v2) {
    const auto sig_len = find_u64(json, "sig_len");
    const auto sig_hash = find_u64(json, "sig_hash");
    const auto lost = find_u64(json, "lost_incarnations");
    if (!sig_len || !sig_hash || !lost) return std::nullopt;
    cp.sig_len = *sig_len;
    cp.sig_hash = *sig_hash;
    cp.lost_incarnations = *lost;
  }
  if (v3) {
    // A missing or undecodable blob degrades to a cold (but valid) resume:
    // the ingest offset must survive state-blob damage.
    if (const auto b64 = find_str(json, "state_b64")) {
      if (auto bytes = util::base64_decode(*b64)) cp.state = std::move(*bytes);
    }
  }
  return cp;
}

bool Checkpoint::save(const std::string& path) const {
  return util::write_file_atomic(path, to_json() + "\n");
}

std::optional<Checkpoint> Checkpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

std::string TailSessionState::to_json() const {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kSessionSchema);
  json.key("logs").begin_array();
  for (const auto& [path, cp] : logs) {
    json.begin_object();
    json.key("path").value(path);
    write_fields(json, cp);
    json.end_object();
  }
  json.end_array();
  json.key("state_b64").value(util::base64_encode(state));
  json.end_object();
  return os.str();
}

std::optional<TailSessionState> TailSessionState::from_json(
    std::string_view json) {
  const auto doc = core::parse_json(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  if (doc->string_or("schema", "") != kSessionSchema) return std::nullopt;
  const core::JsonValue* logs = doc->find("logs");
  if (!logs || !logs->is_array()) return std::nullopt;
  TailSessionState session;
  for (const core::JsonValue& entry : logs->array()) {
    if (!entry.is_object()) return std::nullopt;
    std::string path = entry.string_or("path", "");
    if (path.empty()) return std::nullopt;
    session.logs.emplace_back(std::move(path), checkpoint_from_dom(entry));
  }
  const auto bytes = util::base64_decode(doc->string_or("state_b64", ""));
  if (!bytes) return std::nullopt;
  session.state = std::move(*bytes);
  return session;
}

bool TailSessionState::save(const std::string& path) const {
  return util::write_file_atomic(path, to_json() + "\n");
}

std::optional<TailSessionState> TailSessionState::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

}  // namespace divscrape::pipeline
