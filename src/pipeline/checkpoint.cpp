#include "pipeline/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "core/json.hpp"
#include "util/atomic_file.hpp"

namespace divscrape::pipeline {

namespace {

constexpr std::string_view kSchema = "divscrape.checkpoint.v2";
// v1 lacked sig_len/sig_hash/lost_incarnations; still loadable (they
// default to 0 = unknown, so resume just skips the signature check).
constexpr std::string_view kSchemaV1 = "divscrape.checkpoint.v1";

// Finds `"key":` in a flat JSON object and parses the following bare
// unsigned number (the only value type this schema uses besides the schema
// string itself).
std::optional<std::uint64_t> find_u64(std::string_view json,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto begin = json.data() + pos + needle.size();
  const auto end = json.data() + json.size();
  std::uint64_t value = 0;
  const auto parsed = std::from_chars(begin, end, value);
  if (parsed.ec != std::errc{}) return std::nullopt;
  return value;
}

}  // namespace

std::string Checkpoint::to_json() const {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kSchema);
  json.key("inode").value(inode);
  json.key("offset").value(offset);
  json.key("sig_len").value(sig_len);
  json.key("sig_hash").value(sig_hash);
  json.key("lines").value(lines);
  json.key("parsed").value(parsed);
  json.key("skipped").value(skipped);
  json.key("rotations").value(rotations);
  json.key("truncations").value(truncations);
  json.key("lost_incarnations").value(lost_incarnations);
  json.end_object();
  return os.str();
}

std::optional<Checkpoint> Checkpoint::from_json(std::string_view json) {
  const auto has_schema = [&](std::string_view schema) {
    return json.find("\"schema\":\"" + std::string(schema) + "\"") !=
           std::string_view::npos;
  };
  const bool v2 = has_schema(kSchema);
  if (!v2 && !has_schema(kSchemaV1)) return std::nullopt;
  Checkpoint cp;
  const auto inode = find_u64(json, "inode");
  const auto offset = find_u64(json, "offset");
  const auto lines = find_u64(json, "lines");
  const auto parsed = find_u64(json, "parsed");
  const auto skipped = find_u64(json, "skipped");
  const auto rotations = find_u64(json, "rotations");
  const auto truncations = find_u64(json, "truncations");
  if (!inode || !offset || !lines || !parsed || !skipped || !rotations ||
      !truncations)
    return std::nullopt;
  cp.inode = *inode;
  cp.offset = *offset;
  cp.lines = *lines;
  cp.parsed = *parsed;
  cp.skipped = *skipped;
  cp.rotations = *rotations;
  cp.truncations = *truncations;
  if (v2) {
    const auto sig_len = find_u64(json, "sig_len");
    const auto sig_hash = find_u64(json, "sig_hash");
    const auto lost = find_u64(json, "lost_incarnations");
    if (!sig_len || !sig_hash || !lost) return std::nullopt;
    cp.sig_len = *sig_len;
    cp.sig_hash = *sig_hash;
    cp.lost_incarnations = *lost;
  }
  return cp;
}

bool Checkpoint::save(const std::string& path) const {
  return util::write_file_atomic(path, to_json() + "\n");
}

std::optional<Checkpoint> Checkpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream text;
  text << in.rdbuf();
  return from_json(text.str());
}

}  // namespace divscrape::pipeline
