// ReplayEngine: drives a detector pool from a recorded CLF log — the
// deployment mode the paper's tools actually ran in (tailing Apache access
// logs). Three ingest surfaces share one framing/parsing/stamping path:
//
//   * replay(istream): batch mode over a complete stream. At EOF a final
//     line without a trailing newline is flushed as a complete line — the
//     historical getline behavior, kept deliberately (a closed log file's
//     last line is done growing, however it ended).
//   * feed(chunk) + finish_stream(): incremental byte mode for live
//     tailing. feed() accepts arbitrary byte chunks (torn anywhere,
//     including inside a CRLF pair) and processes only fully
//     '\n'-terminated lines; the trailing partial is held until its
//     newline arrives. finish_stream() is the explicit end-of-stream
//     declaration that flushes the partial — tail mode never calls it
//     while the file may still grow.
//   * process_record(record): the record-level seam for producers that
//     parsed elsewhere (the multi-file merge layer decodes each log with
//     its own LineDecoder and emits one time-ordered record stream). The
//     engine stamps, paces and dispatches exactly as it does for records
//     it parsed itself, so "N decoders + merge + engine" equals "one
//     engine fed the merged bytes".
//
// The byte-level framing/parsing lives in LineDecoder (decoder.hpp); the
// engine owns the dispatch stage: UA-token stamping, pacing, and the
// AlertJoiner. All modes support as-fast-as-possible replay and
// time-scaled pacing for live demos.
#pragma once

#include <chrono>
#include <cstdint>
#include <istream>
#include <memory>
#include <string_view>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/detector.hpp"
#include "httplog/pacer.hpp"
#include "pipeline/decoder.hpp"
#include "util/interner.hpp"

namespace divscrape::pipeline {

class ReplayEngine {
 public:
  /// `time_scale`: 0 replays as fast as possible; x > 0 sleeps so that one
  /// simulated second takes 1/x wall seconds (e.g. 60 = minute-per-second).
  /// Pacing is anchored at the first record the engine ever ingests.
  ///
  /// The pool is reset() on construction (mirroring core::run_experiment):
  /// the engine stamps records with tokens from its own interner, and any
  /// token-keyed detector state from a previous source would be meaningless
  /// — or worse, silently wrong — under this engine's token space. Repeated
  /// replay()/feed() calls on one engine share the interner and accumulate
  /// state (the multi-file log-tailing use case).
  explicit ReplayEngine(
      const std::vector<std::unique_ptr<detectors::Detector>>& pool,
      double time_scale = 0.0);

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  /// Replays every parseable record of the stream through the pool,
  /// including an unterminated final line. Returns the stats delta for
  /// this stream (wall_seconds covers just this call).
  ReplayStats replay(std::istream& in);

  /// Incremental ingest: frames the chunk into lines and processes every
  /// line completed so far. Safe to call with chunks split at any byte
  /// boundary. Returns the number of records parsed from this chunk.
  std::uint64_t feed(std::string_view chunk) { return decoder_.feed(chunk); }

  /// Declares end-of-stream: an unterminated trailing partial line (if
  /// any) is processed as a complete line. Returns 1 if a line was
  /// flushed, 0 otherwise.
  std::uint64_t finish_stream() { return decoder_.finish_stream(); }

  /// Record-level ingest: stamps the UA token, paces, and dispatches one
  /// already-parsed record to the pool. feed() is equivalent to parse +
  /// process_record per line; external parsers (MultiTailer) call this
  /// directly. Records processed here do NOT appear in stats() — parse
  /// accounting belongs to whichever decoder parsed them.
  void process_record(httplog::LogRecord&& record);

  /// Batch-level ingest: stamps, paces and dispatches every record of the
  /// batch in order, equivalent to process_record per record. The caller
  /// keeps the batch (records are read in place; only ua_token is
  /// stamped), so it can recycle the arena. This is the engine's own inner
  /// loop — replay()/feed() parse into batches and dispatch through here.
  void process_batch(RecordBatch& batch);

  /// True while an unterminated partial line is buffered.
  [[nodiscard]] bool has_partial_line() const noexcept {
    return decoder_.has_partial_line();
  }
  /// Size of that partial in bytes. A resume checkpoint must subtract this
  /// from the fed-byte count: those bytes were accepted but not ingested.
  [[nodiscard]] std::size_t partial_bytes() const noexcept {
    return decoder_.partial_bytes();
  }
  /// Drops the buffered partial line without ingesting it (the tailer uses
  /// this when the underlying file is truncated under the partial).
  void drop_partial_line() { decoder_.drop_partial_line(); }

  /// Cumulative framing/parsing accounting across every replay()/feed()
  /// call on this engine. wall_seconds accumulates batch replay() time
  /// only; feed() callers own their clock.
  [[nodiscard]] const ReplayStats& stats() const noexcept {
    return decoder_.stats();
  }

  /// The engine's byte-stream decoder — what a LogTailer attaches to.
  [[nodiscard]] LineDecoder& decoder() noexcept { return decoder_; }

  [[nodiscard]] const core::JointResults& results() const noexcept {
    return joiner_.results();
  }

  /// Warm-checkpoint dump of the dispatch stage: the stamping interner (its
  /// tokens key every detector's per-client state, so it MUST travel with
  /// them) plus the joiner (detector states + results). Ingest-side decoder
  /// accounting is the tailer checkpoint's job, and the pacing anchor stays
  /// cold (a resumed live tail re-anchors at its first record). Returns
  /// false — writing nothing — when a pool member doesn't support state
  /// serialization.
  [[nodiscard]] bool save_state(util::StateWriter& w) const;
  /// Restores from save_state() output; call before any feed()/replay().
  /// On failure the engine is reset cold and false is returned.
  [[nodiscard]] bool load_state(util::StateReader& r);

 private:
  core::AlertJoiner joiner_;
  util::StringInterner ua_tokens_;  ///< stamps records at dispatch
  /// Arena loop for the engine's own parse path: the decoder acquires
  /// batches here and process_batch's caller lambda recycles them, so the
  /// steady state reuses one warm batch.
  BatchPool batch_pool_;
  LineDecoder decoder_;
  httplog::Pacer pacer_;
  double time_scale_;
};

}  // namespace divscrape::pipeline
