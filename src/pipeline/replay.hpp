// ReplayEngine: drives a detector pool from a recorded CLF log file — the
// deployment mode the paper's tools actually ran in (tailing Apache access
// logs). Supports as-fast-as-possible batch replay and time-scaled pacing
// for live demos.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/detector.hpp"
#include "httplog/io.hpp"
#include "util/interner.hpp"

namespace divscrape::pipeline {

struct ReplayStats {
  std::uint64_t lines = 0;
  std::uint64_t parsed = 0;
  std::uint64_t skipped = 0;
  double wall_seconds = 0.0;
};

class ReplayEngine {
 public:
  /// `time_scale`: 0 replays as fast as possible; x > 0 sleeps so that one
  /// simulated second takes 1/x wall seconds (e.g. 60 = minute-per-second).
  ///
  /// The pool is reset() on construction (mirroring core::run_experiment):
  /// the engine stamps records with tokens from its own interner, and any
  /// token-keyed detector state from a previous source would be meaningless
  /// — or worse, silently wrong — under this engine's token space. Repeated
  /// replay() calls on one engine share the interner and accumulate state
  /// (the multi-file log-tailing use case).
  explicit ReplayEngine(
      const std::vector<std::unique_ptr<detectors::Detector>>& pool,
      double time_scale = 0.0);

  /// Replays every parseable record of the stream through the pool.
  ReplayStats replay(std::istream& in);

  [[nodiscard]] const core::JointResults& results() const noexcept {
    return joiner_.results();
  }

 private:
  core::AlertJoiner joiner_;
  util::StringInterner ua_tokens_;  ///< stamps parsed records at ingest
  double time_scale_;
};

}  // namespace divscrape::pipeline
