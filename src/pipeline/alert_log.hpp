// Structured alert logging: the operational output of a deployment.
// Alerts are written as JSON Lines (one object per alerted request) so
// SOC tooling can tail, filter and aggregate them; a reader parses the
// format back for the round-trip tests and offline analysis.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "detectors/detector.hpp"
#include "httplog/record.hpp"

namespace divscrape::pipeline {

/// One emitted alert.
struct AlertEvent {
  std::string detector;
  httplog::Ipv4 ip;
  httplog::Timestamp time;
  std::string target;
  int status = 0;
  double score = 0.0;
  std::string reason;
};

/// Writes alerts as JSONL.
class AlertLogWriter {
 public:
  explicit AlertLogWriter(std::ostream& os) : os_(&os) {}

  /// Emits one line if the verdict is an alert; no-op otherwise.
  /// Returns whether a line was written.
  bool write(std::string_view detector, const httplog::LogRecord& record,
             const detectors::Verdict& verdict);

  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
};

/// Parses the JSONL alert log back. The parser handles exactly the subset
/// of JSON the writer produces (flat objects, string/number members) and
/// skips malformed lines, mirroring LogReader's tolerance.
class AlertLogReader {
 public:
  explicit AlertLogReader(std::istream& in) : in_(&in) {}

  [[nodiscard]] bool next(AlertEvent& out);

  [[nodiscard]] std::uint64_t lines_read() const noexcept { return lines_; }
  [[nodiscard]] std::uint64_t lines_skipped() const noexcept {
    return skipped_;
  }

 private:
  std::istream* in_;
  std::string line_;
  std::uint64_t lines_ = 0;
  std::uint64_t skipped_ = 0;
};

/// Parses one alert-log line (exposed for tests).
[[nodiscard]] std::optional<AlertEvent> parse_alert_line(
    std::string_view line);

}  // namespace divscrape::pipeline
