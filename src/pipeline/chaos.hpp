// Chaos soak: a production-day closed loop under scripted failure.
//
// One process plays both sides of a deployment: a WorkloadEngine generates
// a scenario (megasite-class via lazy actors) into one live CLF log per
// vhost through StreamWriters, while a MultiTailer + ReplayEngine ingests
// those logs exactly as `divscrape tail --checkpoint-dir` would — periodic
// warm checkpoints included. A seeded ChaosPlan injects faults at scripted
// simulated-time epochs:
//
//   * rotation (rename + recreate) and copytruncate-style truncation;
//   * torn writes held across a poll (partial line visible to the tailer);
//   * one-shot ENOSPC (a whole line dropped at the writer, by design);
//   * short-write bursts through the writer's write_fn seam;
//   * kill-anywhere: the entire ingest side (tailer, decoder, detectors)
//     is destroyed WITHOUT any final flush or checkpoint, then rebuilt
//     from whatever the last periodic persist left on disk — the
//     in-process equivalent of SIGKILL + restart.
//
// ## The oracle
//
// Every line successfully written to a live log is also appended to a
// per-vhost *shadow* log that no fault ever touches. After the run, a
// fresh one-shot batch replay of the shadows through the same exact-merge
// MultiTailer discipline is the ground truth: the soak passes only if the
// live pipeline's JointResults JSON is byte-identical to the reference,
// every record was ingested exactly once (no loss, no duplicates), every
// kill resumed warm, and the process RSS high-water stayed under the
// configured bound.
//
// ## Determinism
//
// The whole soak is a pure function of (spec, engine config, chaos_seed):
// faults fire at scripted simulated times, target the record stream
// deterministically, and every ingest step happens at a wire-second
// boundary with all writers flushed first — so the live merge order equals
// the batch merge order by construction (same argument as the multi-file
// fault-equivalence tests), and a soak failure is replayable.
#pragma once

#include <cstdint>
#include <string>

#include "workload/scenario_spec.hpp"

namespace divscrape::pipeline {

struct ChaosConfig {
  workload::ScenarioSpec spec;  ///< workload to soak (megasite-class)
  std::string work_dir;         ///< live logs, shadows, checkpoints
  std::uint64_t chaos_seed = 0xC4A05ULL;
  /// Scripted fault epochs, spread evenly over the simulated duration.
  /// Kinds cycle deterministically, so >= 21 epochs guarantees >= 3 kills.
  int fault_epochs = 21;
  std::size_t gen_threads = 4;
  std::size_t partitions = 8;
  bool lazy_actors = true;
  /// Simulated seconds between ingest polls (writers flushed first).
  std::int64_t poll_interval_s = 2;
  /// Persist warm checkpoints every this many parsed records.
  std::uint64_t persist_every_records = 200'000;
  /// Process RSS high-water bound in MiB; <= 0 disables the check.
  double rss_limit_mb = 4096.0;
  bool verbose = false;  ///< per-epoch progress on stderr
};

struct ChaosReport {
  std::uint64_t records_generated = 0;
  std::uint64_t records_dropped = 0;  ///< scripted ENOSPC whole-line drops
  std::uint64_t live_records = 0;     ///< records the live pipeline scored
  std::uint64_t reference_records = 0;

  std::uint64_t faults = 0;  ///< every scripted injection, kills included
  std::uint64_t rotations = 0;
  std::uint64_t truncations = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t enospc_faults = 0;
  std::uint64_t short_write_bursts = 0;
  std::uint64_t kills = 0;
  std::uint64_t warm_resumes = 0;
  std::uint64_t cold_resumes = 0;  ///< any > 0 fails the soak
  std::uint64_t checkpoints_persisted = 0;

  std::uint64_t lost_records = 0;       ///< reference - live (when > 0)
  std::uint64_t duplicate_records = 0;  ///< live - reference (when > 0)
  bool results_identical = false;  ///< live JSON == batch-replay JSON

  std::uint64_t rss_peak_kb = 0;  ///< current-RSS high-water during the run
  bool rss_within_limit = false;
  double wall_seconds = 0.0;
  double records_per_s = 0.0;  ///< generated records / wall

  std::string live_results_json;  ///< final JointResults document
  bool passed = false;
};

/// Runs the closed loop; `work_dir` is created if missing and left in
/// place afterwards (logs + checkpoints are the evidence trail).
[[nodiscard]] ChaosReport run_chaos_soak(const ChaosConfig& config);

/// Serializes (config, report) as the machine-readable soak bench document
/// (schema divscrape.bench_soak.v1), atomically. Returns false on I/O error.
[[nodiscard]] bool write_chaos_bench(const ChaosConfig& config,
                                     const ChaosReport& report,
                                     const std::string& path);

}  // namespace divscrape::pipeline
