#include "pipeline/sharded.hpp"

#include <stdexcept>

#include "traffic/scenario.hpp"

namespace divscrape::pipeline {

namespace {
/// Ring capacity (in batches) when the caller disables max_backlog: still
/// bounded — rings are bounded by construction — just generously so.
constexpr std::size_t kDefaultRingBatches = 1024;
}  // namespace

ShardedPipeline::ShardedPipeline(PoolFactory factory, std::size_t shards,
                                 std::size_t batch_size,
                                 std::size_t max_backlog,
                                 std::size_t dispatchers)
    : batch_size_(batch_size == 0 ? 1 : batch_size) {
  if (shards == 0)
    throw std::invalid_argument("ShardedPipeline: shards must be >= 1");
  if (!factory)
    throw std::invalid_argument("ShardedPipeline: null factory");
  const std::size_t ring_batches =
      max_backlog == 0
          ? kDefaultRingBatches
          : std::max<std::size_t>(1, max_backlog / batch_size_);

  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>(ring_batches);
    shard->pool = factory();
    shard->joiner = std::make_unique<core::AlertJoiner>(shard->pool);
    shards_.push_back(std::move(shard));
  }

  const std::size_t m =
      std::min(dispatchers == 0 ? std::size_t{1} : dispatchers, shards);
  dispatchers_.reserve(m);
  shard_owner_.resize(shards);
  for (std::size_t d = 0; d < m; ++d) {
    auto disp = std::make_unique<Dispatcher>(ring_batches);
    // Contiguous shard-key ranges: dispatcher d owns [d*S/m, (d+1)*S/m).
    disp->first_shard = d * shards / m;
    disp->last_shard = (d + 1) * shards / m;
    for (std::size_t s = disp->first_shard; s < disp->last_shard; ++s)
      shard_owner_[s] = static_cast<std::uint32_t>(d);
    dispatchers_.push_back(std::move(disp));
  }

  workers_.reserve(shards);
  for (auto& shard : shards_) {
    workers_.emplace_back([this, &shard] { worker_loop(*shard); });
  }
  for (auto& disp : dispatchers_) {
    disp->thread = std::thread([this, &disp] { dispatcher_loop(*disp); });
  }
}

ShardedPipeline::~ShardedPipeline() {
  if (!finished_) {
    // Abort path: close the input rings so dispatchers drain, flush, close
    // their shard rings and exit; workers follow. Caller-side pending
    // batches are dropped (nothing committed them).
    for (auto& disp : dispatchers_) disp->ring.close();
    for (auto& disp : dispatchers_) {
      if (disp->thread.joinable()) disp->thread.join();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }
}

std::size_t ShardedPipeline::shard_of(const httplog::LogRecord& r) const {
  // Route by /24 so every record sharing detector state lands together.
  const auto key = httplog::Ipv4Hash{}(r.ip.prefix(24));
  return key % shards_.size();
}

void ShardedPipeline::route_to_shard(std::size_t s,
                                     const httplog::LogRecord& record) {
  Shard& shard = *shards_[s];
  // Copy-assign into a warm slot: zero allocations in steady state (the
  // arena contract), and the source batch keeps its storage for recycling.
  shard.pending.append_slot() = record;
  if (shard.pending.size() >= batch_size_) flush_shard_pending(shard);
}

void ShardedPipeline::push_shard_batch(Shard& shard, RecordBatch&& batch) {
  const std::uint64_t n = batch.size();
  const std::uint64_t enq =
      shard.enqueued.fetch_add(n, std::memory_order_relaxed) + n;
  const std::uint64_t done = shard.processed.load(std::memory_order_acquire);
  const std::uint64_t backlog = enq - done;
  if (backlog > shard.peak_backlog.load(std::memory_order_relaxed))
    shard.peak_backlog.store(backlog, std::memory_order_relaxed);
  shard.ring.push(std::move(batch));  // blocks when full: backpressure
}

void ShardedPipeline::flush_shard_pending(Shard& shard) {
  if (shard.pending.empty()) return;
  push_shard_batch(shard, std::move(shard.pending));
  shard.pending = pool_.acquire();
}

void ShardedPipeline::dispatcher_loop(Dispatcher& d) {
  DispatchItem item;
  while (d.ring.pop(item)) {
    if (item.flush_seq != 0) {
      // In-band flush marker: every batch the caller pushed before it has
      // already been re-routed (FIFO), so flushing the per-shard pendings
      // and acking makes "everything up to the marker is in shard rings"
      // true at the ack.
      for (std::size_t s = d.first_shard; s < d.last_shard; ++s)
        flush_shard_pending(*shards_[s]);
      {
        std::lock_guard lock(d.ack_mutex);
        d.flush_acked = item.flush_seq;
      }
      d.ack_cv.notify_all();
      continue;
    }
    if (d.last_shard - d.first_shard == 1) {
      // The caller routes records to the dispatcher that owns their shard,
      // so with exactly one owned shard every record in this batch already
      // belongs to it: forward the batch whole instead of re-copying each
      // record. (Flush first to keep per-shard FIFO order.)
      Shard& shard = *shards_[d.first_shard];
      flush_shard_pending(shard);
      push_shard_batch(shard, std::move(item.batch));
      continue;
    }
    for (const auto& record : item.batch) {
      route_to_shard(shard_of(record), record);
    }
    pool_.recycle(std::move(item.batch));
  }
  // Input ring closed: end-of-stream. Flush what's pending, then close the
  // owned shard rings so workers drain and exit.
  for (std::size_t s = d.first_shard; s < d.last_shard; ++s) {
    flush_shard_pending(*shards_[s]);
    shards_[s]->ring.close();
  }
}

void ShardedPipeline::worker_loop(Shard& shard) {
  RecordBatch batch;
  while (shard.ring.pop(batch)) {
    for (const auto& record : batch) {
      (void)shard.joiner->process(record);
    }
    shard.processed.fetch_add(batch.size(), std::memory_order_release);
    // Empty critical section pairs the notify with the waiter's predicate
    // check (drain() rechecks `processed` under idle_mutex), so the wakeup
    // cannot be lost.
    { std::lock_guard lock(shard.idle_mutex); }
    shard.idle.notify_all();
    pool_.recycle(std::move(batch));
  }
}

void ShardedPipeline::flush_caller_pending(Dispatcher& d) {
  if (d.pending.empty()) return;
  d.ring.push(DispatchItem{std::move(d.pending), 0});
  d.pending = pool_.acquire();
}

void ShardedPipeline::process(const httplog::LogRecord& record) {
  if (finished_)
    throw std::logic_error("ShardedPipeline: process() after finish()");
  Dispatcher& d = *dispatchers_[shard_owner_[shard_of(record)]];
  d.pending.append_slot() = record;
  ++dispatched_;
  if (d.pending.size() >= batch_size_) flush_caller_pending(d);
}

void ShardedPipeline::process(httplog::LogRecord&& record) {
  process(static_cast<const httplog::LogRecord&>(record));
}

void ShardedPipeline::process_batch(RecordBatch&& batch) {
  if (finished_)
    throw std::logic_error("ShardedPipeline: process_batch() after finish()");
  dispatched_ += batch.size();
  if (dispatchers_.size() == 1) {
    // Zero-copy fast path: the whole batch moves into the ring untouched.
    // Flush the per-record pending first so arrival order is preserved.
    Dispatcher& d = *dispatchers_.front();
    flush_caller_pending(d);
    d.ring.push(DispatchItem{std::move(batch), 0});
    return;
  }
  for (const auto& record : batch) {
    Dispatcher& d = *dispatchers_[shard_owner_[shard_of(record)]];
    d.pending.append_slot() = record;
    if (d.pending.size() >= batch_size_) flush_caller_pending(d);
  }
  pool_.recycle(std::move(batch));
}

void ShardedPipeline::drain() {
  if (finished_)
    throw std::logic_error("ShardedPipeline: drain() after finish()");
  for (auto& disp : dispatchers_) flush_caller_pending(*disp);
  for (auto& disp : dispatchers_) {
    ++disp->flush_requested;
    disp->ring.push(DispatchItem{RecordBatch{}, disp->flush_requested});
  }
  for (auto& disp : dispatchers_) {
    std::unique_lock lock(disp->ack_mutex);
    disp->ack_cv.wait(
        lock, [&] { return disp->flush_acked >= disp->flush_requested; });
  }
  // Dispatchers are quiescent for our stream prefix: every record is in a
  // shard ring and `enqueued` is final for this barrier. Wait the workers
  // down to it.
  for (auto& shard : shards_) {
    const std::uint64_t target =
        shard->enqueued.load(std::memory_order_acquire);
    std::unique_lock lock(shard->idle_mutex);
    shard->idle.wait(lock, [&] {
      return shard->processed.load(std::memory_order_acquire) >= target;
    });
  }
}

std::uint64_t ShardedPipeline::peak_shard_backlog() const noexcept {
  std::uint64_t peak = 0;
  for (const auto& shard : shards_) {
    const auto p = shard->peak_backlog.load(std::memory_order_relaxed);
    if (p > peak) peak = p;
  }
  return peak;
}

core::JointResults ShardedPipeline::finish() {
  if (finished_)
    throw std::logic_error("ShardedPipeline: finish() called twice");
  finished_ = true;
  for (auto& disp : dispatchers_) {
    flush_caller_pending(*disp);
    disp->ring.close();
  }
  for (auto& disp : dispatchers_) disp->thread.join();
  for (auto& w : workers_) w.join();

  core::JointResults merged = shards_.front()->joiner->results();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    merged.merge(shards_[s]->joiner->results());
  }
  return merged;
}

bool ShardedPipeline::save_state(util::StateWriter& w) {
  // The drain barrier leaves every worker blocked on an empty ring, and
  // the idle_mutex handshakes order the workers' joiner writes before our
  // reads.
  drain();
  std::vector<std::string> blobs;
  blobs.reserve(shards_.size());
  for (auto& shard : shards_) {
    util::StateWriter blob;
    if (!shard->joiner->save_state(blob)) return false;
    blobs.push_back(blob.take());
  }
  util::put_tag(w, 0x53485244u /* "SHRD" */, 1);
  w.u64(shards_.size());
  w.u64(dispatched_);
  for (const std::string& blob : blobs) w.str(blob);
  return true;
}

bool ShardedPipeline::load_state(util::StateReader& r) {
  drain();
  const auto fail = [&] {
    r.fail();
    for (auto& shard : shards_) shard->joiner->reset();
    dispatched_ = 0;
    return false;
  };
  if (!util::check_tag(r, 0x53485244u, 1)) return fail();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count != shards_.size()) return fail();
  dispatched_ = r.u64();
  for (auto& shard : shards_) {
    util::StateReader sub(r.str());
    if (!r.ok() || !shard->joiner->load_state(sub) || !sub.at_end())
      return fail();
  }
  return true;
}

core::JointResults run_sharded(const traffic::ScenarioConfig& scenario_config,
                               PoolFactory factory, std::size_t shards,
                               std::size_t dispatchers) {
  traffic::Scenario scenario(scenario_config);
  ShardedPipeline pipeline(std::move(factory), shards, 1024, 16 * 1024,
                           dispatchers);
  httplog::LogRecord record;
  while (scenario.next(record)) pipeline.process(record);
  return pipeline.finish();
}

}  // namespace divscrape::pipeline
