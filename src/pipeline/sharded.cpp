#include "pipeline/sharded.hpp"

#include <stdexcept>

#include "traffic/scenario.hpp"

namespace divscrape::pipeline {

ShardedPipeline::ShardedPipeline(PoolFactory factory, std::size_t shards,
                                 std::size_t batch_size,
                                 std::size_t max_backlog)
    : batch_size_(batch_size), max_backlog_(max_backlog) {
  if (shards == 0)
    throw std::invalid_argument("ShardedPipeline: shards must be >= 1");
  if (!factory)
    throw std::invalid_argument("ShardedPipeline: null factory");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->pool = factory();
    shard->joiner = std::make_unique<core::AlertJoiner>(shard->pool);
    // The dispatcher-side batch; the worker reserves its own swap buffer
    // (worker_loop), and swapping ping-pongs the two reserved capacities,
    // so no handoff vector regrows in steady state.
    shard->pending.reserve(batch_size_);
    shard->queue.reserve(2 * batch_size_);
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(shards);
  for (auto& shard : shards_) {
    workers_.emplace_back([this, &shard] { worker_loop(*shard); });
  }
}

ShardedPipeline::~ShardedPipeline() {
  if (!finished_) {
    // Abort path: wake workers so the threads can join.
    for (auto& shard : shards_) {
      std::lock_guard lock(shard->mutex);
      shard->done = true;
      shard->ready.notify_one();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }
}

void ShardedPipeline::worker_loop(Shard& shard) {
  std::vector<httplog::LogRecord> batch;
  // Swapping with the queue trades capacities, so both buffers must start
  // reserved or the queue re-regrows (under the mutex) after the first swap.
  batch.reserve(2 * batch_size_);
  for (;;) {
    {
      std::unique_lock lock(shard.mutex);
      shard.ready.wait(lock,
                       [&] { return !shard.queue.empty() || shard.done; });
      if (shard.queue.empty() && shard.done) return;
      batch.swap(shard.queue);
    }
    for (const auto& record : batch) {
      (void)shard.joiner->process(record);
    }
    {
      std::lock_guard lock(shard.mutex);
      shard.processed += batch.size();
    }
    shard.idle.notify_all();
    batch.clear();
  }
}

void ShardedPipeline::flush(Shard& shard) {
  if (shard.pending.empty()) return;
  {
    std::unique_lock lock(shard.mutex);
    shard.queue.insert(shard.queue.end(),
                       std::make_move_iterator(shard.pending.begin()),
                       std::make_move_iterator(shard.pending.end()));
    shard.enqueued += shard.pending.size();
    shard.ready.notify_one();  // wake the worker before (possibly) waiting
    if (max_backlog_ != 0) {
      // Backpressure: cap this shard's run-ahead so a fast dispatcher
      // cannot buffer the whole stream in memory. The worker drains the
      // backlog monotonically and signals idle per batch, so the wait
      // always terminates.
      shard.idle.wait(lock, [&] {
        return shard.enqueued - shard.processed <= max_backlog_;
      });
    }
  }
  shard.pending.clear();
}

void ShardedPipeline::drain() {
  if (finished_)
    throw std::logic_error("ShardedPipeline: drain() after finish()");
  for (auto& shard : shards_) {
    flush(*shard);
    std::unique_lock lock(shard->mutex);
    shard->idle.wait(lock,
                     [&] { return shard->processed == shard->enqueued; });
  }
}

ShardedPipeline::Shard& ShardedPipeline::route(
    const httplog::LogRecord& record) {
  if (finished_)
    throw std::logic_error("ShardedPipeline: process() after finish()");
  // Route by /24 so every record sharing detector state lands together.
  const auto key = httplog::Ipv4Hash{}(record.ip.prefix(24));
  return *shards_[key % shards_.size()];
}

void ShardedPipeline::after_enqueue(Shard& shard) {
  ++dispatched_;
  if (shard.pending.size() >= batch_size_) flush(shard);
}

void ShardedPipeline::process(const httplog::LogRecord& record) {
  Shard& shard = route(record);
  shard.pending.push_back(record);
  after_enqueue(shard);
}

void ShardedPipeline::process(httplog::LogRecord&& record) {
  Shard& shard = route(record);
  shard.pending.push_back(std::move(record));
  after_enqueue(shard);
}

core::JointResults ShardedPipeline::finish() {
  if (finished_)
    throw std::logic_error("ShardedPipeline: finish() called twice");
  finished_ = true;
  for (auto& shard : shards_) {
    flush(*shard);
    {
      std::lock_guard lock(shard->mutex);
      shard->done = true;
    }
    shard->ready.notify_one();
  }
  for (auto& w : workers_) w.join();

  core::JointResults merged = shards_.front()->joiner->results();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    merged.merge(shards_[s]->joiner->results());
  }
  return merged;
}

bool ShardedPipeline::save_state(util::StateWriter& w) {
  // The drain barrier leaves every worker blocked on an empty queue, and
  // its mutex handshakes order the workers' joiner writes before our reads.
  drain();
  std::vector<std::string> blobs;
  blobs.reserve(shards_.size());
  for (auto& shard : shards_) {
    util::StateWriter blob;
    if (!shard->joiner->save_state(blob)) return false;
    blobs.push_back(blob.take());
  }
  util::put_tag(w, 0x53485244u /* "SHRD" */, 1);
  w.u64(shards_.size());
  w.u64(dispatched_);
  for (const std::string& blob : blobs) w.str(blob);
  return true;
}

bool ShardedPipeline::load_state(util::StateReader& r) {
  drain();
  const auto fail = [&] {
    r.fail();
    for (auto& shard : shards_) shard->joiner->reset();
    dispatched_ = 0;
    return false;
  };
  if (!util::check_tag(r, 0x53485244u, 1)) return fail();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count != shards_.size()) return fail();
  dispatched_ = r.u64();
  for (auto& shard : shards_) {
    util::StateReader sub(r.str());
    if (!r.ok() || !shard->joiner->load_state(sub) || !sub.at_end())
      return fail();
  }
  return true;
}

core::JointResults run_sharded(const traffic::ScenarioConfig& scenario_config,
                               PoolFactory factory, std::size_t shards) {
  traffic::Scenario scenario(scenario_config);
  ShardedPipeline pipeline(std::move(factory), shards);
  httplog::LogRecord record;
  // Moving is safe: every actor step() starts from a fresh LogRecord{}, so
  // the moved-from state never leaks into the next emission.
  while (scenario.next(record)) pipeline.process(std::move(record));
  return pipeline.finish();
}

}  // namespace divscrape::pipeline
