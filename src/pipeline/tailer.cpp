#include "pipeline/tailer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <vector>

namespace divscrape::pipeline {

LogTailer::LogTailer(std::string path, ReplayEngine& engine, Config config)
    : path_(std::move(path)),
      engine_(&engine),
      config_(config),
      engine_base_(engine.stats()) {}

LogTailer::~LogTailer() {
  if (fd_ >= 0) ::close(fd_);
}

bool LogTailer::open_current() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  inode_ = static_cast<std::uint64_t>(st.st_ino);
  consumed_ = 0;
  return true;
}

bool LogTailer::resume(const Checkpoint& cp) {
  base_ = cp;
  base_.offset = 0;  // position is tracked live, not via the baseline
  base_.inode = 0;
  if (!open_current()) return false;
  if (cp.inode == 0 || cp.inode != inode_) return false;
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return false;
  if (static_cast<std::uint64_t>(st.st_size) < cp.offset) {
    // Truncated below the committed offset while we were down: the bytes
    // the offset referred to are gone, restart this incarnation.
    ++truncations_;
    return false;
  }
  if (::lseek(fd_, static_cast<off_t>(cp.offset), SEEK_SET) < 0) return false;
  consumed_ = cp.offset;
  return true;
}

std::size_t LogTailer::drain_fd() {
  std::size_t total = 0;
  std::vector<char> buffer(config_.chunk_bytes);
  for (;;) {
    const ssize_t n = ::read(fd_, buffer.data(), buffer.size());
    if (n <= 0) break;
    engine_->feed(std::string_view(buffer.data(),
                                   static_cast<std::size_t>(n)));
    consumed_ += static_cast<std::uint64_t>(n);
    total += static_cast<std::size_t>(n);
  }
  return total;
}

std::size_t LogTailer::poll() {
  std::size_t total = 0;
  for (;;) {
    if (fd_ < 0 && !open_current()) return total;  // not created yet
    total += drain_fd();

    // Truncate-and-restart: the open incarnation shrank below what we
    // already consumed (`> access.log`). The buffered partial line's bytes
    // no longer exist — drop it and restart from offset 0.
    struct stat fd_st {};
    if (::fstat(fd_, &fd_st) == 0 &&
        static_cast<std::uint64_t>(fd_st.st_size) < consumed_) {
      engine_->drop_partial_line();
      consumed_ = 0;
      ++truncations_;
      if (::lseek(fd_, 0, SEEK_SET) < 0) return total;
      continue;  // re-drain the restarted file
    }

    // Rotation: the path now names a different inode (rename + recreate).
    // Drain the renamed-away descriptor once more before switching — a
    // writer that had not yet reopened its log keeps appending to the old
    // inode after our drain above — then carry any torn partial line
    // across to the new incarnation in the framer.
    struct stat path_st {};
    if (::stat(path_.c_str(), &path_st) != 0) return total;  // renamed away
    if (static_cast<std::uint64_t>(path_st.st_ino) == inode_) return total;
    total += drain_fd();
    if (!open_current()) return total;
    ++rotations_;
  }
}

Checkpoint LogTailer::checkpoint() const {
  Checkpoint cp = base_;
  cp.inode = inode_;
  const auto partial =
      static_cast<std::uint64_t>(engine_->partial_bytes());
  // A partial spanning a rotation boundary can exceed the bytes consumed
  // from the current file; clamp (see header caveat).
  cp.offset = consumed_ > partial ? consumed_ - partial : 0;
  const ReplayStats& now = engine_->stats();
  cp.lines += now.lines - engine_base_.lines;
  cp.parsed += now.parsed - engine_base_.parsed;
  cp.skipped += now.skipped - engine_base_.skipped;
  cp.rotations += rotations_;
  cp.truncations += truncations_;
  return cp;
}

}  // namespace divscrape::pipeline
