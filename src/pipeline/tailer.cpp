#include "pipeline/tailer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <string_view>

#include "util/hash.hpp"

namespace divscrape::pipeline {

namespace {
/// Signature window: the first up-to-64 bytes of an incarnation — less
/// than one CLF line, captured before the first drain so truncate-regrow
/// is detectable from the very first poll that saw the file.
constexpr std::size_t kSigBytes = 64;
}  // namespace

LogTailer::LogTailer(std::string path, LineDecoder& decoder, Config config)
    : path_(std::move(path)),
      sink_(&decoder),
      config_(config),
      sink_base_(decoder.stats()),
      boundary_base_(decoder.boundary_skips()) {}

LogTailer::LogTailer(std::string path, ReplayEngine& engine, Config config)
    : LogTailer(std::move(path), engine.decoder(), config) {}

LogTailer::~LogTailer() {
  if (fd_ >= 0) ::close(fd_);
}

bool LogTailer::open_current() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  inode_ = static_cast<std::uint64_t>(st.st_ino);
  consumed_ = 0;
  sig_len_ = 0;
  sig_hash_ = 0;
  return true;
}

bool LogTailer::check_signature() {
  char buf[kSigBytes];
  const ssize_t m = ::pread(fd_, buf, sizeof buf, 0);
  if (m < 0) return true;  // cannot tell; never false-positive a truncation
  const auto have = static_cast<std::uint64_t>(m);
  if (have < sig_len_) return false;  // shrank below the signed prefix
  if (sig_len_ > 0 &&
      util::fnv1a64(std::string_view(buf, sig_len_)) != sig_hash_)
    return false;
  if (have > sig_len_) {
    // File grew while the signature was still short of the full window:
    // extend it (the verified old prefix is a prefix of the new one).
    sig_len_ = have;
    sig_hash_ = util::fnv1a64(std::string_view(buf, have));
  }
  return true;
}

void LogTailer::handle_truncation() {
  // The bytes behind the buffered partial line no longer exist.
  sink_->drop_partial_line();
  consumed_ = 0;
  sig_len_ = 0;
  sig_hash_ = 0;
  ++truncations_;
}

bool LogTailer::resume(const Checkpoint& cp) {
  base_ = cp;
  base_.offset = 0;  // position is tracked live, not via the baseline
  base_.inode = 0;
  base_.sig_len = 0;
  base_.sig_hash = 0;
  if (!open_current()) return false;
  if (cp.inode == 0 || cp.inode != inode_) return false;
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return false;
  if (static_cast<std::uint64_t>(st.st_size) < cp.offset) {
    // Truncated below the committed offset while we were down: the bytes
    // the offset referred to are gone, restart this incarnation.
    ++truncations_;
    return false;
  }
  if (cp.sig_len > 0) {
    sig_len_ = cp.sig_len;
    sig_hash_ = cp.sig_hash;
    if (!check_signature()) {
      // Same inode, big enough, different content: truncated and regrown
      // (or recreated onto a recycled inode) while we were down.
      sig_len_ = 0;
      sig_hash_ = 0;
      ++truncations_;
      return false;
    }
  }
  if (::lseek(fd_, static_cast<off_t>(cp.offset), SEEK_SET) < 0) return false;
  consumed_ = cp.offset;
  return true;
}

std::size_t LogTailer::drain_fd() {
  std::size_t total = 0;
  if (buffer_.size() < config_.chunk_bytes) buffer_.resize(config_.chunk_bytes);
  const auto read_fn = config_.read_fn ? config_.read_fn : +[](
      int fd, void* buf, std::size_t count) {
    return ::read(fd, buf, count);
  };
  for (;;) {
    const ssize_t n = read_fn(fd_, buffer_.data(), buffer_.size());
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not EOF: just retry
      // Real error: stop this drain and surface it; the file offset is
      // unchanged, so the next poll retries from the same position.
      last_errno_ = errno;
      ++read_errors_;
      break;
    }
    if (n == 0) {
      last_errno_ = 0;
      break;
    }
    sink_->feed(
        std::string_view(buffer_.data(), static_cast<std::size_t>(n)));
    consumed_ += static_cast<std::uint64_t>(n);
    total += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) == buffer_.size() &&
        buffer_.size() < config_.max_chunk_bytes) {
      // The file is outrunning us: double the read size (fewer syscalls
      // and framer hand-offs per drained megabyte).
      buffer_.resize(std::min(buffer_.size() * 2, config_.max_chunk_bytes));
    }
  }
  return total;
}

std::size_t LogTailer::poll() {
  std::size_t total = 0;
  for (;;) {
    if (fd_ < 0 && !open_current()) return total;  // not created yet

    // Truncate-and-restart detection BEFORE draining: either the open
    // incarnation shrank below what we already consumed (`> access.log`,
    // caught by size), or it was truncated AND regrown past the consumed
    // offset between polls — invisible to the size check, caught by the
    // first-bytes signature no longer matching. Either way the buffered
    // partial line's bytes no longer exist: drop it and restart at 0.
    struct stat fd_st {};
    if (::fstat(fd_, &fd_st) == 0) {
      const bool shrank =
          static_cast<std::uint64_t>(fd_st.st_size) < consumed_;
      if (shrank || !check_signature()) {
        handle_truncation();
        if (::lseek(fd_, 0, SEEK_SET) < 0) return total;
        // Sign the restarted incarnation BEFORE draining it, or a second
        // truncate-and-regrow before the next poll would go unseen (the
        // window this signature exists to close).
        (void)check_signature();
      }
    }

    total += drain_fd();

    // Rotation: the path now names a different inode (rename + recreate).
    // Drain the renamed-away descriptor once more before switching — a
    // writer that had not yet reopened its log keeps appending to the old
    // inode after our drain above — then carry any torn partial line
    // across to the new incarnation in the framer, flagging the boundary
    // so a bogus stitch (double-rotation loss) is detected downstream.
    struct stat path_st {};
    if (::stat(path_.c_str(), &path_st) != 0) return total;  // renamed away
    if (static_cast<std::uint64_t>(path_st.st_ino) == inode_) return total;
    total += drain_fd();
    if (sink_->partial_bytes() > 0) sink_->mark_incarnation_boundary();
    if (!open_current()) return total;
    ++rotations_;
  }
}

Checkpoint LogTailer::checkpoint() const {
  Checkpoint cp = base_;
  cp.inode = inode_;
  cp.sig_len = sig_len_;
  cp.sig_hash = sig_hash_;
  const auto partial = static_cast<std::uint64_t>(sink_->partial_bytes());
  // A partial spanning a rotation boundary can exceed the bytes consumed
  // from the current file; clamp (see header caveat).
  cp.offset = consumed_ > partial ? consumed_ - partial : 0;
  const ReplayStats& now = sink_->stats();
  cp.lines += now.lines - sink_base_.lines;
  cp.parsed += now.parsed - sink_base_.parsed;
  cp.skipped += now.skipped - sink_base_.skipped;
  cp.rotations += rotations_;
  cp.truncations += truncations_;
  cp.lost_incarnations += lost_incarnations();
  return cp;
}

}  // namespace divscrape::pipeline
