// Minimal tabular-learning substrate for the related-work baseline
// detectors (Stassopoulou & Dikaiakos's probabilistic web-robot detector,
// Stevanovic et al.'s feature-based crawler classifier).
//
// Binary classification only: label 1 = malicious/robot, 0 = benign.
#pragma once

#include <cstddef>
#include "util/span.hpp"
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace divscrape::ml {

/// One labelled example.
struct Sample {
  std::vector<double> features;
  int label = 0;  ///< 0 or 1
};

/// A named-column tabular dataset.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  /// Appends a sample; its feature count must match the schema.
  void add(std::vector<double> features, int label);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return feature_names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& feature_names()
      const noexcept {
    return feature_names_;
  }
  [[nodiscard]] const Sample& operator[](std::size_t i) const noexcept {
    return samples_[i];
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  /// Count of positive (label 1) samples.
  [[nodiscard]] std::size_t positives() const noexcept;

  /// Per-feature mean/stddev, for standardization.
  struct Standardization {
    std::vector<double> mean;
    std::vector<double> stddev;

    /// Applies (x - mean) / stddev in place; stddev 0 features pass through.
    void apply(std::vector<double>& features) const noexcept;
  };
  [[nodiscard]] Standardization standardization() const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<Sample> samples_;
};

/// Result of a train/test split.
struct DatasetSplit {
  Dataset train;
  Dataset test;
};

/// Deterministic shuffled split; `train_fraction` in (0, 1).
[[nodiscard]] DatasetSplit split_dataset(const Dataset& data,
                                         double train_fraction,
                                         stats::Rng& rng);

/// A trained binary classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;
  /// Probability-like score in [0, 1] that the sample is positive.
  [[nodiscard]] virtual double score(
      divscrape::span<const double> features) const = 0;
  /// Hard decision at the 0.5 operating point.
  [[nodiscard]] int predict(divscrape::span<const double> features) const {
    return score(features) >= 0.5 ? 1 : 0;
  }
};

}  // namespace divscrape::ml
