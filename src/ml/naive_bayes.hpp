// Gaussian naive Bayes — the classifier family behind Stassopoulou &
// Dikaiakos, "Web robot detection: A probabilistic reasoning approach"
// (Computer Networks 2009), which the paper cites as related work [2].
#pragma once

#include <vector>

#include "ml/dataset.hpp"

namespace divscrape::ml {

/// Binary Gaussian naive Bayes with per-class feature means/variances and a
/// variance floor for numerical stability.
class NaiveBayes final : public Classifier {
 public:
  /// Trains on the dataset. Throws if either class is absent.
  static NaiveBayes train(const Dataset& data, double variance_floor = 1e-6);

  [[nodiscard]] double score(divscrape::span<const double> features) const override;

  [[nodiscard]] double prior_positive() const noexcept { return prior_pos_; }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return mean_[0].size();
  }

 private:
  NaiveBayes() = default;

  double prior_pos_ = 0.5;
  // Index 0 = negative class, 1 = positive class.
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
};

}  // namespace divscrape::ml
