#include "ml/naive_bayes.hpp"

#include <cmath>
#include <stdexcept>

namespace divscrape::ml {

NaiveBayes NaiveBayes::train(const Dataset& data, double variance_floor) {
  const std::size_t d = data.feature_count();
  const std::size_t n = data.size();
  const std::size_t pos = data.positives();
  if (pos == 0 || pos == n)
    throw std::invalid_argument("NaiveBayes::train: needs both classes");

  NaiveBayes model;
  model.prior_pos_ = static_cast<double>(pos) / static_cast<double>(n);
  for (int c = 0; c < 2; ++c) {
    model.mean_[c].assign(d, 0.0);
    model.var_[c].assign(d, 0.0);
  }
  std::size_t counts[2] = {n - pos, pos};
  for (const auto& s : data.samples()) {
    auto& mean = model.mean_[s.label];
    for (std::size_t i = 0; i < d; ++i) mean[i] += s.features[i];
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& m : model.mean_[c]) m /= static_cast<double>(counts[c]);
  }
  for (const auto& s : data.samples()) {
    auto& mean = model.mean_[s.label];
    auto& var = model.var_[s.label];
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = s.features[i] - mean[i];
      var[i] += delta * delta;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& v : model.var_[c]) {
      v = v / static_cast<double>(counts[c]);
      if (v < variance_floor) v = variance_floor;
    }
  }
  return model;
}

double NaiveBayes::score(divscrape::span<const double> features) const {
  // Log-likelihood ratio, converted back to a posterior via the logistic.
  double log_odds =
      std::log(prior_pos_) - std::log1p(-prior_pos_);
  const std::size_t d = std::min(features.size(), mean_[0].size());
  for (std::size_t i = 0; i < d; ++i) {
    const double x = features[i];
    for (int c = 0; c < 2; ++c) {
      const double z = x - mean_[c][i];
      const double ll =
          -0.5 * (std::log(2.0 * 3.14159265358979 * var_[c][i]) +
                  z * z / var_[c][i]);
      log_odds += c == 1 ? ll : -ll;
    }
  }
  // Clamp to avoid overflow in exp.
  if (log_odds > 35.0) return 1.0;
  if (log_odds < -35.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-log_odds));
}

}  // namespace divscrape::ml
