// L2-regularized logistic regression trained by mini-batch gradient
// descent. Third learning-based baseline; also the scoring backbone for the
// ROC operating-point sweep (experiment E8).
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "stats/rng.hpp"

namespace divscrape::ml {

/// Training hyperparameters for LogisticRegression.
struct LogisticParams {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 60;
  std::size_t batch_size = 64;
  std::uint64_t seed = 7;
  bool standardize = true;
};

class LogisticRegression final : public Classifier {
 public:
  static LogisticRegression train(const Dataset& data,
                                  const LogisticParams& params = LogisticParams{});

  [[nodiscard]] double score(divscrape::span<const double> features) const override;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  LogisticRegression() = default;

  std::vector<double> weights_;
  double bias_ = 0.0;
  Dataset::Standardization standardization_;
  bool standardize_ = false;
};

}  // namespace divscrape::ml
