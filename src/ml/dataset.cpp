#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace divscrape::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void Dataset::add(std::vector<double> features, int label) {
  if (features.size() != feature_names_.size())
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  samples_.push_back({std::move(features), label == 0 ? 0 : 1});
}

std::size_t Dataset::positives() const noexcept {
  std::size_t n = 0;
  for (const auto& s : samples_) n += static_cast<std::size_t>(s.label);
  return n;
}

DatasetSplit split_dataset(const Dataset& data, double train_fraction,
                           stats::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("split_dataset: fraction must be in (0,1)");
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  DatasetSplit out{Dataset(data.feature_names()),
                   Dataset(data.feature_names())};
  const auto train_count = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(order.size())));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& s = data[order[i]];
    auto& dst = i < train_count ? out.train : out.test;
    dst.add(s.features, s.label);
  }
  return out;
}

void Dataset::Standardization::apply(
    std::vector<double>& features) const noexcept {
  for (std::size_t i = 0; i < features.size() && i < mean.size(); ++i) {
    if (stddev[i] > 0.0) features[i] = (features[i] - mean[i]) / stddev[i];
  }
}

Dataset::Standardization Dataset::standardization() const {
  Standardization st;
  const std::size_t d = feature_count();
  st.mean.assign(d, 0.0);
  st.stddev.assign(d, 0.0);
  if (samples_.empty()) return st;
  for (const auto& s : samples_) {
    for (std::size_t i = 0; i < d; ++i) st.mean[i] += s.features[i];
  }
  const auto n = static_cast<double>(samples_.size());
  for (auto& m : st.mean) m /= n;
  for (const auto& s : samples_) {
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = s.features[i] - st.mean[i];
      st.stddev[i] += delta * delta;
    }
  }
  for (auto& sd : st.stddev) sd = std::sqrt(sd / n);
  return st;
}

}  // namespace divscrape::ml
