#include "ml/features.hpp"

#include <cmath>

#include "httplog/useragent.hpp"

namespace divscrape::ml {

const std::vector<std::string>& session_feature_names() {
  static const std::vector<std::string> kNames = {
      "log_request_count",  // volume
      "request_rate",       // requests per second
      "interarrival_mean",  // pacing
      "interarrival_cv",    // pacing regularity (bots are regular)
      "asset_ratio",        // browsers pull assets
      "referer_ratio",      // browsers carry referers
      "error_4xx_ratio",    // broken automation
      "head_ratio",         // HEAD probing
      "template_entropy",   // navigation diversity
      "distinct_path_ratio",// sweep vs revisit
      "status_204_ratio",   // API polling
      "status_304_ratio",   // conditional-GET sweeps
      "ua_scripted",        // automation UA marker
      "ua_declared_bot",    // self-declared crawler
      "fetched_robots",     // robots.txt awareness
      "duration_s",         // session span
  };
  return kNames;
}

std::vector<double> extract_features(const httplog::Session& session) {
  const auto count = static_cast<double>(session.request_count());
  const auto& ua = session.ua_info();  // classified once per session
  const auto& status = session.status_counts();
  const double c204 = static_cast<double>(status.count(204));
  const double c304 = static_cast<double>(status.count(304));
  return {
      std::log1p(count),
      session.request_rate(),
      session.interarrival().mean(),
      session.interarrival().cv(),
      session.asset_ratio(),
      session.referer_ratio(),
      session.error_ratio(),
      session.head_ratio(),
      session.template_entropy(),
      count == 0.0
          ? 0.0
          : static_cast<double>(session.distinct_paths()) / count,
      count == 0.0 ? 0.0 : c204 / count,
      count == 0.0 ? 0.0 : c304 / count,
      ua.scripted ? 1.0 : 0.0,
      ua.declared_bot ? 1.0 : 0.0,
      session.fetched_robots() ? 1.0 : 0.0,
      session.duration_s(),
  };
}

Dataset build_session_dataset(
    const std::vector<httplog::Session>& sessions) {
  Dataset data(session_feature_names());
  for (const auto& s : sessions) {
    const auto truth = s.majority_truth();
    if (truth == httplog::Truth::kUnknown) continue;
    data.add(extract_features(s),
             truth == httplog::Truth::kMalicious ? 1 : 0);
  }
  return data;
}

}  // namespace divscrape::ml
