// Session-level feature extraction: bridges httplog::Session to the
// tabular learners. The feature set follows the web-robot-detection
// literature (request rate, asset and referer discipline, error ratios,
// navigation entropy, HEAD usage, robots.txt access, UA family).
#pragma once

#include <string>
#include <vector>

#include "httplog/session.hpp"
#include "ml/dataset.hpp"

namespace divscrape::ml {

/// Names of the extracted features, in extraction order.
[[nodiscard]] const std::vector<std::string>& session_feature_names();

/// Extracts the numeric feature vector for one session.
[[nodiscard]] std::vector<double> extract_features(
    const httplog::Session& session);

/// Builds a labelled dataset from sessions (label = majority truth of the
/// session's records; sessions with unknown truth are skipped).
[[nodiscard]] Dataset build_session_dataset(
    const std::vector<httplog::Session>& sessions);

}  // namespace divscrape::ml
