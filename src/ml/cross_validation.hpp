// k-fold cross-validation for the learned baseline detectors: the model-
// selection step a practitioner runs before trusting a trained classifier
// enough to deploy it next to the production tools.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "stats/rng.hpp"
#include "stats/running_stats.hpp"

namespace divscrape::ml {

/// Trains a classifier on a dataset (type-erased factory).
using TrainFn =
    std::function<std::unique_ptr<Classifier>(const Dataset& train)>;

/// Per-fold and aggregate cross-validation outcome.
struct CrossValidationResult {
  std::vector<ClassifierMetrics> folds;
  stats::RunningStats accuracy;
  stats::RunningStats sensitivity;
  stats::RunningStats specificity;
  stats::RunningStats auc;
};

/// Runs k-fold cross-validation with a deterministic shuffle.
/// Requires k >= 2 and data.size() >= k.
[[nodiscard]] CrossValidationResult cross_validate(const Dataset& data,
                                                   const TrainFn& train,
                                                   std::size_t k,
                                                   stats::Rng& rng);

}  // namespace divscrape::ml
