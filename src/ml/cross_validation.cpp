#include "ml/cross_validation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace divscrape::ml {

CrossValidationResult cross_validate(const Dataset& data,
                                     const TrainFn& train, std::size_t k,
                                     stats::Rng& rng) {
  if (k < 2) throw std::invalid_argument("cross_validate: k must be >= 2");
  if (data.size() < k)
    throw std::invalid_argument("cross_validate: fewer samples than folds");
  if (!train) throw std::invalid_argument("cross_validate: null trainer");

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  CrossValidationResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    Dataset train_set(data.feature_names());
    Dataset test_set(data.feature_names());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& sample = data[order[i]];
      if (i % k == fold) {
        test_set.add(sample.features, sample.label);
      } else {
        train_set.add(sample.features, sample.label);
      }
    }
    // A fold whose training partition is single-class cannot train every
    // model family; skip it (can only happen on tiny/degenerate data).
    if (train_set.positives() == 0 ||
        train_set.positives() == train_set.size())
      continue;

    const auto model = train(train_set);
    MetricsAccumulator acc;
    std::vector<double> scores;
    std::vector<int> labels;
    scores.reserve(test_set.size());
    labels.reserve(test_set.size());
    for (const auto& sample : test_set.samples()) {
      acc.add(sample.label, model->predict(sample.features));
      scores.push_back(model->score(sample.features));
      labels.push_back(sample.label);
    }
    result.folds.push_back(acc.metrics());
    result.accuracy.add(acc.metrics().accuracy());
    result.sensitivity.add(acc.metrics().sensitivity());
    result.specificity.add(acc.metrics().specificity());
    result.auc.add(auc(scores, labels));
  }
  return result;
}

}  // namespace divscrape::ml
