#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace divscrape::ml {

namespace {
double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double ClassifierMetrics::accuracy() const noexcept {
  return ratio(tp + tn, total());
}
double ClassifierMetrics::sensitivity() const noexcept {
  return ratio(tp, tp + fn);
}
double ClassifierMetrics::specificity() const noexcept {
  return ratio(tn, tn + fp);
}
double ClassifierMetrics::precision() const noexcept {
  return ratio(tp, tp + fp);
}
double ClassifierMetrics::f1() const noexcept {
  const double p = precision();
  const double r = sensitivity();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}
double ClassifierMetrics::false_positive_rate() const noexcept {
  return ratio(fp, fp + tn);
}

void MetricsAccumulator::add(int label, int prediction) noexcept {
  if (label != 0) {
    prediction != 0 ? ++m_.tp : ++m_.fn;
  } else {
    prediction != 0 ? ++m_.fp : ++m_.tn;
  }
}

void MetricsAccumulator::merge(const MetricsAccumulator& other) noexcept {
  m_.tp += other.m_.tp;
  m_.fp += other.m_.fp;
  m_.tn += other.m_.tn;
  m_.fn += other.m_.fn;
}

std::vector<RocPoint> roc_curve(divscrape::span<const double> scores,
                                divscrape::span<const int> labels) {
  const std::size_t n = std::min(scores.size(), labels.size());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::uint64_t total_pos = 0;
  for (std::size_t i = 0; i < n; ++i)
    total_pos += static_cast<std::uint64_t>(labels[i] != 0);
  const std::uint64_t total_neg = n - total_pos;

  std::vector<RocPoint> curve;
  curve.push_back({1.0 + 1e-9, 0.0, 0.0});
  std::uint64_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < n) {
    const double t = scores[order[i]];
    // Consume all samples tied at this threshold together.
    while (i < n && scores[order[i]] == t) {
      labels[order[i]] != 0 ? ++tp : ++fp;
      ++i;
    }
    curve.push_back({t, ratio(tp, total_pos), ratio(fp, total_neg)});
  }
  return curve;
}

double auc(divscrape::span<const double> scores, divscrape::span<const int> labels) {
  const auto curve = roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    area += dx * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return area;
}

}  // namespace divscrape::ml
