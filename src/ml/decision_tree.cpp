#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace divscrape::ml {

namespace {

double gini(std::size_t pos, std::size_t total) noexcept {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree DecisionTree::train(const Dataset& data,
                                 const TreeParams& params) {
  DecisionTree tree;
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  if (!indices.empty())
    tree.build(data, indices, 0, indices.size(), 0, params);
  else
    tree.nodes_.push_back({});  // degenerate: empty training set
  return tree;
}

std::size_t DecisionTree::build(const Dataset& data,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                std::size_t depth, const TreeParams& params) {
  depth_ = std::max(depth_, depth);
  const std::size_t node_idx = nodes_.size();
  nodes_.push_back({});

  const std::size_t n = end - begin;
  std::size_t pos = 0;
  for (std::size_t i = begin; i < end; ++i)
    pos += static_cast<std::size_t>(data[indices[i]].label);
  nodes_[node_idx].positive_fraction =
      n == 0 ? 0.0 : static_cast<double>(pos) / static_cast<double>(n);

  const bool pure = pos == 0 || pos == n;
  if (pure || depth >= params.max_depth || n < params.min_samples_split)
    return node_idx;

  // Exhaustive best split over all features; sort-and-scan per feature.
  const double parent_impurity = gini(pos, n);
  double best_gain = 1e-12;
  std::size_t best_feature = SIZE_MAX;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> column(n);
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto& s = data[indices[begin + i]];
      column[i] = {s.features[f], s.label};
    }
    std::sort(column.begin(), column.end());
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_pos += static_cast<std::size_t>(column[i].second);
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < params.min_samples_leaf ||
          right_n < params.min_samples_leaf)
        continue;
      const double weighted =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(pos - left_pos, right_n)) /
          static_cast<double>(n);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }
  if (best_feature == SIZE_MAX) return node_idx;

  // Partition indices by the chosen split (stable for determinism).
  const auto mid_it = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return data[idx].features[best_feature] <= best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_idx;

  nodes_[node_idx].feature = best_feature;
  nodes_[node_idx].threshold = best_threshold;
  const auto left = build(data, indices, begin, mid, depth + 1, params);
  nodes_[node_idx].left = static_cast<std::int32_t>(left);
  const auto right = build(data, indices, mid, end, depth + 1, params);
  nodes_[node_idx].right = static_cast<std::int32_t>(right);
  return node_idx;
}

double DecisionTree::score(divscrape::span<const double> features) const {
  if (nodes_.empty()) return 0.0;
  std::size_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.feature == SIZE_MAX || node.left < 0 || node.right < 0)
      return node.positive_fraction;
    const double x =
        node.feature < features.size() ? features[node.feature] : 0.0;
    idx = static_cast<std::size_t>(x <= node.threshold ? node.left
                                                       : node.right);
  }
}

}  // namespace divscrape::ml
