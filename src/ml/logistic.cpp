#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace divscrape::ml {

namespace {

double sigmoid(double z) noexcept {
  if (z > 35.0) return 1.0;
  if (z < -35.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

LogisticRegression LogisticRegression::train(const Dataset& data,
                                             const LogisticParams& params) {
  LogisticRegression model;
  const std::size_t d = data.feature_count();
  model.weights_.assign(d, 0.0);
  model.standardize_ = params.standardize;
  if (params.standardize) model.standardization_ = data.standardization();
  if (data.empty()) return model;

  stats::Rng rng(params.seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> x;
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    // Shuffle each epoch (Fisher-Yates).
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    std::vector<double> grad_w(d, 0.0);
    double grad_b = 0.0;
    std::size_t in_batch = 0;
    const double lr = params.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (const std::size_t idx : order) {
      const auto& s = data[idx];
      x = s.features;
      if (model.standardize_) model.standardization_.apply(x);
      double z = model.bias_;
      for (std::size_t i = 0; i < d; ++i) z += model.weights_[i] * x[i];
      const double err = sigmoid(z) - static_cast<double>(s.label);
      for (std::size_t i = 0; i < d; ++i) grad_w[i] += err * x[i];
      grad_b += err;
      if (++in_batch == params.batch_size) {
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (std::size_t i = 0; i < d; ++i) {
          model.weights_[i] -=
              lr * (grad_w[i] * inv + params.l2 * model.weights_[i]);
          grad_w[i] = 0.0;
        }
        model.bias_ -= lr * grad_b * inv;
        grad_b = 0.0;
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      const double inv = 1.0 / static_cast<double>(in_batch);
      for (std::size_t i = 0; i < d; ++i)
        model.weights_[i] -=
            lr * (grad_w[i] * inv + params.l2 * model.weights_[i]);
      model.bias_ -= lr * grad_b * inv;
    }
  }
  return model;
}

double LogisticRegression::score(divscrape::span<const double> features) const {
  std::vector<double> x(features.begin(), features.end());
  if (standardize_) standardization_.apply(x);
  double z = bias_;
  const std::size_t d = std::min(x.size(), weights_.size());
  for (std::size_t i = 0; i < d; ++i) z += weights_[i] * x[i];
  return sigmoid(z);
}

}  // namespace divscrape::ml
