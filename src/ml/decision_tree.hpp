// CART-style binary decision tree — the classifier family used by
// Stevanovic, An & Vlajic, "Feature evaluation for web crawler detection
// with data mining techniques" (ESWA 2012), cited by the paper as [1].
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ml/dataset.hpp"

namespace divscrape::ml {

/// Training hyperparameters for DecisionTree.
struct TreeParams {
  std::size_t max_depth = 8;
  std::size_t min_samples_split = 20;
  std::size_t min_samples_leaf = 5;
};

/// Axis-aligned decision tree trained by recursive Gini-impurity splits.
class DecisionTree final : public Classifier {
 public:
  static DecisionTree train(const Dataset& data,
                            const TreeParams& params = TreeParams{});

  [[nodiscard]] double score(divscrape::span<const double> features) const override;

  /// Number of nodes (diagnostics / tests).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  struct Node {
    // Leaf when feature == SIZE_MAX.
    std::size_t feature = SIZE_MAX;
    double threshold = 0.0;
    std::int32_t left = -1;   ///< index of the <= branch
    std::int32_t right = -1;  ///< index of the > branch
    double positive_fraction = 0.0;  ///< leaf posterior
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end, std::size_t depth,
                    const TreeParams& params);

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace divscrape::ml
