// Classifier evaluation: threshold metrics and ROC/AUC from scores.
#pragma once

#include <cstdint>
#include "util/span.hpp"
#include <vector>

namespace divscrape::ml {

/// Standard binary-classification counts and derived rates.
struct ClassifierMetrics {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return tp + fp + tn + fn;
  }
  [[nodiscard]] double accuracy() const noexcept;
  /// Sensitivity / recall / TPR.
  [[nodiscard]] double sensitivity() const noexcept;
  /// Specificity / TNR.
  [[nodiscard]] double specificity() const noexcept;
  [[nodiscard]] double precision() const noexcept;
  [[nodiscard]] double f1() const noexcept;
  [[nodiscard]] double false_positive_rate() const noexcept;
};

/// Accumulates metrics from (label, prediction) pairs.
class MetricsAccumulator {
 public:
  void add(int label, int prediction) noexcept;
  void merge(const MetricsAccumulator& other) noexcept;
  [[nodiscard]] const ClassifierMetrics& metrics() const noexcept {
    return m_;
  }

 private:
  ClassifierMetrics m_;
};

/// One ROC point.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
};

/// ROC curve from scores; points are sorted by descending threshold.
[[nodiscard]] std::vector<RocPoint> roc_curve(divscrape::span<const double> scores,
                                              divscrape::span<const int> labels);

/// Area under the ROC curve via the rank statistic (handles ties).
[[nodiscard]] double auc(divscrape::span<const double> scores,
                         divscrape::span<const int> labels);

}  // namespace divscrape::ml
