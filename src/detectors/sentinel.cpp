#include "detectors/sentinel.hpp"

#include <algorithm>

#include "httplog/session.hpp"  // kMaxLocalUaTokens
#include "httplog/useragent.hpp"

namespace divscrape::detectors {

using httplog::Timestamp;
using httplog::UaFamily;

SentinelDetector::SentinelDetector(SentinelConfig config)
    : config_(config) {}

void SentinelDetector::IpState::push(Timestamp t) {
  if (count == ring.size()) {
    // Linearize into a doubled ring (oldest entry back at index 0).
    std::vector<Timestamp> grown(ring.empty() ? 8 : ring.size() * 2,
                                 Timestamp{0});
    for (std::size_t i = 0; i < count; ++i)
      grown[i] = ring[(head + i) % ring.size()];
    ring = std::move(grown);
    head = 0;
  }
  if (count != 0 && t < at(count - 1)) monotone = false;
  ring[(head + count) % ring.size()] = t;
  ++count;
}

int SentinelDetector::IpState::count_since(Timestamp cutoff) const noexcept {
  if (monotone) {
    // Binary search for the first in-window entry (the ring is sorted).
    std::size_t lo = 0;
    std::size_t hi = count;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (at(mid) < cutoff) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(count - lo);
  }
  // Out-of-order arrivals (late merge emissions): preserve the historical
  // newest-backwards scan, which stops at the first too-old entry.
  int n = 0;
  for (std::size_t i = count; i-- > 0;) {
    if (at(i) < cutoff) break;
    ++n;
  }
  return n;
}

void SentinelDetector::reset() {
  ips_.clear();
  subnets_.clear();
  local_uas_.clear();
  stamped_ua_cache_.clear();
  local_ua_cache_.clear();
  evaluations_ = 0;
  now_ = Timestamp{0};
}

const httplog::UserAgentInfo& SentinelDetector::ua_info_for(
    const httplog::LogRecord& record) {
  // One shared token policy: ua_key_token handles the stamped/local split
  // and the growth cap; this function only maps tokens to cached results.
  const std::uint32_t key = httplog::ua_key_token(record, local_uas_);
  const bool local = (key & httplog::kLocalUaTokenBit) != 0;
  const std::uint32_t token = key & ~httplog::kLocalUaTokenBit;
  if ((key & httplog::kHashedUaTokenBit) != 0 ||
      token > httplog::kMaxLocalUaTokens) {
    // Past either cap (local interner full, or a stamped stream with more
    // distinct UAs than we dense-cache): classify directly — the seed's
    // per-record behaviour — rather than growing state.
    uncached_ua_info_ = httplog::classify_user_agent(record.user_agent);
    return uncached_ua_info_;
  }
  auto& cache = local ? local_ua_cache_ : stamped_ua_cache_;
  if (cache.size() < token) cache.resize(token);
  UaCacheEntry& entry = cache[token - 1];
  if (!entry.valid) {
    entry.info = httplog::classify_user_agent(record.user_agent);
    entry.valid = true;
  }
  return entry.info;
}

std::size_t SentinelDetector::flagged_ips() const noexcept {
  std::size_t n = 0;
  for (const auto& [ip, state] : ips_)
    if (now_ < state.flagged_until) ++n;
  return n;
}

std::size_t SentinelDetector::flagged_subnets() const noexcept {
  std::size_t n = 0;
  for (const auto& [net, state] : subnets_)
    if (now_ < state.flagged_until) ++n;
  return n;
}

void SentinelDetector::flag_ip(IpState& state, httplog::Ipv4 ip,
                               Timestamp now) {
  state.flagged_until =
      now + httplog::seconds_to_micros(config_.reputation_ttl_s);
  if (!config_.enable_subnet_escalation) return;
  auto& subnet = subnets_[ip.prefix(24)];
  if (!state.counted_in_subnet) {
    state.counted_in_subnet = true;
    ++subnet.violator_ips;
  }
  if (subnet.violator_ips >= config_.subnet_flag_threshold) {
    subnet.flagged_until =
        now + httplog::seconds_to_micros(config_.reputation_ttl_s);
  }
}

void SentinelDetector::maybe_sweep(Timestamp now) {
  // Lazy state GC so multi-day streams don't accumulate every address ever
  // seen: drop idle, unflagged clients once per ~100k evaluations.
  if (++evaluations_ % 100'000 != 0) return;
  const auto idle_cutoff = now + (-httplog::seconds_to_micros(3600.0));
  for (auto it = ips_.begin(); it != ips_.end();) {
    const auto& s = it->second;
    if (s.last_seen < idle_cutoff && s.flagged_until < now &&
        !s.counted_in_subnet) {
      it = ips_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

constexpr std::uint32_t kSentinelMagic = 0x534E544Cu;  // "SNTL"

void put_config(util::StateWriter& w, const SentinelConfig& c) {
  w.f64(c.burst_window_s);
  w.i64(c.burst_limit);
  w.f64(c.sustained_window_s);
  w.i64(c.sustained_limit);
  w.f64(c.reputation_ttl_s);
  w.i64(c.subnet_flag_threshold);
  w.i64(c.stale_fingerprint_min_rate);
  w.boolean(c.enable_reputation);
  w.boolean(c.enable_subnet_escalation);
  w.boolean(c.enable_fingerprinting);
}

[[nodiscard]] bool config_matches(util::StateReader& r,
                                  const SentinelConfig& c) {
  bool same = r.f64() == c.burst_window_s;
  same &= r.i64() == c.burst_limit;
  same &= r.f64() == c.sustained_window_s;
  same &= r.i64() == c.sustained_limit;
  same &= r.f64() == c.reputation_ttl_s;
  same &= r.i64() == c.subnet_flag_threshold;
  same &= r.i64() == c.stale_fingerprint_min_rate;
  same &= r.boolean() == c.enable_reputation;
  same &= r.boolean() == c.enable_subnet_escalation;
  same &= r.boolean() == c.enable_fingerprinting;
  return same && r.ok();
}

}  // namespace

bool SentinelDetector::save_state(util::StateWriter& w) const {
  util::put_tag(w, kSentinelMagic, 1);
  put_config(w, config_);
  w.u64(evaluations_);
  w.i64(now_.micros());
  local_uas_.save_state(w);

  std::vector<std::pair<httplog::Ipv4, const IpState*>> ips;
  ips.reserve(ips_.size());
  for (const auto& [ip, state] : ips_) ips.emplace_back(ip, &state);
  std::sort(ips.begin(), ips.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(ips.size());
  for (const auto& [ip, state] : ips) {
    w.u32(ip.value());
    w.u64(state->count);
    for (std::size_t j = 0; j < state->count; ++j)
      w.i64(state->at(j).micros());  // oldest-first: same bytes as before
    w.i64(state->flagged_until.micros());
    w.boolean(state->counted_in_subnet);
    w.i64(state->last_seen.micros());
  }

  std::vector<std::pair<httplog::Ipv4, SubnetState>> subnets(
      subnets_.begin(), subnets_.end());
  std::sort(subnets.begin(), subnets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(subnets.size());
  for (const auto& [net, state] : subnets) {
    w.u32(net.value());
    w.i64(state.violator_ips);
    w.i64(state.flagged_until.micros());
  }
  return true;
}

bool SentinelDetector::load_state(util::StateReader& r) {
  reset();
  const auto fail = [&] {
    r.fail();
    reset();
    return false;
  };
  if (!util::check_tag(r, kSentinelMagic, 1)) return false;
  if (!config_matches(r, config_)) return fail();
  evaluations_ = r.u64();
  now_ = Timestamp{r.i64()};
  if (!local_uas_.load_state(r)) return fail();

  const std::uint64_t ip_count = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < ip_count; ++i) {
    const httplog::Ipv4 ip{r.u32()};
    IpState state;
    const std::uint64_t recent = r.u64();
    if (!r.ok()) break;
    for (std::uint64_t j = 0; r.ok() && j < recent; ++j)
      state.push(Timestamp{r.i64()});  // push() rederives the monotone flag
    state.flagged_until = Timestamp{r.i64()};
    state.counted_in_subnet = r.boolean();
    state.last_seen = Timestamp{r.i64()};
    if (r.ok()) ips_.emplace(ip, std::move(state));
  }

  const std::uint64_t subnet_count = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < subnet_count; ++i) {
    const httplog::Ipv4 net{r.u32()};
    SubnetState state;
    state.violator_ips = static_cast<int>(r.i64());
    state.flagged_until = Timestamp{r.i64()};
    if (r.ok()) subnets_.emplace(net, state);
  }
  if (!r.ok()) return fail();
  return true;
}

Verdict SentinelDetector::evaluate(const httplog::LogRecord& record) {
  const Timestamp now = record.time;
  now_ = now;
  maybe_sweep(now);

  const auto& ua = ua_info_for(record);
  // Good-bot allowlist: declared crawlers pass (verified out-of-band in
  // real deployments).
  if (ua.family == UaFamily::kDeclaredBot) return {};

  auto& state = ips_[record.ip];
  state.last_seen = now;
  state.push(now);
  // Eager prune (not lazy-on-read): keeps the serialized window identical
  // to the historical deque's and bounds the ring at the sustained window.
  const auto sustained_cutoff =
      now + (-httplog::seconds_to_micros(config_.sustained_window_s));
  while (state.count != 0 && state.front() < sustained_cutoff)
    state.pop_front();

  // 1. Automation signatures alert and blacklist immediately.
  if (ua.family == UaFamily::kScriptClient ||
      ua.family == UaFamily::kHeadless) {
    flag_ip(state, record.ip, now);
    return {true, 1.0, AlertReason::kBadUserAgent};
  }

  // 2. Reputation: previously-flagged client.
  if (config_.enable_reputation && now < state.flagged_until) {
    state.flagged_until =
        now + httplog::seconds_to_micros(config_.reputation_ttl_s);
    return {true, 0.95, AlertReason::kIpReputation};
  }

  // 3. Flagged neighbourhood (/24 escalation).
  if (config_.enable_subnet_escalation) {
    const auto subnet_it = subnets_.find(record.ip.prefix(24));
    if (subnet_it != subnets_.end() &&
        now < subnet_it->second.flagged_until) {
      subnet_it->second.flagged_until =
          now + httplog::seconds_to_micros(config_.reputation_ttl_s);
      return {true, 0.85, AlertReason::kSubnetReputation};
    }
  }

  // 4. Rate tripwires.
  const auto burst_cutoff =
      now + (-httplog::seconds_to_micros(config_.burst_window_s));
  const int burst = state.count_since(burst_cutoff);
  const int sustained = static_cast<int>(state.count);
  if (burst >= config_.burst_limit || sustained >= config_.sustained_limit) {
    flag_ip(state, record.ip, now);
    return {true, 1.0, AlertReason::kRateLimit};
  }

  // 5. Stale-browser fingerprint plus real activity.
  if (config_.enable_fingerprinting && ua.stale_fingerprint &&
      sustained >= config_.stale_fingerprint_min_rate) {
    flag_ip(state, record.ip, now);
    return {true, 0.9, AlertReason::kFingerprint};
  }

  // 6. Missing UA: alert without blacklisting (too weak a signal alone).
  if (ua.family == UaFamily::kEmpty) {
    return {true, 0.7, AlertReason::kBadUserAgent};
  }

  // Graded suspicion for the ROC sweep: progress toward the rate limits.
  const double progress = std::max(
      static_cast<double>(burst) / config_.burst_limit,
      static_cast<double>(sustained) / config_.sustained_limit);
  return {false, std::min(0.65, 0.65 * progress), AlertReason::kNone};
}

}  // namespace divscrape::detectors
