// SentinelDetector: the commercial bot-mitigation stand-in (the paper's
// Distil Networks role).
//
// Built from the mechanism family commercial products document publicly:
//
//   * user-agent screening  — automation-framework and headless-browser
//     signatures alert immediately and blacklist the client;
//   * rate tripwires        — per-IP burst (10 req / 10 s) and sustained
//     (40 req / 60 s) limits;
//   * IP reputation         — once flagged, every later request from the
//     address alerts until the flag's TTL lapses (refreshed on activity);
//   * /24 escalation        — when several distinct addresses of one /24
//     are flagged, the whole subnet is flagged: remaining fleet members
//     are caught from their first request, at the cost of collateral
//     false positives on benign neighbours;
//   * fingerprint heuristic — ancient browser versions plus activity;
//   * good-bot allowlist    — declared crawlers are never alerted (real
//     products verify them via reverse DNS; the simulation has no UA
//     spoofing of declared crawlers, so the allowlist is exact here).
//
// The *behavioural signature* that matters for the reproduction: Sentinel
// alerts the most in total, keeps alerting flagged clients long after the
// triggering burst (reputation persistence), and sweeps in borderline
// clients via subnet escalation — the paper's "Distil only" mass.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detectors/detector.hpp"
#include "httplog/ip.hpp"
#include "httplog/timestamp.hpp"
#include "httplog/useragent.hpp"
#include "util/interner.hpp"

namespace divscrape::detectors {

/// Tuning knobs (defaults are the calibrated reproduction settings).
struct SentinelConfig {
  double burst_window_s = 10.0;
  int burst_limit = 25;
  double sustained_window_s = 60.0;
  int sustained_limit = 60;
  double reputation_ttl_s = 24.0 * 3600.0;
  /// Distinct flagged IPs within a /24 that flag the whole subnet.
  int subnet_flag_threshold = 3;
  /// Stale-browser fingerprints need this much activity to alert.
  int stale_fingerprint_min_rate = 8;  ///< per sustained window
  /// Ablation switches (experiment E7/E9).
  bool enable_reputation = true;
  bool enable_subnet_escalation = true;
  bool enable_fingerprinting = true;
};

class SentinelDetector final : public Detector {
 public:
  explicit SentinelDetector(SentinelConfig config = SentinelConfig{});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sentinel";
  }
  [[nodiscard]] Verdict evaluate(const httplog::LogRecord& record) override;
  void reset() override;

  /// Warm-checkpoint dump/restore: the reputation maps (sorted for
  /// deterministic bytes), the local UA interner, and the sweep counters.
  /// The UA classification caches are recomputable memos and are NOT
  /// serialized. A config fingerprint guards restores into a differently
  /// tuned instance.
  [[nodiscard]] bool save_state(util::StateWriter& w) const override;
  [[nodiscard]] bool load_state(util::StateReader& r) override;

  [[nodiscard]] const SentinelConfig& config() const noexcept {
    return config_;
  }
  /// Currently-flagged IP count (diagnostics).
  [[nodiscard]] std::size_t flagged_ips() const noexcept;
  [[nodiscard]] std::size_t flagged_subnets() const noexcept;

 private:
  /// Per-IP arrival times over the sustained window, as a flat ring (PR 9;
  /// was std::deque). The deque re-walked chunked heap nodes on every
  /// record — both the front prune and the reverse burst scan; the ring is
  /// one contiguous allocation, and while the timestamps are monotone
  /// (true for every time-ordered stream; a late merge emission clears the
  /// flag) the burst count is a binary search instead of an O(burst)
  /// reverse scan. Semantics are unchanged either way: when the ring is
  /// sorted the scan and the search count the same entries, and a
  /// non-monotone ring falls back to the scan. Serialization iterates
  /// oldest-first — identical bytes to the deque's.
  struct IpState {
    std::vector<httplog::Timestamp> ring;  ///< pruned to sustained window
    std::size_t head = 0;
    std::size_t count = 0;
    /// True while arrivals are non-decreasing (enables the binary search).
    /// Derived state: recomputed on load, conservatively sticky-false.
    bool monotone = true;
    httplog::Timestamp flagged_until{0};
    bool counted_in_subnet = false;
    httplog::Timestamp last_seen{0};

    [[nodiscard]] httplog::Timestamp at(std::size_t i) const noexcept {
      return ring[(head + i) % ring.size()];
    }
    [[nodiscard]] httplog::Timestamp front() const noexcept {
      return ring[head];
    }
    void push(httplog::Timestamp t);
    void pop_front() noexcept {
      head = (head + 1) % ring.size();
      --count;
    }
    /// Entries with timestamp >= cutoff, counted from the newest end —
    /// exactly the deque's reverse-scan semantics.
    [[nodiscard]] int count_since(httplog::Timestamp cutoff) const noexcept;
  };
  struct SubnetState {
    int violator_ips = 0;
    httplog::Timestamp flagged_until{0};
  };

  void flag_ip(IpState& state, httplog::Ipv4 ip, httplog::Timestamp now);
  void maybe_sweep(httplog::Timestamp now);
  /// Token-memoized UA classification: the ~20 case-insensitive substring
  /// scans of classify_user_agent() run once per distinct UA, not once per
  /// record. Stamped and locally-interned tokens live in separate dense
  /// caches (their token spaces are independent). UA cardinality is
  /// attacker-controlled, so both caches are capped at kMaxLocalUaTokens;
  /// past the cap the record is classified directly (the seed's per-record
  /// behaviour) instead of growing state.
  [[nodiscard]] const httplog::UserAgentInfo& ua_info_for(
      const httplog::LogRecord& record);

  struct UaCacheEntry {
    httplog::UserAgentInfo info;
    bool valid = false;
  };

  SentinelConfig config_;
  std::unordered_map<httplog::Ipv4, IpState, httplog::Ipv4Hash> ips_;
  std::unordered_map<httplog::Ipv4, SubnetState, httplog::Ipv4Hash> subnets_;
  util::StringInterner local_uas_;
  std::vector<UaCacheEntry> stamped_ua_cache_;  ///< index: ua_token - 1
  std::vector<UaCacheEntry> local_ua_cache_;    ///< index: local token - 1
  httplog::UserAgentInfo uncached_ua_info_;     ///< past-cap scratch result
  std::uint64_t evaluations_ = 0;
  httplog::Timestamp now_{0};
};

}  // namespace divscrape::detectors
