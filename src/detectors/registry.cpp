#include "detectors/registry.hpp"

#include <utility>

#include "detectors/arcane.hpp"
#include "detectors/baselines.hpp"
#include "detectors/learned.hpp"
#include "detectors/sentinel.hpp"
#include "httplog/session.hpp"
#include "ml/decision_tree.hpp"
#include "ml/features.hpp"
#include "ml/naive_bayes.hpp"

namespace divscrape::detectors {

std::vector<std::unique_ptr<Detector>> make_paper_pair() {
  std::vector<std::unique_ptr<Detector>> pool;
  pool.push_back(std::make_unique<SentinelDetector>());
  pool.push_back(std::make_unique<ArcaneDetector>());
  return pool;
}

std::vector<std::unique_ptr<Detector>> make_learned_detectors(
    const traffic::ScenarioConfig& training_config) {
  // Generate the labelled training stream and sessionize it.
  traffic::Scenario scenario(training_config);
  std::vector<httplog::Session> sessions;
  httplog::Sessionizer sessionizer(
      1800.0,
      [&sessions](httplog::Session&& s) { sessions.push_back(std::move(s)); });
  httplog::LogRecord record;
  while (scenario.next(record)) sessionizer.add(record);
  sessionizer.flush_all();

  const ml::Dataset data = ml::build_session_dataset(sessions);

  std::vector<std::unique_ptr<Detector>> out;
  out.push_back(std::make_unique<LearnedDetector>(
      "naive-bayes",
      std::make_shared<ml::NaiveBayes>(ml::NaiveBayes::train(data))));
  out.push_back(std::make_unique<LearnedDetector>(
      "decision-tree",
      std::make_shared<ml::DecisionTree>(ml::DecisionTree::train(data))));
  return out;
}

std::vector<std::unique_ptr<Detector>> make_full_pool(
    const traffic::ScenarioConfig& scenario_config) {
  auto pool = make_paper_pair();
  pool.push_back(std::make_unique<RateLimitDetector>());
  pool.push_back(std::make_unique<TrapDetector>());

  traffic::ScenarioConfig training = scenario_config;
  training.seed = stats::mix_seed(scenario_config.seed, 0x7261696eULL);
  training.scale = std::min(scenario_config.scale, 0.02);
  for (auto& d : make_learned_detectors(training))
    pool.push_back(std::move(d));
  return pool;
}

}  // namespace divscrape::detectors
