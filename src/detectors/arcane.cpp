#include "detectors/arcane.hpp"

#include <algorithm>

#include "httplog/url.hpp"
#include "httplog/useragent.hpp"

namespace divscrape::detectors {

using httplog::Timestamp;

ArcaneDetector::ArcaneDetector(ArcaneConfig config) : config_(config) {}

void ArcaneDetector::reset() {
  clients_.clear();
  local_uas_.clear();
  paths_.clear();
  evaluations_ = 0;
}

void ArcaneDetector::prune(ClientState& state, Timestamp now) {
  const auto cutoff =
      now + (-httplog::seconds_to_micros(config_.window_s));
  while (!state.window.empty() && state.window.front().time < cutoff) {
    const Entry& e = state.window.front();
    state.assets -= e.asset;
    state.referers -= e.referer;
    state.errors_4xx -= e.error_4xx;
    state.no_content -= e.no_content;
    state.not_modified -= e.not_modified;
    auto it = state.templates.find(e.template_token);
    if (it != state.templates.end() && --it->second == 0)
      state.templates.erase(it);
    state.window.pop_front();
  }
}

void ArcaneDetector::maybe_sweep(Timestamp now) {
  // Drop clients idle for over an hour; their window is empty anyway.
  if (++evaluations_ % 100'000 != 0) return;
  const auto cutoff = now + (-httplog::seconds_to_micros(3600.0));
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = it->second.last_seen < cutoff ? clients_.erase(it) : std::next(it);
  }
}

Verdict ArcaneDetector::evaluate(const httplog::LogRecord& record) {
  const Timestamp now = record.time;
  maybe_sweep(now);

  auto& state = clients_[httplog::SessionKey{
      record.ip, httplog::ua_key_token(record, local_uas_)}];
  state.last_seen = now;
  if (!state.ua_classified) {
    const auto ua = httplog::classify_user_agent(record.user_agent);
    state.scripted = ua.scripted;
    state.declared_bot = ua.declared_bot;
    state.browser = ua.family == httplog::UaFamily::kBrowser;
    state.ua_classified = true;
  }

  prune(state, now);

  Entry entry;
  entry.time = now;
  const auto path = record.path();
  entry.template_token = paths_.template_token(path);
  entry.asset = httplog::is_static_asset(path);
  entry.referer = record.referer != "-" && !record.referer.empty();
  entry.error_4xx = record.status >= 400 && record.status < 500;
  entry.no_content = record.status == 204;
  entry.not_modified = record.status == 304;

  state.window.push_back(entry);
  state.assets += entry.asset;
  state.referers += entry.referer;
  state.errors_4xx += entry.error_4xx;
  state.no_content += entry.no_content;
  state.not_modified += entry.not_modified;
  ++state.templates[entry.template_token];

  const int n = static_cast<int>(state.window.size());
  if (n < config_.min_requests) return {false, 0.0, AlertReason::kNone};

  // Polite declared crawlers get a volume grace allowance.
  if (state.declared_bot && n < config_.declared_bot_grace)
    return {false, 0.0, AlertReason::kNone};

  const double nd = static_cast<double>(n);
  double score = 0.0;
  AlertReason dominant = AlertReason::kBehavioral;
  double dominant_weight = 0.0;

  const auto add_signal = [&](bool active, double weight, AlertReason why) {
    if (!active) return;
    score += weight;
    if (weight > dominant_weight) {
      dominant_weight = weight;
      dominant = why;
    }
  };

  const int pages = n - state.assets;
  add_signal(pages >= 10 && state.assets == 0, config_.w_asset_starvation,
             AlertReason::kBehavioral);
  add_signal(state.scripted, config_.w_scripted_ua,
             AlertReason::kBadUserAgent);
  add_signal(static_cast<int>(state.templates.size()) <=
                 config_.template_monotony_max,
             config_.w_template_monotony, AlertReason::kBehavioral);
  add_signal(static_cast<double>(state.referers) / nd <
                 config_.referer_ratio_max,
             config_.w_no_referer, AlertReason::kBehavioral);
  add_signal(static_cast<double>(state.errors_4xx) / nd >=
                 config_.error_ratio_min,
             config_.w_error_ratio, AlertReason::kProtocolAnomaly);
  add_signal(static_cast<double>(state.no_content) / nd >=
                 config_.no_content_ratio_min,
             config_.w_no_content_ratio, AlertReason::kApiAbuse);
  add_signal(static_cast<double>(state.not_modified) / nd >=
                 config_.not_modified_ratio_min,
             config_.w_not_modified_ratio, AlertReason::kCacheSweep);
  if (n >= config_.volume_extreme) {
    add_signal(true, config_.w_volume_extreme, AlertReason::kRateLimit);
  } else if (n >= config_.volume_high) {
    add_signal(true, config_.w_volume_high, AlertReason::kRateLimit);
  } else if (n >= config_.volume_medium) {
    add_signal(true, config_.w_volume_medium, AlertReason::kRateLimit);
  }

  score = std::min(1.0, score);
  if (score >= config_.alert_threshold) {
    return {true, score, dominant};
  }
  return {false, score, AlertReason::kNone};
}

}  // namespace divscrape::detectors
