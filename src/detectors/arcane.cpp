#include "detectors/arcane.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "httplog/url.hpp"
#include "httplog/useragent.hpp"

namespace divscrape::detectors {

using httplog::Timestamp;

ArcaneDetector::ArcaneDetector(ArcaneConfig config) : config_(config) {}

void ArcaneDetector::ClientState::grow() {
  // Linearize into a doubled ring (oldest entry back at index 0).
  std::vector<Entry> grown(ring.empty() ? 8 : ring.size() * 2);
  for (std::size_t i = 0; i < count; ++i)
    grown[i] = ring[(head + i) % ring.size()];
  ring = std::move(grown);
  head = 0;
}

void ArcaneDetector::ClientState::push(const Entry& e) {
  if (count == ring.size()) grow();
  ring[(head + count) % ring.size()] = e;
  ++count;
}

void ArcaneDetector::ClientState::bump_template(std::uint32_t token) {
  for (auto& [t, c] : templates) {
    if (t == token) {
      ++c;
      return;
    }
  }
  templates.emplace_back(token, 1);
}

void ArcaneDetector::ClientState::drop_template(std::uint32_t token) {
  for (auto& tc : templates) {
    if (tc.first == token) {
      if (--tc.second == 0) {
        // Order is irrelevant (save_state sorts): swap-and-pop.
        tc = templates.back();
        templates.pop_back();
      }
      return;
    }
  }
}

void ArcaneDetector::reset() {
  clients_.clear();
  local_uas_.clear();
  paths_.clear();
  evaluations_ = 0;
  last_state_ = nullptr;
}

void ArcaneDetector::prune(ClientState& state, Timestamp now) {
  const auto cutoff =
      now + (-httplog::seconds_to_micros(config_.window_s));
  while (state.count != 0 && state.front().time < cutoff) {
    const Entry& e = state.front();
    state.assets -= e.asset;
    state.referers -= e.referer;
    state.errors_4xx -= e.error_4xx;
    state.no_content -= e.no_content;
    state.not_modified -= e.not_modified;
    state.drop_template(e.template_token);
    state.pop_front();
  }
}

void ArcaneDetector::maybe_sweep(Timestamp now) {
  // Drop clients idle for over an hour; their window is empty anyway.
  if (++evaluations_ % 100'000 != 0) return;
  const auto cutoff = now + (-httplog::seconds_to_micros(3600.0));
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = it->second.last_seen < cutoff ? clients_.erase(it) : std::next(it);
  }
  last_state_ = nullptr;  // erase may have freed the memoized node
}

namespace {

constexpr std::uint32_t kArcaneMagic = 0x4152434Eu;  // "ARCN"

void put_config(util::StateWriter& w, const ArcaneConfig& c) {
  w.f64(c.window_s);
  w.i64(c.min_requests);
  w.f64(c.alert_threshold);
  w.f64(c.w_asset_starvation);
  w.f64(c.w_scripted_ua);
  w.f64(c.w_template_monotony);
  w.f64(c.w_no_referer);
  w.f64(c.w_error_ratio);
  w.f64(c.w_no_content_ratio);
  w.f64(c.w_not_modified_ratio);
  w.f64(c.w_volume_extreme);
  w.f64(c.w_volume_high);
  w.f64(c.w_volume_medium);
  w.i64(c.volume_extreme);
  w.i64(c.volume_high);
  w.i64(c.volume_medium);
  w.f64(c.error_ratio_min);
  w.f64(c.no_content_ratio_min);
  w.f64(c.not_modified_ratio_min);
  w.f64(c.referer_ratio_max);
  w.i64(c.template_monotony_max);
  w.i64(c.declared_bot_grace);
}

[[nodiscard]] bool config_matches(util::StateReader& r,
                                  const ArcaneConfig& c) {
  bool same = r.f64() == c.window_s;
  same &= r.i64() == c.min_requests;
  same &= r.f64() == c.alert_threshold;
  same &= r.f64() == c.w_asset_starvation;
  same &= r.f64() == c.w_scripted_ua;
  same &= r.f64() == c.w_template_monotony;
  same &= r.f64() == c.w_no_referer;
  same &= r.f64() == c.w_error_ratio;
  same &= r.f64() == c.w_no_content_ratio;
  same &= r.f64() == c.w_not_modified_ratio;
  same &= r.f64() == c.w_volume_extreme;
  same &= r.f64() == c.w_volume_high;
  same &= r.f64() == c.w_volume_medium;
  same &= r.i64() == c.volume_extreme;
  same &= r.i64() == c.volume_high;
  same &= r.i64() == c.volume_medium;
  same &= r.f64() == c.error_ratio_min;
  same &= r.f64() == c.no_content_ratio_min;
  same &= r.f64() == c.not_modified_ratio_min;
  same &= r.f64() == c.referer_ratio_max;
  same &= r.i64() == c.template_monotony_max;
  same &= r.i64() == c.declared_bot_grace;
  return same && r.ok();
}

}  // namespace

bool ArcaneDetector::save_state(util::StateWriter& w) const {
  util::put_tag(w, kArcaneMagic, 1);
  put_config(w, config_);
  w.u64(evaluations_);
  local_uas_.save_state(w);
  paths_.save_state(w);

  std::vector<std::pair<httplog::SessionKey, const ClientState*>> clients;
  clients.reserve(clients_.size());
  for (const auto& [key, state] : clients_) clients.emplace_back(key, &state);
  std::sort(clients.begin(), clients.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(clients.size());
  for (const auto& [key, state] : clients) {
    w.u32(key.ip.value());
    w.u32(key.ua_token);
    w.u64(state->count);
    for (std::size_t j = 0; j < state->count; ++j) {
      const Entry& e = state->at(j);  // oldest-first: same bytes as before
      w.i64(e.time.micros());
      w.u32(e.template_token);
      w.u8(static_cast<std::uint8_t>(e.asset | (e.referer << 1) |
                                     (e.error_4xx << 2) |
                                     (e.no_content << 3) |
                                     (e.not_modified << 4)));
    }
    w.i64(state->assets);
    w.i64(state->referers);
    w.i64(state->errors_4xx);
    w.i64(state->no_content);
    w.i64(state->not_modified);
    std::vector<std::pair<std::uint32_t, int>> templates = state->templates;
    std::sort(templates.begin(), templates.end());
    w.u64(templates.size());
    for (const auto& [token, count] : templates) {
      w.u32(token);
      w.i64(count);
    }
    w.i64(state->last_seen.micros());
    w.u8(static_cast<std::uint8_t>(state->scripted |
                                   (state->declared_bot << 1) |
                                   (state->browser << 2) |
                                   (state->ua_classified << 3)));
  }
  return true;
}

bool ArcaneDetector::load_state(util::StateReader& r) {
  reset();
  const auto fail = [&] {
    r.fail();
    reset();
    return false;
  };
  if (!util::check_tag(r, kArcaneMagic, 1)) return false;
  if (!config_matches(r, config_)) return fail();
  evaluations_ = r.u64();
  if (!local_uas_.load_state(r)) return fail();
  if (!paths_.load_state(r)) return fail();

  const std::uint64_t client_count = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < client_count; ++i) {
    const httplog::Ipv4 ip{r.u32()};
    const std::uint32_t ua_token = r.u32();
    ClientState state;
    const std::uint64_t entries = r.u64();
    if (!r.ok()) break;
    for (std::uint64_t j = 0; r.ok() && j < entries; ++j) {
      Entry e;
      e.time = Timestamp{r.i64()};
      e.template_token = r.u32();
      const std::uint8_t bits = r.u8();
      e.asset = (bits & 1) != 0;
      e.referer = (bits & 2) != 0;
      e.error_4xx = (bits & 4) != 0;
      e.no_content = (bits & 8) != 0;
      e.not_modified = (bits & 16) != 0;
      state.push(e);
    }
    state.assets = static_cast<int>(r.i64());
    state.referers = static_cast<int>(r.i64());
    state.errors_4xx = static_cast<int>(r.i64());
    state.no_content = static_cast<int>(r.i64());
    state.not_modified = static_cast<int>(r.i64());
    const std::uint64_t template_count = r.u64();
    for (std::uint64_t j = 0; r.ok() && j < template_count; ++j) {
      const std::uint32_t token = r.u32();
      state.templates.emplace_back(token, static_cast<int>(r.i64()));
    }
    state.last_seen = Timestamp{r.i64()};
    const std::uint8_t ua_bits = r.u8();
    state.scripted = (ua_bits & 1) != 0;
    state.declared_bot = (ua_bits & 2) != 0;
    state.browser = (ua_bits & 4) != 0;
    state.ua_classified = (ua_bits & 8) != 0;
    if (r.ok())
      clients_.emplace(httplog::SessionKey{ip, ua_token}, std::move(state));
  }
  if (!r.ok()) return fail();
  return true;
}

Verdict ArcaneDetector::evaluate(const httplog::LogRecord& record) {
  const Timestamp now = record.time;
  maybe_sweep(now);

  const httplog::SessionKey key{record.ip,
                                httplog::ua_key_token(record, local_uas_)};
  if (last_state_ == nullptr || key != last_key_) {
    last_state_ = &clients_[key];
    last_key_ = key;
  }
  ClientState& state = *last_state_;
  state.last_seen = now;
  if (!state.ua_classified) {
    const auto ua = httplog::classify_user_agent(record.user_agent);
    state.scripted = ua.scripted;
    state.declared_bot = ua.declared_bot;
    state.browser = ua.family == httplog::UaFamily::kBrowser;
    state.ua_classified = true;
  }

  prune(state, now);

  Entry entry;
  entry.time = now;
  const auto path = record.path();
  entry.template_token = paths_.template_token(path);
  entry.asset = httplog::is_static_asset(path);
  entry.referer = record.referer != "-" && !record.referer.empty();
  entry.error_4xx = record.status >= 400 && record.status < 500;
  entry.no_content = record.status == 204;
  entry.not_modified = record.status == 304;

  state.push(entry);
  state.assets += entry.asset;
  state.referers += entry.referer;
  state.errors_4xx += entry.error_4xx;
  state.no_content += entry.no_content;
  state.not_modified += entry.not_modified;
  state.bump_template(entry.template_token);

  const int n = static_cast<int>(state.count);
  if (n < config_.min_requests) return {false, 0.0, AlertReason::kNone};

  // Polite declared crawlers get a volume grace allowance.
  if (state.declared_bot && n < config_.declared_bot_grace)
    return {false, 0.0, AlertReason::kNone};

  const double nd = static_cast<double>(n);
  double score = 0.0;
  AlertReason dominant = AlertReason::kBehavioral;
  double dominant_weight = 0.0;

  const auto add_signal = [&](bool active, double weight, AlertReason why) {
    if (!active) return;
    score += weight;
    if (weight > dominant_weight) {
      dominant_weight = weight;
      dominant = why;
    }
  };

  const int pages = n - state.assets;
  add_signal(pages >= 10 && state.assets == 0, config_.w_asset_starvation,
             AlertReason::kBehavioral);
  add_signal(state.scripted, config_.w_scripted_ua,
             AlertReason::kBadUserAgent);
  add_signal(static_cast<int>(state.templates.size()) <=
                 config_.template_monotony_max,
             config_.w_template_monotony, AlertReason::kBehavioral);
  add_signal(static_cast<double>(state.referers) / nd <
                 config_.referer_ratio_max,
             config_.w_no_referer, AlertReason::kBehavioral);
  add_signal(static_cast<double>(state.errors_4xx) / nd >=
                 config_.error_ratio_min,
             config_.w_error_ratio, AlertReason::kProtocolAnomaly);
  add_signal(static_cast<double>(state.no_content) / nd >=
                 config_.no_content_ratio_min,
             config_.w_no_content_ratio, AlertReason::kApiAbuse);
  add_signal(static_cast<double>(state.not_modified) / nd >=
                 config_.not_modified_ratio_min,
             config_.w_not_modified_ratio, AlertReason::kCacheSweep);
  if (n >= config_.volume_extreme) {
    add_signal(true, config_.w_volume_extreme, AlertReason::kRateLimit);
  } else if (n >= config_.volume_high) {
    add_signal(true, config_.w_volume_high, AlertReason::kRateLimit);
  } else if (n >= config_.volume_medium) {
    add_signal(true, config_.w_volume_medium, AlertReason::kRateLimit);
  }

  score = std::min(1.0, score);
  if (score >= config_.alert_threshold) {
    return {true, score, dominant};
  }
  return {false, score, AlertReason::kNone};
}

}  // namespace divscrape::detectors
