// ArcaneDetector: the in-house behavioural detector (the paper's Arcane
// role, Amadeus's own tool).
//
// Arcane reasons about *how a client browses*, not how fast it comes in:
// it keeps a sliding 2-minute window of each client's requests and scores
// behavioural signals that separate browsers from scrapers —
//
//   * asset starvation    — a claimed browser that renders pages but never
//     fetches css/js/images;
//   * template monotony   — low entropy over normalized path templates
//     (/offers/123 and /offers/987 are the same template; catalogue sweeps
//     collapse to one or two templates);
//   * referer discipline  — browsers carry referers, scrapers mostly don't;
//   * protocol hygiene    — 4xx ratios from broken automation;
//   * API polling         — high 204 No-Content ratios from availability
//     hammering;
//   * cache sweeps        — high 304 ratios from conditional-GET scrapers;
//   * raw in-window volume.
//
// The signature that matters for the reproduction: Arcane needs a dozen
// requests of context before it can speak (so it misses warm-up phases the
// commercial tool's reputation covers), but it catches low-and-slow,
// malformed-request, API-polling and cache-sweep scrapers that never trip
// per-request rules — the paper's "Arcane only" mass with its distinctive
// 204/400/304 skew.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "detectors/detector.hpp"
#include "httplog/session.hpp"
#include "util/interner.hpp"

namespace divscrape::detectors {

/// Signal weights and thresholds (defaults are the calibrated settings).
struct ArcaneConfig {
  double window_s = 120.0;
  int min_requests = 10;        ///< behavioural floor: silent below this
  double alert_threshold = 0.6;

  double w_asset_starvation = 0.35;
  double w_scripted_ua = 0.45;
  double w_template_monotony = 0.30;
  double w_no_referer = 0.15;
  double w_error_ratio = 0.40;
  double w_no_content_ratio = 0.30;
  double w_not_modified_ratio = 0.30;
  double w_volume_extreme = 0.65;///< volume alone is conclusive
  double w_volume_high = 0.40;   ///< >= volume_high requests in window
  double w_volume_medium = 0.25; ///< >= volume_medium requests in window
  int volume_extreme = 240;
  int volume_high = 60;
  int volume_medium = 24;

  double error_ratio_min = 0.15;
  double no_content_ratio_min = 0.15;
  double not_modified_ratio_min = 0.30;
  double referer_ratio_max = 0.10;
  int template_monotony_max = 2;  ///< distinct templates considered monotone

  /// Declared crawlers below this in-window volume are whitelisted.
  int declared_bot_grace = 30;
};

class ArcaneDetector final : public Detector {
 public:
  explicit ArcaneDetector(ArcaneConfig config = ArcaneConfig{});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "arcane";
  }
  [[nodiscard]] Verdict evaluate(const httplog::LogRecord& record) override;
  void reset() override;

  /// Warm-checkpoint dump/restore: every live behavioural window (sorted by
  /// session key), the path-template memo (live entries reference its
  /// tokens, so it transfers in full), the local UA interner, and the sweep
  /// counter. A config fingerprint guards mistuned restores.
  [[nodiscard]] bool save_state(util::StateWriter& w) const override;
  [[nodiscard]] bool load_state(util::StateReader& r) override;

  [[nodiscard]] const ArcaneConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t tracked_clients() const noexcept {
    return clients_.size();
  }

 private:
  struct Entry {
    httplog::Timestamp time;
    std::uint32_t template_token = 0;
    bool asset = false;
    bool referer = false;
    bool error_4xx = false;
    bool no_content = false;
    bool not_modified = false;
  };

  /// Per-client sliding window as a flat ring (PR 9 redesign; was
  /// std::deque + std::unordered_map). The window holds at most a couple
  /// hundred entries even for the hottest scrapers, so a contiguous ring
  /// with O(1) push/pop beats the deque's chunked allocation, and a flat
  /// (token, count) vector with linear scan beats the hash map — the
  /// distinct-template count rarely exceeds template_monotony_max + a
  /// handful, so the scan is a few cache lines where the map was a heap
  /// node per template. Serialization iterates the ring oldest-first and
  /// sorts templates on save, so saved bytes are identical to the old
  /// containers'.
  struct ClientState {
    /// Entry i (oldest-first) lives at ring[(head + i) % ring.size()].
    std::vector<Entry> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    // Running counts over the window (kept in sync on push/prune).
    int assets = 0;
    int referers = 0;
    int errors_4xx = 0;
    int no_content = 0;
    int not_modified = 0;
    /// Distinct in-window templates with counts; unsorted, linear-scanned.
    std::vector<std::pair<std::uint32_t, int>> templates;
    httplog::Timestamp last_seen{0};
    // UA facts are per-client constants (the key includes the UA).
    bool scripted = false;
    bool declared_bot = false;
    bool browser = false;
    bool ua_classified = false;

    [[nodiscard]] const Entry& front() const noexcept { return ring[head]; }
    [[nodiscard]] const Entry& at(std::size_t i) const noexcept {
      return ring[(head + i) % ring.size()];
    }
    void push(const Entry& e);
    void pop_front() noexcept {
      head = (head + 1) % ring.size();
      --count;
    }
    void bump_template(std::uint32_t token);
    void drop_template(std::uint32_t token);

   private:
    void grow();
  };

  void prune(ClientState& state, httplog::Timestamp now);
  void maybe_sweep(httplog::Timestamp now);

  ArcaneConfig config_;
  std::unordered_map<httplog::SessionKey, ClientState,
                     httplog::SessionKeyHash>
      clients_;
  util::StringInterner local_uas_;  ///< fallback for unstamped records
  /// Detector-wide path -> template-token memo; exact tokens replace the
  /// seed's raw FNV-1a template hashes, which could (theoretically)
  /// collide. Capped (the detector lives for the whole stream and unique-id
  /// URLs would otherwise grow it without bound); past the cap templates
  /// degrade to the seed's hash-token behaviour.
  httplog::PathTemplateMemo paths_{std::size_t{1} << 20};
  std::uint64_t evaluations_ = 0;
  /// One-entry client memo: bursty traffic hits the same session on
  /// consecutive records, skipping the clients_ probe. The pointer is safe
  /// to cache because unordered_map nodes are stable across insert/rehash;
  /// it is dropped whenever the sweep erases (reset() covers load_state).
  httplog::SessionKey last_key_{};
  ClientState* last_state_ = nullptr;
};

}  // namespace divscrape::detectors
