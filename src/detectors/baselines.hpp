// Rule-based baseline detectors from the related-work space: a naive rate
// limiter and a honeypot-trap tracker. They are deliberately weaker than
// the two reproduced tools; the diversity experiments (E7) use them to
// show what the pairwise diversity metrics look like across a wider pool.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "detectors/detector.hpp"
#include "httplog/ip.hpp"
#include "httplog/timestamp.hpp"

namespace divscrape::detectors {

/// Per-IP fixed-threshold rate limiter with no memory beyond its window —
/// the classic first line of defence, and the classic thing low-and-slow
/// scrapers walk straight past.
class RateLimitDetector final : public Detector {
 public:
  struct Config {
    double window_s = 60.0;
    int limit = 90;
  };

  explicit RateLimitDetector(Config config);
  RateLimitDetector() : RateLimitDetector(Config{60.0, 90}) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "rate-limit";
  }
  [[nodiscard]] Verdict evaluate(const httplog::LogRecord& record) override;
  void reset() override;

 private:
  Config config_;
  std::unordered_map<httplog::Ipv4, std::deque<httplog::Timestamp>,
                     httplog::Ipv4Hash>
      windows_;
  std::uint64_t evaluations_ = 0;
};

/// Honeypot-trap detector: clients that ever touch a trap path (stale
/// catalogue URLs real users cannot reach from live navigation) stay
/// flagged. High precision, tiny recall — a sharp diversity contrast.
class TrapDetector final : public Detector {
 public:
  explicit TrapDetector(std::string trap_prefix = "/offers/old/");

  [[nodiscard]] std::string_view name() const noexcept override {
    return "trap";
  }
  [[nodiscard]] Verdict evaluate(const httplog::LogRecord& record) override;
  void reset() override;

  [[nodiscard]] std::size_t trapped_clients() const noexcept {
    return trapped_.size();
  }

 private:
  std::string trap_prefix_;
  std::unordered_set<httplog::Ipv4, httplog::Ipv4Hash> trapped_;
};

}  // namespace divscrape::detectors
