#include "detectors/baselines.hpp"

#include <algorithm>

namespace divscrape::detectors {

using httplog::Timestamp;

RateLimitDetector::RateLimitDetector(Config config) : config_(config) {}

void RateLimitDetector::reset() {
  windows_.clear();
  evaluations_ = 0;
}

Verdict RateLimitDetector::evaluate(const httplog::LogRecord& record) {
  const Timestamp now = record.time;
  if (++evaluations_ % 100'000 == 0) {
    // GC idle windows.
    const auto cutoff =
        now + (-httplog::seconds_to_micros(config_.window_s * 10));
    for (auto it = windows_.begin(); it != windows_.end();) {
      it = (!it->second.empty() && it->second.back() < cutoff)
               ? windows_.erase(it)
               : std::next(it);
    }
  }
  auto& window = windows_[record.ip];
  window.push_back(now);
  const auto cutoff =
      now + (-httplog::seconds_to_micros(config_.window_s));
  while (!window.empty() && window.front() < cutoff) window.pop_front();
  const int n = static_cast<int>(window.size());
  const double score =
      std::min(1.0, static_cast<double>(n) / config_.limit);
  if (n >= config_.limit) return {true, score, AlertReason::kRateLimit};
  return {false, score, AlertReason::kNone};
}

TrapDetector::TrapDetector(std::string trap_prefix)
    : trap_prefix_(std::move(trap_prefix)) {}

void TrapDetector::reset() { trapped_.clear(); }

Verdict TrapDetector::evaluate(const httplog::LogRecord& record) {
  const auto path = record.path();
  if (path.substr(0, trap_prefix_.size()) == trap_prefix_) {
    trapped_.insert(record.ip);
    return {true, 1.0, AlertReason::kTrap};
  }
  if (trapped_.count(record.ip) != 0) {
    return {true, 0.9, AlertReason::kTrap};
  }
  return {false, 0.0, AlertReason::kNone};
}

}  // namespace divscrape::detectors
