// Detector factories: the reproduced two-tool deployment and the wider
// six-detector pool used by the diversity-metric experiments.
#pragma once

#include <memory>
#include <vector>

#include "detectors/detector.hpp"
#include "traffic/scenario.hpp"

namespace divscrape::detectors {

/// The paper's deployment: {Sentinel (Distil role), Arcane}, in that order.
[[nodiscard]] std::vector<std::unique_ptr<Detector>> make_paper_pair();

/// Trains the learning-based related-work detectors on a labelled training
/// stream generated from `training_config` (kept small; sessions are
/// labelled by majority ground truth, which stands in for the paper's
/// "Amadeus team is currently labelling the dataset" step).
[[nodiscard]] std::vector<std::unique_ptr<Detector>> make_learned_detectors(
    const traffic::ScenarioConfig& training_config);

/// Full pool: Sentinel, Arcane, rate-limit, trap, naive-Bayes, decision
/// tree. Learned members are trained on a scaled-down sibling of
/// `scenario_config` with a different seed (no training-on-test leakage).
[[nodiscard]] std::vector<std::unique_ptr<Detector>> make_full_pool(
    const traffic::ScenarioConfig& scenario_config);

}  // namespace divscrape::detectors
