#include "detectors/detector.hpp"

namespace divscrape::detectors {

std::string_view to_string(AlertReason r) noexcept {
  switch (r) {
    case AlertReason::kNone: return "none";
    case AlertReason::kBadUserAgent: return "bad-user-agent";
    case AlertReason::kRateLimit: return "rate-limit";
    case AlertReason::kIpReputation: return "ip-reputation";
    case AlertReason::kSubnetReputation: return "subnet-reputation";
    case AlertReason::kFingerprint: return "fingerprint";
    case AlertReason::kBehavioral: return "behavioral";
    case AlertReason::kProtocolAnomaly: return "protocol-anomaly";
    case AlertReason::kApiAbuse: return "api-abuse";
    case AlertReason::kCacheSweep: return "cache-sweep";
    case AlertReason::kLearnedModel: return "learned-model";
    case AlertReason::kTrap: return "trap";
  }
  return "?";
}

}  // namespace divscrape::detectors
