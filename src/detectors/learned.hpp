// Learning-based detectors in the style of the paper's related work:
// a naive-Bayes robot detector (Stassopoulou & Dikaiakos [2]) and a
// decision-tree crawler classifier (Stevanovic et al. [1]), both operating
// on streaming per-client session features.
//
// Deployment model: the classifier is trained offline on a *labelled*
// training stream (a separately-seeded scenario), then frozen and run
// online. Online, the detector maintains an incremental Session per client
// (reset after 30 minutes of inactivity, mirroring the sessionizer) and
// scores the running feature vector once a small warm-up has accrued.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "detectors/detector.hpp"
#include "httplog/session.hpp"
#include "ml/dataset.hpp"
#include "util/interner.hpp"

namespace divscrape::detectors {

/// Wraps any trained ml::Classifier as a streaming detector.
class LearnedDetector final : public Detector {
 public:
  struct Config {
    double idle_reset_s = 1800.0;  ///< per-client state reset gap
    int warmup_requests = 8;       ///< silent below this many requests
    double threshold = 0.5;        ///< alert operating point
  };

  LearnedDetector(std::string name, std::shared_ptr<const ml::Classifier> model,
                  Config config);
  LearnedDetector(std::string name,
                  std::shared_ptr<const ml::Classifier> model)
      : LearnedDetector(std::move(name), std::move(model),
                        Config{1800.0, 8, 0.5}) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] Verdict evaluate(const httplog::LogRecord& record) override;
  void reset() override;

  /// Warm-checkpoint dump/restore: every live per-client Session (sorted by
  /// key), the local UA interner, and the sweep counter. The frozen model
  /// is construction-provided and NOT serialized — restore into an instance
  /// built with the same trained classifier. The detector name and config
  /// are fingerprinted and must match.
  [[nodiscard]] bool save_state(util::StateWriter& w) const override;
  [[nodiscard]] bool load_state(util::StateReader& r) override;

 private:
  void maybe_sweep(httplog::Timestamp now);

  std::string name_;
  std::shared_ptr<const ml::Classifier> model_;
  Config config_;
  std::unordered_map<httplog::SessionKey, httplog::Session,
                     httplog::SessionKeyHash>
      clients_;
  util::StringInterner local_uas_;  ///< fallback for unstamped records
  std::uint64_t evaluations_ = 0;
};

}  // namespace divscrape::detectors
