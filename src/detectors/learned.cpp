#include "detectors/learned.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "ml/features.hpp"

namespace divscrape::detectors {

LearnedDetector::LearnedDetector(std::string name,
                                 std::shared_ptr<const ml::Classifier> model,
                                 Config config)
    : name_(std::move(name)), model_(std::move(model)), config_(config) {}

void LearnedDetector::reset() {
  clients_.clear();
  local_uas_.clear();
  evaluations_ = 0;
}

void LearnedDetector::maybe_sweep(httplog::Timestamp now) {
  if (++evaluations_ % 100'000 != 0) return;
  const auto cutoff =
      now + (-httplog::seconds_to_micros(config_.idle_reset_s * 2));
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = it->second.last_seen() < cutoff ? clients_.erase(it)
                                         : std::next(it);
  }
}

namespace {
constexpr std::uint32_t kLearnedMagic = 0x4C524E44u;  // "LRND"
}  // namespace

bool LearnedDetector::save_state(util::StateWriter& w) const {
  util::put_tag(w, kLearnedMagic, 1);
  w.str(name_);
  w.f64(config_.idle_reset_s);
  w.i64(config_.warmup_requests);
  w.f64(config_.threshold);
  w.u64(evaluations_);
  local_uas_.save_state(w);

  std::vector<const httplog::Session*> sessions;
  sessions.reserve(clients_.size());
  for (const auto& [key, session] : clients_) sessions.push_back(&session);
  std::sort(sessions.begin(), sessions.end(),
            [](const httplog::Session* a, const httplog::Session* b) {
              return a->key() < b->key();
            });
  w.u64(sessions.size());
  for (const httplog::Session* s : sessions) s->save_state(w);
  return true;
}

bool LearnedDetector::load_state(util::StateReader& r) {
  reset();
  const auto fail = [&] {
    r.fail();
    reset();
    return false;
  };
  if (!util::check_tag(r, kLearnedMagic, 1)) return false;
  if (r.str() != name_) return fail();
  bool same = r.f64() == config_.idle_reset_s;
  same &= r.i64() == config_.warmup_requests;
  same &= r.f64() == config_.threshold;
  if (!same || !r.ok()) return fail();
  evaluations_ = r.u64();
  if (!local_uas_.load_state(r)) return fail();

  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < count; ++i) {
    auto session = httplog::Session::load_state(r);
    if (!session) return fail();
    const httplog::SessionKey key = session->key();
    clients_.emplace(key, std::move(*session));
  }
  if (!r.ok()) return fail();
  return true;
}

Verdict LearnedDetector::evaluate(const httplog::LogRecord& record) {
  maybe_sweep(record.time);
  const httplog::SessionKey key{record.ip,
                                httplog::ua_key_token(record, local_uas_)};
  auto it = clients_.find(key);
  if (it != clients_.end()) {
    const double gap_s =
        static_cast<double>(record.time - it->second.last_seen()) / 1e6;
    if (gap_s > config_.idle_reset_s) {
      clients_.erase(it);
      it = clients_.end();
    }
  }
  if (it == clients_.end()) {
    it = clients_
             .emplace(key, httplog::Session(key, record.time))
             .first;
  }
  httplog::Session& session = it->second;
  session.add(record);

  if (session.request_count() <
      static_cast<std::uint64_t>(config_.warmup_requests))
    return {false, 0.0, AlertReason::kNone};

  const auto features = ml::extract_features(session);
  const double score = model_->score(features);
  if (score >= config_.threshold)
    return {true, score, AlertReason::kLearnedModel};
  return {false, score, AlertReason::kNone};
}

}  // namespace divscrape::detectors
