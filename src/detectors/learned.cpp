#include "detectors/learned.hpp"

#include <utility>

#include "ml/features.hpp"

namespace divscrape::detectors {

LearnedDetector::LearnedDetector(std::string name,
                                 std::shared_ptr<const ml::Classifier> model,
                                 Config config)
    : name_(std::move(name)), model_(std::move(model)), config_(config) {}

void LearnedDetector::reset() {
  clients_.clear();
  local_uas_.clear();
  evaluations_ = 0;
}

void LearnedDetector::maybe_sweep(httplog::Timestamp now) {
  if (++evaluations_ % 100'000 != 0) return;
  const auto cutoff =
      now + (-httplog::seconds_to_micros(config_.idle_reset_s * 2));
  for (auto it = clients_.begin(); it != clients_.end();) {
    it = it->second.last_seen() < cutoff ? clients_.erase(it)
                                         : std::next(it);
  }
}

Verdict LearnedDetector::evaluate(const httplog::LogRecord& record) {
  maybe_sweep(record.time);
  const httplog::SessionKey key{record.ip,
                                httplog::ua_key_token(record, local_uas_)};
  auto it = clients_.find(key);
  if (it != clients_.end()) {
    const double gap_s =
        static_cast<double>(record.time - it->second.last_seen()) / 1e6;
    if (gap_s > config_.idle_reset_s) {
      clients_.erase(it);
      it = clients_.end();
    }
  }
  if (it == clients_.end()) {
    it = clients_
             .emplace(key, httplog::Session(key, record.time))
             .first;
  }
  httplog::Session& session = it->second;
  session.add(record);

  if (session.request_count() <
      static_cast<std::uint64_t>(config_.warmup_requests))
    return {false, 0.0, AlertReason::kNone};

  const auto features = ml::extract_features(session);
  const double score = model_->score(features);
  if (score >= config_.threshold)
    return {true, score, AlertReason::kLearnedModel};
  return {false, score, AlertReason::kNone};
}

}  // namespace divscrape::detectors
