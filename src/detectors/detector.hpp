// The detector abstraction both reproduced tools and all baselines
// implement.
//
// A detector is a *streaming* classifier: it sees the log one record at a
// time, in time order, exactly like the paper's tools observed the Amadeus
// application-layer traffic, and renders a per-request verdict. Detectors
// are stateful (reputation, sliding behavioural windows) and never see
// ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "httplog/record.hpp"
#include "util/state.hpp"

namespace divscrape::detectors {

/// Why a detector alerted — the basis for experiment E9 (root-causing
/// single-tool alerts, the paper's Section V item).
enum class AlertReason : std::uint8_t {
  kNone,
  kBadUserAgent,      ///< automation/headless/empty UA
  kRateLimit,         ///< burst or sustained per-IP rate tripwire
  kIpReputation,      ///< previously-flagged client
  kSubnetReputation,  ///< flagged /24 neighbourhood
  kFingerprint,       ///< stale-browser fingerprint + activity
  kBehavioral,        ///< session-behaviour score over threshold
  kProtocolAnomaly,   ///< malformed requests / 4xx pattern
  kApiAbuse,          ///< availability-API polling pattern
  kCacheSweep,        ///< conditional-GET sweep pattern
  kLearnedModel,      ///< ML classifier score
  kTrap,              ///< honeypot path touched
};

[[nodiscard]] std::string_view to_string(AlertReason r) noexcept;

/// Per-request verdict.
struct Verdict {
  bool alert = false;
  /// Suspicion score in [0, 1]; alert implies score >= the detector's
  /// operating threshold. Exposed for the ROC sweep (experiment E8).
  double score = 0.0;
  AlertReason reason = AlertReason::kNone;
};

/// Streaming per-request detector.
class Detector {
 public:
  virtual ~Detector() = default;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Stable display name ("sentinel", "arcane", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Judges one record. Records must arrive in non-decreasing time order.
  [[nodiscard]] virtual Verdict evaluate(const httplog::LogRecord& record) = 0;

  /// Drops all accumulated state (fresh deployment).
  virtual void reset() = 0;

  /// Dumps the detector's warm state for checkpointing. The default says
  /// "not supported" (false, nothing written): a pool containing such a
  /// detector cannot be checkpointed warm and falls back to cold resume.
  /// Restore assumes an identically-configured instance; implementations
  /// embed a config fingerprint and fail the load on a mismatch.
  [[nodiscard]] virtual bool save_state(util::StateWriter& w) const {
    (void)w;
    return false;
  }
  /// Restores from save_state() output; on failure the detector must be
  /// left reset (cold) and return false.
  [[nodiscard]] virtual bool load_state(util::StateReader& r) {
    (void)r;
    return false;
  }

 protected:
  Detector() = default;
};

}  // namespace divscrape::detectors
