#include "eval/scorer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "core/json_parse.hpp"
#include "ml/metrics.hpp"
#include "util/atomic_file.hpp"

namespace divscrape::eval {

namespace {

constexpr std::string_view kEnsembleName = "ensemble_1oo2";

bool set_error(std::string* error, std::string why) {
  if (error) *error = std::move(why);
  return false;
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

void write_column(core::JsonWriter& json, const ColumnScore& column) {
  json.begin_object();
  json.key("name").value(column.name);
  json.key("tp").value(column.tp);
  json.key("fp").value(column.fp);
  json.key("tn").value(column.tn);
  json.key("fn").value(column.fn);
  // Derived rates are emitted for human and CI readability but never
  // parsed back — the counts are authoritative.
  json.key("precision").value_exact(column.precision());
  json.key("recall").value_exact(column.recall());
  json.key("f1").value_exact(column.f1());
  json.key("auc").value_exact(column.auc);
  json.key("actors_detected").value(column.actors_detected);
  json.key("actors_unique").value(column.actors_unique);
  json.key("ttd_mean_s").value_exact(column.ttd_mean_s);
  json.key("ttd_p50_s").value_exact(column.ttd_p50_s);
  json.key("ttd_p90_s").value_exact(column.ttd_p90_s);
  json.key("unique_reasons").begin_array();
  for (const auto& reason : column.unique_reasons) {
    json.begin_object();
    json.key("reason").value(reason.reason);
    json.key("count").value(reason.count);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

bool read_column(const core::JsonValue& v, ColumnScore& column,
                 std::string* error) {
  column.name = v.string_or("name", "");
  if (column.name.empty())
    return set_error(error, "column entry is missing its \"name\"");
  column.tp = v.u64_or("tp", 0);
  column.fp = v.u64_or("fp", 0);
  column.tn = v.u64_or("tn", 0);
  column.fn = v.u64_or("fn", 0);
  column.auc = v.number_or("auc", 0.0);
  column.actors_detected = v.u64_or("actors_detected", 0);
  column.actors_unique = v.u64_or("actors_unique", 0);
  column.ttd_mean_s = v.number_or("ttd_mean_s", 0.0);
  column.ttd_p50_s = v.number_or("ttd_p50_s", 0.0);
  column.ttd_p90_s = v.number_or("ttd_p90_s", 0.0);
  if (const auto* reasons = v.find("unique_reasons")) {
    if (!reasons->is_array())
      return set_error(error, "\"unique_reasons\" must be an array");
    for (const auto& entry : reasons->array()) {
      ReasonCount reason;
      reason.reason = entry.string_or("reason", "");
      reason.count = entry.u64_or("count", 0);
      if (reason.reason.empty())
        return set_error(error, "unique_reasons entry needs a \"reason\"");
      column.unique_reasons.push_back(std::move(reason));
    }
  }
  return true;
}

bool read_scenario(const core::JsonValue& v, ScenarioScore& score,
                   std::string* error) {
  score.scenario = v.string_or("scenario", "");
  if (score.scenario.empty())
    return set_error(error, "scenario entry is missing its \"scenario\"");
  score.scale = v.number_or("scale", 1.0);
  score.records = v.u64_or("records", 0);
  score.truth_benign = v.u64_or("truth_benign", 0);
  score.truth_malicious = v.u64_or("truth_malicious", 0);
  score.actors_attacking = v.u64_or("actors_attacking", 0);
  const auto* columns = v.find("columns");
  if (!columns || !columns->is_array() || columns->array().empty())
    return set_error(error, "scenario \"columns\" must be a non-empty array");
  for (const auto& entry : columns->array()) {
    ColumnScore column;
    if (!read_column(entry, column, error)) return false;
    score.columns.push_back(std::move(column));
  }
  return true;
}

}  // namespace

const ColumnScore* ScenarioScore::column(std::string_view name) const {
  for (const auto& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const ScenarioScore* DetectionDocument::scenario(std::string_view name) const {
  for (const auto& s : scenarios) {
    if (s.scenario == name) return &s;
  }
  return nullptr;
}

std::string DetectionDocument::to_json() const {
  std::ostringstream os;
  core::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value(kSchema);
  json.key("bench").value(bench);
  json.key("scenarios").begin_array();
  for (const auto& score : scenarios) {
    json.begin_object();
    json.key("scenario").value(score.scenario);
    json.key("scale").value_exact(score.scale);
    json.key("records").value(score.records);
    json.key("truth_benign").value(score.truth_benign);
    json.key("truth_malicious").value(score.truth_malicious);
    json.key("actors_attacking").value(score.actors_attacking);
    json.key("columns").begin_array();
    for (const auto& column : score.columns) write_column(json, column);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return os.str();
}

std::optional<DetectionDocument> DetectionDocument::from_json(
    std::string_view json, std::string* error) {
  std::string parse_error;
  const auto doc = core::parse_json(json, &parse_error);
  if (!doc) {
    set_error(error, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    set_error(error, "document root must be a JSON object");
    return std::nullopt;
  }
  const auto* schema = doc->find("schema");
  if (!schema || schema->as_string_view() != kSchema) {
    set_error(error, "missing or unsupported \"schema\" (want " +
                         std::string(kSchema) + ")");
    return std::nullopt;
  }
  DetectionDocument out;
  out.bench = doc->string_or("bench", out.bench);
  const auto* scenarios = doc->find("scenarios");
  if (!scenarios || !scenarios->is_array()) {
    set_error(error, "\"scenarios\" must be an array");
    return std::nullopt;
  }
  for (const auto& entry : scenarios->array()) {
    ScenarioScore score;
    if (!read_scenario(entry, score, error)) return std::nullopt;
    out.scenarios.push_back(std::move(score));
  }
  return out;
}

bool DetectionDocument::save(const std::string& path) const {
  return util::write_file_atomic(path, to_json() + "\n");
}

std::optional<DetectionDocument> DetectionDocument::load(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::stringstream text;
  text << in.rdbuf();
  return from_json(text.str(), error);
}

Scorer::Scorer(std::vector<std::string> detector_names)
    : names_(std::move(detector_names)), columns_(names_.size() + 1) {
  if (names_.empty())
    throw std::invalid_argument("Scorer needs at least one detector");
}

void Scorer::observe(const httplog::LogRecord& record,
                     divscrape::span<const detectors::Verdict> verdicts) {
  if (verdicts.size() != names_.size())
    throw std::invalid_argument("verdict count does not match detector pool");
  // Unknown-truth records carry no signal for any metric here; skipping
  // them matches the seed benches and core::ConfusionMatrix.
  if (record.truth == httplog::Truth::kUnknown) return;
  const bool malicious = record.truth == httplog::Truth::kMalicious;
  (malicious ? truth_malicious_ : truth_benign_) += 1;
  labels_.push_back(malicious ? 1 : 0);
  if (malicious &&
      first_seen_us_.emplace(record.actor_id, record.time.micros()).second) {
    ++actors_attacking_;
  }

  const std::size_t n = names_.size();
  bool any_alert = false;
  double max_score = 0.0;
  std::size_t alerting = 0, last_alerter = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (verdicts[i].alert) {
      any_alert = true;
      ++alerting;
      last_alerter = i;
    }
    max_score = std::max(max_score, verdicts[i].score);
  }

  const auto fold = [&](Column& column, bool alert, double score) {
    if (malicious) {
      alert ? ++column.tp : ++column.fn;
    } else {
      alert ? ++column.fp : ++column.tn;
    }
    column.scores.push_back(score);
    if (alert && malicious)
      column.first_alert_us.emplace(record.actor_id, record.time.micros());
  };
  for (std::size_t i = 0; i < n; ++i)
    fold(columns_[i], verdicts[i].alert, verdicts[i].score);
  fold(columns_[n], any_alert, max_score);

  // E9 attribution: a unique alert is one exactly one tool raised.
  if (alerting == 1 && malicious) {
    const auto reason = detectors::to_string(verdicts[last_alerter].reason);
    columns_[last_alerter].unique_reasons[std::string(reason)] += 1;
  }
}

ScenarioScore Scorer::finish(std::string scenario_name, double scale) const {
  ScenarioScore out;
  out.scenario = std::move(scenario_name);
  out.scale = scale;
  out.records = records_scored();
  out.truth_benign = truth_benign_;
  out.truth_malicious = truth_malicious_;
  out.actors_attacking = actors_attacking_;

  const std::size_t n = names_.size();
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    const Column& column = columns_[c];
    ColumnScore score;
    score.name = c < n ? names_[c] : std::string(kEnsembleName);
    score.tp = column.tp;
    score.fp = column.fp;
    score.tn = column.tn;
    score.fn = column.fn;
    score.auc = ml::auc(column.scores, labels_);
    score.actors_detected = column.first_alert_us.size();
    if (c < n) {
      for (const auto& [actor, when] : column.first_alert_us) {
        (void)when;
        bool elsewhere = false;
        for (std::size_t other = 0; other < n && !elsewhere; ++other) {
          elsewhere = other != c &&
                      columns_[other].first_alert_us.count(actor) != 0;
        }
        if (!elsewhere) ++score.actors_unique;
      }
    }

    std::vector<double> ttd;
    ttd.reserve(column.first_alert_us.size());
    double sum = 0.0;
    for (const auto& [actor, alert_us] : column.first_alert_us) {
      const auto seen = first_seen_us_.find(actor);
      if (seen == first_seen_us_.end()) continue;
      const double s =
          static_cast<double>(alert_us - seen->second) / 1e6;
      ttd.push_back(s);
      sum += s;
    }
    std::sort(ttd.begin(), ttd.end());
    if (!ttd.empty()) {
      score.ttd_mean_s = sum / static_cast<double>(ttd.size());
      score.ttd_p50_s = percentile(ttd, 0.5);
      score.ttd_p90_s = percentile(ttd, 0.9);
    }

    score.unique_reasons.reserve(column.unique_reasons.size());
    for (const auto& [reason, count] : column.unique_reasons)
      score.unique_reasons.push_back({reason, count});
    std::sort(score.unique_reasons.begin(), score.unique_reasons.end(),
              [](const ReasonCount& a, const ReasonCount& b) {
                return a.count != b.count ? a.count > b.count
                                          : a.reason < b.reason;
              });
    out.columns.push_back(std::move(score));
  }
  return out;
}

}  // namespace divscrape::eval
