// The red-vs-blue runner: generates a declarative scenario through the
// batched workload seam, drives the paper detector pair over the stream,
// and scores the outcome with eval::Scorer. Shared by bench_detection,
// the revived seed benches and `divscrape_cli score`, so every consumer
// measures detection quality the same way.
#pragma once

#include <cstddef>

#include "eval/scorer.hpp"
#include "workload/scenario_spec.hpp"

namespace divscrape::eval {

struct RunOptions {
  std::size_t gen_threads = 2;
  std::size_t batch_records = 1024;
};

/// Runs `spec` end to end — WorkloadEngine::run_batched() feeding a fresh
/// paper detector pair through an AlertJoiner — and returns the scored
/// outcome. The generated stream is byte-identical at any gen_threads
/// (the engine's contract), so the score is too.
[[nodiscard]] ScenarioScore score_scenario(const workload::ScenarioSpec& spec,
                                           const RunOptions& options = {});

}  // namespace divscrape::eval
