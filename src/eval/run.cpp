#include "eval/run.hpp"

#include <string>
#include <vector>

#include "core/joiner.hpp"
#include "detectors/registry.hpp"
#include "pipeline/record_batch.hpp"
#include "workload/engine.hpp"

namespace divscrape::eval {

ScenarioScore score_scenario(const workload::ScenarioSpec& spec,
                             const RunOptions& options) {
  const auto pool = detectors::make_paper_pair();
  for (const auto& detector : pool) detector->reset();
  std::vector<std::string> names;
  names.reserve(pool.size());
  for (const auto& detector : pool) names.emplace_back(detector->name());

  core::AlertJoiner joiner(pool);
  Scorer scorer(std::move(names));

  workload::EngineConfig config;
  config.gen_threads = options.gen_threads;
  workload::WorkloadEngine engine(spec, config);
  pipeline::BatchPool batch_pool;
  (void)engine.run_batched(
      [&](pipeline::RecordBatch&& batch) {
        for (const auto& record : batch)
          scorer.observe(record, joiner.process(record));
        batch_pool.recycle(std::move(batch));
      },
      options.batch_records, &batch_pool);
  return scorer.finish(spec.name, spec.scale);
}

}  // namespace divscrape::eval
