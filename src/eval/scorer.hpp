// Detection-quality evaluation: the scoring engine behind BENCH_detection.
//
// eval::Scorer consumes a replayed run one record at a time — ground truth
// from the LogRecord sidecars plus the per-detector verdict vector an
// AlertJoiner (or any caller of Detector::evaluate) produced — and folds
// everything the red-vs-blue report needs in a single streaming pass:
//
//   * per-detector confusion at the operating point (precision/recall/F1)
//   * ROC/AUC via a threshold sweep over the graded suspicion scores
//   * time-to-detect: first true alert per attacking actor, measured from
//     that actor's first record
//   * unique-alert-cause attribution: which mechanism caught what the
//     other tool missed (per-reason, on truth-malicious records)
//   * the 1oo2 ensemble as an extra scored column (alert = any detector
//     alerts; score = max), the paper's diversity argument made measurable
//
// Records with unknown truth are excluded from every metric, matching the
// seed benches. The output is a ScenarioScore per run; a set of runs
// serializes as the versioned `divscrape.bench_detection.v1` document
// (DetectionDocument), the detection-quality counterpart to
// BENCH_throughput.json: future perf PRs are gated on "didn't get worse
// at detecting" via its committed floors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "detectors/detector.hpp"
#include "httplog/record.hpp"
#include "util/span.hpp"

namespace divscrape::eval {

/// One alert-reason tally of a detector's unique (single-tool) alerts.
struct ReasonCount {
  std::string reason;
  std::uint64_t count = 0;

  friend bool operator==(const ReasonCount& a, const ReasonCount& b) {
    return a.reason == b.reason && a.count == b.count;
  }
};

/// The scored outcome of one detector column (or the ensemble) over one
/// scenario run. Derived rates are computed, not stored, so a round-tripped
/// document can never disagree with its own counts.
struct ColumnScore {
  std::string name;  ///< "sentinel", "arcane", ..., or "ensemble_1oo2"

  // Operating-point confusion over truth-known records.
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  /// Area under the ROC curve from the graded suspicion scores (E8).
  double auc = 0.0;

  // Actor-granularity detection: an attacking actor counts as detected
  // once this column raises a true alert on any of its records.
  std::uint64_t actors_detected = 0;
  /// Attacking actors this column alone detected (no other detector
  /// column caught them anywhere in the run). Zero for the ensemble.
  std::uint64_t actors_unique = 0;

  // Time-to-detect over detected actors, in seconds from the actor's
  // first record to its first true alert. Zero when none were detected.
  double ttd_mean_s = 0.0;
  double ttd_p50_s = 0.0;
  double ttd_p90_s = 0.0;

  /// Reasons of this column's unique alerts on truth-malicious records
  /// (E9 attribution), sorted by descending count. Empty for the ensemble.
  std::vector<ReasonCount> unique_reasons;

  [[nodiscard]] double precision() const noexcept {
    const auto d = tp + fp;
    return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
  }
  [[nodiscard]] double recall() const noexcept {
    const auto d = tp + fn;
    return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  friend bool operator==(const ColumnScore& a, const ColumnScore& b) {
    return a.name == b.name && a.tp == b.tp && a.fp == b.fp && a.tn == b.tn &&
           a.fn == b.fn && a.auc == b.auc &&
           a.actors_detected == b.actors_detected &&
           a.actors_unique == b.actors_unique &&
           a.ttd_mean_s == b.ttd_mean_s && a.ttd_p50_s == b.ttd_p50_s &&
           a.ttd_p90_s == b.ttd_p90_s && a.unique_reasons == b.unique_reasons;
  }
};

/// Everything BENCH_detection records about one scenario run: the stream
/// composition plus one ColumnScore per detector and one for the ensemble
/// (always last, named "ensemble_1oo2").
struct ScenarioScore {
  std::string scenario;
  double scale = 1.0;
  std::uint64_t records = 0;  ///< truth-known records scored
  std::uint64_t truth_benign = 0;
  std::uint64_t truth_malicious = 0;
  std::uint64_t actors_attacking = 0;  ///< distinct truth-malicious actors
  std::vector<ColumnScore> columns;

  /// Column lookup by name; nullptr when absent.
  [[nodiscard]] const ColumnScore* column(std::string_view name) const;

  friend bool operator==(const ScenarioScore& a, const ScenarioScore& b) {
    return a.scenario == b.scenario && a.scale == b.scale &&
           a.records == b.records && a.truth_benign == b.truth_benign &&
           a.truth_malicious == b.truth_malicious &&
           a.actors_attacking == b.actors_attacking && a.columns == b.columns;
  }
};

/// The versioned machine-readable detection-quality document
/// (schema divscrape.bench_detection.v1) — BENCH_detection.json.
struct DetectionDocument {
  static constexpr std::string_view kSchema = "divscrape.bench_detection.v1";

  std::string bench = "bench_detection";
  std::vector<ScenarioScore> scenarios;

  [[nodiscard]] const ScenarioScore* scenario(std::string_view name) const;

  [[nodiscard]] std::string to_json() const;
  /// Parses and validates (schema string must match exactly); nullopt and
  /// a one-line reason on anything else.
  [[nodiscard]] static std::optional<DetectionDocument> from_json(
      std::string_view json, std::string* error = nullptr);

  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<DetectionDocument> load(
      const std::string& path, std::string* error = nullptr);

  friend bool operator==(const DetectionDocument& a,
                         const DetectionDocument& b) {
    return a.bench == b.bench && a.scenarios == b.scenarios;
  }
};

/// Streaming scorer for one scenario run. Feed every record (in time
/// order) together with the verdict vector the detector pool produced for
/// it; call finish() once at the end.
class Scorer {
 public:
  /// `detector_names` in pool order; the 1oo2 ensemble column is derived
  /// automatically and appended as "ensemble_1oo2".
  explicit Scorer(std::vector<std::string> detector_names);

  /// Folds one record's joint verdict in. `verdicts.size()` must equal the
  /// detector-name count (the ensemble is computed here, not supplied).
  void observe(const httplog::LogRecord& record,
               divscrape::span<const detectors::Verdict> verdicts);

  [[nodiscard]] std::uint64_t records_scored() const noexcept {
    return truth_benign_ + truth_malicious_;
  }

  /// Raw per-record suspicion scores of one column (detectors in pool
  /// order, then the ensemble), aligned with labels() — the inputs of the
  /// ROC sweep, exposed so callers can print full curves (bench_roc).
  [[nodiscard]] divscrape::span<const double> column_scores(
      std::size_t column) const {
    return columns_.at(column).scores;
  }
  [[nodiscard]] divscrape::span<const int> labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }

  /// Computes the final per-column metrics. The scorer stays valid (more
  /// observe() calls may follow; finish() may be called again).
  [[nodiscard]] ScenarioScore finish(std::string scenario_name,
                                     double scale) const;

 private:
  struct Column {
    std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
    std::vector<double> scores;  ///< truth-known records, observe order
    /// actor id -> micros of the first true alert on that actor.
    std::unordered_map<std::uint32_t, std::int64_t> first_alert_us;
    /// Reason tallies of unique alerts on truth-malicious records
    /// (real detector columns only).
    std::unordered_map<std::string, std::uint64_t> unique_reasons;
  };

  std::vector<std::string> names_;
  std::vector<Column> columns_;  ///< detectors..., then the ensemble
  std::vector<int> labels_;      ///< 1 = malicious, per scored record
  std::uint64_t truth_benign_ = 0;
  std::uint64_t truth_malicious_ = 0;
  /// actor id -> micros of the actor's first (any-truth) record.
  std::unordered_map<std::uint32_t, std::int64_t> first_seen_us_;
  std::uint64_t actors_attacking_ = 0;
};

}  // namespace divscrape::eval
