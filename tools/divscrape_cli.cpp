// divscrape — command-line front end to the library.
//
//   divscrape generate  [opts]   write a simulated CLF access log to stdout
//   divscrape simulate  <scenario|spec.json>  run a catalog/spec workload
//                                through the parallel WorkloadEngine
//   divscrape analyze   <log>    run the two detectors over a CLF file
//   divscrape tail      <log>... follow growing CLF file(s) (deployment mode)
//   divscrape tables    [opts]   regenerate the paper's four tables
//   divscrape export    [opts]   run the experiment, emit JSON results
//   divscrape label     <log>    heuristically label a CLF file (paper §V)
//   divscrape soak      [scenario]  chaos soak: closed generate->tail loop
//                                under scripted faults (default: megasite)
//   divscrape score     <scenario|spec.json>  run a workload through the
//                                detector pair and score detection quality
//                                (precision/recall/AUC/time-to-detect per
//                                detector and for the 1oo2 ensemble)
//
// Common options:
//   --config <file>     key=value config (see core/config.hpp header)
//   --set k=v           inline override (repeatable)
//   --scale <s>         shorthand for --set scenario.scale=s
//   --alerts <file>     (analyze) also write a JSONL alert log
//   --csv <prefix>      (export) also write <prefix>_{totals,pairs,status}.csv
//
// Simulate options:
//   --list              print the scenario catalog and exit
//   --dump-spec         print the resolved spec JSON and exit (the
//                       template workflow: dump, edit, simulate the file)
//   --gen-threads <n>   generator worker threads (output is identical for
//                       any value — the determinism contract)
//   --partitions <n>    logical partitions (part of the output contract;
//                       default 8)
//   --out <file>        write the merged stream as a CLF log (batched
//                       writev writer); default without --out/--detect is
//                       CLF on stdout
//   --out-multi <dir>   write one CLF log per vhost under <dir> (the
//                       deployment shape `tail` ingests); SIGINT flushes
//                       and closes every log cleanly
//   --lazy              force lazy actor materialization (auto-enabled for
//                       megasite-class specs)
//   --detect            feed the stream to the sentinel+arcane pair and
//                       print the joint summary
//   --shards <n>        with --detect: sharded detection on n workers
//   --dispatchers <m>   with --shards: m dispatcher threads, each owning a
//                       contiguous shard range (default 1); records travel
//                       as RecordBatches through SPSC rings either way
//
// Soak options (see pipeline/chaos.hpp for the full contract):
//   --out <dir>         work directory (live logs, shadows, checkpoints;
//                       default soak_run)
//   --bench <file>      machine-readable report (default BENCH_soak.json)
//   --smoke             CI-sized run: --scale 0.01 + tight persist cadence
//   --chaos-seed <n>    fault schedule seed
//   --rss-limit-mb <n>  RSS high-water bound (default 4096)
//
// Tail options:
//   --checkpoint <file>   resume from / persist an ingest checkpoint
//                         (single-file mode; carries the detector-state
//                         blob, so resume is warm when the blob restores)
//   --checkpoint-dir <d>  per-log checkpoint files under one directory
//                         (multi-file / sharded mode; works for one log
//                         too). Adds tail_session.state.json: per-log
//                         offsets + the shared detector state, committed
//                         last so warm resume always sees a consistent cut
//   --shards <n>          dispatch merged records to a ShardedPipeline with
//                         n worker threads (results print at exit); the
//                         merged stream is framed into RecordBatches
//   --dispatchers <m>     (tail, with --shards) m dispatcher threads
//   --reorder-ms <n>      multi-file merge reorder window (default 2000)
//   --follow              keep polling after catching up (stop with SIGINT)
//   --poll-ms <n>         follow-mode poll interval (default 200)
//   --results <file>      periodically flush JointResults JSON (atomic
//                         rename; sharded mode writes it once at exit)
//   --flush-every <n>     flush results/checkpoint every n parsed records
//
// Score options:
//   --json <file>       also write the single-scenario DetectionDocument
//                       (schema divscrape.bench_detection.v1)
//   --gen-threads <n>   generator worker threads (the score is identical
//                       for any value — the determinism contract)
#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/export.hpp"
#include "core/labeling.hpp"
#include "core/paper_reference.hpp"
#include "core/report.hpp"
#include "core/timeseries.hpp"
#include "detectors/arcane.hpp"
#include "detectors/sentinel.hpp"
#include "eval/run.hpp"
#include "eval/scorer.hpp"
#include "httplog/io.hpp"
#include "pipeline/alert_log.hpp"
#include "pipeline/chaos.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/multi_tailer.hpp"
#include "pipeline/replay.hpp"
#include "pipeline/sharded.hpp"
#include "pipeline/tailer.hpp"
#include "traffic/scenario.hpp"
#include "traffic/stream_writer.hpp"
#include "util/atomic_file.hpp"
#include "util/interner.hpp"
#include "util/state.hpp"
#include "workload/catalog.hpp"
#include "workload/engine.hpp"

using namespace divscrape;

namespace {

struct CliOptions {
  std::string command;
  std::string input;                ///< first positional (single-log cmds)
  std::vector<std::string> inputs;  ///< all positionals (tail takes many)
  std::string alerts_path;
  std::string csv_prefix;
  std::string checkpoint_path;
  std::string checkpoint_dir;
  std::string results_path;
  std::string out_path;
  std::string out_multi_dir;
  std::string bench_path;
  std::string json_path;
  bool follow = false;
  bool detect = false;
  bool list = false;
  bool dump_spec = false;
  bool lazy = false;
  bool smoke = false;
  std::uint64_t chaos_seed = 0xC4A05ULL;
  double rss_limit_mb = 4096.0;
  int poll_ms = 200;
  int reorder_ms = 2000;
  std::size_t shards = 1;
  std::size_t dispatchers = 1;
  std::size_t gen_threads = 1;
  std::size_t partitions = 0;  ///< 0 = engine default
  std::uint64_t flush_every = 100000;
  core::KeyValueConfig config;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: divscrape "
      "<generate|simulate|analyze|tail|tables|export|label|soak|score> "
      "[options]\n"
      "  score    <scenario|spec.json> [--json <file>] [--gen-threads <n>]\n"
      "  simulate <scenario|spec.json> [--list] [--dump-spec]\n"
      "           [--gen-threads <n>] [--partitions <n>] [--lazy]\n"
      "           [--out <file>] [--out-multi <dir>] [--detect] "
      "[--shards <n>]\n"
      "  soak     [scenario] [--out <dir>] [--bench <file>] [--smoke]\n"
      "           [--chaos-seed <n>] [--rss-limit-mb <n>]\n"
      "  --config <file>       load key=value configuration\n"
      "  --set k=v             inline config override (repeatable)\n"
      "  --scale <s>           scenario scale in (0,1]\n"
      "  --alerts <file>       (analyze) write JSONL alert log\n"
      "  --csv <prefix>        (export) also write CSV files\n"
      "  --checkpoint <file>   (tail, 1 log) resume/persist ingest position\n"
      "  --checkpoint-dir <d>  (tail) per-log checkpoints under one dir\n"
      "  --shards <n>          (tail) sharded detection, n worker threads\n"
      "  --dispatchers <m>     (tail/simulate, with --shards) dispatcher "
      "threads\n"
      "  --reorder-ms <n>      (tail) merge reorder window, default 2000\n"
      "  --follow              (tail) keep polling; SIGINT checkpoints+exits\n"
      "  --poll-ms <n>         (tail) follow poll interval, default 200\n"
      "  --results <file>      (tail) periodic JointResults JSON flush\n"
      "  --flush-every <n>     (tail) flush cadence in parsed records\n");
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* path = next();
      if (!path) return false;
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open config %s\n", path);
        return false;
      }
      if (!opts.config.parse(in)) {
        for (const auto& e : opts.config.errors())
          std::fprintf(stderr, "config: %s\n", e.c_str());
        return false;
      }
    } else if (arg == "--set") {
      const char* kv = next();
      if (!kv) return false;
      const std::string text = kv;
      const auto eq = text.find('=');
      if (eq == std::string::npos) return false;
      opts.config.set(text.substr(0, eq), text.substr(eq + 1));
    } else if (arg == "--scale") {
      const char* s = next();
      if (!s) return false;
      opts.config.set("scenario.scale", s);
    } else if (arg == "--alerts") {
      const char* path = next();
      if (!path) return false;
      opts.alerts_path = path;
    } else if (arg == "--csv") {
      const char* prefix = next();
      if (!prefix) return false;
      opts.csv_prefix = prefix;
    } else if (arg == "--checkpoint") {
      const char* path = next();
      if (!path) return false;
      opts.checkpoint_path = path;
    } else if (arg == "--checkpoint-dir") {
      const char* path = next();
      if (!path) return false;
      opts.checkpoint_dir = path;
    } else if (arg == "--shards") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v < 1 || v > 64) return false;
      opts.shards = static_cast<std::size_t>(v);
    } else if (arg == "--dispatchers") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v < 1 || v > 64) return false;
      opts.dispatchers = static_cast<std::size_t>(v);
    } else if (arg == "--reorder-ms") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v < 0 || v > 3600000) return false;
      opts.reorder_ms = static_cast<int>(v);
    } else if (arg == "--results") {
      const char* path = next();
      if (!path) return false;
      opts.results_path = path;
    } else if (arg == "--follow") {
      opts.follow = true;
    } else if (arg == "--detect") {
      opts.detect = true;
    } else if (arg == "--list") {
      opts.list = true;
    } else if (arg == "--dump-spec") {
      opts.dump_spec = true;
    } else if (arg == "--out") {
      const char* path = next();
      if (!path) return false;
      opts.out_path = path;
    } else if (arg == "--out-multi") {
      const char* path = next();
      if (!path) return false;
      opts.out_multi_dir = path;
    } else if (arg == "--bench") {
      const char* path = next();
      if (!path) return false;
      opts.bench_path = path;
    } else if (arg == "--json") {
      const char* path = next();
      if (!path) return false;
      opts.json_path = path;
    } else if (arg == "--lazy") {
      opts.lazy = true;
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--chaos-seed") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      opts.chaos_seed = std::strtoull(n, &end, 10);
      if (end == n || *end != '\0') return false;
    } else if (arg == "--rss-limit-mb") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      opts.rss_limit_mb = std::strtod(n, &end);
      if (end == n || *end != '\0') return false;
    } else if (arg == "--gen-threads") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v < 1 || v > 64) return false;
      opts.gen_threads = static_cast<std::size_t>(v);
    } else if (arg == "--partitions") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v < 1 || v > 256) return false;
      opts.partitions = static_cast<std::size_t>(v);
    } else if (arg == "--poll-ms") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      const long v = std::strtol(n, &end, 10);
      if (end == n || *end != '\0' || v <= 0 || v > 3600000) return false;
      opts.poll_ms = static_cast<int>(v);
    } else if (arg == "--flush-every") {
      const char* n = next();
      if (!n) return false;
      char* end = nullptr;
      opts.flush_every = std::strtoull(n, &end, 10);
      if (end == n || *end != '\0' || opts.flush_every == 0) return false;
    } else if (!arg.empty() && arg[0] != '-') {
      // Positional argument: tail accepts many logs, other commands use
      // the first.
      opts.inputs.push_back(arg);
      if (opts.input.empty()) opts.input = arg;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

traffic::ScenarioConfig scenario_from(const core::KeyValueConfig& config) {
  auto scenario = traffic::amadeus_like(1.0);
  core::apply_scenario_config(config, scenario);
  return scenario;
}

std::vector<std::unique_ptr<detectors::Detector>> pair_from(
    const core::KeyValueConfig& config) {
  detectors::SentinelConfig sc;
  detectors::ArcaneConfig ac;
  core::apply_sentinel_config(config, sc);
  core::apply_arcane_config(config, ac);
  std::vector<std::unique_ptr<detectors::Detector>> pool;
  pool.push_back(std::make_unique<detectors::SentinelDetector>(sc));
  pool.push_back(std::make_unique<detectors::ArcaneDetector>(ac));
  return pool;
}

int cmd_generate(const CliOptions& opts) {
  traffic::Scenario scenario(scenario_from(opts.config));
  httplog::LogWriter writer(std::cout);
  httplog::LogRecord record;
  while (scenario.next(record)) writer.write(record);
  std::fprintf(stderr, "generated %llu records\n",
               static_cast<unsigned long long>(writer.lines_written()));
  return 0;
}

void print_detector_summary(const core::JointResults& r);

volatile std::sig_atomic_t g_tail_interrupted = 0;

void tail_sigint(int) { g_tail_interrupted = 1; }

/// Resolves the simulate/soak/score positional: a catalog name first, then
/// a spec file. The catalog wins on a name collision (rename the file).
std::optional<workload::ScenarioSpec> resolve_spec(const CliOptions& opts) {
  const bool scale_set = opts.config.get("scenario.scale").has_value();
  const double scale = opts.config.get_double("scenario.scale", 1.0);
  if (scale_set && scale <= 0.0) {
    std::fprintf(stderr, "%s: --scale must be > 0 (got %g)\n",
                 opts.command.c_str(), scale);
    return std::nullopt;
  }
  if (auto spec = workload::catalog_entry(opts.input, scale)) return spec;
  std::string error;
  auto spec = workload::ScenarioSpec::load(opts.input, &error);
  if (!spec) {
    std::fprintf(stderr,
                 "%s: \"%s\" is not a catalog scenario, and loading "
                 "it as a spec file failed: %s\n",
                 opts.command.c_str(), opts.input.c_str(), error.c_str());
    return std::nullopt;
  }
  if (scale_set) spec->scale = scale;  // --scale overrides the file
  return spec;
}

int cmd_simulate(const CliOptions& opts) {
  if (opts.list) {
    std::printf("scenario catalog:\n");
    for (const auto& entry : workload::catalog()) {
      std::printf("  %-20s %s\n", std::string(entry.name).c_str(),
                  std::string(entry.description).c_str());
    }
    return 0;
  }
  if (opts.input.empty()) {
    std::fprintf(stderr,
                 "simulate: missing <scenario|spec.json> "
                 "(try: simulate --list)\n");
    return 2;
  }
  auto spec = resolve_spec(opts);
  if (!spec) return 1;
  if (opts.dump_spec) {
    std::printf("%s\n", spec->to_json().c_str());
    return 0;
  }

  workload::EngineConfig engine_config;
  engine_config.gen_threads = opts.gen_threads;
  if (opts.partitions != 0) engine_config.partitions = opts.partitions;
  // Megasite-class specs only fit in memory lazily; small ones skip the
  // second construction pass (see EngineConfig::lazy_actors).
  engine_config.lazy_actors =
      opts.lazy || workload::static_population(*spec) >= 200'000;
  workload::WorkloadEngine engine(std::move(*spec), engine_config);

  // Compose the sink: an optional CLF writer (file, per-vhost directory,
  // or stdout when neither --out nor --detect asked for anything else)
  // plus an optional detector pair (sequential joiner or sharded
  // pipeline). Engine-stamped tokens are globally consistent, so
  // detectors consume records as-is.
  std::unique_ptr<traffic::StreamWriter> file_writer;
  if (!opts.out_path.empty()) {
    file_writer = std::make_unique<traffic::StreamWriter>(
        opts.out_path, traffic::StreamWriter::FaultPlan(), 512);
  }
  std::vector<std::unique_ptr<traffic::StreamWriter>> vhost_writers;
  if (!opts.out_multi_dir.empty()) {
    if (::mkdir(opts.out_multi_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "simulate: cannot create %s\n",
                   opts.out_multi_dir.c_str());
      return 1;
    }
    for (std::size_t v = 0; v < engine.spec().vhosts.size(); ++v) {
      vhost_writers.push_back(std::make_unique<traffic::StreamWriter>(
          opts.out_multi_dir + "/v" + std::to_string(v) + "_" +
              engine.spec().vhosts[v].name + ".log",
          traffic::StreamWriter::FaultPlan(), 512));
    }
  }
  const bool stdout_log =
      opts.out_path.empty() && opts.out_multi_dir.empty() && !opts.detect;
  httplog::LogWriter stdout_writer(std::cout);

  std::vector<std::unique_ptr<detectors::Detector>> pool;
  std::unique_ptr<core::AlertJoiner> joiner;
  std::unique_ptr<pipeline::ShardedPipeline> sharded;
  if (opts.detect) {
    if (opts.shards > 1) {
      sharded = std::make_unique<pipeline::ShardedPipeline>(
          [&opts] { return pair_from(opts.config); }, opts.shards,
          /*batch_size=*/1024, /*max_backlog=*/16 * 1024, opts.dispatchers);
    } else {
      pool = pair_from(opts.config);
      joiner = std::make_unique<core::AlertJoiner>(pool);
    }
  }

  // A long generation run must be interruptible without shearing a log
  // mid-line: SIGINT requests a cooperative stop at the next record
  // boundary and every writer below gets its normal flush-and-close.
  std::signal(SIGINT, tail_sigint);
  const auto t0 = std::chrono::steady_clock::now();
  const auto write_record = [&](const httplog::LogRecord& record) {
    if (file_writer) file_writer->write(record);
    if (!vhost_writers.empty()) {
      const std::size_t v =
          record.vhost < vhost_writers.size() ? record.vhost : 0;
      vhost_writers[v]->write(record);
    }
    if (stdout_log) stdout_writer.write(record);
  };
  std::uint64_t records = 0;
  if (sharded) {
    // Batched handoff: whole merge windows travel as RecordBatches into
    // the pipeline's SPSC rings (same emission order as engine.run()).
    records = engine.run_batched(
        [&](pipeline::RecordBatch&& batch) {
          if (g_tail_interrupted) engine.request_stop();
          for (const auto& record : batch) write_record(record);
          sharded->process_batch(std::move(batch));
        },
        /*batch_records=*/1024, &sharded->batch_pool());
  } else {
    records = engine.run([&](httplog::LogRecord&& record) {
      if (g_tail_interrupted) engine.request_stop();
      write_record(record);
      if (joiner) (void)joiner->process(record);
    });
  }
  if (file_writer) file_writer->flush();
  for (auto& writer : vhost_writers) writer->flush();
  std::optional<core::JointResults> sharded_results;
  if (sharded) sharded_results = sharded->finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::fprintf(stderr,
               "simulated \"%s\" scale %.3g: %s records, %zu vhosts, %zu "
               "distinct UAs, %zu gen threads x %zu partitions, %.2fs "
               "(%s records/s)\n",
               engine.spec().name.c_str(), engine.spec().scale,
               core::with_thousands(records).c_str(),
               engine.spec().vhosts.size(), engine.distinct_user_agents(),
               engine.config().gen_threads, engine.config().partitions, wall,
               core::with_thousands(static_cast<std::uint64_t>(
                                        wall > 0.0 ? records / wall : 0))
                   .c_str());
  if (joiner) {
    print_detector_summary(joiner->results());
  } else if (sharded_results) {
    print_detector_summary(*sharded_results);
  }
  if (g_tail_interrupted) {
    std::fprintf(stderr,
                 "interrupted: stopped at a record boundary, all logs "
                 "flushed and closed\n");
    return 130;
  }
  return 0;
}

int cmd_analyze(const CliOptions& opts) {
  if (opts.input.empty()) {
    std::fprintf(stderr, "analyze: missing <log> path\n");
    return 2;
  }
  std::ifstream in(opts.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opts.input.c_str());
    return 1;
  }
  const auto pool = pair_from(opts.config);
  core::AlertJoiner joiner(pool);

  std::ofstream alerts_file;
  std::unique_ptr<pipeline::AlertLogWriter> alerts;
  if (!opts.alerts_path.empty()) {
    alerts_file.open(opts.alerts_path);
    if (!alerts_file) {
      std::fprintf(stderr, "cannot open %s\n", opts.alerts_path.c_str());
      return 1;
    }
    alerts = std::make_unique<pipeline::AlertLogWriter>(alerts_file);
  }

  httplog::LogReader reader(in);
  httplog::LogRecord record;
  util::StringInterner ua_tokens;
  while (reader.next(record)) {
    // Stamp the interned UA token so the detectors skip per-record string
    // hashing (same as ReplayEngine and the traffic generator do).
    record.ua_token = ua_tokens.intern(record.user_agent);
    const auto verdicts = joiner.process(record);
    if (alerts) {
      for (std::size_t d = 0; d < pool.size(); ++d) {
        alerts->write(pool[d]->name(), record, verdicts[d]);
      }
    }
  }
  const auto& r = joiner.results();
  std::printf("parsed %s records (%s lines skipped)\n",
              core::with_thousands(r.total_requests()).c_str(),
              core::with_thousands(reader.lines_skipped()).c_str());
  for (std::size_t d = 0; d < r.detector_count(); ++d) {
    std::printf("  %-10s alerts %s\n", r.names()[d].c_str(),
                core::with_thousands(r.alerts(d)).c_str());
  }
  const auto& pair = r.pair(0, 1);
  std::printf(
      "  both %s | neither %s | sentinel-only %s | arcane-only %s\n",
      core::with_thousands(pair.both()).c_str(),
      core::with_thousands(pair.neither()).c_str(),
      core::with_thousands(pair.first_only()).c_str(),
      core::with_thousands(pair.second_only()).c_str());
  if (alerts) {
    std::printf("wrote %s alert events to %s\n",
                core::with_thousands(alerts->written()).c_str(),
                opts.alerts_path.c_str());
  }
  return 0;
}

/// Atomic results flush: SOC dashboards read the file while we rewrite it,
/// so the document replaces the previous one in a single rename.
bool flush_results(const core::JointResults& results,
                   const std::string& path) {
  return util::write_file_atomic(path, core::to_json(results) + "\n");
}

void print_detector_summary(const core::JointResults& r) {
  for (std::size_t d = 0; d < r.detector_count(); ++d) {
    std::printf("  %-10s alerts %s\n", r.names()[d].c_str(),
                core::with_thousands(r.alerts(d)).c_str());
  }
  if (r.detector_count() >= 2) {
    const auto& pair = r.pair(0, 1);
    std::printf(
        "  both %s | neither %s | sentinel-only %s | arcane-only %s\n",
        core::with_thousands(pair.both()).c_str(),
        core::with_thousands(pair.neither()).c_str(),
        core::with_thousands(pair.first_only()).c_str(),
        core::with_thousands(pair.second_only()).c_str());
  }
}

/// Per-log checkpoint file inside --checkpoint-dir: the log's path with
/// every separator flattened for readability, plus a hash of the exact
/// path so distinct logs can never collide ("/logs/a/b.log" vs
/// "/logs/a_b.log" flatten identically). Stable across invocations.
std::string checkpoint_file_for(const std::string& dir,
                                const std::string& log_path) {
  std::string name = log_path;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  char hash[16];
  std::snprintf(hash, sizeof hash, ".%08x",
                util::fnv1a32(log_path));
  return dir + "/" + name + hash + ".cp.json";
}

/// Multi-file and/or sharded tail: one LogTailer per input log merged into
/// a single time-ordered stream (MultiTailer), consumed either by a
/// sequential ReplayEngine or a ShardedPipeline.
int cmd_tail_multi(const CliOptions& opts) {
  std::vector<std::unique_ptr<detectors::Detector>> pool;
  std::unique_ptr<pipeline::ReplayEngine> engine;
  std::unique_ptr<pipeline::ShardedPipeline> sharded;
  util::StringInterner ua_tokens;  // sharded dispatch stamps here
  pipeline::MultiTailConfig tail_config;
  tail_config.reorder_window_us =
      static_cast<std::int64_t>(opts.reorder_ms) * 1000;
  // Sharded consumption takes the batch seam: the merged stream is framed
  // into RecordBatches (partial batches flush at every poll, so checkpoint
  // offsets never cover records hiding in a batch) and whole batches move
  // through the dispatcher rings. Sequential keeps the per-record sink.
  const auto make_tailer = [&]() -> pipeline::MultiTailer {
    if (opts.shards > 1) {
      sharded = std::make_unique<pipeline::ShardedPipeline>(
          [&opts] { return pair_from(opts.config); }, opts.shards,
          /*batch_size=*/1024, /*max_backlog=*/16 * 1024, opts.dispatchers);
      return pipeline::MultiTailer(
          opts.inputs,
          pipeline::MultiTailer::BatchSink(
              [&](pipeline::RecordBatch&& batch) {
                for (auto& record : batch)
                  record.ua_token = ua_tokens.intern(record.user_agent);
                sharded->process_batch(std::move(batch));
              }),
          /*batch_records=*/1024, tail_config, &sharded->batch_pool());
    }
    pool = pair_from(opts.config);
    engine = std::make_unique<pipeline::ReplayEngine>(pool);
    return pipeline::MultiTailer(
        opts.inputs,
        [&](httplog::LogRecord&& record) {
          engine->process_record(std::move(record));
        },
        tail_config);
  };
  pipeline::MultiTailer tailer = make_tailer();

  // The session file carries the detection-state blob plus the per-log
  // offsets it covers; the per-log .cp.json files stay operator-visible and
  // cold-compatible. Blob layout: one mode byte (0 = sequential engine,
  // 1 = sharded: dispatch interner + per-shard joiners) then that mode's
  // component states — a sharded snapshot can never be misread by a
  // sequential resume or vice versa.
  const std::string session_path =
      opts.checkpoint_dir.empty()
          ? std::string()
          : opts.checkpoint_dir + "/tail_session.state.json";
  const auto restore_session_state = [&](const std::string& blob) {
    util::StateReader r(blob);
    const std::uint8_t mode = r.u8();
    if (!r.ok() || mode != (sharded ? 1 : 0)) return false;
    if (sharded) {
      if (!ua_tokens.load_state(r) || !sharded->load_state(r)) return false;
    } else if (!engine->load_state(r)) {
      return false;
    }
    return r.at_end();
  };

  bool warm = false;
  if (!opts.checkpoint_dir.empty()) {
    if (const auto session = pipeline::TailSessionState::load(session_path)) {
      const auto embedded = [&](const std::string& path) {
        for (const auto& [p, cp] : session->logs)
          if (p == path) return &cp;
        return static_cast<const pipeline::Checkpoint*>(nullptr);
      };
      bool paths_match = session->logs.size() == tailer.files();
      for (std::size_t i = 0; paths_match && i < tailer.files(); ++i) {
        paths_match = embedded(tailer.path(i)) != nullptr;
      }
      if (paths_match && !session->state.empty()) {
        // Resume ingest from the offsets embedded alongside the blob (NOT
        // the per-log files, which may describe a newer cut): state and
        // offsets must name the same point in every stream. Only if every
        // offset is honored is the warm restore attempted — a replaced
        // file restarts at 0 and would replay records the blob already
        // counted.
        bool all_honored = true;
        for (std::size_t i = 0; i < tailer.files(); ++i) {
          all_honored &= tailer.resume(i, *embedded(tailer.path(i)));
        }
        warm = all_honored && restore_session_state(session->state);
        if (warm) {
          for (std::size_t i = 0; i < tailer.files(); ++i) {
            const auto* cp = embedded(tailer.path(i));
            std::fprintf(
                stderr,
                "resumed %s from %s: offset %llu honored (%llu records "
                "already ingested; detector state restored warm)\n",
                tailer.path(i).c_str(), session_path.c_str(),
                static_cast<unsigned long long>(cp->offset),
                static_cast<unsigned long long>(cp->parsed));
          }
        } else {
          std::fprintf(stderr,
                       "warning: cannot restore detector state from %s "
                       "(replaced log, mode change, or stale blob); "
                       "detection restarts cold\n",
                       session_path.c_str());
        }
      } else if (!paths_match) {
        std::fprintf(stderr,
                     "warning: %s describes a different log set; detection "
                     "restarts cold\n",
                     session_path.c_str());
      }
    }
    if (!warm) {
      for (std::size_t i = 0; i < tailer.files(); ++i) {
        const auto cp_path =
            checkpoint_file_for(opts.checkpoint_dir, tailer.path(i));
        if (const auto cp = pipeline::Checkpoint::load(cp_path)) {
          const bool honored = tailer.resume(i, *cp);
          std::fprintf(stderr,
                       "resumed %s from %s: offset %llu %s (%llu records "
                       "already ingested; detector state restarts cold)\n",
                       tailer.path(i).c_str(), cp_path.c_str(),
                       static_cast<unsigned long long>(cp->offset),
                       honored ? "honored" : "discarded (file replaced)",
                       static_cast<unsigned long long>(cp->parsed));
        }
      }
    }
  }
  if (opts.follow) std::signal(SIGINT, tail_sigint);
  if (!opts.results_path.empty() && opts.shards > 1) {
    std::fprintf(stderr,
                 "note: sharded tail writes --results once at exit "
                 "(per-shard results merge only on finish)\n");
  }

  const auto persist = [&]() {
    // Checkpoint offsets cover decoded records, so every one of them must
    // be truly processed first: flush the reorder heap into the sink, and
    // in sharded mode also drain the shard queues (a crash between the
    // checkpoint save and the workers would otherwise lose queued records
    // that resume then skips).
    (void)tailer.flush();
    if (sharded) sharded->drain();
    if (!opts.checkpoint_dir.empty()) {
      for (std::size_t i = 0; i < tailer.files(); ++i) {
        const auto cp_path =
            checkpoint_file_for(opts.checkpoint_dir, tailer.path(i));
        if (!tailer.checkpoint(i).save(cp_path)) {
          std::fprintf(stderr, "cannot save checkpoint %s\n",
                       cp_path.c_str());
        }
      }
      // Session file last (see TailSessionState): a crash after the per-log
      // saves but before this leaves an older-but-consistent warm snapshot.
      util::StateWriter w;
      w.u8(sharded ? 1 : 0);
      bool have_state;
      if (sharded) {
        ua_tokens.save_state(w);
        have_state = sharded->save_state(w);
      } else {
        have_state = engine->save_state(w);
      }
      if (have_state) {
        pipeline::TailSessionState session;
        for (std::size_t i = 0; i < tailer.files(); ++i) {
          session.logs.emplace_back(tailer.path(i), tailer.checkpoint(i));
        }
        session.state = w.take();
        if (!session.save(session_path)) {
          std::fprintf(stderr, "cannot save session state %s\n",
                       session_path.c_str());
        }
      }
    }
    if (engine && !opts.results_path.empty() &&
        !flush_results(engine->results(), opts.results_path)) {
      std::fprintf(stderr, "cannot write results %s\n",
                   opts.results_path.c_str());
    }
  };

  // Nothing to write => no periodic persist: the flush would force
  // heap-buffered records past the watermark and the sharded drain would
  // stall the dispatcher, all for no durable artifact.
  const bool persist_output =
      !opts.checkpoint_dir.empty() || !opts.results_path.empty();
  std::uint64_t last_flush_parsed = 0;
  int idle_polls = 0;
  for (;;) {
    const std::size_t consumed = tailer.poll();
    if (persist_output &&
        tailer.stats().parsed - last_flush_parsed >= opts.flush_every) {
      last_flush_parsed = tailer.stats().parsed;
      persist();
    }
    if (!opts.follow) break;  // one drain: batch-catch-up semantics
    if (g_tail_interrupted) break;
    if (consumed == 0) {
      // Every log has gone quiet: the watermark and the reorder window
      // are both keyed to *new* records' simulated time, so without this
      // wall-clock escape a final burst would sit in the reorder heap
      // until SIGINT. A laggard waking up afterwards emits late (counted)
      // rather than being dropped.
      if (++idle_polls >= 2 && tailer.buffered_records() > 0) {
        (void)tailer.flush();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
    } else {
      idle_polls = 0;
    }
  }
  persist();

  const auto stats = tailer.stats();
  std::printf(
      "tailed %zu logs (%zu shards, %zu dispatchers): %s records parsed, "
      "%s lines skipped, %llu rotations, %llu truncations, %llu lost "
      "incarnations, %llu read errors, %llu late, %llu forced\n",
      tailer.files(), opts.shards, opts.shards > 1 ? opts.dispatchers : 0,
      core::with_thousands(stats.parsed).c_str(),
      core::with_thousands(stats.skipped).c_str(),
      static_cast<unsigned long long>(tailer.rotations()),
      static_cast<unsigned long long>(tailer.truncations()),
      static_cast<unsigned long long>(tailer.lost_incarnations()),
      static_cast<unsigned long long>(tailer.read_errors()),
      static_cast<unsigned long long>(tailer.late_records()),
      static_cast<unsigned long long>(tailer.forced_emits()));
  if (engine) {
    print_detector_summary(engine->results());
  } else {
    const auto results = sharded->finish();
    if (!opts.results_path.empty() &&
        !flush_results(results, opts.results_path)) {
      std::fprintf(stderr, "cannot write results %s\n",
                   opts.results_path.c_str());
    }
    print_detector_summary(results);
  }
  return 0;
}

int cmd_tail(const CliOptions& opts) {
  if (opts.input.empty()) {
    std::fprintf(stderr, "tail: missing <log> path\n");
    return 2;
  }
  if (opts.inputs.size() > 1 || opts.shards > 1 ||
      !opts.checkpoint_dir.empty()) {
    if (!opts.checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "tail: use --checkpoint-dir (not --checkpoint) with "
                   "multiple logs or --shards\n");
      return 2;
    }
    return cmd_tail_multi(opts);
  }
  const auto pool = pair_from(opts.config);
  pipeline::ReplayEngine engine(pool);
  pipeline::LogTailer tailer(opts.input, engine);

  if (!opts.checkpoint_path.empty()) {
    if (const auto cp = pipeline::Checkpoint::load(opts.checkpoint_path)) {
      const bool honored = tailer.resume(*cp);
      // Warm restore only behind an honored offset: a discarded offset
      // re-ingests from 0, and records the blob already counted would be
      // scored twice.
      bool warm = false;
      if (honored && !cp->state.empty()) {
        util::StateReader r(cp->state);
        warm = engine.load_state(r) && r.at_end();
        if (!warm) {
          std::fprintf(stderr,
                       "warning: cannot restore detector state from %s "
                       "(stale or damaged blob); detection restarts cold\n",
                       opts.checkpoint_path.c_str());
        }
      }
      std::fprintf(stderr,
                   "resumed from %s: offset %llu %s (%llu records already "
                   "ingested; detector state %s)\n",
                   opts.checkpoint_path.c_str(),
                   static_cast<unsigned long long>(cp->offset),
                   honored ? "honored" : "discarded (file replaced)",
                   static_cast<unsigned long long>(cp->parsed),
                   warm ? "restored warm" : "restarts cold");
    }
  }
  if (opts.follow) std::signal(SIGINT, tail_sigint);

  const auto persist = [&]() {
    if (!opts.checkpoint_path.empty()) {
      pipeline::Checkpoint cp = tailer.checkpoint();
      util::StateWriter w;
      if (engine.save_state(w)) cp.state = w.take();
      if (!cp.save(opts.checkpoint_path)) {
        std::fprintf(stderr, "cannot save checkpoint %s\n",
                     opts.checkpoint_path.c_str());
      }
    }
    if (!opts.results_path.empty() &&
        !flush_results(engine.results(), opts.results_path)) {
      std::fprintf(stderr, "cannot write results %s\n",
                   opts.results_path.c_str());
    }
  };

  std::uint64_t last_flush_parsed = 0;
  for (;;) {
    const std::size_t consumed = tailer.poll();
    if (engine.stats().parsed - last_flush_parsed >= opts.flush_every) {
      last_flush_parsed = engine.stats().parsed;
      persist();
    }
    if (!opts.follow) break;  // one drain: batch-catch-up semantics
    if (g_tail_interrupted) break;
    if (consumed == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
    }
  }
  persist();

  const auto cp = tailer.checkpoint();
  std::printf(
      "tailed %s: %s records parsed, %s lines skipped, %llu rotations, "
      "%llu truncations, %llu lost incarnations, %llu read errors%s\n",
      opts.input.c_str(), core::with_thousands(cp.parsed).c_str(),
      core::with_thousands(cp.skipped).c_str(),
      static_cast<unsigned long long>(cp.rotations),
      static_cast<unsigned long long>(cp.truncations),
      static_cast<unsigned long long>(cp.lost_incarnations),
      static_cast<unsigned long long>(tailer.read_errors()),
      engine.has_partial_line() ? " (1 partial line held un-ingested)" : "");
  print_detector_summary(engine.results());
  return 0;
}

/// Chaos soak: the closed generate->tail loop under scripted faults (see
/// pipeline/chaos.hpp). Exit status is the verdict — nonzero unless every
/// record was ingested exactly once, results matched the batch-replay
/// reference byte for byte, every kill resumed warm and RSS stayed bounded.
int cmd_soak(CliOptions opts) {
  if (opts.input.empty()) opts.input = "megasite";
  if (opts.smoke && !opts.config.get("scenario.scale").has_value()) {
    opts.config.set("scenario.scale", "0.01");
  }
  auto spec = resolve_spec(opts);
  if (!spec) return 1;

  pipeline::ChaosConfig config;
  config.spec = std::move(*spec);
  config.work_dir = opts.out_path.empty() ? "soak_run" : opts.out_path;
  config.chaos_seed = opts.chaos_seed;
  config.gen_threads = opts.gen_threads > 1 ? opts.gen_threads : 4;
  if (opts.partitions != 0) config.partitions = opts.partitions;
  config.rss_limit_mb = opts.rss_limit_mb;
  config.verbose = true;
  // Smoke runs are ~1% of the records, so the persist cadence tightens in
  // step: several warm cuts must still land between any two fault epochs.
  if (opts.smoke) config.persist_every_records = 5'000;

  std::fprintf(stderr,
               "soak: \"%s\" scale %.3g, %zu vhosts, %d fault epochs, "
               "chaos seed %llu, work dir %s\n",
               config.spec.name.c_str(), config.spec.scale,
               config.spec.vhosts.size(), config.fault_epochs,
               static_cast<unsigned long long>(config.chaos_seed),
               config.work_dir.c_str());
  const auto report = pipeline::run_chaos_soak(config);

  const std::string bench_path =
      opts.bench_path.empty() ? "BENCH_soak.json" : opts.bench_path;
  if (!pipeline::write_chaos_bench(config, report, bench_path)) {
    std::fprintf(stderr, "soak: cannot write %s\n", bench_path.c_str());
  }

  std::printf(
      "soak %s: %s records (%llu scripted drops), %llu faults "
      "(%llu rotations, %llu truncations, %llu torn, %llu enospc, %llu "
      "short-write bursts, %llu kills), %llu warm / %llu cold resumes, "
      "%llu checkpoints\n",
      report.passed ? "PASSED" : "FAILED",
      core::with_thousands(report.records_generated).c_str(),
      static_cast<unsigned long long>(report.records_dropped),
      static_cast<unsigned long long>(report.faults),
      static_cast<unsigned long long>(report.rotations),
      static_cast<unsigned long long>(report.truncations),
      static_cast<unsigned long long>(report.torn_writes),
      static_cast<unsigned long long>(report.enospc_faults),
      static_cast<unsigned long long>(report.short_write_bursts),
      static_cast<unsigned long long>(report.kills),
      static_cast<unsigned long long>(report.warm_resumes),
      static_cast<unsigned long long>(report.cold_resumes),
      static_cast<unsigned long long>(report.checkpoints_persisted));
  std::printf(
      "  exactly-once: %llu lost, %llu duplicated; results %s reference; "
      "peak RSS %.1f MiB (%s %.0f MiB limit); %.1fs wall "
      "(%s records/s); report: %s\n",
      static_cast<unsigned long long>(report.lost_records),
      static_cast<unsigned long long>(report.duplicate_records),
      report.results_identical ? "byte-identical to" : "DIVERGED from",
      static_cast<double>(report.rss_peak_kb) / 1024.0,
      report.rss_within_limit ? "within" : "OVER",
      config.rss_limit_mb,
      report.wall_seconds,
      core::with_thousands(
          static_cast<std::uint64_t>(report.records_per_s))
          .c_str(),
      bench_path.c_str());
  return report.passed ? 0 : 1;
}

/// Detection-quality scoring: the bench_detection engine behind a CLI seam,
/// for scoring one scenario (catalog entry or spec file) interactively —
/// e.g. a freshly authored evasion spec, before promoting it to the
/// catalog. Same scorer, same document schema, same determinism contract.
int cmd_score(const CliOptions& opts) {
  if (opts.input.empty()) {
    std::fprintf(stderr,
                 "score: missing <scenario|spec.json> "
                 "(try: simulate --list)\n");
    return 2;
  }
  auto spec = resolve_spec(opts);
  if (!spec) return 1;

  eval::RunOptions run_options;
  run_options.gen_threads = opts.gen_threads;
  const auto t0 = std::chrono::steady_clock::now();
  const auto score = eval::score_scenario(*spec, run_options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%s (scale %.3f): %s records scored (%s benign, %s "
              "malicious), %llu attacking actors, %.2fs\n",
              score.scenario.c_str(), score.scale,
              core::with_thousands(score.records).c_str(),
              core::with_thousands(score.truth_benign).c_str(),
              core::with_thousands(score.truth_malicious).c_str(),
              static_cast<unsigned long long>(score.actors_attacking), wall);
  std::printf("  %-14s %9s %9s %9s %9s %12s %10s\n", "column", "prec",
              "recall", "f1", "auc", "actors", "ttd_p50");
  for (const auto& column : score.columns) {
    std::printf(
        "  %-14s %8.1f%% %8.1f%% %8.1f%% %9.4f %6llu/%-5llu %9.0fs\n",
        column.name.c_str(), 100.0 * column.precision(),
        100.0 * column.recall(), 100.0 * column.f1(), column.auc,
        static_cast<unsigned long long>(column.actors_detected),
        static_cast<unsigned long long>(score.actors_attacking),
        column.ttd_p50_s);
  }

  if (!opts.json_path.empty()) {
    eval::DetectionDocument document;
    document.scenarios.push_back(score);
    if (!document.save(opts.json_path)) {
      std::fprintf(stderr, "score: cannot write %s\n",
                   opts.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opts.json_path.c_str());
  }
  return 0;
}

int cmd_tables(const CliOptions& opts) {
  core::ExperimentConfig config;
  config.scenario = scenario_from(opts.config);
  const auto pool = pair_from(opts.config);
  const auto out = core::run_experiment(config, pool);
  const auto& r = out.results;
  const auto& pair = r.pair(0, 1);

  std::printf("Table 1\n");
  std::printf("  total    %12s (paper %s)\n",
              core::with_thousands(r.total_requests()).c_str(),
              core::with_thousands(core::paper::kTotalRequests).c_str());
  std::printf("  sentinel %12s (paper %s)\n",
              core::with_thousands(r.alerts(0)).c_str(),
              core::with_thousands(core::paper::kDistilAlerts).c_str());
  std::printf("  arcane   %12s (paper %s)\n",
              core::with_thousands(r.alerts(1)).c_str(),
              core::with_thousands(core::paper::kArcaneAlerts).c_str());
  std::printf("Table 2\n");
  std::printf("  both %s | neither %s | arcane-only %s | sentinel-only %s\n",
              core::with_thousands(pair.both()).c_str(),
              core::with_thousands(pair.neither()).c_str(),
              core::with_thousands(pair.second_only()).c_str(),
              core::with_thousands(pair.first_only()).c_str());
  std::printf("Tables 3/4 (status: alerted / unique)\n");
  for (std::size_t d = 0; d < 2; ++d) {
    std::printf("  %s:\n", r.names()[d].c_str());
    for (const auto& [status, count] : r.alerted_status(d).by_count()) {
      std::printf("    %-28s %10s %10s\n",
                  httplog::status_label(status).c_str(),
                  core::with_thousands(count).c_str(),
                  core::with_thousands(
                      r.unique_alert_status(d).count(status))
                      .c_str());
    }
  }
  return 0;
}

int cmd_export(const CliOptions& opts) {
  core::ExperimentConfig config;
  config.scenario = scenario_from(opts.config);
  const auto pool = pair_from(opts.config);
  const auto out = core::run_experiment(config, pool);
  core::export_json(out.results, std::cout);
  std::cout << '\n';
  if (!opts.csv_prefix.empty()) {
    {
      std::ofstream f(opts.csv_prefix + "_totals.csv");
      core::export_totals_csv(out.results, f);
    }
    {
      std::ofstream f(opts.csv_prefix + "_pairs.csv");
      core::export_pairs_csv(out.results, f);
    }
    {
      std::ofstream f(opts.csv_prefix + "_status.csv");
      core::export_status_csv(out.results, f);
    }
    std::fprintf(stderr, "wrote %s_{totals,pairs,status}.csv\n",
                 opts.csv_prefix.c_str());
  }
  return 0;
}

int cmd_label(const CliOptions& opts) {
  if (opts.input.empty()) {
    std::fprintf(stderr, "label: missing <log> path\n");
    return 2;
  }
  std::ifstream in(opts.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opts.input.c_str());
    return 1;
  }
  auto records = httplog::read_all(in);
  core::HeuristicLabeler labeler;
  const auto result = labeler.label(records);
  std::fprintf(stderr,
               "labelled %llu records: %llu malicious, %llu benign, %llu "
               "unknown (coverage %.1f%%)\n",
               static_cast<unsigned long long>(result.records),
               static_cast<unsigned long long>(result.labeled_malicious),
               static_cast<unsigned long long>(result.labeled_benign),
               static_cast<unsigned long long>(result.left_unknown),
               result.coverage() * 100.0);
  // Emit "<truth>\t<clf line>" so downstream tooling can join.
  for (const auto& record : records) {
    std::cout << to_string(record.truth) << '\t'
              << httplog::format_clf(record) << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.command != "tail" && opts.inputs.size() > 1) {
    // Only tail fans out over many logs; a stray extra positional on the
    // single-input commands is almost certainly a mistyped flag.
    std::fprintf(stderr, "%s: takes at most one positional argument\n",
                 opts.command.c_str());
    return usage();
  }
  if (opts.command == "generate") return cmd_generate(opts);
  if (opts.command == "simulate") return cmd_simulate(opts);
  if (opts.command == "analyze") return cmd_analyze(opts);
  if (opts.command == "tail") return cmd_tail(opts);
  if (opts.command == "tables") return cmd_tables(opts);
  if (opts.command == "export") return cmd_export(opts);
  if (opts.command == "label") return cmd_label(opts);
  if (opts.command == "soak") return cmd_soak(opts);
  if (opts.command == "score") return cmd_score(opts);
  return usage();
}
