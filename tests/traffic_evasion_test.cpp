// Evasion-feature tests for ScraperBot (experiment E13's substrate).
#include <gtest/gtest.h>

#include <set>

#include "httplog/url.hpp"
#include "httplog/useragent.hpp"
#include "traffic/generator.hpp"
#include "traffic/scrapers.hpp"
#include "traffic/site.hpp"

namespace {

using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;
using divscrape::traffic::ActorClass;
using divscrape::traffic::BotProfile;
using divscrape::traffic::ScraperBot;
using divscrape::traffic::SiteModel;
using divscrape::traffic::TrafficGenerator;

struct BotRun {
  std::vector<LogRecord> records;
};

BotRun run_bot(BotProfile profile, double days = 1.0,
               std::uint64_t seed = 99) {
  const Timestamp start = Timestamp::from_civil(2018, 3, 11);
  const Timestamp end =
      start + static_cast<std::int64_t>(days * divscrape::httplog::kMicrosPerDay);
  SiteModel::Config site_config;
  site_config.catalogue_size = 5000;
  SiteModel site(site_config);
  TrafficGenerator generator(end);
  generator.add_actor(
      std::make_unique<ScraperBot>(site, std::move(profile), end,
                                   divscrape::stats::Rng(seed), 1),
      start);
  BotRun run;
  LogRecord r;
  while (generator.next(r)) run.records.push_back(r);
  return run;
}

BotProfile base_profile() {
  BotProfile profile;
  profile.cls = ActorClass::kScraperAggressive;
  profile.ip = Ipv4(45, 140, 0, 7);
  profile.user_agent =
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36";
  profile.gap_mean_s = 0.5;
  profile.session_len_mean = 100;
  profile.pause_mean_s = 3600;
  return profile;
}

TEST(Evasion, BaselineBotFetchesNoAssets) {
  const auto run = run_bot(base_profile(), 0.2);
  ASSERT_FALSE(run.records.empty());
  for (const auto& r : run.records) {
    EXPECT_FALSE(divscrape::httplog::is_static_asset(r.path())) << r.target;
    EXPECT_EQ(r.ip, Ipv4(45, 140, 0, 7));
  }
}

TEST(Evasion, AssetMimicryInterleavesAssets) {
  auto profile = base_profile();
  profile.p_asset_mimicry = 0.9;
  const auto run = run_bot(profile, 0.2);
  std::uint64_t assets = 0;
  for (const auto& r : run.records)
    assets += divscrape::httplog::is_static_asset(r.path());
  ASSERT_GT(run.records.size(), 50u);
  // ~90% of offer fetches spawn one asset -> assets should be a large
  // minority of the stream.
  const double ratio = static_cast<double>(assets) /
                       static_cast<double>(run.records.size());
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.55);
}

TEST(Evasion, UaRotationChangesPerSessionOnly) {
  auto profile = base_profile();
  profile.rotate_ua_per_session = true;
  profile.session_len_mean = 50;
  profile.pause_mean_s = 1800;
  const auto run = run_bot(profile, 1.0);
  std::set<std::string> uas;
  for (const auto& r : run.records) {
    uas.insert(r.user_agent);
    // Whatever it rotates to is always a plausible browser.
    EXPECT_EQ(divscrape::httplog::classify_user_agent(r.user_agent).family,
              divscrape::httplog::UaFamily::kBrowser);
  }
  EXPECT_GT(uas.size(), 1u);
  // Far fewer distinct UAs than records: rotation is per session.
  EXPECT_LT(uas.size(), run.records.size() / 10);
}

TEST(Evasion, IpRotationLeavesCampaignRange) {
  auto profile = base_profile();
  profile.rotate_ip_per_session = true;
  profile.session_len_mean = 50;
  profile.pause_mean_s = 1800;
  const auto run = run_bot(profile, 1.0);
  std::set<std::uint32_t> ips;
  for (const auto& r : run.records) {
    ips.insert(r.ip.value());
    // Rotation addresses avoid the flagged campaign /8 neighbourhood.
    EXPECT_NE(r.ip.value() >> 24, 45u) << r.ip.to_string();
  }
  EXPECT_GT(ips.size(), 1u);
}

TEST(Evasion, TruthLabelSurvivesEvasion) {
  auto profile = base_profile();
  profile.p_asset_mimicry = 0.9;
  profile.rotate_ua_per_session = true;
  profile.rotate_ip_per_session = true;
  const auto run = run_bot(profile, 0.3);
  for (const auto& r : run.records) {
    EXPECT_EQ(r.truth, divscrape::httplog::Truth::kMalicious);
    EXPECT_EQ(r.actor_class,
              static_cast<std::uint8_t>(ActorClass::kScraperAggressive));
  }
}

TEST(Evasion, DeterministicUnderRotation) {
  auto profile = base_profile();
  profile.rotate_ip_per_session = true;
  profile.rotate_ua_per_session = true;
  const auto a = run_bot(profile, 0.3, 5);
  const auto b = run_bot(profile, 0.3, 5);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].ip, b.records[i].ip);
    EXPECT_EQ(a.records[i].target, b.records[i].target);
  }
}

}  // namespace
