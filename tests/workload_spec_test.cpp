// Scenario-spec layer: the JSON parser, the spec codec (load -> dump ->
// load equality), catalog integrity, and validation diagnostics.
#include <gtest/gtest.h>

#include "core/json_parse.hpp"
#include "workload/catalog.hpp"
#include "workload/scenario_spec.hpp"

namespace divscrape {
namespace {

// ---------------------------------------------------------------------------
// core::parse_json
// ---------------------------------------------------------------------------

TEST(JsonParse, ParsesNestedDocument) {
  const auto doc = core::parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[0].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(a->array()[1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(a->array()[2].as_double(), -300.0);
  const auto* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("c", ""), "x\ny");
  EXPECT_TRUE(b->bool_or("d", false));
  const auto* e = b->find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_null());
}

TEST(JsonParse, PreservesU64Precision) {
  // 2^63 + 9 is not representable as a double; the literal re-parse must
  // keep it exact (hash-valued seeds round-trip through specs).
  const auto doc = core::parse_json(R"({"seed": 9223372036854775817})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->u64_or("seed", 0), 9223372036854775817ULL);
}

TEST(JsonParse, DecodesStringEscapes) {
  const auto doc = core::parse_json(R"(["é\t\"\\", "😀"])");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->array()[0].as_string_view(), "\xC3\xA9\t\"\\");
  EXPECT_EQ(doc->array()[1].as_string_view(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(core::parse_json("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(core::parse_json("", &error).has_value());
  EXPECT_FALSE(core::parse_json("{\"a\": 1} trailing", &error).has_value());
  EXPECT_FALSE(core::parse_json("[1, 2,]", &error).has_value());
  EXPECT_FALSE(core::parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(core::parse_json("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(core::parse_json("nul", &error).has_value());
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(core::parse_json(deep).has_value());
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(WorkloadCatalog, ListsEveryEntryAndResolvesThem) {
  const auto& entries = workload::catalog();
  ASSERT_GE(entries.size(), 6u);  // amadeus_like + >= 4 scenarios + smoke
  for (const auto& entry : entries) {
    const auto spec = workload::catalog_entry(entry.name);
    ASSERT_TRUE(spec.has_value()) << entry.name;
    EXPECT_EQ(spec->name, entry.name);
    EXPECT_GT(spec->duration_days, 0.0) << entry.name;
    EXPECT_FALSE(spec->vhosts.empty()) << entry.name;
    EXPECT_FALSE(entry.description.empty()) << entry.name;
  }
  EXPECT_FALSE(workload::catalog_entry("no_such_scenario").has_value());
}

TEST(WorkloadCatalog, ScaleIsApplied) {
  const auto spec = workload::catalog_entry("smoke", 0.25);
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->scale, 0.25);
}

TEST(WorkloadCatalog, MixedMultiVhostHasDistinctSites) {
  const auto spec = workload::catalog_entry("mixed_multi_vhost");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->vhosts.size(), 3u);
  EXPECT_NE(spec->vhosts[0].site.catalogue_size,
            spec->vhosts[1].site.catalogue_size);
  EXPECT_NE(spec->vhosts[1].attacks.front().kind,
            spec->vhosts[0].attacks.front().kind);
}

// ---------------------------------------------------------------------------
// Spec codec round-trip
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, EveryCatalogEntryRoundTrips) {
  for (const auto& entry : workload::catalog()) {
    const auto spec = workload::catalog_entry(entry.name, 0.5);
    ASSERT_TRUE(spec.has_value());
    std::string error;
    const auto reloaded =
        workload::ScenarioSpec::from_json(spec->to_json(), &error);
    ASSERT_TRUE(reloaded.has_value()) << entry.name << ": " << error;
    EXPECT_TRUE(*reloaded == *spec) << entry.name;
    // load(dump(load(x))) == load(x): dumping is stable, not just loadable.
    const auto redumped =
        workload::ScenarioSpec::from_json(reloaded->to_json(), &error);
    ASSERT_TRUE(redumped.has_value()) << entry.name << ": " << error;
    EXPECT_TRUE(*redumped == *reloaded) << entry.name;
  }
}

TEST(ScenarioSpec, FileRoundTrip) {
  const auto spec = workload::catalog_entry("flash_crowd", 0.1);
  ASSERT_TRUE(spec.has_value());
  const std::string path = ::testing::TempDir() + "workload_spec_rt.json";
  ASSERT_TRUE(spec->save(path));
  std::string error;
  const auto loaded = workload::ScenarioSpec::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(*loaded == *spec);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, ParsesHandWrittenSpecWithDefaults) {
  const char* json = R"({
    "schema": "divscrape.scenario.v1",
    "name": "hand",
    "start": "2020-06-01",
    "duration_days": 0.5,
    "vhosts": [
      {"attacks": [{"kind": "stealth", "bots": 7}]}
    ]
  })";
  std::string error;
  const auto spec = workload::ScenarioSpec::from_json(json, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "hand");
  EXPECT_EQ(spec->start, httplog::Timestamp::from_civil(2020, 6, 1));
  EXPECT_DOUBLE_EQ(spec->duration_days, 0.5);
  ASSERT_EQ(spec->vhosts.size(), 1u);
  EXPECT_EQ(spec->vhosts[0].name, "www");              // defaulted
  EXPECT_EQ(spec->vhosts[0].site.catalogue_size, 50'000u);  // defaulted
  ASSERT_EQ(spec->vhosts[0].attacks.size(), 1u);
  EXPECT_EQ(spec->vhosts[0].attacks[0].kind, workload::AttackKind::kStealth);
  EXPECT_EQ(spec->vhosts[0].attacks[0].bots, 7);
}

TEST(ScenarioSpec, RejectsInvalidSpecsWithDiagnostics) {
  const auto fails = [](const char* json) {
    std::string error;
    const auto spec = workload::ScenarioSpec::from_json(json, &error);
    EXPECT_FALSE(spec.has_value()) << json;
    EXPECT_FALSE(error.empty()) << json;
    return error;
  };
  fails("not json at all");
  fails("{}");                                           // no schema
  fails(R"({"schema": "divscrape.scenario.v2"})");       // wrong schema
  fails(R"({"schema": "divscrape.scenario.v1"})");       // no vhosts
  fails(R"({"schema": "divscrape.scenario.v1", "vhosts": []})");
  fails(R"({"schema": "divscrape.scenario.v1", "duration_days": 0,
            "vhosts": [{}]})");
  fails(R"({"schema": "divscrape.scenario.v1", "scale": -1,
            "vhosts": [{}]})");
  fails(R"({"schema": "divscrape.scenario.v1", "start": "soon",
            "vhosts": [{}]})");
  const auto kind_error = fails(
      R"({"schema": "divscrape.scenario.v1",
          "vhosts": [{"attacks": [{"kind": "ddos"}]}]})");
  EXPECT_NE(kind_error.find("ddos"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Evasion block (red tier)
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, EvasionBlockRoundTripsLosslessly) {
  const char* json = R"({
    "schema": "divscrape.scenario.v1",
    "name": "red",
    "duration_days": 0.5,
    "vhosts": [
      {"attacks": [{"kind": "fleet", "bots": 4,
                    "evasion": {"p_asset_mimicry": 0.85,
                                "rotate_ua_per_session": true,
                                "rotate_ip_per_session": false,
                                "human_think_time": true}}]}
    ]
  })";
  std::string error;
  const auto spec = workload::ScenarioSpec::from_json(json, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const auto& attack = spec->vhosts[0].attacks[0];
  ASSERT_TRUE(attack.evasion.has_value());
  EXPECT_DOUBLE_EQ(attack.evasion->p_asset_mimicry, 0.85);
  EXPECT_TRUE(attack.evasion->rotate_ua_per_session);
  EXPECT_FALSE(attack.evasion->rotate_ip_per_session);
  EXPECT_TRUE(attack.evasion->human_think_time);

  const auto reloaded =
      workload::ScenarioSpec::from_json(spec->to_json(), &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_TRUE(*reloaded == *spec);
}

TEST(ScenarioSpec, SpecWithoutEvasionEmitsNoEvasionKey) {
  // The conditional emission IS the byte-identity guarantee for the
  // pre-evasion catalog: absent block, absent key, identical bytes.
  const auto spec = workload::catalog_entry("flash_crowd");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->to_json().find("evasion"), std::string::npos);
}

TEST(ScenarioSpec, RedTierEntriesCarryExpectedEvasion) {
  const auto rotating = workload::catalog_entry("rotating_fleet");
  ASSERT_TRUE(rotating.has_value());
  ASSERT_TRUE(rotating->vhosts[0].attacks[0].evasion.has_value());
  EXPECT_TRUE(rotating->vhosts[0].attacks[0].evasion->rotate_ip_per_session);

  // Ladder level 0 is the unevaded control: no block at all.
  const auto e0 = workload::catalog_entry("evasion_ladder_e0");
  ASSERT_TRUE(e0.has_value());
  EXPECT_FALSE(e0->vhosts[0].attacks[0].evasion.has_value());
  const auto e4 = workload::catalog_entry("evasion_ladder_e4");
  ASSERT_TRUE(e4.has_value());
  ASSERT_TRUE(e4->vhosts[0].attacks[0].evasion.has_value());
  EXPECT_TRUE(e4->vhosts[0].attacks[0].evasion->human_think_time);
  EXPECT_FALSE(workload::catalog_entry("evasion_ladder_e5").has_value());
  EXPECT_FALSE(workload::catalog_entry("evasion_ladder_e").has_value());
}

TEST(ScenarioSpec, RejectsInvalidEvasionWithDiagnostics) {
  const auto fails = [](const std::string& json) {
    std::string error;
    const auto spec = workload::ScenarioSpec::from_json(json, &error);
    EXPECT_FALSE(spec.has_value()) << json;
    EXPECT_FALSE(error.empty()) << json;
    return error;
  };
  const auto with_attack = [](const char* attack) {
    return std::string(R"({"schema": "divscrape.scenario.v1", "vhosts": [)") +
           R"({"attacks": [)" + attack + "]}]}";
  };
  const auto range_error = fails(
      with_attack(R"({"kind": "fleet", "evasion": {"p_asset_mimicry": 1.5}})"));
  EXPECT_NE(range_error.find("p_asset_mimicry"), std::string::npos);
  fails(with_attack(
      R"({"kind": "fleet", "evasion": {"p_asset_mimicry": -0.1}})"));
  // Evasion models page-scraper camouflage; the other attack kinds have no
  // asset/think-time behaviour to mimic and must be rejected loudly.
  const auto kind_error = fails(with_attack(
      R"({"kind": "api_pollers", "evasion": {"p_asset_mimicry": 0.5}})"));
  EXPECT_NE(kind_error.find("page-scraper"), std::string::npos);
  EXPECT_NE(kind_error.find("api_pollers"), std::string::npos);
  fails(with_attack(R"({"kind": "caching", "evasion": {}})"));
  fails(with_attack(R"({"kind": "fleet", "evasion": 7})"));
}

TEST(ScenarioSpec, AttackKindNamesRoundTrip) {
  using workload::AttackKind;
  for (const auto kind :
       {AttackKind::kFleet, AttackKind::kStealth, AttackKind::kApiPollers,
        AttackKind::kMalformed, AttackKind::kCaching}) {
    const auto parsed = workload::attack_kind_from(workload::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(workload::attack_kind_from("espresso").has_value());
}

}  // namespace
}  // namespace divscrape
