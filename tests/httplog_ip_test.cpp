// IPv4 value-type tests.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "httplog/ip.hpp"

namespace {

using divscrape::httplog::Ipv4;
using divscrape::httplog::Ipv4Hash;
using divscrape::httplog::parse_ipv4;

TEST(Ipv4, OctetConstruction) {
  const Ipv4 ip(192, 168, 1, 10);
  EXPECT_EQ(ip.value(), 0xC0A8010Au);
  EXPECT_EQ(ip.to_string(), "192.168.1.10");
}

TEST(Ipv4, RoundTripParseFormat) {
  for (const auto* text :
       {"0.0.0.0", "255.255.255.255", "45.141.0.202", "8.8.8.8"}) {
    const auto ip = parse_ipv4(text);
    ASSERT_TRUE(ip.has_value()) << text;
    EXPECT_EQ(ip->to_string(), text);
  }
}

class BadIpTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BadIpTest, Rejected) {
  EXPECT_FALSE(parse_ipv4(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadIpTest,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5",
                                           "256.1.1.1", "1.2.3.999",
                                           "a.b.c.d", "1..2.3", "1.2.3.4 ",
                                           " 1.2.3.4", "1,2,3,4", "-1.2.3.4"));

TEST(Ipv4, PrefixMasksHostBits) {
  const Ipv4 ip(45, 140, 3, 77);
  EXPECT_EQ(ip.prefix(24), Ipv4(45, 140, 3, 0));
  EXPECT_EQ(ip.prefix(16), Ipv4(45, 140, 0, 0));
  EXPECT_EQ(ip.prefix(8), Ipv4(45, 0, 0, 0));
  EXPECT_EQ(ip.prefix(32), ip);
  EXPECT_EQ(ip.prefix(0), Ipv4(0u));
  EXPECT_EQ(ip.prefix(-4), Ipv4(0u));
  EXPECT_EQ(ip.prefix(40), ip);
}

TEST(Ipv4, OrderingFollowsNumericValue) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_EQ(Ipv4(10, 0, 0, 1), Ipv4(0x0A000001u));
}

TEST(Ipv4, HashSpreadsSequentialAddresses) {
  // Botnet members are IP-sequential; their hashes must not collide.
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t host = 0; host < 1000; ++host) {
    hashes.insert(Ipv4Hash{}(Ipv4(0x2D8C0000u + host)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
