// Combined-log-format codec tests: golden lines, error taxonomy, and the
// format→parse round-trip property over randomly generated records.
#include <gtest/gtest.h>

#include <sstream>

#include "httplog/clf.hpp"
#include "httplog/io.hpp"
#include "stats/rng.hpp"

namespace {

using divscrape::httplog::ClfError;
using divscrape::httplog::format_clf;
using divscrape::httplog::HttpMethod;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::parse_clf;
using divscrape::httplog::Timestamp;

TEST(Clf, ParsesCanonicalLine) {
  const auto result = parse_clf(
      R"x(203.0.113.7 - frank [11/Mar/2018:06:25:24 +0000] )x"
      R"x("GET /search?from=NCE&to=LHR HTTP/1.1" 200 5120 )x"
      R"x("https://shop.example.com/" "Mozilla/5.0 (X11; Linux x86_64)")x");
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  const auto& r = *result.record;
  EXPECT_EQ(r.ip, Ipv4(203, 0, 113, 7));
  EXPECT_EQ(r.user, "frank");
  EXPECT_EQ(r.time, Timestamp::from_civil(2018, 3, 11, 6, 25, 24));
  EXPECT_EQ(r.method, HttpMethod::kGet);
  EXPECT_EQ(r.target, "/search?from=NCE&to=LHR");
  EXPECT_EQ(r.protocol, "HTTP/1.1");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.bytes, 5120u);
  EXPECT_EQ(r.referer, "https://shop.example.com/");
  EXPECT_EQ(r.user_agent, "Mozilla/5.0 (X11; Linux x86_64)");
  EXPECT_EQ(r.path(), "/search");
  EXPECT_EQ(r.query(), "from=NCE&to=LHR");
}

TEST(Clf, DashBytesMeansZero) {
  const auto result = parse_clf(
      R"(1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 304 - )"
      R"("-" "-")");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.record->bytes, 0u);
  EXPECT_EQ(result.record->status, 304);
}

TEST(Clf, EscapedQuotesInsideFields) {
  const auto result = parse_clf(
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 10 "
      "\"-\" \"agent \\\"quoted\\\" here\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.record->user_agent, "agent \"quoted\" here");
}

TEST(Clf, TrailingNewlineTolerated) {
  EXPECT_TRUE(parse_clf("1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] "
                        "\"GET / HTTP/1.1\" 200 1 \"-\" \"-\"\r\n")
                  .ok());
}

struct ErrorCase {
  const char* line;
  ClfError error;
};

class ClfErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ClfErrorTest, Categorized) {
  const auto result = parse_clf(GetParam().line);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, GetParam().error) << GetParam().line;
}

INSTANTIATE_TEST_SUITE_P(
    Categories, ClfErrorTest,
    ::testing::Values(
        ErrorCase{"", ClfError::kEmptyLine},
        ErrorCase{"999.1.1.1 - - [11/Mar/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" 200 1 \"-\" \"-\"",
                  ClfError::kBadIp},
        ErrorCase{"1.2.3.4 - - 11/Mar/2018:00:00:00 \"GET / HTTP/1.1\" 200 "
                  "1 \"-\" \"-\"",
                  ClfError::kBadTimestamp},
        ErrorCase{"1.2.3.4 - - [11/Xxx/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" 200 1 \"-\" \"-\"",
                  ClfError::kBadTimestamp},
        ErrorCase{"1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] GET / 200 1 "
                  "\"-\" \"-\"",
                  ClfError::kBadRequestLine},
        ErrorCase{"1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" 999 1 \"-\" \"-\"",
                  ClfError::kBadStatus},
        ErrorCase{"1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" abc 1 \"-\" \"-\"",
                  ClfError::kBadStatus},
        ErrorCase{"1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" 200 12x \"-\" \"-\"",
                  ClfError::kBadBytes},
        ErrorCase{"1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / "
                  "HTTP/1.1\" 200 1 \"-\"",
                  ClfError::kTruncated}));

LogRecord random_record(divscrape::stats::Rng& rng) {
  LogRecord r;
  r.ip = Ipv4(static_cast<std::uint32_t>(rng()));
  r.time = Timestamp::from_civil(
      2018, 3, static_cast<int>(rng.uniform_int(11, 18)),
      static_cast<int>(rng.uniform_int(0, 23)),
      static_cast<int>(rng.uniform_int(0, 59)),
      static_cast<int>(rng.uniform_int(0, 59)));
  const HttpMethod methods[] = {HttpMethod::kGet, HttpMethod::kPost,
                                HttpMethod::kHead};
  r.method = methods[rng.uniform_int(0, 2)];
  r.target = "/offers/" + std::to_string(rng.uniform_int(1, 99'999));
  if (rng.bernoulli(0.5)) r.target += "?q=a+b%20c";
  r.status = rng.bernoulli(0.8) ? 200 : 404;
  r.bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  r.referer = rng.bernoulli(0.5) ? "-" : "https://ref.example/\"x\"";
  r.user_agent = rng.bernoulli(0.5)
                     ? "Mozilla/5.0 (weird \\ escapes \" everywhere)"
                     : "curl/7.58.0";
  return r;
}

TEST(Clf, FormatParseRoundTripProperty) {
  divscrape::stats::Rng rng(20180311);
  for (int i = 0; i < 2000; ++i) {
    const LogRecord original = random_record(rng);
    const auto result = parse_clf(format_clf(original));
    ASSERT_TRUE(result.ok()) << format_clf(original);
    const auto& r = *result.record;
    EXPECT_EQ(r.ip, original.ip);
    EXPECT_EQ(r.time, original.time);
    EXPECT_EQ(r.method, original.method);
    EXPECT_EQ(r.target, original.target);
    EXPECT_EQ(r.status, original.status);
    EXPECT_EQ(r.bytes, original.bytes);
    EXPECT_EQ(r.referer, original.referer);
    EXPECT_EQ(r.user_agent, original.user_agent);
  }
}

TEST(LogReader, SkipsBadLinesAndCounts) {
  std::istringstream in(
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET /a HTTP/1.1\" 200 1 "
      "\"-\" \"-\"\n"
      "this is garbage\n"
      "\n"
      "5.6.7.8 - - [11/Mar/2018:00:00:01 +0000] \"GET /b HTTP/1.1\" 200 2 "
      "\"-\" \"-\"\n");
  const auto records = divscrape::httplog::read_all(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].target, "/a");
  EXPECT_EQ(records[1].target, "/b");
}

TEST(LogWriter, RoundTripThroughStream) {
  divscrape::stats::Rng rng(7);
  std::vector<LogRecord> originals;
  std::ostringstream out;
  divscrape::httplog::LogWriter writer(out);
  for (int i = 0; i < 50; ++i) {
    originals.push_back(random_record(rng));
    writer.write(originals.back());
  }
  EXPECT_EQ(writer.lines_written(), 50u);
  std::istringstream in(out.str());
  const auto parsed = divscrape::httplog::read_all(in);
  ASSERT_EQ(parsed.size(), 50u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].target, originals[i].target);
    EXPECT_EQ(parsed[i].time, originals[i].time);
  }
}

}  // namespace
