// Time-series collector tests.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/timeseries.hpp"

namespace {

using divscrape::core::TimeSeriesCollector;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;
using divscrape::httplog::Truth;
using Verdict = divscrape::detectors::Verdict;

LogRecord at(double t_s, Truth truth = Truth::kBenign) {
  LogRecord r;
  r.ip = Ipv4(1, 2, 3, 4);
  r.time = Timestamp(static_cast<std::int64_t>(t_s * 1e6));
  r.truth = truth;
  return r;
}

std::vector<Verdict> verdicts(bool a, bool b) {
  return {{a, a ? 1.0 : 0.0, divscrape::detectors::AlertReason::kRateLimit},
          {b, b ? 1.0 : 0.0, divscrape::detectors::AlertReason::kBehavioral}};
}

TEST(TimeSeries, BucketsByWidth) {
  TimeSeriesCollector ts(2, Timestamp(0), 60.0);
  ts.observe(at(0.0), verdicts(true, false));
  ts.observe(at(59.9), verdicts(false, false));
  ts.observe(at(60.0), verdicts(true, true));
  ts.observe(at(185.0), verdicts(false, true));
  ASSERT_EQ(ts.buckets().size(), 4u);
  EXPECT_EQ(ts.buckets()[0].requests, 2u);
  EXPECT_EQ(ts.buckets()[0].alerts[0], 1u);
  EXPECT_EQ(ts.buckets()[0].alerts[1], 0u);
  EXPECT_EQ(ts.buckets()[1].requests, 1u);
  EXPECT_EQ(ts.buckets()[2].requests, 0u);  // empty gap bucket
  EXPECT_EQ(ts.buckets()[3].alerts[1], 1u);
}

TEST(TimeSeries, TruthCounting) {
  TimeSeriesCollector ts(1, Timestamp(0), 10.0);
  ts.observe(at(1.0, Truth::kMalicious), verdicts(true, false));
  ts.observe(at(2.0, Truth::kBenign), verdicts(false, false));
  ts.observe(at(3.0, Truth::kUnknown), verdicts(false, false));
  EXPECT_EQ(ts.buckets()[0].malicious, 1u);
  EXPECT_EQ(ts.buckets()[0].requests, 3u);
}

TEST(TimeSeries, RecordsBeforeOriginIgnored) {
  TimeSeriesCollector ts(1, Timestamp(1'000'000), 10.0);
  ts.observe(at(0.5), verdicts(true, false));
  EXPECT_TRUE(ts.buckets().empty());
}

TEST(TimeSeries, PeakBucket) {
  TimeSeriesCollector ts(1, Timestamp(0), 10.0);
  EXPECT_EQ(ts.peak_bucket(), SIZE_MAX);
  ts.observe(at(1.0), verdicts(false, false));
  ts.observe(at(11.0), verdicts(false, false));
  ts.observe(at(12.0), verdicts(false, false));
  EXPECT_EQ(ts.peak_bucket(), 1u);
}

TEST(TimeSeries, RejectsNonPositiveWidth) {
  EXPECT_THROW(TimeSeriesCollector(1, Timestamp(0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(TimeSeriesCollector(1, Timestamp(0), -5.0),
               std::invalid_argument);
}

TEST(TimeSeries, PrintAndCsvRender) {
  TimeSeriesCollector ts(2, Timestamp(0), 3600.0);
  for (int i = 0; i < 10; ++i)
    ts.observe(at(i * 600.0, Truth::kMalicious), verdicts(true, i % 2 == 0));
  const std::vector<std::string> names = {"sentinel", "arcane"};

  std::ostringstream table;
  ts.print(table, names);
  EXPECT_NE(table.str().find("sentinel"), std::string::npos);
  EXPECT_NE(table.str().find("100.0%"), std::string::npos);

  std::ostringstream csv;
  ts.export_csv(csv, names);
  EXPECT_NE(csv.str().find("bucket_start,requests,malicious,sentinel,arcane"),
            std::string::npos);
  EXPECT_NE(csv.str().find("1970-01-01T00:00:00Z,6,6,6,3"),
            std::string::npos);
}

TEST(TimeSeries, StrideMergesDisplayRows) {
  TimeSeriesCollector ts(1, Timestamp(0), 3600.0);
  for (int h = 0; h < 48; ++h)
    ts.observe(at(h * 3600.0 + 1.0), verdicts(true, false));
  std::ostringstream os;
  ts.print(os, std::vector<std::string>{"d"}, 24);
  // 48 hourly buckets at stride 24 -> 2 data rows + header.
  int lines = 0;
  for (const char c : os.str()) lines += c == '\n';
  EXPECT_EQ(lines, 3);
}

}  // namespace
