// Deployment-topology tests: k-out-of-N parallel ensembles and the serial
// filter->analyzer cascade from the paper's Section V.
#include <gtest/gtest.h>

#include <memory>

#include "core/topology.hpp"
#include "detectors/baselines.hpp"

namespace {

using divscrape::core::ParallelDeployment;
using divscrape::core::SerialDeployment;
using divscrape::detectors::Detector;
using divscrape::detectors::RateLimitDetector;
using divscrape::detectors::TrapDetector;
using divscrape::detectors::Verdict;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;

LogRecord req(Ipv4 ip, double t_s, const char* target = "/offers/1") {
  LogRecord r;
  r.ip = ip;
  r.time = Timestamp(static_cast<std::int64_t>(t_s * 1e6));
  r.target = target;
  r.user_agent = "UA";
  return r;
}

// A scripted detector for deterministic composition tests: alerts on the
// requests whose target contains its token.
class TokenDetector final : public Detector {
 public:
  TokenDetector(std::string name, std::string token)
      : name_(std::move(name)), token_(std::move(token)) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] Verdict evaluate(const LogRecord& record) override {
    ++seen_;
    const bool hit =
        record.target.find(token_) != std::string::npos;
    return {hit, hit ? 1.0 : 0.0,
            divscrape::detectors::AlertReason::kBehavioral};
  }
  void reset() override { seen_ = 0; }
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

 private:
  std::string name_;
  std::string token_;
  std::uint64_t seen_ = 0;
};

std::vector<std::unique_ptr<Detector>> two_tokens() {
  std::vector<std::unique_ptr<Detector>> pool;
  pool.push_back(std::make_unique<TokenDetector>("a", "alpha"));
  pool.push_back(std::make_unique<TokenDetector>("b", "beta"));
  return pool;
}

TEST(Parallel, OneOutOfTwoIsUnion) {
  ParallelDeployment ensemble(two_tokens(), 1);
  EXPECT_TRUE(ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 0, "/alpha")).alert);
  EXPECT_TRUE(ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 1, "/beta")).alert);
  EXPECT_TRUE(
      ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 2, "/alpha/beta")).alert);
  EXPECT_FALSE(ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 3, "/gamma")).alert);
}

TEST(Parallel, TwoOutOfTwoIsIntersection) {
  ParallelDeployment ensemble(two_tokens(), 2);
  EXPECT_FALSE(ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 0, "/alpha")).alert);
  EXPECT_FALSE(ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 1, "/beta")).alert);
  EXPECT_TRUE(
      ensemble.evaluate(req(Ipv4(1, 1, 1, 1), 2, "/alpha/beta")).alert);
}

TEST(Parallel, NameEncodesRule) {
  ParallelDeployment ensemble(two_tokens(), 2);
  EXPECT_EQ(ensemble.name(), "2oo2(a,b)");
}

TEST(Parallel, RejectsBadK) {
  EXPECT_THROW(ParallelDeployment(two_tokens(), 0), std::invalid_argument);
  EXPECT_THROW(ParallelDeployment(two_tokens(), 3), std::invalid_argument);
  EXPECT_THROW(ParallelDeployment({}, 1), std::invalid_argument);
}

TEST(Serial, FilterShieldsAnalyzer) {
  auto filter = std::make_unique<TokenDetector>("f", "alpha");
  auto analyzer = std::make_unique<TokenDetector>("a", "beta");
  auto* analyzer_raw = analyzer.get();
  SerialDeployment cascade(std::move(filter), std::move(analyzer));

  // Filter alerts: analyzer never sees the request.
  EXPECT_TRUE(cascade.evaluate(req(Ipv4(1, 1, 1, 1), 0, "/alpha")).alert);
  EXPECT_EQ(analyzer_raw->seen(), 0u);
  // Filter silent: analyzer sees it and may alert.
  EXPECT_TRUE(cascade.evaluate(req(Ipv4(1, 1, 1, 1), 1, "/beta")).alert);
  EXPECT_EQ(analyzer_raw->seen(), 1u);
  EXPECT_FALSE(cascade.evaluate(req(Ipv4(1, 1, 1, 1), 2, "/gamma")).alert);
  EXPECT_EQ(cascade.analyzer_load(), 2u);
  EXPECT_EQ(cascade.total_load(), 3u);
}

TEST(Serial, NameEncodesOrder) {
  SerialDeployment cascade(std::make_unique<TokenDetector>("f", "x"),
                           std::make_unique<TokenDetector>("a", "y"));
  EXPECT_EQ(cascade.name(), "serial(f->a)");
}

TEST(Serial, OrderMattersForLoad) {
  // filter=alpha then analyzer=beta vs the reverse: analyzer load differs
  // on an alpha-heavy stream — the paper's serial trade-off.
  auto make_stream = [] {
    std::vector<LogRecord> stream;
    for (int i = 0; i < 10; ++i)
      stream.push_back(req(Ipv4(1, 1, 1, 1), i, "/alpha"));
    stream.push_back(req(Ipv4(1, 1, 1, 1), 11, "/beta"));
    return stream;
  };
  SerialDeployment ab(std::make_unique<TokenDetector>("a", "alpha"),
                      std::make_unique<TokenDetector>("b", "beta"));
  SerialDeployment ba(std::make_unique<TokenDetector>("b", "beta"),
                      std::make_unique<TokenDetector>("a", "alpha"));
  for (const auto& r : make_stream()) {
    (void)ab.evaluate(r);
    (void)ba.evaluate(r);
  }
  EXPECT_EQ(ab.analyzer_load(), 1u);   // alpha-filter drops 10 of 11
  EXPECT_EQ(ba.analyzer_load(), 10u);  // beta-filter drops only 1
}

TEST(Serial, ResetPropagates) {
  SerialDeployment cascade(
      std::make_unique<RateLimitDetector>(
          RateLimitDetector::Config{10.0, 3}),
      std::make_unique<TrapDetector>());
  for (int i = 0; i < 5; ++i)
    (void)cascade.evaluate(req(Ipv4(1, 1, 1, 1), i * 0.1));
  cascade.reset();
  EXPECT_EQ(cascade.total_load(), 0u);
  EXPECT_FALSE(cascade.evaluate(req(Ipv4(1, 1, 1, 1), 100.0)).alert);
}

TEST(Serial, UnionEqualsParallelOneOfTwoForStatelessStages) {
  // For stateless detectors the cascade's alert set equals 1oo2 — the
  // topology difference is purely analyzer load (and state evolution for
  // stateful tools, covered by the integration tests).
  SerialDeployment cascade(std::make_unique<TokenDetector>("a", "alpha"),
                           std::make_unique<TokenDetector>("b", "beta"));
  ParallelDeployment parallel(two_tokens(), 1);
  for (int i = 0; i < 20; ++i) {
    const char* target = i % 3 == 0 ? "/alpha" : (i % 3 == 1 ? "/beta" : "/c");
    const auto r = req(Ipv4(1, 1, 1, 1), i, target);
    EXPECT_EQ(cascade.evaluate(r).alert, parallel.evaluate(r).alert) << i;
  }
}

}  // namespace
