// Baseline and learned-detector tests: the naive rate limiter, the
// honeypot trap, and the streaming wrapper around trained classifiers.
#include <gtest/gtest.h>

#include <memory>

#include "detectors/baselines.hpp"
#include "detectors/learned.hpp"
#include "detectors/registry.hpp"
#include "ml/dataset.hpp"
#include "traffic/scenario.hpp"

namespace {

using divscrape::detectors::AlertReason;
using divscrape::detectors::LearnedDetector;
using divscrape::detectors::RateLimitDetector;
using divscrape::detectors::TrapDetector;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;

LogRecord req(Ipv4 ip, double t_s, const char* target = "/offers/1") {
  LogRecord r;
  r.ip = ip;
  r.time = Timestamp(static_cast<std::int64_t>(t_s * 1e6));
  r.target = target;
  r.user_agent = "UA";
  return r;
}

TEST(RateLimit, TripsAtConfiguredLimit) {
  RateLimitDetector detector(RateLimitDetector::Config{10.0, 5});
  const Ipv4 ip(1, 1, 1, 1);
  int alerts = 0;
  for (int i = 0; i < 5; ++i) {
    alerts += detector.evaluate(req(ip, i * 0.5)).alert;
  }
  EXPECT_EQ(alerts, 1);  // exactly the 5th request trips
}

TEST(RateLimit, WindowSlides) {
  RateLimitDetector detector(RateLimitDetector::Config{10.0, 5});
  const Ipv4 ip(1, 1, 1, 1);
  for (int i = 0; i < 4; ++i) (void)detector.evaluate(req(ip, i * 0.5));
  // After the window passes, the count restarts.
  EXPECT_FALSE(detector.evaluate(req(ip, 100.0)).alert);
  EXPECT_FALSE(detector.evaluate(req(ip, 100.5)).alert);
}

TEST(RateLimit, PerIpIsolation) {
  RateLimitDetector detector(RateLimitDetector::Config{10.0, 3});
  for (int i = 0; i < 2; ++i) {
    (void)detector.evaluate(req(Ipv4(1, 1, 1, 1), i * 0.1));
    (void)detector.evaluate(req(Ipv4(2, 2, 2, 2), i * 0.1));
  }
  // Neither IP individually reached 3.
  EXPECT_FALSE(detector.evaluate(req(Ipv4(3, 3, 3, 3), 1.0)).alert);
}

TEST(RateLimit, NoMemoryAcrossReset) {
  RateLimitDetector detector(RateLimitDetector::Config{10.0, 3});
  const Ipv4 ip(1, 1, 1, 1);
  for (int i = 0; i < 3; ++i) (void)detector.evaluate(req(ip, i * 0.1));
  detector.reset();
  EXPECT_FALSE(detector.evaluate(req(ip, 1.0)).alert);
}

TEST(Trap, TrapTouchFlagsClientForever) {
  TrapDetector trap;
  const Ipv4 ip(1, 1, 1, 1);
  EXPECT_FALSE(trap.evaluate(req(ip, 0.0, "/offers/1")).alert);
  const auto v = trap.evaluate(req(ip, 1.0, "/offers/old/900123"));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kTrap);
  // Every later request from the trapped client alerts.
  EXPECT_TRUE(trap.evaluate(req(ip, 3600.0, "/offers/2")).alert);
  EXPECT_EQ(trap.trapped_clients(), 1u);
}

TEST(Trap, OtherClientsUnaffected) {
  TrapDetector trap;
  (void)trap.evaluate(req(Ipv4(1, 1, 1, 1), 0.0, "/offers/old/1"));
  EXPECT_FALSE(trap.evaluate(req(Ipv4(2, 2, 2, 2), 1.0, "/offers/1")).alert);
}

TEST(Trap, ResetReleasesClients) {
  TrapDetector trap;
  (void)trap.evaluate(req(Ipv4(1, 1, 1, 1), 0.0, "/offers/old/1"));
  trap.reset();
  EXPECT_FALSE(trap.evaluate(req(Ipv4(1, 1, 1, 1), 1.0, "/offers/1")).alert);
}

// A trivial classifier for wrapper tests: positive iff feature[12]
// (ua_scripted) is set.
class ScriptedOnly final : public divscrape::ml::Classifier {
 public:
  [[nodiscard]] double score(
      divscrape::span<const double> features) const override {
    return features.size() > 12 && features[12] > 0.5 ? 1.0 : 0.0;
  }
};

TEST(Learned, WarmupThenClassifierDrives) {
  LearnedDetector detector("test", std::make_shared<ScriptedOnly>(),
                           LearnedDetector::Config{1800.0, 4, 0.5});
  const Ipv4 ip(1, 1, 1, 1);
  LogRecord scripted = req(ip, 0.0);
  scripted.user_agent = "curl/7.58.0";
  // Below warm-up: silent even though the classifier would fire.
  for (int i = 0; i < 3; ++i) {
    scripted.time = Timestamp(i * 1'000'000);
    ASSERT_FALSE(detector.evaluate(scripted).alert);
  }
  scripted.time = Timestamp(4'000'000);
  const auto v = detector.evaluate(scripted);
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kLearnedModel);
}

TEST(Learned, IdleGapResetsClientState) {
  LearnedDetector detector("test", std::make_shared<ScriptedOnly>(),
                           LearnedDetector::Config{10.0, 4, 0.5});
  const Ipv4 ip(1, 1, 1, 1);
  LogRecord scripted = req(ip, 0.0);
  scripted.user_agent = "curl/7.58.0";
  for (int i = 0; i < 6; ++i) {
    scripted.time = Timestamp(i * 1'000'000);
    (void)detector.evaluate(scripted);
  }
  // Long idle gap: state resets, warm-up applies again.
  scripted.time = Timestamp(1'000 * 1'000'000);
  EXPECT_FALSE(detector.evaluate(scripted).alert);
}

TEST(Registry, PaperPairOrderAndNames) {
  const auto pool = divscrape::detectors::make_paper_pair();
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0]->name(), "sentinel");
  EXPECT_EQ(pool[1]->name(), "arcane");
}

TEST(Registry, LearnedDetectorsTrainOnScenario) {
  // A day of smoke traffic gives the tree enough labelled sessions of
  // both classes to learn a stable split.
  auto config = divscrape::traffic::smoke_test();
  config.duration_days = 1.0;
  const auto learned = divscrape::detectors::make_learned_detectors(config);
  ASSERT_EQ(learned.size(), 2u);
  EXPECT_EQ(learned[0]->name(), "naive-bayes");
  EXPECT_EQ(learned[1]->name(), "decision-tree");
  // Trained detectors must catch an obvious scripted sweep.
  for (const auto& d : learned) {
    const Ipv4 ip(77, 1, 2, 3);
    bool alerted = false;
    for (int i = 0; i < 60 && !alerted; ++i) {
      LogRecord r = req(ip, i * 0.5,
                        "/offers/");
      r.target += std::to_string(i);
      r.user_agent = "python-requests/2.18.4";
      alerted = d->evaluate(r).alert;
    }
    EXPECT_TRUE(alerted) << d->name();
  }
}

}  // namespace
