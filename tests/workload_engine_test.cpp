// WorkloadEngine contracts: thread-count-independent byte-identical
// streams, global time ordering, consistent engine-global ua_tokens,
// population composition, and the sink integrations (detector pair,
// batched StreamWriter).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/joiner.hpp"
#include "detectors/registry.hpp"
#include "httplog/clf.hpp"
#include "traffic/stream_writer.hpp"
#include "workload/catalog.hpp"
#include "workload/engine.hpp"

namespace divscrape {
namespace {

workload::ScenarioSpec smoke_spec(double scale = 1.0) {
  const auto spec = workload::catalog_entry("smoke", scale);
  EXPECT_TRUE(spec.has_value());
  return *spec;
}

/// Runs a spec and captures the full serialized stream plus the records.
struct Capture {
  std::string clf;                         ///< '\n'-joined CLF stream
  std::vector<httplog::LogRecord> records;
};

Capture run_capture(const workload::ScenarioSpec& spec, std::size_t threads,
                    std::size_t partitions = 8, bool lazy = false) {
  workload::EngineConfig config;
  config.gen_threads = threads;
  config.partitions = partitions;
  config.lazy_actors = lazy;
  workload::WorkloadEngine engine(spec, config);
  Capture capture;
  const auto emitted = engine.run([&capture](httplog::LogRecord&& record) {
    capture.clf += httplog::format_clf(record);
    capture.clf += '\n';
    capture.records.push_back(std::move(record));
  });
  EXPECT_EQ(emitted, capture.records.size());
  EXPECT_EQ(emitted, engine.emitted());
  return capture;
}

TEST(WorkloadEngine, ByteIdenticalAcrossThreadCounts) {
  const auto spec = smoke_spec();
  const auto t1 = run_capture(spec, 1);
  const auto t2 = run_capture(spec, 2);
  const auto t4 = run_capture(spec, 4);
  ASSERT_GT(t1.records.size(), 1000u);
  EXPECT_EQ(t1.clf, t2.clf);
  EXPECT_EQ(t1.clf, t4.clf);
  // The sidecar token stream is part of the determinism contract too: the
  // merge-side remap must assign identical global tokens in every run.
  ASSERT_EQ(t1.records.size(), t4.records.size());
  for (std::size_t i = 0; i < t1.records.size(); ++i) {
    ASSERT_EQ(t1.records[i].ua_token, t4.records[i].ua_token) << i;
    ASSERT_EQ(t1.records[i].truth, t4.records[i].truth) << i;
    ASSERT_EQ(t1.records[i].actor_id, t4.records[i].actor_id) << i;
  }
}

TEST(WorkloadEngine, EvasionScenariosStayByteIdentical) {
  // The red tier must honor the same determinism contract as everything
  // else: apply_evasion is pure profile assignment, so the actor ordinals
  // and RNG draw order — and therefore the bytes — cannot move with the
  // thread count or the materialization strategy.
  auto spec = smoke_spec();  // trimmed duration; assert the entry resolves
  {
    const auto ladder = workload::catalog_entry("evasion_ladder_e3", 0.5);
    ASSERT_TRUE(ladder.has_value());
    spec = *ladder;
    spec.duration_days = 0.1;  // determinism pin, not a metrics run
  }
  const auto t1 = run_capture(spec, 1);
  const auto t2 = run_capture(spec, 2);
  const auto t4 = run_capture(spec, 4);
  ASSERT_GT(t1.records.size(), 500u);
  EXPECT_EQ(t1.clf, t2.clf);
  EXPECT_EQ(t1.clf, t4.clf);
  const auto lazy = run_capture(spec, 4, 8, /*lazy=*/true);
  EXPECT_EQ(t1.clf, lazy.clf);

  // And the knobs must actually bite: e3 rotates source IPs per session,
  // so some malicious actor shows up from several addresses — which a
  // no-evasion run of the same ladder never does for its fast fleet.
  std::map<std::uint32_t, std::set<std::uint32_t>> ips_by_actor;
  for (const auto& record : t1.records) {
    if (record.truth == httplog::Truth::kMalicious) {
      ips_by_actor[record.actor_id].insert(record.ip.value());
    }
  }
  std::size_t rotated = 0;
  for (const auto& [actor, ips] : ips_by_actor) {
    if (ips.size() > 1) ++rotated;
  }
  EXPECT_GT(rotated, 0u) << "rotate_ip_per_session had no visible effect";
}

TEST(WorkloadEngine, RepeatedRunsAreIdentical) {
  const auto spec = smoke_spec();
  EXPECT_EQ(run_capture(spec, 2).clf, run_capture(spec, 2).clf);
}

TEST(WorkloadEngine, DifferentSeedsDiffer) {
  auto spec = smoke_spec();
  const auto a = run_capture(spec, 1);
  spec.seed ^= 0x5eedULL;
  const auto b = run_capture(spec, 1);
  EXPECT_NE(a.clf, b.clf);
}

TEST(WorkloadEngine, StreamIsTimeOrderedWithinBounds) {
  const auto spec = smoke_spec();
  const auto capture = run_capture(spec, 2);
  httplog::Timestamp previous = spec.start;
  for (const auto& record : capture.records) {
    EXPECT_GE(record.time, previous);
    EXPECT_GE(record.time, spec.start);
    EXPECT_LT(record.time, spec.end());
    previous = record.time;
  }
}

TEST(WorkloadEngine, TokensAreGloballyConsistent) {
  const auto capture = run_capture(smoke_spec(), 4);
  std::map<std::uint32_t, std::string> token_to_ua;
  std::map<std::string, std::uint32_t> ua_to_token;
  for (const auto& record : capture.records) {
    ASSERT_NE(record.ua_token, 0u);
    const auto [it, inserted] =
        token_to_ua.emplace(record.ua_token, record.user_agent);
    if (!inserted) {
      EXPECT_EQ(it->second, record.user_agent);
    }
    const auto [jt, fresh] =
        ua_to_token.emplace(record.user_agent, record.ua_token);
    if (!fresh) {
      EXPECT_EQ(jt->second, record.ua_token);
    }
  }
  EXPECT_GT(token_to_ua.size(), 4u);
}

TEST(WorkloadEngine, PopulationsAreAllPresent) {
  const auto capture = run_capture(smoke_spec(), 2);
  std::set<std::uint8_t> classes;
  bool benign = false;
  bool malicious = false;
  for (const auto& record : capture.records) {
    classes.insert(record.actor_class);
    benign |= record.truth == httplog::Truth::kBenign;
    malicious |= record.truth == httplog::Truth::kMalicious;
  }
  EXPECT_TRUE(benign);
  EXPECT_TRUE(malicious);
  // Smoke deploys every archetype: humans, crawler, monitor and the five
  // scraper kinds (8 distinct ActorClass values).
  EXPECT_GE(classes.size(), 8u);
}

TEST(WorkloadEngine, PartitionCountIsPartOfTheContract) {
  const auto spec = smoke_spec();
  const auto p4 = run_capture(spec, 2, 4);
  const auto p8 = run_capture(spec, 2, 8);
  // Different partitioning => different (equally valid) stream.
  EXPECT_NE(p4.clf, p8.clf);
  // But each is internally deterministic across thread counts.
  EXPECT_EQ(p4.clf, run_capture(spec, 4, 4).clf);
}

TEST(WorkloadEngine, MultiVhostScenarioRuns) {
  auto spec = *workload::catalog_entry("mixed_multi_vhost", 0.02);
  spec.duration_days = 0.25;  // trim the tail for test runtime
  const auto a = run_capture(spec, 4);
  ASSERT_GT(a.records.size(), 500u);
  EXPECT_EQ(a.clf, run_capture(spec, 1).clf);
}

TEST(WorkloadEngine, SurgeProducesABurst) {
  // flash_crowd at tiny scale, one simulated day around the surge: the
  // surge hour must carry far more traffic than the same hour the day
  // before... the scenario is 2 days with the surge on day 1; compare the
  // surge window against the same wall-clock window on day 0.
  const auto spec = *workload::catalog_entry("flash_crowd", 0.02);
  const auto capture = run_capture(spec, 2);
  const std::int64_t surge_begin =
      spec.start.micros() + httplog::kMicrosPerDay;
  const std::int64_t surge_end =
      surge_begin + 2 * httplog::kMicrosPerHour;
  std::uint64_t surge_window = 0;
  std::uint64_t quiet_window = 0;
  for (const auto& record : capture.records) {
    if (record.truth != httplog::Truth::kBenign) continue;
    const auto t = record.time.micros();
    if (t >= surge_begin && t < surge_end) ++surge_window;
    if (t >= surge_begin - httplog::kMicrosPerDay &&
        t < surge_end - httplog::kMicrosPerDay)
      ++quiet_window;
  }
  EXPECT_GT(surge_window, 10 * std::max<std::uint64_t>(quiet_window, 1));
}

TEST(WorkloadEngine, LazyActorsAreByteIdenticalToEager) {
  // The megasite enabler: deferred construction + slot pooling must be
  // invisible in the output — bytes AND sidecar stream — at every thread
  // count, on both a single-vhost and a multi-vhost spec.
  const auto check = [](const workload::ScenarioSpec& spec) {
    const auto eager = run_capture(spec, 2);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const auto lazy = run_capture(spec, threads, 8, /*lazy=*/true);
      ASSERT_EQ(eager.clf, lazy.clf);
      ASSERT_EQ(eager.records.size(), lazy.records.size());
      for (std::size_t i = 0; i < eager.records.size(); ++i) {
        ASSERT_EQ(eager.records[i].ua_token, lazy.records[i].ua_token) << i;
        ASSERT_EQ(eager.records[i].actor_id, lazy.records[i].actor_id) << i;
        ASSERT_EQ(eager.records[i].vhost, lazy.records[i].vhost) << i;
      }
    }
  };
  check(smoke_spec());
  auto multi = *workload::catalog_entry("mixed_multi_vhost", 0.02);
  multi.duration_days = 0.25;
  check(multi);
}

TEST(WorkloadEngine, LazyModeBoundsLiveActorsOnChurn) {
  // On a churn-shaped spec (finite lifetimes, day-long ramp) the live
  // high-water mark must sit far below the distinct population.
  const auto spec = *workload::catalog_entry("megasite", 0.002);
  ASSERT_TRUE(workload::static_population(spec) > 1'000u);
  workload::EngineConfig config;
  config.gen_threads = 4;
  config.lazy_actors = true;
  workload::WorkloadEngine engine(spec, config);
  std::uint64_t emitted = 0;
  (void)engine.run([&emitted](httplog::LogRecord&&) { ++emitted; });
  EXPECT_GT(emitted, 1'000u);
  EXPECT_GT(engine.actors_created(), 0u);
  EXPECT_LT(engine.peak_live_actors(), engine.actors_created());
}

TEST(WorkloadEngine, MegasitePopulationIsMillionScale) {
  const auto spec = *workload::catalog_entry("megasite", 1.0);
  EXPECT_GE(workload::static_population(spec), 1'000'000u);
  EXPECT_EQ(spec.vhosts.size(), 4u);
}

TEST(WorkloadEngine, VhostSidecarRoutesMultiVhostStreams) {
  auto spec = *workload::catalog_entry("mixed_multi_vhost", 0.02);
  spec.duration_days = 0.25;
  const auto capture = run_capture(spec, 2);
  std::set<std::uint32_t> vhosts;
  for (const auto& record : capture.records) {
    ASSERT_LT(record.vhost, spec.vhosts.size());
    vhosts.insert(record.vhost);
  }
  EXPECT_EQ(vhosts.size(), spec.vhosts.size());
  // Single-vhost streams stay all-zero.
  for (const auto& record : run_capture(smoke_spec(), 1).records)
    ASSERT_EQ(record.vhost, 0u);
}

TEST(WorkloadEngine, RequestStopEndsRunEarly) {
  auto spec = smoke_spec();
  workload::WorkloadEngine engine(spec, {});
  std::uint64_t seen = 0;
  (void)engine.run([&](httplog::LogRecord&&) {
    if (++seen == 100) engine.request_stop();
  });
  const auto full = run_capture(spec, 1).records.size();
  EXPECT_GE(seen, 100u);
  EXPECT_LT(seen, full);
}

TEST(WorkloadEngine, RunIsSingleUse) {
  workload::WorkloadEngine engine(smoke_spec(), {});
  (void)engine.run([](httplog::LogRecord&&) {});
  EXPECT_THROW((void)engine.run([](httplog::LogRecord&&) {}),
               std::logic_error);
}

TEST(WorkloadEngine, RejectsInvalidConfig) {
  workload::EngineConfig config;
  config.gen_threads = 0;
  EXPECT_THROW(workload::WorkloadEngine(smoke_spec(), config),
               std::invalid_argument);
  config.gen_threads = 1;
  config.partitions = 0;
  EXPECT_THROW(workload::WorkloadEngine(smoke_spec(), config),
               std::invalid_argument);
  config.partitions = 1;
  config.window_us = 0;
  EXPECT_THROW(workload::WorkloadEngine(smoke_spec(), config),
               std::invalid_argument);
}

TEST(WorkloadEngine, DetectorsAlertOnCatalogSmoke) {
  // The basis of the CI simulate smoke: the smoke scenario must produce
  // alerts from both detectors when fed directly (engine-stamped tokens).
  const auto pool = detectors::make_paper_pair();
  for (const auto& detector : pool) detector->reset();
  core::AlertJoiner joiner(pool);
  workload::EngineConfig config;
  config.gen_threads = 2;
  workload::WorkloadEngine engine(smoke_spec(), config);
  (void)engine.run(
      [&joiner](httplog::LogRecord&& record) { (void)joiner.process(record); });
  const auto& results = joiner.results();
  ASSERT_EQ(results.detector_count(), 2u);
  EXPECT_GT(results.alerts(0), 0u);
  EXPECT_GT(results.alerts(1), 0u);
}

TEST(WorkloadEngine, BatchedWriterOutputMatchesUnbatched) {
  // writev batching must be invisible in the bytes: the same engine stream
  // written through a batched and an unbatched StreamWriter produces
  // byte-identical files.
  const auto spec = smoke_spec();
  const std::string batched_path =
      ::testing::TempDir() + "workload_batched.log";
  const std::string plain_path = ::testing::TempDir() + "workload_plain.log";
  {
    traffic::StreamWriter batched(batched_path,
                                  traffic::StreamWriter::FaultPlan(), 64);
    workload::WorkloadEngine engine(spec, {});
    (void)engine.run([&batched](httplog::LogRecord&& record) {
      batched.write(record);
    });
  }
  {
    traffic::StreamWriter plain(plain_path);
    workload::WorkloadEngine engine(spec, {});
    (void)engine.run(
        [&plain](httplog::LogRecord&& record) { plain.write(record); });
  }
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const auto batched_bytes = slurp(batched_path);
  EXPECT_FALSE(batched_bytes.empty());
  EXPECT_EQ(batched_bytes, slurp(plain_path));
  std::remove(batched_path.c_str());
  std::remove(plain_path.c_str());
}

}  // namespace
}  // namespace divscrape
