// Pipeline tests: the sharded-equals-sequential identity (the module's
// core correctness claim) and file replay fidelity.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "detectors/registry.hpp"
#include "httplog/io.hpp"
#include "pipeline/replay.hpp"
#include "pipeline/sharded.hpp"
#include "traffic/scenario.hpp"

namespace {

using divscrape::core::ExperimentConfig;
using divscrape::core::JointResults;
using divscrape::core::run_experiment;
using divscrape::detectors::make_paper_pair;
using divscrape::pipeline::ReplayEngine;
using divscrape::pipeline::run_sharded;
using divscrape::pipeline::ShardedPipeline;

void expect_identical(const JointResults& a, const JointResults& b) {
  ASSERT_EQ(a.detector_count(), b.detector_count());
  EXPECT_EQ(a.total_requests(), b.total_requests());
  for (std::size_t d = 0; d < a.detector_count(); ++d) {
    EXPECT_EQ(a.alerts(d), b.alerts(d)) << "detector " << d;
    EXPECT_EQ(a.confusion(d).tp, b.confusion(d).tp);
    EXPECT_EQ(a.confusion(d).fp, b.confusion(d).fp);
    EXPECT_EQ(a.confusion(d).tn, b.confusion(d).tn);
    EXPECT_EQ(a.confusion(d).fn, b.confusion(d).fn);
    for (const auto& [status, count] : a.alerted_status(d)) {
      EXPECT_EQ(b.alerted_status(d).count(status), count)
          << "detector " << d << " status " << status;
    }
    EXPECT_EQ(a.unique_alert_status(d).total(),
              b.unique_alert_status(d).total());
  }
  const auto& pa = a.pair(0, 1);
  const auto& pb = b.pair(0, 1);
  EXPECT_EQ(pa.both(), pb.both());
  EXPECT_EQ(pa.neither(), pb.neither());
  EXPECT_EQ(pa.first_only(), pb.first_only());
  EXPECT_EQ(pa.second_only(), pb.second_only());
}

class ShardCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountTest, ShardedEqualsSequential) {
  // The headline property: hash-partitioned parallel processing produces
  // bit-identical results to the sequential run, for any shard count.
  const auto scenario = divscrape::traffic::smoke_test();

  ExperimentConfig config;
  config.scenario = scenario;
  const auto pool = make_paper_pair();
  const auto sequential = run_experiment(config, pool);

  const auto sharded =
      run_sharded(scenario, [] { return make_paper_pair(); }, GetParam());
  expect_identical(sharded, sequential.results);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(Sharded, RejectsBadConstruction) {
  EXPECT_THROW(ShardedPipeline([] { return make_paper_pair(); }, 0),
               std::invalid_argument);
  EXPECT_THROW(ShardedPipeline({}, 2), std::invalid_argument);
}

TEST(Sharded, FinishTwiceThrows) {
  ShardedPipeline pipeline([] { return make_paper_pair(); }, 2);
  (void)pipeline.finish();
  EXPECT_THROW((void)pipeline.finish(), std::logic_error);
}

TEST(Sharded, DispatchCountMatches) {
  auto scenario = divscrape::traffic::smoke_test();
  scenario.duration_days = 0.01;
  divscrape::traffic::Scenario s(scenario);
  ShardedPipeline pipeline([] { return make_paper_pair(); }, 4);
  divscrape::httplog::LogRecord r;
  std::uint64_t fed = 0;
  while (s.next(r)) {
    pipeline.process(r);
    ++fed;
  }
  EXPECT_EQ(pipeline.dispatched(), fed);
  const auto results = pipeline.finish();
  EXPECT_EQ(results.total_requests(), fed);
}

TEST(Replay, FileReplayMatchesDirectRunOnAlerts) {
  // Write the scenario to CLF text, replay it through fresh detectors, and
  // compare against running the same records directly. Ground truth is
  // lost on the wire (real logs are unlabelled) but alert behaviour must
  // be identical because detectors only read CLF-visible fields.
  auto config = divscrape::traffic::smoke_test();
  config.duration_days = 0.05;
  divscrape::traffic::Scenario scenario(config);

  std::ostringstream log_text;
  divscrape::httplog::LogWriter writer(log_text);
  const auto direct_pool = make_paper_pair();
  divscrape::core::AlertJoiner direct(direct_pool);
  divscrape::httplog::LogRecord r;
  while (scenario.next(r)) {
    writer.write(r);
    (void)direct.process(r);
  }

  const auto replay_pool = make_paper_pair();
  ReplayEngine engine(replay_pool);
  std::istringstream in(log_text.str());
  const auto stats = engine.replay(in);

  EXPECT_EQ(stats.parsed, direct.results().total_requests());
  EXPECT_EQ(stats.skipped, 0u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(engine.results().alerts(d), direct.results().alerts(d));
  }
  const auto& pr = engine.results().pair(0, 1);
  const auto& pd = direct.results().pair(0, 1);
  EXPECT_EQ(pr.both(), pd.both());
  EXPECT_EQ(pr.first_only(), pd.first_only());
  EXPECT_EQ(pr.second_only(), pd.second_only());
  // Truth did not survive the wire: confusion matrices must be empty.
  EXPECT_EQ(engine.results().confusion(0).total(), 0u);
}

TEST(Replay, SkipsCorruptLines) {
  const auto pool = make_paper_pair();
  ReplayEngine engine(pool);
  std::istringstream in(
      "garbage line\n"
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 "
      "Firefox/58.0\"\n"
      "also garbage\n");
  const auto stats = engine.replay(in);
  EXPECT_EQ(stats.lines, 3u);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.skipped, 2u);
}

}  // namespace
