// Interned-token equivalence: the tentpole claim of the interning PR is
// that keying detector state by interned u32 tokens changes *nothing*
// observable — JointResults must be byte-identical to the seed's
// string-keyed path, for stamped and unstamped records, sequential and
// sharded.
//
// Three proofs:
//   1. Golden parity vs the seed: tests/data/golden_amadeus_s005_paper_pair
//      .json was captured from the pre-interning tree (commit fdc3288) by
//      running `divscrape_cli export --scale 0.05`. The same run today must
//      serialize to the identical bytes.
//   2. Stamped vs unstamped: scrubbing ua_token (forcing every detector
//      through its local-interner fallback) must not change results.
//   3. Sharded vs sequential at 1/2/8 shards, via both the copying and the
//      moving process() overloads.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "detectors/arcane.hpp"
#include "detectors/sentinel.hpp"
#include "pipeline/sharded.hpp"
#include "traffic/scenario.hpp"

namespace {

using namespace divscrape;

std::vector<std::unique_ptr<detectors::Detector>> paper_pair() {
  std::vector<std::unique_ptr<detectors::Detector>> pool;
  pool.push_back(std::make_unique<detectors::SentinelDetector>());
  pool.push_back(std::make_unique<detectors::ArcaneDetector>());
  return pool;
}

std::vector<httplog::LogRecord> materialize(double scale) {
  traffic::Scenario scenario(traffic::amadeus_like(scale));
  std::vector<httplog::LogRecord> records;
  httplog::LogRecord r;
  while (scenario.next(r)) records.push_back(r);
  return records;
}

core::JointResults run_pool(const std::vector<httplog::LogRecord>& records) {
  const auto pool = paper_pair();
  core::AlertJoiner joiner(pool);
  for (const auto& r : records) (void)joiner.process(r);
  return joiner.results();
}

TEST(InternEquivalence, GoldenParityWithSeedStringKeyedPath) {
  // Byte-for-byte comparison against the JSON the *seed* (string-keyed)
  // tree exported for this exact configuration.
  std::ifstream golden_file(std::string(DIVSCRAPE_TEST_DATA_DIR) +
                            "/golden_amadeus_s005_paper_pair.json");
  ASSERT_TRUE(golden_file) << "golden file missing";
  std::stringstream golden;
  golden << golden_file.rdbuf();
  std::string expected = golden.str();
  // The CLI appended one newline after the document.
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == '\r'))
    expected.pop_back();

  core::ExperimentConfig config;
  config.scenario = traffic::amadeus_like(0.05);
  const auto pool = paper_pair();
  const auto out = core::run_experiment(config, pool);
  EXPECT_EQ(core::to_json(out.results), expected);
}

TEST(InternEquivalence, StampedAndUnstampedRunsAreIdentical) {
  auto stamped = materialize(0.02);
  auto unstamped = stamped;
  for (auto& r : unstamped) r.ua_token = 0;  // force local-intern fallback

  const auto a = run_pool(stamped);
  const auto b = run_pool(unstamped);
  EXPECT_EQ(core::to_json(a), core::to_json(b));
}

TEST(InternEquivalence, ShardedMatchesSequentialCopyAndMove) {
  const auto records = materialize(0.02);
  const std::string sequential = core::to_json(run_pool(records));

  for (const std::size_t shards : {1u, 2u, 8u}) {
    // Copying dispatch.
    {
      pipeline::ShardedPipeline pipeline([] { return paper_pair(); }, shards);
      for (const auto& r : records) pipeline.process(r);
      EXPECT_EQ(core::to_json(pipeline.finish()), sequential)
          << "copy dispatch, shards=" << shards;
    }
    // Moving dispatch.
    {
      pipeline::ShardedPipeline pipeline([] { return paper_pair(); }, shards);
      auto working = records;
      for (auto& r : working) pipeline.process(std::move(r));
      EXPECT_EQ(core::to_json(pipeline.finish()), sequential)
          << "move dispatch, shards=" << shards;
    }
  }
}

TEST(InternEquivalence, RunShardedMovePathMatchesSequential) {
  // End-to-end: run_sharded now moves records from the generator into the
  // shard queues; results must still match a sequential run of the same
  // scenario.
  const auto scenario = traffic::amadeus_like(0.02);
  core::ExperimentConfig config;
  config.scenario = scenario;
  const auto pool = paper_pair();
  const auto sequential = core::run_experiment(config, pool);

  const auto sharded = pipeline::run_sharded(
      scenario, [] { return paper_pair(); }, 4);
  EXPECT_EQ(core::to_json(sharded), core::to_json(sequential.results));
}

}  // namespace
