// JSONL alert-log round-trip tests.
#include <gtest/gtest.h>

#include <sstream>

#include "pipeline/alert_log.hpp"

namespace {

using divscrape::detectors::AlertReason;
using divscrape::detectors::Verdict;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;
using divscrape::pipeline::AlertEvent;
using divscrape::pipeline::AlertLogReader;
using divscrape::pipeline::AlertLogWriter;
using divscrape::pipeline::parse_alert_line;

LogRecord sample_record() {
  LogRecord r;
  r.ip = Ipv4(45, 140, 0, 17);
  r.time = Timestamp::from_civil(2018, 3, 12, 10, 30, 0);
  r.target = "/offers/123?x=\"quoted\"";
  r.status = 200;
  return r;
}

TEST(AlertLog, NonAlertsAreSkipped) {
  std::ostringstream os;
  AlertLogWriter writer(os);
  EXPECT_FALSE(writer.write("sentinel", sample_record(),
                            {false, 0.3, AlertReason::kNone}));
  EXPECT_EQ(writer.written(), 0u);
  EXPECT_TRUE(os.str().empty());
}

TEST(AlertLog, WriteParseRoundTrip) {
  std::ostringstream os;
  AlertLogWriter writer(os);
  const auto record = sample_record();
  ASSERT_TRUE(writer.write("sentinel", record,
                           {true, 0.95, AlertReason::kIpReputation}));
  const auto event = parse_alert_line(os.str());
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->detector, "sentinel");
  EXPECT_EQ(event->ip, record.ip);
  EXPECT_EQ(event->time, record.time);
  EXPECT_EQ(event->target, record.target);
  EXPECT_EQ(event->status, 200);
  EXPECT_NEAR(event->score, 0.95, 1e-9);
  EXPECT_EQ(event->reason, "ip-reputation");
}

TEST(AlertLog, ReaderStreamsManyEvents) {
  std::ostringstream os;
  AlertLogWriter writer(os);
  for (int i = 0; i < 25; ++i) {
    auto record = sample_record();
    record.time = record.time + i * 1'000'000;
    record.status = i % 2 == 0 ? 200 : 302;
    writer.write(i % 2 == 0 ? "sentinel" : "arcane", record,
                 {true, 1.0, AlertReason::kRateLimit});
  }
  std::istringstream in(os.str());
  AlertLogReader reader(in);
  AlertEvent event;
  int count = 0;
  int sentinel_events = 0;
  while (reader.next(event)) {
    ++count;
    sentinel_events += event.detector == "sentinel";
  }
  EXPECT_EQ(count, 25);
  EXPECT_EQ(sentinel_events, 13);
  EXPECT_EQ(reader.lines_skipped(), 0u);
}

TEST(AlertLog, ReaderSkipsGarbage) {
  std::istringstream in(
      "not json\n"
      "{\"detector\":\"x\"}\n"  // missing members
      "{\"detector\":\"sentinel\",\"ip\":\"1.2.3.4\",\"time\":\"t\","
      "\"time_us\":123,\"target\":\"/a\",\"status\":200,\"score\":0.5,"
      "\"reason\":\"trap\"}\n");
  AlertLogReader reader(in);
  AlertEvent event;
  int count = 0;
  while (reader.next(event)) ++count;
  EXPECT_EQ(count, 1);
  EXPECT_EQ(reader.lines_skipped(), 2u);
}

TEST(AlertLog, BadIpRejected) {
  EXPECT_FALSE(parse_alert_line(
                   "{\"detector\":\"d\",\"ip\":\"999.1.1.1\",\"time_us\":1,"
                   "\"target\":\"/\",\"status\":200,\"score\":1,"
                   "\"reason\":\"r\"}")
                   .has_value());
}

}  // namespace
