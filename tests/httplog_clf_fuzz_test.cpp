// Differential fuzz for the CLF fast path: parse_clf() (SWAR splitter,
// escape fast lane, timestamp memo) must agree with parse_clf_reference()
// (the straight-line oracle, clf.hpp) on every input — same verdict, same
// error category, byte-equal records. The corpus is generated valid lines,
// hand-picked edge lines, and deterministic mutations of both (truncations,
// byte flips, inserted quotes/backslashes/brackets, binary garbage), so the
// suite is reproducible while still covering the corruption shapes rotated
// production logs exhibit. CI also runs it under ASan/UBSan — the fast
// path's pointer arithmetic gets no benefit of the doubt.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "httplog/clf.hpp"
#include "httplog/record.hpp"
#include "stats/rng.hpp"
#include "traffic/scenario.hpp"

namespace {

using divscrape::httplog::ClfError;
using divscrape::httplog::ClfFormatter;
using divscrape::httplog::ClfParser;
using divscrape::httplog::format_clf;
using divscrape::httplog::LogRecord;
using divscrape::httplog::parse_clf;
using divscrape::httplog::parse_clf_reference;
using divscrape::httplog::Truth;

// Every field a parser is allowed to set (wire fields + the sidecar resets
// parse guarantees).
void expect_records_equal(const LogRecord& a, const LogRecord& b,
                          const std::string& line) {
  EXPECT_EQ(a.ip, b.ip) << line;
  EXPECT_EQ(a.ident, b.ident) << line;
  EXPECT_EQ(a.user, b.user) << line;
  EXPECT_EQ(a.time, b.time) << line;
  EXPECT_EQ(a.method, b.method) << line;
  EXPECT_EQ(a.target, b.target) << line;
  EXPECT_EQ(a.protocol, b.protocol) << line;
  EXPECT_EQ(a.status, b.status) << line;
  EXPECT_EQ(a.bytes, b.bytes) << line;
  EXPECT_EQ(a.bytes_dash, b.bytes_dash) << line;
  EXPECT_EQ(a.referer, b.referer) << line;
  EXPECT_EQ(a.user_agent, b.user_agent) << line;
  EXPECT_EQ(a.ua_token, b.ua_token) << line;
  EXPECT_EQ(a.truth, b.truth) << line;
  EXPECT_EQ(a.actor_id, b.actor_id) << line;
  EXPECT_EQ(a.actor_class, b.actor_class) << line;
  EXPECT_EQ(a.vhost, b.vhost) << line;
}

// Edges the generated corpus cannot reach: escape pathologies, boundary
// timestamps, SWAR word-boundary field widths, degenerate request lines.
std::vector<std::string> edge_lines() {
  return {
      // Escaped space inside the request line: resolves before the split.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET /a\\ b HTTP/1.1\" "
      "200 1 \"-\" \"-\"",
      // Escaped quote just before the closing quote.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"agent \\\"q\\\"\"",
      // Escaped backslash then quote.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"ref \\\\\" \"-\"",
      // Trailing backslash: the field never closes.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"agent\\",
      // Lone "-" request line (aborted TLS handshake).
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"-\" 408 - \"-\" \"-\"",
      // Request line with no protocol.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET /\" 200 1 \"-\" \"-\"",
      // Interior spaces in the target.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET /a b c HTTP/1.0\" "
      "200 1 \"-\" \"-\"",
      // Trailing junk after the closing user-agent quote (dropped).
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\" extra junk",
      // CRLF terminator.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"\r\n",
      // Leap second; non-UTC offsets (re-render as UTC).
      "1.2.3.4 - - [30/Jun/2015:23:59:60 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"",
      "1.2.3.4 - - [11/Mar/2018:08:00:00 +0200] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"",
      "1.2.3.4 - - [11/Mar/2018:06:25:24 +1400] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"",
      // Impossible date / bogus timezone (both parsers must reject).
      "1.2.3.4 - - [31/Feb/2018:06:25:24 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"",
      "1.2.3.4 - - [11/Mar/2018:06:25:24 +9959] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"-\"",
      // Literal "0" bytes vs "-" bytes.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 0 "
      "\"-\" \"-\"",
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 304 - "
      "\"-\" \"-\"",
      // ident/user tokens wider than one SWAR word (8+ bytes).
      "203.0.113.255 identtoken-wider-than-a-word some.user@example "
      "[11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 \"-\" \"-\"",
      // Unclosed bracket / missing fields at every suffix length.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000",
      "1.2.3.4 - -",
      "1.2.3.4",
      // Backslash storm in a quoted field.
      "1.2.3.4 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 1 "
      "\"-\" \"\\\\\\\\\\\"\\\\\"",
  };
}

std::vector<std::string> build_corpus() {
  std::vector<std::string> corpus = edge_lines();
  auto config = divscrape::traffic::smoke_test();
  divscrape::traffic::Scenario scenario(config);
  LogRecord r;
  std::size_t kept = 0;
  while (scenario.next(r) && kept < 2000) {
    corpus.push_back(format_clf(r));
    ++kept;
  }
  // Deterministic mutations of the whole corpus so far. Each base line
  // yields one mutant; the RNG decides which corruption it gets.
  divscrape::stats::Rng rng(0xC1FFD1FFull);
  const std::size_t bases = corpus.size();
  for (std::size_t i = 0; i < bases; ++i) {
    std::string line = corpus[i];
    if (line.empty()) continue;
    switch (rng.uniform_int(0, 5)) {
      case 0:  // truncate anywhere
        line.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1)));
        break;
      case 1: {  // flip one byte to a printable
        const auto pos = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(line.size()) - 1));
        line[pos] = static_cast<char>('!' + rng.uniform_int(0, 93));
        break;
      }
      case 2: {  // inject a structural byte
        const char structural[] = {'"', '\\', '[', ']', ' ', '-'};
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(line.size())));
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(pos),
                    structural[rng.uniform_int(0, 5)]);
        break;
      }
      case 3: {  // delete one byte
        const auto pos = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(line.size()) - 1));
        line.erase(pos, 1);
        break;
      }
      case 4: {  // splice the tail of another corpus line onto this one
        const auto& other = corpus[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bases) - 1))];
        line = line.substr(0, line.size() / 2) +
               other.substr(other.size() / 2);
        break;
      }
      default:  // binary garbage prefix
        line = std::string("\x01\x7f\xff ", 4) + line;
        break;
    }
    corpus.push_back(std::move(line));
  }
  return corpus;
}

TEST(ClfFuzz, FastParserMatchesReferenceOnEveryInput) {
  const auto corpus = build_corpus();
  ASSERT_GT(corpus.size(), 4000u);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (const auto& line : corpus) {
    const auto fast = parse_clf(line);
    const auto ref = parse_clf_reference(line);
    ASSERT_EQ(fast.ok(), ref.ok())
        << "verdict mismatch on: " << line
        << " fast=" << to_string(fast.error)
        << " ref=" << to_string(ref.error);
    EXPECT_EQ(fast.error, ref.error) << line;
    if (fast.ok()) {
      ++accepted;
      expect_records_equal(*fast.record, *ref.record, line);
    } else {
      ++rejected;
    }
  }
  // The corpus must actually exercise both verdicts.
  EXPECT_GT(accepted, 1000u);
  EXPECT_GT(rejected, 500u);
}

TEST(ClfFuzz, WarmParserMatchesStatelessParseAcrossTheCorpus) {
  // One ClfParser fed the whole corpus in order — timestamp memo and string
  // capacities maximally warm, interleaved with rejected lines that leave
  // the scratch record in an unspecified state — must still produce exactly
  // what a fresh parse_clf() produces for every line.
  const auto corpus = build_corpus();
  ClfParser warm;
  LogRecord scratch;
  for (const auto& line : corpus) {
    const ClfError warm_error = warm.parse(line, scratch);
    const auto fresh = parse_clf(line);
    ASSERT_EQ(warm_error == ClfError::kNone, fresh.ok()) << line;
    EXPECT_EQ(warm_error, fresh.error) << line;
    if (fresh.ok()) expect_records_equal(scratch, *fresh.record, line);
  }
}

TEST(ClfFuzz, WarmFormatterMatchesStatelessFormat) {
  // One ClfFormatter appending every accepted record into a reused buffer
  // (time memo warm) must emit exactly format_clf's bytes, and the emitted
  // line must parse back to the identical record (byte stability is checked
  // in the roundtrip suite; here we pin formatter statefulness).
  const auto corpus = build_corpus();
  ClfFormatter warm;
  std::string buf;
  for (const auto& line : corpus) {
    const auto parsed = parse_clf(line);
    if (!parsed.ok()) continue;
    buf.clear();
    warm.append(*parsed.record, buf);
    EXPECT_EQ(buf, format_clf(*parsed.record)) << line;
  }
}

}  // namespace
