// Fault-injection equivalence: the tentpole claim of the live-ingest
// subsystem. An amadeus_like(0.05) stream (~74k records) is written to a
// live log file under continuous adversarial conditions — torn writes
// split at arbitrary byte boundaries (including across a poll), CRLF line
// endings, interleaved garbage lines, one mid-session rotation with a
// record torn across the boundary, and one truncate-and-restart — while a
// LogTailer feeds a ReplayEngine. The resulting JointResults must be
// byte-identical (as serialized JSON) to a one-shot batch replay of the
// logically ingested byte stream, and the framing accounting must match
// exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/export.hpp"
#include "detectors/registry.hpp"
#include "httplog/clf.hpp"
#include "pipeline/replay.hpp"
#include "pipeline/tailer.hpp"
#include "stats/rng.hpp"
#include "traffic/scenario.hpp"
#include "traffic/stream_writer.hpp"

namespace {

using namespace divscrape;
using detectors::make_paper_pair;

TEST(TailFaults, FaultedLiveStreamMatchesOneShotBatchReplay) {
  const std::string log = ::testing::TempDir() + "divscrape_tail_faults.log";
  const std::string rotated = log + ".1";

  traffic::Scenario scenario(traffic::amadeus_like(0.05));
  traffic::StreamWriter writer(log);
  const auto live_pool = make_paper_pair();
  pipeline::ReplayEngine engine(live_pool);
  pipeline::LogTailer tailer(log, engine);
  stats::Rng rng(20180311);

  // Every byte the tailer should logically ingest, in order — the
  // one-shot reference. (The truncated bytes stay in it: the tailer
  // drained them before the truncation erased them.)
  std::string reference;
  const auto emit_whole = [&](std::string_view wire) {
    reference.append(wire.data(), wire.size());
    writer.write_bytes(wire);
  };

  httplog::LogRecord record;
  std::uint64_t n = 0;
  std::uint64_t garbage = 0;
  bool rotated_once = false;
  bool truncated_once = false;
  while (scenario.next(record)) {
    ++n;
    if (n % 501 == 0) {  // corrupt lines: skip accounting must agree too
      ++garbage;
      emit_whole("%% torn garbage that is definitely not CLF %%\n");
    }
    std::string wire = httplog::format_clf(record);
    wire += n % 13 == 0 ? "\r\n" : "\n";
    reference += wire;

    if (!rotated_once && n >= 20000) {
      // Mid-session rotation with this record torn across the boundary:
      // its head is the old file's final (unterminated) bytes, its tail
      // the new file's first bytes. The framer must stitch them.
      rotated_once = true;
      const auto cut = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
      writer.write_bytes(std::string_view(wire).substr(0, cut));
      (void)tailer.poll();  // old file drained, torn head held as partial
      writer.rotate(rotated);
      writer.write_bytes(std::string_view(wire).substr(cut));
    } else if (n % 97 == 0 && wire.size() > 2) {
      // Torn write at an arbitrary byte boundary (CRLF interior included),
      // with a poll racing between the halves.
      const auto cut = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(wire.size()) - 1));
      writer.write_bytes(std::string_view(wire).substr(0, cut));
      if (rng.bernoulli(0.5)) (void)tailer.poll();
      writer.write_bytes(std::string_view(wire).substr(cut));
    } else {
      writer.write_bytes(wire);
    }

    if (!truncated_once && n >= 45000) {
      // `> access.log`: drain everything first (the reference keeps those
      // bytes — they were ingested before the truncation erased them),
      // then restart the same inode at size zero.
      truncated_once = true;
      (void)tailer.poll();
      writer.truncate_restart();
    }
    if (n % 1009 == 0) (void)tailer.poll();
  }
  (void)tailer.poll();
  ASSERT_TRUE(rotated_once);
  ASSERT_TRUE(truncated_once);
  EXPECT_EQ(tailer.rotations(), 1u);
  EXPECT_EQ(tailer.truncations(), 1u);
  // The single rotation's torn line stitched cleanly: the detected-loss
  // counter must stay at zero (no false positives), and no read faulted.
  EXPECT_EQ(tailer.lost_incarnations(), 0u);
  EXPECT_EQ(tailer.read_errors(), 0u);
  // The writer completed every line, so nothing may be left partial.
  EXPECT_FALSE(engine.has_partial_line());

  // One-shot batch replay of the logically ingested stream.
  const auto batch_pool = make_paper_pair();
  pipeline::ReplayEngine batch(batch_pool);
  std::istringstream in(reference);
  const auto batch_stats = batch.replay(in);

  EXPECT_EQ(engine.stats().lines, batch_stats.lines);
  EXPECT_EQ(engine.stats().parsed, batch_stats.parsed);
  EXPECT_EQ(engine.stats().skipped, batch_stats.skipped);
  EXPECT_EQ(engine.stats().parsed, n);
  EXPECT_EQ(engine.stats().skipped, garbage);

  // The acceptance criterion: byte-identical JointResults.
  EXPECT_EQ(core::to_json(engine.results()), core::to_json(batch.results()));

  // The final checkpoint carries the full session accounting.
  const auto cp = tailer.checkpoint();
  EXPECT_EQ(cp.parsed, n);
  EXPECT_EQ(cp.skipped, garbage);
  EXPECT_EQ(cp.rotations, 1u);
  EXPECT_EQ(cp.truncations, 1u);

  std::remove(log.c_str());
  std::remove(rotated.c_str());
}

}  // namespace
