// Tests for the analysis-side statistics: online moments, windows,
// histograms, proportion intervals and the paired-rater association
// measures the diversity framework is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/association.hpp"
#include "stats/histogram.hpp"
#include "stats/intervals.hpp"
#include "stats/running_stats.hpp"

namespace {

using divscrape::stats::cohens_kappa;
using divscrape::stats::Counter;
using divscrape::stats::disagreement;
using divscrape::stats::Histogram;
using divscrape::stats::mcnemar_test;
using divscrape::stats::PairedCounts;
using divscrape::stats::phi_coefficient;
using divscrape::stats::q_statistic;
using divscrape::stats::RunningStats;
using divscrape::stats::shannon_entropy;
using divscrape::stats::SlidingWindow;
using divscrape::stats::wald_interval;
using divscrape::stats::wilson_interval;

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.cv(), 0.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  // Property: merging shard accumulators must equal accumulating the
  // concatenated stream (the sharded pipeline relies on this).
  RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.01;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.sum(), 15.0);
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.back(), 10.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100 + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-9);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Counter, CountsAndOrdering) {
  Counter<int> c;
  c.add(200, 10);
  c.add(302, 3);
  c.add(404);
  c.add(200, 5);
  EXPECT_EQ(c.count(200), 15u);
  EXPECT_EQ(c.count(500), 0u);
  EXPECT_EQ(c.total(), 19u);
  EXPECT_EQ(c.distinct(), 3u);
  const auto rows = c.by_count();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, 200);
  EXPECT_EQ(rows[1].first, 302);
  EXPECT_EQ(rows[2].first, 404);
}

TEST(Counter, ByCountBreaksTiesByKey) {
  Counter<int> c;
  c.add(500, 2);
  c.add(204, 2);
  const auto rows = c.by_count();
  EXPECT_EQ(rows[0].first, 204);
  EXPECT_EQ(rows[1].first, 500);
}

TEST(Counter, MergeAdds) {
  Counter<std::string> a, b;
  a.add("x", 1);
  b.add("x", 2);
  b.add("y", 3);
  a.merge(b);
  EXPECT_EQ(a.count("x"), 3u);
  EXPECT_EQ(a.count("y"), 3u);
}

TEST(Entropy, UniformAndDegenerate) {
  Counter<int> uniform;
  for (int k = 0; k < 8; ++k) uniform.add(k, 5);
  EXPECT_NEAR(shannon_entropy(uniform), 3.0, 1e-12);  // log2(8)

  Counter<int> single;
  single.add(1, 100);
  EXPECT_DOUBLE_EQ(shannon_entropy(single), 0.0);

  Counter<int> empty;
  EXPECT_DOUBLE_EQ(shannon_entropy(empty), 0.0);
}

TEST(Wilson, KnownValue) {
  // 8/10 successes, 95%: Wilson interval approx [0.490, 0.943].
  const auto ci = wilson_interval(8, 10);
  EXPECT_DOUBLE_EQ(ci.point, 0.8);
  EXPECT_NEAR(ci.lo, 0.490, 0.005);
  EXPECT_NEAR(ci.hi, 0.943, 0.005);
}

TEST(Wilson, ZeroTrials) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(Wilson, ExtremesStayInUnitInterval) {
  for (const std::uint64_t n : {1ull, 5ull, 100ull, 100000ull}) {
    const auto lo = wilson_interval(0, n);
    EXPECT_GE(lo.lo, 0.0);
    EXPECT_GT(lo.hi, 0.0);  // never collapses to a point at the extreme
    const auto hi = wilson_interval(n, n);
    EXPECT_LT(hi.lo, 1.0);
    EXPECT_LE(hi.hi, 1.0);
  }
}

TEST(Wilson, NarrowerThanWaldNearExtremes) {
  // At p-hat = 1 the Wald interval degenerates to [1, 1]; Wilson stays
  // honest (nonzero width). This is why the reports use Wilson.
  const auto wald = wald_interval(50, 50);
  const auto wilson = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(wald.lo, 1.0);
  EXPECT_LT(wilson.lo, 1.0);
}

TEST(Association, PerfectAgreement) {
  const PairedCounts pc{50, 0, 0, 50};
  EXPECT_DOUBLE_EQ(q_statistic(pc), 1.0);
  EXPECT_DOUBLE_EQ(phi_coefficient(pc), 1.0);
  EXPECT_DOUBLE_EQ(disagreement(pc), 0.0);
  EXPECT_DOUBLE_EQ(cohens_kappa(pc), 1.0);
}

TEST(Association, PerfectDisagreement) {
  const PairedCounts pc{0, 50, 50, 0};
  EXPECT_DOUBLE_EQ(q_statistic(pc), -1.0);
  EXPECT_DOUBLE_EQ(phi_coefficient(pc), -1.0);
  EXPECT_DOUBLE_EQ(disagreement(pc), 1.0);
  EXPECT_DOUBLE_EQ(cohens_kappa(pc), -1.0);
}

TEST(Association, IndependenceGivesZeroPhi) {
  // Margins 0.5/0.5, independent: a=b=c=d.
  const PairedCounts pc{25, 25, 25, 25};
  EXPECT_DOUBLE_EQ(phi_coefficient(pc), 0.0);
  EXPECT_DOUBLE_EQ(q_statistic(pc), 0.0);
  EXPECT_DOUBLE_EQ(cohens_kappa(pc), 0.0);
}

TEST(Association, DegenerateTableIsZeroNotNan) {
  const PairedCounts all_both{100, 0, 0, 0};
  EXPECT_FALSE(std::isnan(phi_coefficient(all_both)));
  EXPECT_FALSE(std::isnan(cohens_kappa(all_both)));
  EXPECT_EQ(q_statistic(PairedCounts{}), 0.0);
}

TEST(Association, PaperTable2Values) {
  // The actual published contingency: strong correlation, tiny
  // disagreement, massively significant McNemar asymmetry.
  const PairedCounts paper{1'231'408, 43'648, 9'305, 185'383};
  EXPECT_GT(q_statistic(paper), 0.98);
  EXPECT_GT(phi_coefficient(paper), 0.85);
  EXPECT_NEAR(disagreement(paper), 0.036, 0.001);
  const auto mc = mcnemar_test(paper);
  EXPECT_GT(mc.statistic, 20'000.0);
  EXPECT_LT(mc.p_value, 1e-12);
}

TEST(McNemar, SymmetricDiscordanceNotSignificant) {
  const PairedCounts pc{100, 30, 30, 100};
  const auto mc = mcnemar_test(pc);
  EXPECT_NEAR(mc.statistic, 0.0, 0.02);
  EXPECT_GT(mc.p_value, 0.8);
}

TEST(McNemar, NoDiscordance) {
  const auto mc = mcnemar_test(PairedCounts{10, 0, 0, 10});
  EXPECT_EQ(mc.discordant, 0u);
  EXPECT_EQ(mc.p_value, 1.0);
}

TEST(ChiSquare1, KnownQuantiles) {
  using divscrape::stats::chi_square1_sf;
  EXPECT_NEAR(chi_square1_sf(3.841), 0.05, 0.002);
  EXPECT_NEAR(chi_square1_sf(6.635), 0.01, 0.001);
  EXPECT_EQ(chi_square1_sf(0.0), 1.0);
}

}  // namespace
