// Parameterized property sweeps over the detector configuration space:
// alert volume must respond monotonically to thresholds, determinism must
// hold per configuration, and parsers must never crash on mutated input.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detectors/arcane.hpp"
#include "detectors/sentinel.hpp"
#include "httplog/clf.hpp"
#include "stats/rng.hpp"
#include "traffic/scenario.hpp"

namespace {

using divscrape::detectors::ArcaneConfig;
using divscrape::detectors::ArcaneDetector;
using divscrape::detectors::SentinelConfig;
using divscrape::detectors::SentinelDetector;
using divscrape::httplog::LogRecord;

// A captive traffic slice shared by all properties in this file.
const std::vector<LogRecord>& captive_stream() {
  static const auto records = [] {
    auto config = divscrape::traffic::smoke_test();
    config.duration_days = 0.15;
    divscrape::traffic::Scenario scenario(config);
    std::vector<LogRecord> out;
    LogRecord r;
    while (scenario.next(r)) out.push_back(r);
    return out;
  }();
  return records;
}

std::uint64_t count_alerts(divscrape::detectors::Detector& detector) {
  std::uint64_t alerts = 0;
  for (const auto& r : captive_stream()) {
    alerts += detector.evaluate(r).alert;
  }
  return alerts;
}

// --- Sentinel threshold monotonicity ---------------------------------

class SentinelBurstSweep : public ::testing::TestWithParam<int> {};

TEST_P(SentinelBurstSweep, DeterministicPerConfig) {
  SentinelConfig config;
  config.burst_limit = GetParam();
  SentinelDetector a(config), b(config);
  EXPECT_EQ(count_alerts(a), count_alerts(b));
}

INSTANTIATE_TEST_SUITE_P(Limits, SentinelBurstSweep,
                         ::testing::Values(5, 10, 25, 50, 100));

TEST(SentinelProperty, AlertsMonotoneInBurstLimit) {
  // Stricter (smaller) burst limits can only alert on more requests:
  // every rate trip at limit L also trips at limit L' < L, and flags
  // propagate monotonically through reputation.
  std::uint64_t previous = UINT64_MAX;
  for (const int limit : {5, 15, 25, 60, 200}) {
    SentinelConfig config;
    config.burst_limit = limit;
    SentinelDetector detector(config);
    const auto alerts = count_alerts(detector);
    EXPECT_LE(alerts, previous) << "burst_limit " << limit;
    previous = alerts;
  }
}

TEST(SentinelProperty, AlertsMonotoneInSubnetThreshold) {
  std::uint64_t previous = UINT64_MAX;
  for (const int threshold : {1, 2, 3, 8, 1000}) {
    SentinelConfig config;
    config.subnet_flag_threshold = threshold;
    SentinelDetector detector(config);
    const auto alerts = count_alerts(detector);
    EXPECT_LE(alerts, previous) << "subnet threshold " << threshold;
    previous = alerts;
  }
}

TEST(SentinelProperty, DisablingMechanismsNeverAddsAlerts) {
  SentinelConfig base;
  SentinelDetector baseline(base);
  const auto baseline_alerts = count_alerts(baseline);
  for (const int mechanism : {0, 1, 2}) {
    SentinelConfig config;
    if (mechanism == 0) config.enable_reputation = false;
    if (mechanism == 1) config.enable_subnet_escalation = false;
    if (mechanism == 2) config.enable_fingerprinting = false;
    SentinelDetector detector(config);
    EXPECT_LE(count_alerts(detector), baseline_alerts)
        << "mechanism " << mechanism;
  }
}

// --- Arcane threshold monotonicity ------------------------------------

class ArcaneThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ArcaneThresholdSweep, ScoresRespectThreshold) {
  ArcaneConfig config;
  config.alert_threshold = GetParam();
  ArcaneDetector detector(config);
  for (const auto& r : captive_stream()) {
    const auto v = detector.evaluate(r);
    if (v.alert) {
      EXPECT_GE(v.score, GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ArcaneThresholdSweep,
                         ::testing::Values(0.3, 0.5, 0.6, 0.8, 0.95));

TEST(ArcaneProperty, AlertsMonotoneInThreshold) {
  std::uint64_t previous = UINT64_MAX;
  for (const double threshold : {0.2, 0.4, 0.6, 0.8, 1.01}) {
    ArcaneConfig config;
    config.alert_threshold = threshold;
    ArcaneDetector detector(config);
    const auto alerts = count_alerts(detector);
    EXPECT_LE(alerts, previous) << "threshold " << threshold;
    previous = alerts;
  }
}

TEST(ArcaneProperty, AlertsMonotoneInBehaviouralFloor) {
  std::uint64_t previous = UINT64_MAX;
  for (const int floor : {4, 10, 20, 40, 200}) {
    ArcaneConfig config;
    config.min_requests = floor;
    ArcaneDetector detector(config);
    const auto alerts = count_alerts(detector);
    EXPECT_LE(alerts, previous) << "floor " << floor;
    previous = alerts;
  }
}

// --- parser robustness -------------------------------------------------

TEST(ClfFuzz, MutatedLinesNeverCrashAndNeverFalselyParse) {
  divscrape::stats::Rng rng(0xfeedbeef);
  const auto& records = captive_stream();
  std::uint64_t parsed = 0, rejected = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto& record = records[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(records.size()) - 1))];
    std::string line = divscrape::httplog::format_clf(record);
    // Mutate: deletions, flips, truncations, duplications.
    const int mutations = static_cast<int>(rng.uniform_int(1, 6));
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(line.size()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0: line.erase(pos, 1); break;
        case 1:
          line[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 2: line = line.substr(0, pos); break;
        default: line.insert(pos, 1, line[pos]); break;
      }
    }
    const auto result = divscrape::httplog::parse_clf(line);
    // No crash is the main property; additionally, whatever parses must
    // be internally consistent.
    if (result.ok()) {
      ++parsed;
      EXPECT_GE(result.record->status, 100);
      EXPECT_LE(result.record->status, 599);
    } else {
      ++rejected;
    }
  }
  // Sanity: the mutator actually breaks most lines.
  EXPECT_GT(rejected, 1000u);
  (void)parsed;
}

TEST(DetectorFuzz, DetectorsToleratGarbageRecordsInTimeOrder) {
  // Records with hostile field contents must not break detector state.
  SentinelDetector sentinel;
  ArcaneDetector arcane;
  divscrape::stats::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    LogRecord r;
    r.ip = divscrape::httplog::Ipv4(static_cast<std::uint32_t>(rng()));
    r.time = divscrape::httplog::Timestamp(i * 1000);
    const int shape = static_cast<int>(rng.uniform_int(0, 4));
    switch (shape) {
      case 0: r.target = ""; break;
      case 1: r.target = std::string(2048, 'A'); break;
      case 2: r.target = "/%%%%%%"; break;
      case 3: r.target = "/offers/../../etc/passwd"; break;
      default: r.target = "/\x01\x02\x03"; break;
    }
    r.user_agent = shape % 2 == 0 ? "" : std::string(512, '"');
    r.status = static_cast<int>(rng.uniform_int(100, 599));
    (void)sentinel.evaluate(r);
    (void)arcane.evaluate(r);
  }
  SUCCEED();
}

}  // namespace
