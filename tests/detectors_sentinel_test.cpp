// SentinelDetector (commercial / Distil-role) behavioural tests: each
// mechanism in isolation, plus the reputation-persistence and subnet-
// escalation signatures the reproduction depends on.
#include <gtest/gtest.h>

#include "detectors/sentinel.hpp"

namespace {

using divscrape::detectors::AlertReason;
using divscrape::detectors::SentinelConfig;
using divscrape::detectors::SentinelDetector;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;

constexpr const char* kBrowserUa =
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
    "like Gecko) Chrome/64.0.3282.186 Safari/537.36";
constexpr const char* kStaleUa =
    "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/41.0.2272.89 Safari/537.36";

LogRecord req(Ipv4 ip, double t_s, const char* ua = kBrowserUa) {
  LogRecord r;
  r.ip = ip;
  r.time = Timestamp(static_cast<std::int64_t>(t_s * 1e6));
  r.user_agent = ua;
  r.target = "/offers/1";
  return r;
}

TEST(Sentinel, ScriptUaAlertsImmediately) {
  SentinelDetector sentinel;
  const auto v = sentinel.evaluate(req(Ipv4(1, 2, 3, 4), 0.0, "curl/7.58.0"));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kBadUserAgent);
  EXPECT_DOUBLE_EQ(v.score, 1.0);
}

TEST(Sentinel, HeadlessUaAlertsImmediately) {
  SentinelDetector sentinel;
  const auto v = sentinel.evaluate(
      req(Ipv4(1, 2, 3, 4), 0.0,
          "Mozilla/5.0 (X11) HeadlessChrome/64.0 Safari/537.36"));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kBadUserAgent);
}

TEST(Sentinel, DeclaredCrawlerAllowlisted) {
  SentinelDetector sentinel;
  const Ipv4 ip(66, 249, 64, 10);
  // Even at scraper-like rates, Googlebot never alerts.
  for (int i = 0; i < 500; ++i) {
    const auto v = sentinel.evaluate(
        req(ip, i * 0.05,
            "Mozilla/5.0 (compatible; Googlebot/2.1; "
            "+http://www.google.com/bot.html)"));
    ASSERT_FALSE(v.alert) << "request " << i;
  }
}

TEST(Sentinel, BrowserAtHumanPaceNeverAlerts) {
  SentinelDetector sentinel;
  const Ipv4 ip(20, 30, 40, 50);
  for (int i = 0; i < 100; ++i) {
    const auto v = sentinel.evaluate(req(ip, i * 5.0));
    ASSERT_FALSE(v.alert) << "request " << i;
  }
}

TEST(Sentinel, BurstRateTrips) {
  SentinelDetector sentinel;
  const Ipv4 ip(20, 30, 40, 50);
  bool alerted = false;
  for (int i = 0; i < 40 && !alerted; ++i) {
    const auto v = sentinel.evaluate(req(ip, i * 0.2));  // 5 req/s
    alerted = v.alert;
    if (alerted) {
      EXPECT_EQ(v.reason, AlertReason::kRateLimit);
    }
  }
  EXPECT_TRUE(alerted);
}

TEST(Sentinel, ReputationPersistsAfterBurstEnds) {
  // The Distil-signature: once flagged, even slow requests keep alerting.
  SentinelDetector sentinel;
  const Ipv4 ip(20, 30, 40, 50);
  double t = 0.0;
  for (int i = 0; i < 60; ++i, t += 0.1)
    (void)sentinel.evaluate(req(ip, t));
  // Hours later, at gentle pace:
  t += 3600.0;
  const auto v = sentinel.evaluate(req(ip, t));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kIpReputation);
}

TEST(Sentinel, ReputationExpiresAfterTtl) {
  SentinelConfig config;
  config.reputation_ttl_s = 100.0;
  config.enable_subnet_escalation = false;
  SentinelDetector sentinel(config);
  const Ipv4 ip(20, 30, 40, 50);
  double t = 0.0;
  for (int i = 0; i < 60; ++i, t += 0.1) (void)sentinel.evaluate(req(ip, t));
  t += 1000.0;  // well past TTL
  const auto v = sentinel.evaluate(req(ip, t));
  EXPECT_FALSE(v.alert);
}

TEST(Sentinel, SubnetEscalationSweepsNeighbours) {
  SentinelDetector sentinel;
  // Three distinct violator IPs in 45.140.0.0/24.
  double t = 0.0;
  for (int host = 2; host <= 4; ++host) {
    for (int i = 0; i < 60; ++i, t += 0.1) {
      (void)sentinel.evaluate(req(Ipv4(45, 140, 0, static_cast<std::uint8_t>(host)), t));
    }
  }
  // A *never-seen* neighbour in the same /24 now alerts on first contact.
  const auto v = sentinel.evaluate(req(Ipv4(45, 140, 0, 200), t + 1.0));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kSubnetReputation);
  // But an address in a different /24 does not.
  const auto other = sentinel.evaluate(req(Ipv4(45, 140, 1, 200), t + 2.0));
  EXPECT_FALSE(other.alert);
  EXPECT_GE(sentinel.flagged_subnets(), 1u);
}

TEST(Sentinel, SubnetEscalationRequiresThresholdIps) {
  SentinelDetector sentinel;
  double t = 0.0;
  // Only two violators: below the default threshold of 3.
  for (int host = 2; host <= 3; ++host) {
    for (int i = 0; i < 60; ++i, t += 0.1) {
      (void)sentinel.evaluate(
          req(Ipv4(45, 140, 0, static_cast<std::uint8_t>(host)), t));
    }
  }
  const auto v = sentinel.evaluate(req(Ipv4(45, 140, 0, 200), t + 1.0));
  EXPECT_FALSE(v.alert);
}

TEST(Sentinel, SubnetEscalationCanBeDisabled) {
  SentinelConfig config;
  config.enable_subnet_escalation = false;
  SentinelDetector sentinel(config);
  double t = 0.0;
  for (int host = 2; host <= 5; ++host) {
    for (int i = 0; i < 60; ++i, t += 0.1) {
      (void)sentinel.evaluate(
          req(Ipv4(45, 140, 0, static_cast<std::uint8_t>(host)), t));
    }
  }
  EXPECT_FALSE(sentinel.evaluate(req(Ipv4(45, 140, 0, 200), t + 1.0)).alert);
}

TEST(Sentinel, StaleFingerprintNeedsActivity) {
  SentinelDetector sentinel;
  const Ipv4 ip(30, 30, 30, 30);
  // A single stale-browser request does not alert...
  EXPECT_FALSE(sentinel.evaluate(req(ip, 0.0, kStaleUa)).alert);
  // ...but sustained activity with the stale fingerprint does.
  bool alerted = false;
  AlertReason reason = AlertReason::kNone;
  for (int i = 1; i < 20 && !alerted; ++i) {
    const auto v = sentinel.evaluate(req(ip, i * 3.0, kStaleUa));
    alerted = v.alert;
    reason = v.reason;
  }
  EXPECT_TRUE(alerted);
  EXPECT_EQ(reason, AlertReason::kFingerprint);
}

TEST(Sentinel, EmptyUaAlertsWithoutBlacklisting) {
  SentinelDetector sentinel;
  const Ipv4 ip(40, 40, 40, 40);
  const auto v = sentinel.evaluate(req(ip, 0.0, "-"));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.reason, AlertReason::kBadUserAgent);
  // A later normal-browser request from the same IP is clean (no flag).
  const auto later = sentinel.evaluate(req(ip, 10.0));
  EXPECT_FALSE(later.alert);
}

TEST(Sentinel, ResetClearsState) {
  SentinelDetector sentinel;
  const Ipv4 ip(20, 30, 40, 50);
  double t = 0.0;
  for (int i = 0; i < 60; ++i, t += 0.1) (void)sentinel.evaluate(req(ip, t));
  EXPECT_TRUE(sentinel.evaluate(req(ip, t + 60.0)).alert);
  sentinel.reset();
  EXPECT_FALSE(sentinel.evaluate(req(ip, t + 120.0)).alert);
  EXPECT_EQ(sentinel.flagged_ips(), 0u);
}

TEST(Sentinel, ScoreGradedBelowThreshold) {
  SentinelDetector sentinel;
  const Ipv4 ip(50, 50, 50, 50);
  const auto v1 = sentinel.evaluate(req(ip, 0.0));
  double prev = v1.score;
  for (int i = 1; i < 10; ++i) {
    const auto v = sentinel.evaluate(req(ip, i * 0.3));
    EXPECT_FALSE(v.alert);
    EXPECT_GE(v.score, prev);  // progress toward the tripwire
    prev = v.score;
  }
}

}  // namespace
