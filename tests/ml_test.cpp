// Learning-substrate tests: datasets, the three classifiers, metrics/AUC,
// and the session-feature bridge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "httplog/session.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "stats/rng.hpp"

namespace {

using divscrape::ml::auc;
using divscrape::ml::build_session_dataset;
using divscrape::ml::ClassifierMetrics;
using divscrape::ml::Dataset;
using divscrape::ml::DecisionTree;
using divscrape::ml::extract_features;
using divscrape::ml::LogisticRegression;
using divscrape::ml::MetricsAccumulator;
using divscrape::ml::NaiveBayes;
using divscrape::ml::roc_curve;
using divscrape::ml::session_feature_names;
using divscrape::ml::split_dataset;
using divscrape::stats::Rng;

// Two well-separated Gaussian blobs in 2D.
Dataset blobs(std::size_t per_class, double separation, std::uint64_t seed) {
  Dataset data({"x", "y"});
  Rng rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0);
    data.add({rng.normal(separation, 1.0), rng.normal(separation, 1.0)}, 1);
  }
  return data;
}

TEST(Dataset, SchemaEnforced) {
  Dataset data({"a", "b"});
  EXPECT_THROW(data.add({1.0}, 0), std::invalid_argument);
  data.add({1.0, 2.0}, 1);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.positives(), 1u);
}

TEST(Dataset, SplitPreservesSamplesAndIsDeterministic) {
  const auto data = blobs(100, 3.0, 1);
  Rng rng1(5), rng2(5);
  const auto s1 = split_dataset(data, 0.8, rng1);
  const auto s2 = split_dataset(data, 0.8, rng2);
  EXPECT_EQ(s1.train.size() + s1.test.size(), data.size());
  EXPECT_EQ(s1.train.size(), s2.train.size());
  for (std::size_t i = 0; i < s1.train.size(); ++i) {
    EXPECT_EQ(s1.train[i].features, s2.train[i].features);
  }
  EXPECT_THROW(split_dataset(data, 0.0, rng1), std::invalid_argument);
}

TEST(Dataset, StandardizationCentersAndScales) {
  Dataset data({"x"});
  for (const double v : {2.0, 4.0, 6.0}) data.add({v}, 0);
  const auto st = data.standardization();
  EXPECT_DOUBLE_EQ(st.mean[0], 4.0);
  std::vector<double> f = {4.0};
  st.apply(f);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

TEST(NaiveBayes, SeparatesBlobs) {
  const auto data = blobs(300, 4.0, 2);
  const auto model = NaiveBayes::train(data);
  MetricsAccumulator acc;
  for (const auto& s : data.samples())
    acc.add(s.label, model.predict(s.features));
  EXPECT_GT(acc.metrics().accuracy(), 0.97);
  EXPECT_NEAR(model.prior_positive(), 0.5, 1e-9);
}

TEST(NaiveBayes, RequiresBothClasses) {
  Dataset data({"x"});
  data.add({1.0}, 1);
  data.add({2.0}, 1);
  EXPECT_THROW(NaiveBayes::train(data), std::invalid_argument);
}

TEST(NaiveBayes, ScoreIsProbability) {
  const auto data = blobs(100, 3.0, 3);
  const auto model = NaiveBayes::train(data);
  for (const auto& s : data.samples()) {
    const double p = model.score(s.features);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DecisionTree, LearnsXor) {
  // Naive Bayes cannot learn XOR; a depth-2 tree can.
  Dataset data({"x", "y"});
  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double y = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const int label = (x != y) ? 1 : 0;
    data.add({x + rng.normal(0, 0.05), y + rng.normal(0, 0.05)}, label);
  }
  const auto tree = DecisionTree::train(data);
  MetricsAccumulator acc;
  for (const auto& s : data.samples())
    acc.add(s.label, tree.predict(s.features));
  EXPECT_GT(acc.metrics().accuracy(), 0.95);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const auto data = blobs(200, 1.0, 5);
  divscrape::ml::TreeParams params;
  params.max_depth = 1;
  const auto stump = DecisionTree::train(data, params);
  EXPECT_LE(stump.depth(), 1u);
  EXPECT_LE(stump.node_count(), 3u);
}

TEST(DecisionTree, PureLeafOnTrivialData) {
  Dataset data({"x"});
  for (int i = 0; i < 30; ++i) data.add({static_cast<double>(i)}, i >= 15);
  const auto tree = DecisionTree::train(data);
  const std::vector<double> lo = {0.0}, hi = {29.0};
  EXPECT_DOUBLE_EQ(tree.score(lo), 0.0);
  EXPECT_DOUBLE_EQ(tree.score(hi), 1.0);
}

TEST(Logistic, SeparatesBlobs) {
  const auto data = blobs(300, 3.0, 6);
  const auto model = LogisticRegression::train(data);
  MetricsAccumulator acc;
  for (const auto& s : data.samples())
    acc.add(s.label, model.predict(s.features));
  EXPECT_GT(acc.metrics().accuracy(), 0.95);
}

TEST(Logistic, WeightsPointTowardPositiveClass) {
  const auto data = blobs(300, 3.0, 7);
  const auto model = LogisticRegression::train(data);
  EXPECT_GT(model.weights()[0], 0.0);
  EXPECT_GT(model.weights()[1], 0.0);
}

TEST(Metrics, DerivedRates) {
  ClassifierMetrics m;
  m.tp = 40;
  m.fn = 10;
  m.tn = 45;
  m.fp = 5;
  EXPECT_DOUBLE_EQ(m.sensitivity(), 0.8);
  EXPECT_DOUBLE_EQ(m.specificity(), 0.9);
  EXPECT_DOUBLE_EQ(m.precision(), 40.0 / 45.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.1);
  EXPECT_GT(m.f1(), 0.0);
}

TEST(Metrics, EmptyIsZeroNotNan) {
  const ClassifierMetrics m;
  EXPECT_EQ(m.sensitivity(), 0.0);
  EXPECT_EQ(m.f1(), 0.0);
  EXPECT_FALSE(std::isnan(m.accuracy()));
}

TEST(Auc, PerfectRankingIsOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
}

TEST(Auc, ReversedRankingIsZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Auc, RandomScoresNearHalf) {
  Rng rng(8);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20'000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(auc(scores, labels), 0.5, 0.02);
}

TEST(Auc, TiesHandled) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.5);
}

TEST(Roc, MonotoneAndAnchored) {
  Rng rng(9);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.bernoulli(0.4) ? 1 : 0;
    scores.push_back(rng.normal(label == 1 ? 1.0 : 0.0, 1.0));
    labels.push_back(label);
  }
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
  }
}

TEST(Features, NamesMatchVectorLength) {
  using divscrape::httplog::Ipv4;
  using divscrape::httplog::LogRecord;
  using divscrape::httplog::Session;
  using divscrape::httplog::SessionKey;
  using divscrape::httplog::Timestamp;

  SessionKey key{Ipv4(1, 2, 3, 4), 1};
  Session s(key, Timestamp(0));
  LogRecord r;
  r.ip = key.ip;
  r.user_agent = "curl/7.58.0";
  r.target = "/offers/5";
  s.add(r);
  const auto features = extract_features(s);
  EXPECT_EQ(features.size(), session_feature_names().size());
  // ua_scripted must be set for curl.
  const auto& names = session_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "ua_scripted") - names.begin());
  ASSERT_LT(idx, features.size());
  EXPECT_DOUBLE_EQ(features[idx], 1.0);
}

TEST(Features, DatasetSkipsUnknownTruth) {
  using divscrape::httplog::Ipv4;
  using divscrape::httplog::LogRecord;
  using divscrape::httplog::Session;
  using divscrape::httplog::SessionKey;
  using divscrape::httplog::Timestamp;
  using divscrape::httplog::Truth;

  std::vector<divscrape::httplog::Session> sessions;
  for (int i = 0; i < 3; ++i) {
    SessionKey key{Ipv4(1, 1, 1, static_cast<std::uint8_t>(i)), 1};
    Session s(key, Timestamp(0));
    LogRecord r;
    r.ip = key.ip;
    r.user_agent = "UA";
    r.truth = i == 0 ? Truth::kUnknown
                     : (i == 1 ? Truth::kBenign : Truth::kMalicious);
    s.add(r);
    sessions.push_back(std::move(s));
  }
  const auto data = build_session_dataset(sessions);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.positives(), 1u);
}

}  // namespace
