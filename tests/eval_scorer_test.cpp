// eval::Scorer on hand-built verdict streams with metrics known in
// advance, plus the DetectionDocument round-trip and schema pin the CI
// smoke gate depends on.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/scorer.hpp"
#include "gtest/gtest.h"

namespace {

using namespace divscrape;
using detectors::AlertReason;
using detectors::Verdict;
using httplog::Truth;

httplog::LogRecord record_at(Truth truth, std::uint32_t actor,
                             double t_seconds) {
  httplog::LogRecord record;
  record.truth = truth;
  record.actor_id = actor;
  record.time =
      httplog::Timestamp(static_cast<std::int64_t>(t_seconds * 1e6));
  return record;
}

Verdict verdict(bool alert, double score,
                AlertReason reason = AlertReason::kNone) {
  Verdict v;
  v.alert = alert;
  v.score = score;
  v.reason = reason;
  return v;
}

TEST(EvalScorer, ConfusionAndDerivedRates) {
  eval::Scorer scorer({"a", "b"});
  // 4 malicious, 3 benign. Detector "a": 3 tp, 1 fn, 1 fp, 2 tn.
  // Detector "b" never alerts; the ensemble therefore equals "a".
  const auto feed = [&](Truth truth, bool a_alert, std::uint32_t actor) {
    const Verdict verdicts[2] = {verdict(a_alert, a_alert ? 0.9 : 0.1),
                                 verdict(false, 0.0)};
    scorer.observe(record_at(truth, actor, actor), verdicts);
  };
  feed(Truth::kMalicious, true, 1);
  feed(Truth::kMalicious, true, 2);
  feed(Truth::kMalicious, true, 3);
  feed(Truth::kMalicious, false, 4);
  feed(Truth::kBenign, true, 5);
  feed(Truth::kBenign, false, 6);
  feed(Truth::kBenign, false, 7);

  const auto score = scorer.finish("hand_built", 1.0);
  EXPECT_EQ(score.records, 7u);
  EXPECT_EQ(score.truth_malicious, 4u);
  EXPECT_EQ(score.truth_benign, 3u);
  EXPECT_EQ(score.actors_attacking, 4u);
  ASSERT_EQ(score.columns.size(), 3u);  // a, b, ensemble

  const auto* a = score.column("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->tp, 3u);
  EXPECT_EQ(a->fn, 1u);
  EXPECT_EQ(a->fp, 1u);
  EXPECT_EQ(a->tn, 2u);
  EXPECT_DOUBLE_EQ(a->precision(), 0.75);
  EXPECT_DOUBLE_EQ(a->recall(), 0.75);
  EXPECT_DOUBLE_EQ(a->f1(), 0.75);

  const auto* b = score.column("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->tp, 0u);
  EXPECT_EQ(b->fn, 4u);
  EXPECT_DOUBLE_EQ(b->precision(), 0.0);  // 0/0 convention
  EXPECT_DOUBLE_EQ(b->recall(), 0.0);
  EXPECT_DOUBLE_EQ(b->f1(), 0.0);

  const auto* ensemble = score.column("ensemble_1oo2");
  ASSERT_NE(ensemble, nullptr);
  EXPECT_EQ(ensemble->tp, a->tp);
  EXPECT_EQ(ensemble->fp, a->fp);
  EXPECT_EQ(&score.columns.back(), ensemble) << "ensemble is always last";
}

TEST(EvalScorer, AucMatchesHandComputedRanking) {
  eval::Scorer scorer({"only"});
  // Scores 0.1(b) 0.9(m) 0.8(b) 0.4(m): of the 4 benign-malicious pairs,
  // 3 are ranked correctly => AUC = 0.75.
  const struct {
    Truth truth;
    double score;
  } stream[] = {{Truth::kBenign, 0.1},
                {Truth::kMalicious, 0.9},
                {Truth::kBenign, 0.8},
                {Truth::kMalicious, 0.4}};
  std::uint32_t actor = 1;
  for (const auto& item : stream) {
    const Verdict verdicts[1] = {verdict(false, item.score)};
    scorer.observe(record_at(item.truth, actor, actor), verdicts);
    ++actor;
  }
  const auto score = scorer.finish("auc", 1.0);
  EXPECT_DOUBLE_EQ(score.columns[0].auc, 0.75);
  // The single-detector ensemble is the same ranking.
  EXPECT_DOUBLE_EQ(score.columns.back().auc, 0.75);
}

TEST(EvalScorer, UnknownTruthIsExcludedEverywhere) {
  eval::Scorer scorer({"only"});
  const Verdict alerting[1] = {verdict(true, 1.0, AlertReason::kRateLimit)};
  scorer.observe(record_at(Truth::kUnknown, 9, 0.0), alerting);
  EXPECT_EQ(scorer.records_scored(), 0u);
  const auto score = scorer.finish("unknown", 1.0);
  EXPECT_EQ(score.records, 0u);
  EXPECT_EQ(score.actors_attacking, 0u);
  EXPECT_EQ(score.columns[0].tp, 0u);
  EXPECT_EQ(score.columns[0].fp, 0u);
  EXPECT_TRUE(score.columns[0].unique_reasons.empty());
}

TEST(EvalScorer, TimeToDetectFromActorsFirstRecord) {
  eval::Scorer scorer({"only"});
  const auto feed = [&](std::uint32_t actor, double t, bool alert) {
    const Verdict verdicts[1] = {verdict(alert, alert ? 1.0 : 0.0)};
    scorer.observe(record_at(Truth::kMalicious, actor, t), verdicts);
  };
  // Actor 1: first seen t=0, first alert t=10 (the later alert at t=20
  // must not move it). Actor 2: detected on its very first record => 0s.
  feed(1, 0.0, false);
  feed(1, 10.0, true);
  feed(1, 20.0, true);
  feed(2, 5.0, true);

  const auto score = scorer.finish("ttd", 1.0);
  const auto& column = score.columns[0];
  EXPECT_EQ(score.actors_attacking, 2u);
  EXPECT_EQ(column.actors_detected, 2u);
  // Sample {0, 10}: mean 5; nearest-rank p50 = 0, p90 = 10.
  EXPECT_DOUBLE_EQ(column.ttd_mean_s, 5.0);
  EXPECT_DOUBLE_EQ(column.ttd_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(column.ttd_p90_s, 10.0);
}

TEST(EvalScorer, UniqueAlertAttributionAndUniqueActors) {
  eval::Scorer scorer({"a", "b"});
  const auto feed = [&](std::uint32_t actor, double t, const Verdict& va,
                        const Verdict& vb,
                        Truth truth = Truth::kMalicious) {
    const Verdict verdicts[2] = {va, vb};
    scorer.observe(record_at(truth, actor, t), verdicts);
  };
  const auto quiet = verdict(false, 0.0);
  // Actor 1: only "a" ever alerts (rate-limit twice, bad-user-agent once).
  feed(1, 0.0, verdict(true, 0.9, AlertReason::kRateLimit), quiet);
  feed(1, 1.0, verdict(true, 0.9, AlertReason::kRateLimit), quiet);
  feed(1, 2.0, verdict(true, 0.8, AlertReason::kBadUserAgent), quiet);
  // Actor 2: both alert on the same record — unique for neither.
  feed(2, 3.0, verdict(true, 0.9, AlertReason::kIpReputation),
       verdict(true, 0.7, AlertReason::kBehavioral));
  // Actor 3: only "b" alerts.
  feed(3, 4.0, quiet, verdict(true, 0.6, AlertReason::kBehavioral));
  // A benign single-tool alert must NOT enter the reason attribution.
  feed(4, 5.0, verdict(true, 0.5, AlertReason::kFingerprint), quiet,
       Truth::kBenign);

  const auto score = scorer.finish("unique", 1.0);
  const auto* a = score.column("a");
  const auto* b = score.column("b");
  const auto* ensemble = score.column("ensemble_1oo2");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(ensemble, nullptr);

  const std::vector<eval::ReasonCount> want_a = {{"rate-limit", 2},
                                                 {"bad-user-agent", 1}};
  EXPECT_EQ(a->unique_reasons, want_a);
  const std::vector<eval::ReasonCount> want_b = {{"behavioral", 1}};
  EXPECT_EQ(b->unique_reasons, want_b);
  EXPECT_TRUE(ensemble->unique_reasons.empty());

  EXPECT_EQ(a->actors_detected, 2u);  // actors 1 and 2
  EXPECT_EQ(b->actors_detected, 2u);  // actors 2 and 3
  EXPECT_EQ(a->actors_unique, 1u);    // actor 1
  EXPECT_EQ(b->actors_unique, 1u);    // actor 3
  EXPECT_EQ(ensemble->actors_detected, 3u);
  EXPECT_EQ(ensemble->actors_unique, 0u) << "ensemble is never 'unique'";
}

TEST(EvalScorer, RejectsEmptyPoolAndMismatchedVerdicts) {
  EXPECT_THROW(eval::Scorer({}), std::invalid_argument);
  eval::Scorer scorer({"a", "b"});
  const Verdict one[1] = {verdict(false, 0.0)};
  EXPECT_THROW(scorer.observe(record_at(Truth::kBenign, 1, 0.0), one),
               std::invalid_argument);
}

TEST(EvalScorerDocument, RoundTripsThroughJsonAndDisk) {
  eval::Scorer scorer({"a", "b"});
  const auto feed = [&](Truth truth, bool a_alert, bool b_alert,
                        std::uint32_t actor, double t) {
    const Verdict verdicts[2] = {
        verdict(a_alert, a_alert ? 0.9 : 0.2, AlertReason::kRateLimit),
        verdict(b_alert, b_alert ? 0.7 : 0.1, AlertReason::kBehavioral)};
    scorer.observe(record_at(truth, actor, t), verdicts);
  };
  feed(Truth::kMalicious, true, false, 1, 0.0);
  feed(Truth::kMalicious, false, true, 2, 1.5);
  feed(Truth::kBenign, false, false, 3, 2.0);
  feed(Truth::kBenign, true, false, 4, 3.0);

  eval::DetectionDocument document;
  document.scenarios.push_back(scorer.finish("round_trip", 0.25));

  std::string error;
  const auto reparsed =
      eval::DetectionDocument::from_json(document.to_json(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, document);

  const std::string path = ::testing::TempDir() + "detection_doc.json";
  ASSERT_TRUE(document.save(path));
  const auto loaded = eval::DetectionDocument::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, document);
  std::remove(path.c_str());
}

TEST(EvalScorerDocument, SchemaVersionIsPinned) {
  // The committed BENCH_detection.json and the CI smoke gate both name
  // this exact string; bump it only with a migration.
  EXPECT_EQ(eval::DetectionDocument::kSchema, "divscrape.bench_detection.v1");

  eval::DetectionDocument document;
  std::string json = document.to_json();
  const auto pos = json.find("bench_detection.v1");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 18, "bench_detection.v2");
  std::string error;
  EXPECT_FALSE(eval::DetectionDocument::from_json(json, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  EXPECT_FALSE(eval::DetectionDocument::from_json("{}", &error).has_value());
  EXPECT_FALSE(
      eval::DetectionDocument::from_json("not json", &error).has_value());
}

TEST(EvalScorerDocument, RejectsMalformedScenarioEntries) {
  const std::string no_columns =
      R"({"schema":"divscrape.bench_detection.v1","bench":"bench_detection",)"
      R"("scenarios":[{"scenario":"x","columns":[]}]})";
  std::string error;
  EXPECT_FALSE(
      eval::DetectionDocument::from_json(no_columns, &error).has_value());
  EXPECT_NE(error.find("columns"), std::string::npos) << error;

  const std::string unnamed_column =
      R"({"schema":"divscrape.bench_detection.v1","bench":"bench_detection",)"
      R"("scenarios":[{"scenario":"x","columns":[{"tp":1}]}]})";
  EXPECT_FALSE(
      eval::DetectionDocument::from_json(unnamed_column, &error).has_value());
  EXPECT_NE(error.find("name"), std::string::npos) << error;
}

}  // namespace
