// Request-target parsing and path-taxonomy tests.
#include <gtest/gtest.h>

#include "httplog/url.hpp"

namespace {

using divscrape::httplog::is_static_asset;
using divscrape::httplog::parse_query;
using divscrape::httplog::parse_url;
using divscrape::httplog::path_extension;
using divscrape::httplog::path_segments;
using divscrape::httplog::path_template;
using divscrape::httplog::query_value;
using divscrape::httplog::url_decode;

TEST(Url, SplitsPathAndQuery) {
  const auto url = parse_url("/search?from=NCE&to=LHR");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/search");
  EXPECT_EQ(url->query, "from=NCE&to=LHR");
  EXPECT_TRUE(url->has_query());
}

TEST(Url, NoQuery) {
  const auto url = parse_url("/offers/123");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/offers/123");
  EXPECT_FALSE(url->has_query());
}

TEST(Url, StripsFragment) {
  const auto url = parse_url("/a?b=c#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->query, "b=c");
}

TEST(Url, RejectsNonOriginForm) {
  EXPECT_FALSE(parse_url("").has_value());
  EXPECT_FALSE(parse_url("http://evil.example/").has_value());
  EXPECT_FALSE(parse_url("*").has_value());
}

TEST(UrlDecode, BasicEscapes) {
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("%41%42%43"), "ABC");
  EXPECT_EQ(url_decode("100%25"), "100%");
}

TEST(UrlDecode, InvalidEscapesPassThrough) {
  EXPECT_EQ(url_decode("%zz"), "%zz");
  EXPECT_EQ(url_decode("%2"), "%2");
  EXPECT_EQ(url_decode("%"), "%");
}

TEST(Query, ParsesPairs) {
  const auto params = parse_query("from=NCE&to=LHR&flag&empty=");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].key, "from");
  EXPECT_EQ(params[0].value, "NCE");
  EXPECT_EQ(params[2].key, "flag");
  EXPECT_EQ(params[2].value, "");
  EXPECT_EQ(params[3].key, "empty");
}

TEST(Query, ValueLookup) {
  EXPECT_EQ(query_value("a=1&b=2", "b").value_or("?"), "2");
  EXPECT_FALSE(query_value("a=1", "c").has_value());
  EXPECT_EQ(query_value("q=a%20b", "q").value_or("?"), "a b");
}

TEST(PathSegments, SkipsEmpties) {
  EXPECT_EQ(path_segments("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(path_segments("/a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(path_segments("/").empty());
}

TEST(PathExtension, Lowercased) {
  EXPECT_EQ(path_extension("/static/app.JS"), "js");
  EXPECT_EQ(path_extension("/static/app.min.js"), "js");
  EXPECT_EQ(path_extension("/offers/123"), "");
  EXPECT_EQ(path_extension("/.hidden"), "");
  EXPECT_EQ(path_extension("/x."), "");
}

struct AssetCase {
  const char* path;
  bool asset;
};

class AssetTest : public ::testing::TestWithParam<AssetCase> {};

TEST_P(AssetTest, Classification) {
  EXPECT_EQ(is_static_asset(GetParam().path), GetParam().asset)
      << GetParam().path;
}

INSTANTIATE_TEST_SUITE_P(
    Paths, AssetTest,
    ::testing::Values(AssetCase{"/static/app-1.js", true},
                      AssetCase{"/static/theme.css", true},
                      AssetCase{"/img/logo.png", true},
                      AssetCase{"/fonts/x.woff2", true},
                      AssetCase{"/offers/123", false},
                      AssetCase{"/search", false},
                      AssetCase{"/robots.txt", false},
                      AssetCase{"/data.json", false}));

TEST(PathTemplate, CollapsesNumericSegments) {
  EXPECT_EQ(path_template("/offers/123"), "/offers/{n}");
  EXPECT_EQ(path_template("/offers/987654"), "/offers/{n}");
  EXPECT_EQ(path_template("/book/1/step/2"), "/book/{n}/step/{n}");
  EXPECT_EQ(path_template("/search"), "/search");
  EXPECT_EQ(path_template("/"), "/");
}

TEST(PathTemplate, SweepCollapsesToOneTemplate) {
  // The scraper-detection property: a catalogue sweep has one template.
  const auto t1 = path_template("/offers/1");
  for (int id = 2; id < 100; ++id) {
    EXPECT_EQ(path_template("/offers/" + std::to_string(id)), t1);
  }
}

TEST(PathTemplateMemo, SweepSharesOneTemplateToken) {
  divscrape::httplog::PathTemplateMemo memo;
  const auto tok = memo.template_token("/offers/1");
  for (int id = 2; id < 100; ++id) {
    EXPECT_EQ(memo.template_token("/offers/" + std::to_string(id)), tok);
  }
  EXPECT_EQ(memo.distinct_paths(), 99u);
  EXPECT_NE(memo.template_token("/search"), tok);
}

TEST(PathTemplateMemo, RepeatPathsAreMemoized) {
  divscrape::httplog::PathTemplateMemo memo;
  const auto a = memo.template_token("/book/7/step/2");
  EXPECT_EQ(memo.template_token("/book/7/step/2"), a);
  EXPECT_EQ(memo.distinct_paths(), 1u);
}

TEST(PathTemplateMemo, CapBoundsGrowthButKeepsKnownTemplatesExact) {
  using divscrape::httplog::PathTemplateMemo;
  // Cap of 4 strings: "/offers/1", "/offers/{n}", "/a", "/b" fill it.
  PathTemplateMemo memo(4);
  const auto offers = memo.template_token("/offers/1");
  (void)memo.template_token("/a");
  (void)memo.template_token("/b");
  EXPECT_EQ(memo.distinct_paths(), 3u);

  // Past the cap: a fresh sweep path still resolves to the exact, already
  // interned template token (no growth, no hash degradation).
  EXPECT_EQ(memo.template_token("/offers/99999"), offers);
  EXPECT_EQ(memo.distinct_paths(), 3u);  // not memoized past the cap

  // A template never seen before the cap degrades to a stable hash token
  // flagged with the overflow bit (never aliasing an exact token).
  const auto overflow = memo.template_token("/unseen/path");
  EXPECT_TRUE(overflow & PathTemplateMemo::kOverflowTokenBit);
  EXPECT_EQ(memo.template_token("/unseen/path"), overflow);
}

}  // namespace
