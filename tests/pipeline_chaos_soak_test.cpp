// Chaos soak harness tests: the closed-loop production-day soak must pass
// its own oracle on a real (small) catalog scenario, deterministically.
//
// These run the full loop — workload generation into per-vhost live logs,
// scripted faults (rotations, truncations, torn writes, ENOSPC, short-write
// bursts, kill-anywhere), warm resume from periodic checkpoints, and the
// byte-identical batch-replay reference — exactly as `divscrape soak` does,
// just on the smoke scenario so the whole suite stays seconds-fast.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "pipeline/chaos.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace divscrape;

std::string soak_dir(const std::string& name) {
  return ::testing::TempDir() + "divscrape_chaos_" +
         std::to_string(::getpid()) + "_" + name;
}

pipeline::ChaosConfig smoke_config(const std::string& dir_name) {
  auto spec = workload::catalog_entry("smoke", 1.0);
  EXPECT_TRUE(spec.has_value());
  pipeline::ChaosConfig config;
  config.spec = std::move(*spec);
  config.work_dir = soak_dir(dir_name);
  config.gen_threads = 2;
  config.partitions = 4;
  // The smoke hour is ~6k records; checkpoint often enough that every
  // scripted kill lands after at least one cadence persist.
  config.persist_every_records = 500;
  return config;
}

TEST(ChaosSoak, SmokeScenarioPassesOracle) {
  auto config = smoke_config("oracle");
  auto report = pipeline::run_chaos_soak(config);

  EXPECT_TRUE(report.passed);
  EXPECT_TRUE(report.results_identical);
  EXPECT_EQ(report.lost_records, 0u);
  EXPECT_EQ(report.duplicate_records, 0u);
  EXPECT_EQ(report.live_records, report.reference_records);
  // Every written record was scored; only scripted ENOSPC lines are gone.
  EXPECT_EQ(report.records_generated,
            report.live_records + report.records_dropped);
  EXPECT_GT(report.live_records, 1000u);
}

TEST(ChaosSoak, DefaultScheduleFiresEveryFaultKindThrice) {
  auto config = smoke_config("schedule");
  ASSERT_EQ(config.fault_epochs, 21);  // 7 kinds x 3
  auto report = pipeline::run_chaos_soak(config);

  EXPECT_EQ(report.faults, 21u);
  EXPECT_EQ(report.rotations, 3u);
  EXPECT_EQ(report.truncations, 3u);
  EXPECT_EQ(report.torn_writes, 3u);
  EXPECT_EQ(report.enospc_faults, 3u);
  EXPECT_EQ(report.short_write_bursts, 3u);
  // kill + persist-then-kill
  EXPECT_EQ(report.kills, 6u);
  EXPECT_EQ(report.warm_resumes, 6u);
  EXPECT_EQ(report.cold_resumes, 0u);
  // ENOSPC drops exactly one whole line per firing.
  EXPECT_EQ(report.records_dropped, report.enospc_faults);
  // Initial persist + cadence persists + post-rotation/truncation anchors.
  EXPECT_GT(report.checkpoints_persisted, report.kills);
}

TEST(ChaosSoak, SoakIsDeterministicAcrossRuns) {
  auto first_config = smoke_config("det_a");
  auto second_config = smoke_config("det_b");
  auto first = pipeline::run_chaos_soak(first_config);
  auto second = pipeline::run_chaos_soak(second_config);

  EXPECT_TRUE(first.passed);
  EXPECT_TRUE(second.passed);
  EXPECT_EQ(first.records_generated, second.records_generated);
  EXPECT_EQ(first.live_records, second.live_records);
  EXPECT_EQ(first.records_dropped, second.records_dropped);
  EXPECT_EQ(first.checkpoints_persisted, second.checkpoints_persisted);
  EXPECT_EQ(first.live_results_json, second.live_results_json);
}

TEST(ChaosSoak, RssLimitViolationFailsTheRun) {
  auto config = smoke_config("rss_fail");
  config.rss_limit_mb = 0.001;  // impossible: any process exceeds 1 KiB
  auto report = pipeline::run_chaos_soak(config);

  EXPECT_FALSE(report.rss_within_limit);
  EXPECT_FALSE(report.passed);
  // Only the memory check failed; correctness must still hold.
  EXPECT_TRUE(report.results_identical);
  EXPECT_EQ(report.lost_records, 0u);
  EXPECT_EQ(report.duplicate_records, 0u);
}

TEST(ChaosSoak, BenchDocumentWritesMachineReadableJson) {
  auto config = smoke_config("bench");
  auto report = pipeline::run_chaos_soak(config);
  ASSERT_TRUE(report.passed);

  const std::string path = soak_dir("bench") + "/BENCH_soak.json";
  ASSERT_TRUE(pipeline::write_chaos_bench(config, report, path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("divscrape.bench_soak.v1"), std::string::npos);
  EXPECT_NE(doc.find("\"passed\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"kills\":6"), std::string::npos);
  EXPECT_NE(doc.find("\"warm_resumes\":6"), std::string::npos);
  EXPECT_NE(doc.find("\"results_identical\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"rss_peak_kb\""), std::string::npos);
}

}  // namespace
