// Warm-resume byte-identity: the schema-v3 checkpoint contract from
// checkpoint.hpp, proven end to end. A tail process killed at an arbitrary
// record index — including mid-torn-write and straddling a rotation — and
// resumed from its checkpoint (ingest offset + detection-state blob,
// committed atomically) must finish with JointResults *byte-identical* to
// an uninterrupted run over the same stream, in single-file, multi-file
// and sharded modes. The regression test comes first: it demonstrates the
// divergence a state-less (pre-v3, cold) resume produces, i.e. the bug the
// blob exists to fix.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "detectors/registry.hpp"
#include "httplog/clf.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/multi_tailer.hpp"
#include "pipeline/replay.hpp"
#include "pipeline/sharded.hpp"
#include "pipeline/tailer.hpp"
#include "stats/rng.hpp"
#include "traffic/scenario.hpp"
#include "traffic/stream_writer.hpp"
#include "util/interner.hpp"
#include "util/state.hpp"

namespace {

using namespace divscrape;

constexpr std::size_t kFiles = 3;   // multi-file fan-out
constexpr std::size_t kShards = 2;  // sharded consumption

// Process-unique paths: ctest runs each test case as its own process, and
// several of them materialize the shared baseline concurrently.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "divscrape_warm_" + std::to_string(::getpid()) +
         "_" + name;
}

// The full smoke-scenario stream: mixed benign/scraper traffic with
// time-ordered records — enough to populate windows, reputation entries
// and template tables in both detectors.
const std::vector<httplog::LogRecord>& records() {
  static const std::vector<httplog::LogRecord> all = [] {
    auto config = traffic::smoke_test();
    traffic::Scenario scenario(config);
    std::vector<httplog::LogRecord> out;
    httplog::LogRecord r;
    while (scenario.next(r)) out.push_back(r);
    return out;
  }();
  return all;
}

// Uninterrupted single-file reference: every record written once, tailed
// once, by one engine incarnation.
const std::string& uninterrupted_single_file() {
  static const std::string json = [] {
    const auto log = temp_path("baseline.log");
    traffic::StreamWriter writer(log);
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    for (const auto& r : records()) writer.write(r);
    (void)tailer.poll();
    EXPECT_EQ(engine.stats().parsed, records().size());
    std::remove(log.c_str());
    return core::to_json(engine.results());
  }();
  return json;
}

// Serializes the engine's detection state into the checkpoint, then pushes
// the pair through the JSON wire — exactly what a real restart reads back.
pipeline::Checkpoint committed_checkpoint(const pipeline::LogTailer& tailer,
                                          const pipeline::ReplayEngine& engine) {
  pipeline::Checkpoint cp = tailer.checkpoint();
  util::StateWriter w;
  EXPECT_TRUE(engine.save_state(w));
  cp.state = w.take();
  const auto wire = pipeline::Checkpoint::from_json(cp.to_json());
  EXPECT_TRUE(wire.has_value());
  return *wire;
}

// The pre-v3 failure mode, demonstrated: resuming the ingest offset
// without the detection state loses every open window and accumulated
// count, so the resumed run's results CANNOT match the uninterrupted run.
// This is the divergence the state blob exists to close.
TEST(WarmResumeRegression, ColdResumeDivergesFromUninterruptedRun) {
  const auto& all = records();
  ASSERT_GT(all.size(), 400u);
  const std::size_t kill_at = all.size() / 2;
  const auto log = temp_path("cold_regression.log");
  traffic::StreamWriter writer(log);

  pipeline::Checkpoint saved;
  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    for (std::size_t i = 0; i < kill_at; ++i) writer.write(all[i]);
    (void)tailer.poll();
    saved = tailer.checkpoint();  // offset only: no state blob
  }
  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    ASSERT_TRUE(tailer.resume(saved));
    for (std::size_t i = kill_at; i < all.size(); ++i) writer.write(all[i]);
    (void)tailer.poll();
    EXPECT_EQ(tailer.checkpoint().parsed, all.size());
    EXPECT_NE(core::to_json(engine.results()), uninterrupted_single_file())
        << "a cold resume should NOT reproduce the uninterrupted results — "
           "if it does, this regression fixture has lost its teeth";
  }
  std::remove(log.c_str());
}

// Kill at random record indices; resume warm; require byte-identity.
TEST(WarmResumeSingleFile, KillAnywhereIsByteIdentical) {
  const auto& all = records();
  ASSERT_GT(all.size(), 400u);
  stats::Rng rng(42);
  for (int round = 0; round < 4; ++round) {
    const auto kill_at = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(all.size()) - 2));
    const auto log =
        temp_path("kill_" + std::to_string(round) + ".log");
    traffic::StreamWriter writer(log);

    pipeline::Checkpoint saved;
    {
      const auto pool = detectors::make_paper_pair();
      pipeline::ReplayEngine engine(pool);
      pipeline::LogTailer tailer(log, engine);
      for (std::size_t i = 0; i < kill_at; ++i) {
        writer.write(all[i]);
        if (rng.bernoulli(0.3)) (void)tailer.poll();
      }
      (void)tailer.poll();
      saved = committed_checkpoint(tailer, engine);
    }  // the kill

    {
      const auto pool = detectors::make_paper_pair();
      pipeline::ReplayEngine engine(pool);
      pipeline::LogTailer tailer(log, engine);
      ASSERT_TRUE(tailer.resume(saved));
      util::StateReader r(saved.state);
      ASSERT_TRUE(engine.load_state(r));
      EXPECT_TRUE(r.at_end());
      for (std::size_t i = kill_at; i < all.size(); ++i) {
        writer.write(all[i]);
        if (rng.bernoulli(0.3)) (void)tailer.poll();
      }
      (void)tailer.poll();
      EXPECT_EQ(tailer.checkpoint().parsed, all.size());
      EXPECT_EQ(core::to_json(engine.results()), uninterrupted_single_file())
          << "kill at record " << kill_at << " (round " << round << ")";
    }
    std::remove(log.c_str());
  }
}

// Kill while a torn write is in flight: the blob covers exactly the
// records below the committed offset; the torn prefix is re-read from the
// file by the resumed incarnation and its record is scored exactly once.
TEST(WarmResumeSingleFile, KillMidTornWriteIsByteIdentical) {
  const auto& all = records();
  const std::size_t kill_at = all.size() / 3;
  const auto log = temp_path("torn.log");
  traffic::StreamWriter writer(log);
  const std::string torn = httplog::format_clf(all[kill_at]) + "\n";

  pipeline::Checkpoint saved;
  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    for (std::size_t i = 0; i < kill_at; ++i) writer.write(all[i]);
    (void)tailer.poll();
    writer.write_bytes(std::string_view(torn).substr(0, torn.size() / 2));
    (void)tailer.poll();  // the torn prefix is buffered, not ingested
    EXPECT_TRUE(engine.has_partial_line());
    saved = committed_checkpoint(tailer, engine);
    EXPECT_EQ(saved.parsed, kill_at);
  }

  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    ASSERT_TRUE(tailer.resume(saved));
    util::StateReader r(saved.state);
    ASSERT_TRUE(engine.load_state(r));
    writer.write_bytes(std::string_view(torn).substr(torn.size() / 2));
    for (std::size_t i = kill_at + 1; i < all.size(); ++i) {
      writer.write(all[i]);
    }
    (void)tailer.poll();
    EXPECT_EQ(tailer.checkpoint().parsed, all.size());
    EXPECT_EQ(core::to_json(engine.results()), uninterrupted_single_file());
  }
  std::remove(log.c_str());
}

// The kill straddles a rotation: the log rotates while the first
// incarnation is up (so the checkpoint names the new file incarnation),
// then the process dies. The resumed run must honor the post-rotation
// offset AND the warm state that covers records from both incarnations.
TEST(WarmResumeSingleFile, KillAfterRotationIsByteIdentical) {
  const auto& all = records();
  const std::size_t rotate_at = all.size() / 3;
  const std::size_t kill_at = all.size() / 2;
  const auto log = temp_path("rotated.log");
  const auto rotated = log + ".1";
  traffic::StreamWriter writer(log);

  pipeline::Checkpoint saved;
  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    for (std::size_t i = 0; i < rotate_at; ++i) writer.write(all[i]);
    (void)tailer.poll();
    writer.rotate(rotated);
    for (std::size_t i = rotate_at; i < kill_at; ++i) writer.write(all[i]);
    (void)tailer.poll();  // follows the rotation
    EXPECT_EQ(tailer.rotations(), 1u);
    saved = committed_checkpoint(tailer, engine);
    EXPECT_EQ(saved.rotations, 1u);
  }

  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::LogTailer tailer(log, engine);
    ASSERT_TRUE(tailer.resume(saved));
    util::StateReader r(saved.state);
    ASSERT_TRUE(engine.load_state(r));
    for (std::size_t i = kill_at; i < all.size(); ++i) writer.write(all[i]);
    (void)tailer.poll();
    EXPECT_EQ(tailer.checkpoint().parsed, all.size());
    EXPECT_EQ(core::to_json(engine.results()), uninterrupted_single_file());
  }
  std::remove(log.c_str());
  std::remove(rotated.c_str());
}

// ---------------------------------------------------------------------------
// Multi-file: one MultiTailer over kFiles logs, records fanned out
// round-robin (each per-file stream stays time-ordered). Both runs write,
// poll and flush at the same phase boundary, so they decode and emit the
// same record sequence — the merge layer's determinism contract.

struct MultiLogs {
  std::vector<std::string> paths;
  std::vector<std::unique_ptr<traffic::StreamWriter>> writers;

  explicit MultiLogs(const std::string& tag) {
    for (std::size_t i = 0; i < kFiles; ++i) {
      paths.push_back(temp_path(tag + "." + std::to_string(i) + ".log"));
      writers.push_back(std::make_unique<traffic::StreamWriter>(paths.back()));
    }
  }
  ~MultiLogs() {
    for (const auto& p : paths) std::remove(p.c_str());
  }
  void write_range(std::size_t begin, std::size_t end) {
    const auto& all = records();
    for (std::size_t i = begin; i < end; ++i) {
      writers[i % kFiles]->write(all[i]);
    }
  }
};

std::string uninterrupted_multi_file(const std::string& tag,
                                     std::size_t phase_split) {
  MultiLogs logs(tag);
  const auto pool = detectors::make_paper_pair();
  pipeline::ReplayEngine engine(pool);
  pipeline::MultiTailer tailer(
      logs.paths, [&engine](httplog::LogRecord&& record) {
        engine.process_record(std::move(record));
      });
  logs.write_range(0, phase_split);
  (void)tailer.poll();
  (void)tailer.flush();
  logs.write_range(phase_split, records().size());
  (void)tailer.poll();
  (void)tailer.flush();
  EXPECT_EQ(tailer.stats().parsed, records().size());
  return core::to_json(engine.results());
}

TEST(WarmResumeMultiFile, KillAtPhaseBoundaryIsByteIdentical) {
  const auto& all = records();
  const std::size_t phase_split = all.size() / 2;
  const std::string baseline =
      uninterrupted_multi_file("multi_base", phase_split);

  MultiLogs logs("multi_kill");
  pipeline::TailSessionState session;
  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::MultiTailer tailer(
        logs.paths, [&engine](httplog::LogRecord&& record) {
          engine.process_record(std::move(record));
        });
    logs.write_range(0, phase_split);
    (void)tailer.poll();
    (void)tailer.flush();  // quiescent: every decoded record is processed
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      session.logs.emplace_back(tailer.path(i), tailer.checkpoint(i));
    }
    util::StateWriter w;
    ASSERT_TRUE(engine.save_state(w));
    session.state = w.take();
    // Through the wire, as the tail CLI's session file round-trips it.
    const auto wire = pipeline::TailSessionState::from_json(session.to_json());
    ASSERT_TRUE(wire.has_value());
    session = *wire;
  }  // the kill

  {
    const auto pool = detectors::make_paper_pair();
    pipeline::ReplayEngine engine(pool);
    pipeline::MultiTailer tailer(
        logs.paths, [&engine](httplog::LogRecord&& record) {
          engine.process_record(std::move(record));
        });
    ASSERT_EQ(session.logs.size(), tailer.files());
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      EXPECT_EQ(session.logs[i].first, tailer.path(i));
      ASSERT_TRUE(tailer.resume(i, session.logs[i].second));
    }
    util::StateReader r(session.state);
    ASSERT_TRUE(engine.load_state(r));
    EXPECT_TRUE(r.at_end());
    logs.write_range(phase_split, all.size());
    (void)tailer.poll();
    (void)tailer.flush();
    EXPECT_EQ(core::to_json(engine.results()), baseline);
  }
}

// ---------------------------------------------------------------------------
// Sharded: the same fan-out consumed by a ShardedPipeline behind the
// dispatch interner, with the drain() barrier making the queues empty (and
// the workers' joiner writes visible) before every state commit.

std::string uninterrupted_sharded(const std::string& tag,
                                  std::size_t phase_split) {
  MultiLogs logs(tag);
  pipeline::ShardedPipeline sharded([] { return detectors::make_paper_pair(); },
                                    kShards);
  util::StringInterner ua_tokens;
  pipeline::MultiTailer tailer(
      logs.paths, [&](httplog::LogRecord&& record) {
        record.ua_token = ua_tokens.intern(record.user_agent);
        sharded.process(std::move(record));
      });
  logs.write_range(0, phase_split);
  (void)tailer.poll();
  (void)tailer.flush();
  logs.write_range(phase_split, records().size());
  (void)tailer.poll();
  (void)tailer.flush();
  EXPECT_EQ(tailer.stats().parsed, records().size());
  return core::to_json(sharded.finish());
}

TEST(WarmResumeSharded, KillAtPhaseBoundaryIsByteIdentical) {
  const auto& all = records();
  const std::size_t phase_split = all.size() / 2;
  const std::string baseline = uninterrupted_sharded("shard_base", phase_split);

  MultiLogs logs("shard_kill");
  pipeline::TailSessionState session;
  {
    pipeline::ShardedPipeline sharded(
        [] { return detectors::make_paper_pair(); }, kShards);
    util::StringInterner ua_tokens;
    pipeline::MultiTailer tailer(
        logs.paths, [&](httplog::LogRecord&& record) {
          record.ua_token = ua_tokens.intern(record.user_agent);
          sharded.process(std::move(record));
        });
    logs.write_range(0, phase_split);
    (void)tailer.poll();
    (void)tailer.flush();
    // save_state drains internally: the commit point sees every dispatched
    // record processed, and the offsets below cover exactly those records.
    util::StateWriter w;
    ua_tokens.save_state(w);
    ASSERT_TRUE(sharded.save_state(w));
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      session.logs.emplace_back(tailer.path(i), tailer.checkpoint(i));
    }
    session.state = w.take();
    const auto wire = pipeline::TailSessionState::from_json(session.to_json());
    ASSERT_TRUE(wire.has_value());
    session = *wire;
  }  // the kill (ShardedPipeline aborts without finish(), as a crash would)

  {
    pipeline::ShardedPipeline sharded(
        [] { return detectors::make_paper_pair(); }, kShards);
    util::StringInterner ua_tokens;
    pipeline::MultiTailer tailer(
        logs.paths, [&](httplog::LogRecord&& record) {
          record.ua_token = ua_tokens.intern(record.user_agent);
          sharded.process(std::move(record));
        });
    util::StateReader r(session.state);
    ASSERT_TRUE(ua_tokens.load_state(r));
    ASSERT_TRUE(sharded.load_state(r));
    EXPECT_TRUE(r.at_end());
    ASSERT_EQ(session.logs.size(), tailer.files());
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      ASSERT_TRUE(tailer.resume(i, session.logs[i].second));
    }
    logs.write_range(phase_split, all.size());
    (void)tailer.poll();
    (void)tailer.flush();
    EXPECT_EQ(core::to_json(sharded.finish()), baseline);
  }
}

// The batch seam under kill: records travel as RecordBatches through the
// dispatcher and shard rings. After the committed checkpoint, the first
// incarnation keeps feeding — those batches are in flight inside the rings
// when the destructor abort fires (the crash). Nothing past the commit
// point was checkpointed, so the resumed incarnation re-reads those
// records from the files and the result is byte-identical. The resume
// deliberately uses a DIFFERENT batch size and dispatcher count: both are
// execution knobs, not state, and must not be observable across a resume.
TEST(WarmResumeSharded, BatchedKillWithInFlightBatchesIsByteIdentical) {
  const auto& all = records();
  const std::size_t phase_split = all.size() / 2;
  const std::size_t in_flight_end = phase_split + 90;
  ASSERT_LT(in_flight_end, all.size());
  const std::string baseline = uninterrupted_sharded("batch_base", phase_split);

  MultiLogs logs("batch_kill");
  pipeline::TailSessionState session;
  {
    pipeline::ShardedPipeline sharded(
        [] { return detectors::make_paper_pair(); }, kShards,
        /*batch_size=*/7, /*max_backlog=*/16 * 1024, /*dispatchers=*/2);
    util::StringInterner ua_tokens;
    pipeline::MultiTailer tailer(
        logs.paths,
        pipeline::MultiTailer::BatchSink(
            [&](pipeline::RecordBatch&& batch) {
              for (auto& record : batch)
                record.ua_token = ua_tokens.intern(record.user_agent);
              sharded.process_batch(std::move(batch));
            }),
        /*batch_records=*/7, pipeline::MultiTailConfig{},
        &sharded.batch_pool());
    logs.write_range(0, phase_split);
    (void)tailer.poll();
    (void)tailer.flush();
    // Commit: save_state drains, so the blob covers exactly the records
    // the offsets below cover — none of them hiding in a batch or a ring.
    util::StateWriter w;
    ua_tokens.save_state(w);
    ASSERT_TRUE(sharded.save_state(w));
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      session.logs.emplace_back(tailer.path(i), tailer.checkpoint(i));
    }
    session.state = w.take();
    const auto wire = pipeline::TailSessionState::from_json(session.to_json());
    ASSERT_TRUE(wire.has_value());
    session = *wire;
    // Keep feeding PAST the committed checkpoint without draining: these
    // batches are in the rings when the abort fires below.
    logs.write_range(phase_split, in_flight_end);
    (void)tailer.poll();
  }  // the kill, with batches in flight

  {
    pipeline::ShardedPipeline sharded(
        [] { return detectors::make_paper_pair(); }, kShards,
        /*batch_size=*/64, /*max_backlog=*/16 * 1024, /*dispatchers=*/1);
    util::StringInterner ua_tokens;
    pipeline::MultiTailer tailer(
        logs.paths,
        pipeline::MultiTailer::BatchSink(
            [&](pipeline::RecordBatch&& batch) {
              for (auto& record : batch)
                record.ua_token = ua_tokens.intern(record.user_agent);
              sharded.process_batch(std::move(batch));
            }),
        /*batch_records=*/64, pipeline::MultiTailConfig{},
        &sharded.batch_pool());
    util::StateReader r(session.state);
    ASSERT_TRUE(ua_tokens.load_state(r));
    ASSERT_TRUE(sharded.load_state(r));
    EXPECT_TRUE(r.at_end());
    ASSERT_EQ(session.logs.size(), tailer.files());
    for (std::size_t i = 0; i < tailer.files(); ++i) {
      ASSERT_TRUE(tailer.resume(i, session.logs[i].second));
    }
    // The in-flight range is already on disk (written by the dead
    // incarnation past its commit point); only the rest is written here.
    logs.write_range(in_flight_end, all.size());
    (void)tailer.poll();
    (void)tailer.flush();
    EXPECT_EQ(core::to_json(sharded.finish()), baseline);
  }
}

// A sharded blob must not restore into a pipeline with a different shard
// count — per-/24 state would land on the wrong workers.
TEST(WarmResumeSharded, ShardCountMismatchFallsBackCold) {
  pipeline::ShardedPipeline two([] { return detectors::make_paper_pair(); },
                                2);
  util::StateWriter w;
  ASSERT_TRUE(two.save_state(w));
  const std::string blob = w.take();

  pipeline::ShardedPipeline three([] { return detectors::make_paper_pair(); },
                                  3);
  util::StateReader r(blob);
  EXPECT_FALSE(three.load_state(r));
  EXPECT_EQ(three.dispatched(), 0u);
}

}  // namespace
