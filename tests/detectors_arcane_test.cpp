// ArcaneDetector (in-house behavioural) tests: warm-up floor, each
// behavioural signal, whitelisting, and the browser-vs-scraper separation
// the reproduction depends on.
#include <gtest/gtest.h>

#include <string>

#include "detectors/arcane.hpp"

namespace {

using divscrape::detectors::AlertReason;
using divscrape::detectors::ArcaneConfig;
using divscrape::detectors::ArcaneDetector;
using divscrape::httplog::Ipv4;
using divscrape::httplog::LogRecord;
using divscrape::httplog::Timestamp;

constexpr const char* kBrowserUa =
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
    "like Gecko) Chrome/64.0.3282.186 Safari/537.36";

LogRecord req(Ipv4 ip, double t_s, std::string target,
              const char* ua = kBrowserUa, int status = 200,
              const char* referer = "-") {
  LogRecord r;
  r.ip = ip;
  r.time = Timestamp(static_cast<std::int64_t>(t_s * 1e6));
  r.user_agent = ua;
  r.target = std::move(target);
  r.status = status;
  r.referer = referer;
  return r;
}

TEST(Arcane, SilentDuringWarmup) {
  ArcaneDetector arcane;
  const Ipv4 ip(1, 2, 3, 4);
  const int floor = arcane.config().min_requests;
  for (int i = 0; i < floor - 1; ++i) {
    const auto v = arcane.evaluate(
        req(ip, i * 1.0, "/offers/" + std::to_string(i)));
    ASSERT_FALSE(v.alert) << "alerted during warm-up at " << i;
    ASSERT_EQ(v.score, 0.0);
  }
}

TEST(Arcane, CatalogueSweepAlertsAfterWarmup) {
  // A stealth catalogue sweep: browser UA, no assets, one template, no
  // referer — the signature rate-based tools miss.
  ArcaneDetector arcane;
  const Ipv4 ip(1, 2, 3, 4);
  bool alerted = false;
  int first_alert = -1;
  for (int i = 0; i < 30; ++i) {
    const auto v = arcane.evaluate(
        req(ip, i * 5.0, "/offers/" + std::to_string(1000 + i)));
    if (v.alert && !alerted) {
      alerted = true;
      first_alert = i;
      EXPECT_EQ(v.reason, AlertReason::kBehavioral);
    }
  }
  EXPECT_TRUE(alerted);
  EXPECT_GE(first_alert, arcane.config().min_requests - 1);
}

TEST(Arcane, HumanLikeBrowsingStaysClean) {
  // Pages with assets, referers, diverse templates at human pace.
  ArcaneDetector arcane;
  const Ipv4 ip(9, 9, 9, 9);
  double t = 0.0;
  const char* pages[] = {"/search?from=NCE&to=LHR", "/offers/12",
                         "/offers/44", "/help"};
  for (int round = 0; round < 10; ++round) {
    for (const char* page : pages) {
      auto page_req = req(ip, t, page, kBrowserUa, 200,
                          "https://shop.example.com/");
      ASSERT_FALSE(arcane.evaluate(page_req).alert) << "t=" << t;
      t += 0.3;
      auto asset = req(ip, t, "/static/app-1.js", kBrowserUa, 200,
                       "https://shop.example.com/");
      ASSERT_FALSE(arcane.evaluate(asset).alert) << "t=" << t;
      t += 12.0;
    }
  }
}

TEST(Arcane, ScriptedUaContributesToScore) {
  ArcaneDetector arcane;
  const Ipv4 ip(2, 2, 2, 2);
  bool alerted = false;
  AlertReason reason = AlertReason::kNone;
  for (int i = 0; i < 20 && !alerted; ++i) {
    const auto v = arcane.evaluate(
        req(ip, i * 4.0, "/offers/" + std::to_string(i), "curl/7.58.0"));
    alerted = v.alert;
    reason = v.reason;
  }
  EXPECT_TRUE(alerted);
  EXPECT_EQ(reason, AlertReason::kBadUserAgent);
}

TEST(Arcane, MalformedRequestPatternAlerts) {
  ArcaneDetector arcane;
  const Ipv4 ip(3, 3, 3, 3);
  bool saw_protocol_anomaly = false;
  for (int i = 0; i < 30; ++i) {
    const int status = i % 3 == 0 ? 400 : 200;
    const auto v = arcane.evaluate(req(
        ip, i * 4.0, "/offers/" + std::to_string(i) + "%zz", kBrowserUa,
        status));
    if (v.alert && v.reason == AlertReason::kProtocolAnomaly)
      saw_protocol_anomaly = true;
  }
  EXPECT_TRUE(saw_protocol_anomaly);
}

TEST(Arcane, ApiPollingPatternAlerts) {
  ArcaneDetector arcane;
  const Ipv4 ip(4, 4, 4, 4);
  bool alerted = false;
  for (int i = 0; i < 40 && !alerted; ++i) {
    const int status = i % 3 == 0 ? 204 : 200;
    const auto v = arcane.evaluate(
        req(ip, i * 2.0, "/api/availability?offer=" + std::to_string(i),
            kBrowserUa, status));
    alerted = v.alert;
  }
  EXPECT_TRUE(alerted);
}

TEST(Arcane, CacheSweepPatternAlerts) {
  ArcaneDetector arcane;
  const Ipv4 ip(5, 5, 5, 5);
  bool alerted = false;
  for (int i = 0; i < 30 && !alerted; ++i) {
    const int status = i % 5 == 0 ? 200 : 304;
    const auto v = arcane.evaluate(
        req(ip, i * 4.0, "/offers/" + std::to_string(i), kBrowserUa,
            status));
    alerted = v.alert;
  }
  EXPECT_TRUE(alerted);
}

TEST(Arcane, WindowForgetsOldBehaviour) {
  // After a long pause the sliding window drains; the next request is
  // below the behavioural floor again (the warm-up the commercial tool's
  // reputation covers — the paper's "Distil only" mass).
  ArcaneDetector arcane;
  const Ipv4 ip(6, 6, 6, 6);
  double t = 0.0;
  bool alerted = false;
  for (int i = 0; i < 40; ++i, t += 2.0) {
    alerted = arcane
                  .evaluate(req(ip, t, "/offers/" + std::to_string(i)))
                  .alert ||
              alerted;
  }
  EXPECT_TRUE(alerted);
  t += 24 * 3600.0;
  const auto v = arcane.evaluate(req(ip, t, "/offers/99999"));
  EXPECT_FALSE(v.alert);
}

TEST(Arcane, DeclaredBotGetsGraceVolume) {
  ArcaneDetector arcane;
  const Ipv4 ip(66, 249, 64, 10);
  const char* ua =
      "Mozilla/5.0 (compatible; Googlebot/2.1; "
      "+http://www.google.com/bot.html)";
  // A polite crawler at modest in-window volume never alerts.
  for (int i = 0; i < 25; ++i) {
    const auto v = arcane.evaluate(
        req(ip, i * 6.0, "/offers/" + std::to_string(i), ua));
    ASSERT_FALSE(v.alert) << i;
  }
}

TEST(Arcane, SlowClientNeverReachesBehaviouralFloor) {
  // One request every 30s: at most 4 in a 120s window, below the floor —
  // this is exactly why the slow fleet members are Sentinel-only catches.
  ArcaneDetector arcane;
  const Ipv4 ip(7, 7, 7, 7);
  for (int i = 0; i < 100; ++i) {
    const auto v =
        arcane.evaluate(req(ip, i * 30.0, "/offers/" + std::to_string(i)));
    ASSERT_FALSE(v.alert) << i;
  }
}

TEST(Arcane, ResetClearsClients) {
  ArcaneDetector arcane;
  const Ipv4 ip(8, 8, 8, 8);
  for (int i = 0; i < 30; ++i)
    (void)arcane.evaluate(req(ip, i * 2.0, "/offers/1"));
  EXPECT_GT(arcane.tracked_clients(), 0u);
  arcane.reset();
  EXPECT_EQ(arcane.tracked_clients(), 0u);
}

TEST(Arcane, ClientsKeyedByIpAndUa) {
  // Same IP, different UA = different behavioural context.
  ArcaneDetector arcane;
  const Ipv4 ip(11, 11, 11, 11);
  for (int i = 0; i < 40; ++i) {
    (void)arcane.evaluate(req(ip, i * 2.0, "/offers/" + std::to_string(i)));
  }
  // Fresh UA from the same IP starts cold: no alert on its first request.
  const auto v = arcane.evaluate(
      req(ip, 100.0, "/offers/5",
          "Mozilla/5.0 (Macintosh) AppleWebKit/604.5.6 (KHTML, like Gecko) "
          "Version/11.0.3 Safari/604.5.6"));
  EXPECT_FALSE(v.alert);
}

TEST(Arcane, ScoreCappedAtOne) {
  ArcaneDetector arcane;
  const Ipv4 ip(12, 12, 12, 12);
  for (int i = 0; i < 100; ++i) {
    const auto v = arcane.evaluate(
        req(ip, i * 0.5, "/offers/1", "curl/7.58.0", i % 2 ? 400 : 204));
    ASSERT_LE(v.score, 1.0);
  }
}

}  // namespace
